#!/usr/bin/env python3
"""The anatomy of a tail latency, narrated.

Runs the overload-storm chaos scenario with tracing on, then walks the
critical-path engine's output from the top down:

1. **Coverage** — every request's time must be attributed to a named
   wait cause; the residual ``unattributed`` bucket is gated at <= 1%.
2. **Decomposition** — where the operation's time goes overall (mostly
   boring: real service work, storage reads, network hops).
3. **Differential blame** — the interesting part. The p50 and the p99
   are slow for *different* reasons: the median request barely queues,
   the p99 request spends ~100ms in the scheduler queue and ~80ms in
   retry backoff. The blame table names the difference per cause.
4. **One tail request, segment by segment** — the slowest request's
   critical path as an itinerary: which span held it, under which wait
   cause, for how long, including the modeled (priced-not-elapsed)
   waits like network RTTs.

Everything runs on the simulated clock with seeded randomness: the
microseconds below are byte-identical on every run.

Run:  PYTHONPATH=src python examples/tail_anatomy.py
"""

from repro.faults.chaos import run_chaos
from repro.obs.critpath import SCENARIO_DEFAULTS


def fmt_us(us) -> str:
    if us >= 1_000_000:
        return f"{us / 1_000_000:.2f}s"
    if us >= 1_000:
        return f"{us / 1_000:.1f}ms"
    return f"{int(us)}us"


def main() -> None:
    mix, seed = SCENARIO_DEFAULTS["overload-storm"]
    print(f"running overload-storm (seed {seed}, traced) ...")
    run = run_chaos("overload-storm", seed=seed, mix=mix, trace=True)
    summary = run.extra["critpath"]

    coverage = summary["coverage"]
    print(f"\n1. coverage: {coverage['ratio'] * 100:.2f}% of "
          f"{fmt_us(coverage['total_us'])} total attributed "
          f"({fmt_us(coverage['unattributed_us'])} unattributed) -> "
          f"{'OK' if coverage['ok'] else 'FAIL'}")

    block = summary["operations"]["get"]
    print(f"\n2. where `get` time goes overall "
          f"(n={block['count']}, p50 {fmt_us(block['p50_us'])}, "
          f"p99 {fmt_us(block['p99_us'])}):")
    ranked = sorted(
        block["decomposition"].items(),
        key=lambda item: (-item[1]["us"], item[0]),
    )
    for cause, cell in ranked:
        print(f"     {cause:<20} {fmt_us(cell['us']):>10} "
              f"({cell['share'] * 100:5.1f}%)")

    print("\n3. why the p99 is slow when the p50 is not "
          "(mean per request, tail bucket vs p50 bucket):")
    for row in block["blame"]:
        if row["growth_us"] <= 0:
            continue
        print(f"     {row['cause']:<20} "
              f"p50 {fmt_us(row['p50_mean_us']):>8} -> "
              f"tail {fmt_us(row['tail_mean_us']):>8}   "
              f"growth +{fmt_us(row['growth_us'])}")
    print(f"   top tail causes: {', '.join(block['top_tail_causes'])}")

    slowest = summary["slowest"][0]
    retained = " (full span tree retained by the TailSampler)" \
        if slowest["retained"] else ""
    print(f"\n4. the slowest request, segment by segment — "
          f"{slowest['operation']} trace {slowest['trace_id']}, "
          f"{fmt_us(slowest['total_us'])} total{retained}:")
    for segment in slowest["segments"]:
        tag = " (modeled)" if segment.get("modeled") else ""
        detail = f"  [{segment['detail']}]" if segment.get("detail") else ""
        print(f"     {fmt_us(segment['us']):>10}  {segment['cause']:<20} "
              f"in {segment['span']}{tag}{detail}")

    print("\nthe same engine under `failover` blames quorum_rtt + "
          "replication_apply instead:")
    print("  PYTHONPATH=src python -m repro.obs.critpath "
          "--scenario failover")


if __name__ == "__main__":
    main()
