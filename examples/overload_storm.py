#!/usr/bin/env python3
"""The metastable-failure demonstration, narrated.

Runs the same four-tenant serving fleet through a 10x load surge twice:

- **fragile** — a static queue bound, no deadline propagation (the
  backend happily serves work whose client already gave up), and
  unbudgeted fixed-interval retries. The surge lasts 1.2 seconds; the
  collapse it triggers lasts forever. This is a *metastable failure*:
  the sustaining feedback loop (timeouts -> retries -> more queueing ->
  more timeouts) outlives its trigger.
- **resilient** — the graceful-degradation stack from
  ``repro.service.overload``: an AIMD concurrency limit on observed
  queue wait, CoDel queue-deadline shedding, deadline propagation,
  gRPC-style retry budgets, and server-driven backoff hints. Goodput
  dips while the surge lasts, then returns to baseline.

Both arms run on the simulated clock with seeded randomness, so the
numbers below are byte-identical on every run.

Run:  PYTHONPATH=src python examples/overload_storm.py
"""

from repro.faults.chaos import metastable_run


def sparkline(per_second, capacity):
    blocks = " .:-=+*#%@"
    out = []
    for ops in per_second:
        idx = min(len(blocks) - 1, (ops * (len(blocks) - 1)) // capacity)
        out.append(blocks[idx])
    return "".join(out)


def narrate(arm: dict) -> None:
    per_second = arm["per_second_goodput"]
    peak = max(max(per_second), 1)
    print(f"\n--- {arm['arm']} arm ---")
    print(f"goodput/s : {per_second}")
    print(f"            [{sparkline(per_second, peak)}]  "
          f"(surge ends at t={arm['surge_end_s']}s)")
    print(f"baseline  : {arm['baseline_per_s']:.0f} ops/s   "
          f"recovery: {arm['recovery_per_s']:.0f} ops/s   "
          f"ratio: {arm['recovery_ratio']:.2f}")
    print(f"sheds     : door={arm['door_sheds']} "
          f"zombie-served={arm['zombie_completions']} "
          f"budget-stops={arm['budget_exhausted']}")
    if arm["arm"] == "resilient":
        print(f"aimd      : final limit={arm['adaptive_limit']} "
              f"decreases={arm['limit_decreases']}")


def main() -> None:
    print("metastable failure: a 10x surge for 1.2s against a fleet "
          "with 2x headroom")

    fragile = metastable_run(seed=1, resilient=False)
    narrate(fragile)
    print("the surge is long gone, yet goodput is pinned at zero: every "
          "client\nretries on a fixed timer, the queue stays full of "
          "already-abandoned work,\nand serving it starves the live "
          "requests that would break the loop.")

    resilient = metastable_run(seed=1, resilient=True)
    narrate(resilient)
    print("same fleet, same surge: expired work is freed at dispatch, "
          "the AIMD\nlimit cuts until the queue drains, dry retry "
          "budgets stop the feedback\nloop, and goodput walks back to "
          "baseline.")

    recovered = resilient["recovery_ratio"] >= 0.9
    collapsed = fragile["recovery_ratio"] < 0.5
    print(f"\nverdict: resilient recovered={recovered} "
          f"fragile stayed collapsed={collapsed}")
    assert recovered and collapsed


if __name__ == "__main__":
    main()
