#!/usr/bin/env python3
"""A tour of the secondary surfaces: Datastore API, GQL, COUNT,
transforms, the validator, and the REST emulator.

The paper's section II promise in action — "both APIs can be used to read
from and write to the same database" — plus the operational machinery of
sections VI and VIII.

Run:  python examples/dual_api_tour.py
"""

from repro import FirestoreService, increment, array_union, set_op
from repro.datastore import DatastoreClient, Entity, Key
from repro.emulator import FirestoreEmulator
from repro.emulator.values_json import encode_fields


def main() -> None:
    service = FirestoreService()
    db = service.create_database("tour")

    print("== one database, two APIs (paper section II) ==")
    datastore = DatastoreClient(db)
    datastore.put(Entity(Key.of("Task", "t1"), {"done": False, "priority": 3}))
    # the entity written via the Datastore API is a document to Firestore
    print("firestore sees:", db.lookup("Task/t1").data)
    db.commit([set_op("Task/t2", {"done": True, "priority": 1})])
    print("datastore sees:", datastore.get(Key.of("Task", "t2")).properties)

    print("\n== the paper's own query syntax (GQL/SQL) ==")
    result = db.run_query(db.gql("select * from Task where done = false"))
    print("open tasks:", [p.id for p in result.paths])

    print("\n== COUNT without fetching (section VIII) ==")
    count, examined = db.run_count(db.query("Task"))
    print(f"count={count}, rows examined={examined}, documents fetched=0")

    print("\n== field transforms ==")
    from repro.core.backend import update_op

    db.commit([update_op("Task/t1", {
        "priority": increment(10),
        "tags": array_union("urgent"),
    })])
    print("after transforms:", db.lookup("Task/t1").data)

    print("\n== the periodic data-validation job (section VI) ==")
    report = db.validate()
    print("validator:", report.summary())

    print("\n== the standalone REST emulator (section I) ==")
    emulator = FirestoreEmulator()
    base = "/v1/projects/demo/databases/(default)/documents"
    emulator.handle("PATCH", f"{base}/notes/hello",
                    {"fields": encode_fields({"text": "hi from REST"})})
    response = emulator.handle("GET", f"{base}/notes/hello")
    print("REST GET:", response.status, response.body["fields"])
    aggregation = emulator.handle(
        "POST",
        f"{base}:runAggregationQuery",
        {
            "parent": "projects/demo/databases/(default)/documents",
            "structuredAggregationQuery": {
                "structuredQuery": {"from": [{"collectionId": "notes"}]}
            },
        },
    )
    print("REST COUNT:", aggregation.body[0]["result"]["aggregateFields"])


if __name__ == "__main__":
    main()
