#!/usr/bin/env python3
"""End-to-end tracing: one commit's full span tree, exported for Perfetto.

Builds a Firestore service with a real tracer and metrics registry, then
runs one sampled commit through every layer of the paper's write path
(section IV-D2/D4):

    frontend.rpc
      backend.commit              the Backend's 7-step write protocol
        backend.stage_writes        steps 1-3: rules, index diffs, staging
        rtc.prepare                 Real-time Cache 2PC: Prepare
        spanner.commit              Spanner transaction
          spanner.locks               exclusive locks on written rows
          spanner.2pc                 commit across participant tablets
        rtc.accept                  Real-time Cache 2PC: Accept
      frontend.pump               Changelog heartbeat -> Matcher
        matcher.match               which registered queries care?
        listener.notify             fan-out to the listening client

The trace is deterministic: span ids come from a seeded stream and all
timestamps from the simulated clock, so re-running this script produces a
byte-identical export. Durations here are 0us — the functional stack
models semantics, not time; traces taken inside the serving simulation
(``YcsbConfig(trace=True)`` or a ``ServingCluster`` with a tracer) carry
real simulated durations.

Run:  python examples/traced_commit.py
Then load traced_commit.json at https://ui.perfetto.dev (or
chrome://tracing) to see each component as its own track.
"""

from repro import FirestoreService
from repro.obs import MetricsRegistry, Tracer, trace_full_commit
from repro.obs.export import render_text_report, write_chrome_trace
from repro.sim.clock import SimClock
from repro.sim.rand import SimRandom


def main() -> None:
    clock = SimClock()
    tracer = Tracer(clock, SimRandom(42).fork("tracer"))
    metrics = MetricsRegistry()
    service = FirestoreService(clock=clock, tracer=tracer, metrics=metrics)
    db = service.create_database("traced-demo")

    # One sampled commit with a listener attached, so the trace includes
    # the real-time notification fan-out.
    delivered = trace_full_commit(
        db, "rooms/lobby", {"topic": "observability", "open": True}
    )
    print(f"listener received {len(delivered)} snapshot delta(s)\n")

    # The span tree, reconstructed from the recorded spans.
    root = tracer.find("frontend.rpc")[0]

    def show(span, depth=0):
        print(f"{'  ' * depth}{span.name}  [{span.duration_us}us]")
        for child in sorted(tracer.children_of(span), key=lambda s: s.start_us):
            show(child, depth + 1)

    show(root)
    print()

    # Export for Perfetto, plus the quick-look text report.
    path = write_chrome_trace(tracer, "traced_commit.json")
    print(f"wrote {path} — load it at https://ui.perfetto.dev")
    print()
    print(render_text_report(tracer, metrics, title="traced commit"))


if __name__ == "__main__":
    main()
