#!/usr/bin/env python3
"""Geo-replication tour: quorum commits, follower reads, a failover.

Builds a multi-regional (nam5-style) Firestore service — five replicas
led from us-central — writes through the quorum, serves a
bounded-staleness read from the nearest follower, then takes the leader
region down and watches the lease expire, a successor win the election,
and writes resume in the new term without violating external
consistency.

Everything runs on the simulated clock with seeded randomness, so the
output is byte-identical on every run.

Run:  PYTHONPATH=src python examples/geo_failover.py
"""

from repro import FirestoreService
from repro.core.backend import set_op
from repro.errors import Unavailable
from repro.faults.plan import FaultPlan, install
from repro.faults.retry import commit_with_retry


def main() -> None:
    service = FirestoreService(multi_region=True)
    database = service.create_database("tour")
    group = database.layout.spanner.replication
    clock = service.clock
    print(f"topology: leader={group.leader_region} "
          f"replicas={sorted(group.replicas)} quorum={group.quorum_size}")

    # -- quorum commit ------------------------------------------------------
    database.commit([set_op("cities/par", {"name": "Paris", "pop": 2_161})])
    print(f"committed through term {group.term}; log={len(group.log)} "
          f"quorum ack rtt={group.topology.quorum_rtt_us()}us")

    # -- follower read ------------------------------------------------------
    clock.advance(50_000)  # let shipping land everywhere
    group.catch_up()
    region, read_ts = group.route_read("us-east", staleness_bound_us=100_000)
    print(f"bounded read (100ms bound) from us-east served by {region!r} "
          f"at ts={read_ts} (lag={group.replication_lag_us()}us)")

    # -- leader-region outage -> failover -----------------------------------
    plan = install(FaultPlan(seed=7), database)
    group.lease_us = 60_000  # short lease so the demo fails over fast
    group.lease_expiry_us = clock.now_us + group.lease_us
    plan.arm("region.outage", region=group.leader_region,
             duration_us=2_000_000)
    old_leader, old_term = group.leader_region, group.term
    try:
        database.commit([set_op("cities/rio", {"name": "Rio"})])
    except Unavailable as exc:
        print(f"leader {old_leader!r} is down, lease held: {exc}")

    # retries back off on the sim clock until the lease expires, then the
    # most caught-up reachable replica wins the election
    commit_with_retry(
        database,
        [set_op("cities/rio", {"name": "Rio", "pop": 6_748})],
        token="tour:rio",
    )
    print(f"failover: {old_leader!r} (term {old_term}) -> "
          f"{group.leader_region!r} (term {group.term}); "
          f"unavailable for {group.unavailability_us}us; "
          f"commit floor={group.min_next_commit_ts}")

    # -- recovery ------------------------------------------------------------
    clock.advance(2_000_000)
    group.heal()
    clock.advance(50_000)  # re-shipped entries land at the pair RTTs
    group.catch_up()
    assert database.lookup("cities/rio").data["pop"] == 6_748
    lag = group.replication_lag_us()
    print(f"healed: every replica caught up (lag={lag}us), "
          f"doc present under the new leader")


if __name__ == "__main__":
    main()
