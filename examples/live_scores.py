#!/usr/bin/env python3
"""Live sports scores: one writer, many real-time listeners.

The paper's fan-out scenario (section V-B1): "end users running an
application that displays sporting-event scores receive a query update due
to a team scoring" — a single document write broadcast to every connected
device, with consistent snapshots on each.

Run:  python examples/live_scores.py
"""

from repro import FirestoreService, set_op, update_op
from repro.client import MobileClient


def main() -> None:
    service = FirestoreService(region="nam5")
    db = service.create_database("sports-app")

    db.commit(
        [
            set_op("games/finals", {"home": "Sharks", "away": "Owls",
                                    "homeScore": 0, "awayScore": 0, "live": True}),
            set_op("games/friendly", {"home": "Cats", "away": "Dogs",
                                      "homeScore": 0, "awayScore": 0, "live": False}),
        ]
    )

    # A small crowd of fan devices, each with a live-games listener.
    fans = [MobileClient(db) for _ in range(5)]
    received: dict[int, list] = {i: [] for i in range(len(fans))}
    for i, fan in enumerate(fans):
        fan.on_snapshot(
            fan.query("games").where("live", "==", True),
            received[i].append,
        )

    def broadcast(description: str) -> None:
        service.clock.advance(100_000)
        db.pump_realtime()
        views = [received[i][-1] for i in range(len(fans))]
        scores = {
            doc.path.id: f"{doc.data['homeScore']}-{doc.data['awayScore']}"
            for doc in views[0].documents
        }
        agree = all(
            [d.data for d in view.documents] == [d.data for d in views[0].documents]
            for view in views
        )
        print(f"{description}: {scores}  "
              f"(all {len(fans)} fans consistent: {agree})")

    print(f"{len(fans)} fans connected, {db.realtime.active_queries} active queries")
    broadcast("kickoff")

    db.commit([update_op("games/finals", {"homeScore": 1})])
    broadcast("Sharks score")

    db.commit([update_op("games/finals", {"awayScore": 1})])
    db.commit([update_op("games/finals", {"awayScore": 2})])
    broadcast("Owls rally (two writes, one consistent snapshot)")

    # the friendly goes live: it *enters* every fan's result set
    db.commit([update_op("games/friendly", {"live": True})])
    broadcast("friendly goes live")

    # a fan's device loses connectivity mid-game
    offline_fan = fans[0]
    offline_fan.disconnect()
    db.commit([update_op("games/finals", {"homeScore": 2})])
    service.clock.advance(100_000)
    db.pump_realtime()
    stale = received[0][-1].documents[0].data["homeScore"]
    live = received[1][-1].documents[0].data["homeScore"]
    print(f"offline fan sees stale score {stale}, online fans see {live}")

    offline_fan.connect()
    service.clock.advance(100_000)
    db.pump_realtime()
    caught_up = received[0][-1].documents[0].data["homeScore"]
    print(f"after reconnect the offline fan caught up: {caught_up}")


if __name__ == "__main__":
    main()
