#!/usr/bin/env python3
"""Quickstart: create a database, write documents, query, listen.

Mirrors the first steps of the Firestore Web Codelab (paper section III):
a serverless database is initialized with one call, documents are
schemaless, every field is automatically indexed, and real-time queries
push updates to the application.

Run:  python examples/quickstart.py
"""

from repro import FirestoreService, set_op


def main() -> None:
    # A region's Firestore service; creating a database allocates only a
    # directory in a shared Spanner database — truly serverless.
    service = FirestoreService(region="nam5", multi_region=True)
    db = service.create_database("quickstart-app")

    # Schemaless documents in hierarchically-nested collections.
    db.commit(
        [
            set_op(
                "restaurants/one",
                {
                    "name": "Burger Palace",
                    "city": "SF",
                    "type": "BBQ",
                    "avgRating": 4.5,
                    "numRatings": 10,
                },
            ),
            set_op(
                "restaurants/two",
                {"name": "Noodle Hut", "city": "SF", "type": "Noodles", "avgRating": 4.8},
            ),
        ]
    )

    # Point reads are strongly consistent.
    snapshot = db.lookup("restaurants/one")
    print(f"lookup: {snapshot.path} -> {snapshot.data}")

    # Every field got automatic ascending+descending indexes, so
    # single-field queries just work — no schema, no index management.
    cheap_eats = db.run_query(db.query("restaurants").where("city", "==", "SF"))
    print("SF restaurants:", [d.data["name"] for d in cheap_eats.documents])

    # Filter + order on different fields needs a composite index; the
    # error tells the developer exactly which one (paper section IV-D3),
    # and creating it backfills existing data automatically.
    db.create_index("restaurants", [("city", "asc"), ("avgRating", "desc")])
    best = db.run_query(
        db.query("restaurants").where("city", "==", "SF").order_by("avgRating", "desc")
    )
    print("SF by rating:", [(d.path.id, d.data["avgRating"]) for d in best.documents])

    # Real-time query: the callback receives consistent incremental
    # snapshots as the database changes.
    def on_snapshot(delta):
        names = [d.data["name"] for d in delta.documents]
        print(f"  snapshot@{delta.read_ts}: {names} "
              f"(+{len(delta.added)} ~{len(delta.modified)} -{len(delta.removed)})")

    connection = db.connect()
    connection.listen(db.query("restaurants").where("city", "==", "SF"), on_snapshot)

    print("live updates:")
    db.commit([set_op("restaurants/three", {"name": "Taqueria", "city": "SF", "avgRating": 4.2})])
    service.clock.advance(100_000)
    db.pump_realtime()  # deliver the consistent snapshot

    # Transactions: read-modify-write with automatic retry.
    def add_rating(tx):
        snap = tx.get("restaurants/one")
        count = snap.data["numRatings"]
        new_avg = (snap.data["avgRating"] * count + 5.0) / (count + 1)
        tx.create("restaurants/one/ratings/r1", {"rating": 5, "userId": "alice"})
        tx.update("restaurants/one", {"avgRating": new_avg, "numRatings": count + 1})

    db.run_transaction(add_rating)
    print("after transaction:", db.lookup("restaurants/one").data)


if __name__ == "__main__":
    main()
