#!/usr/bin/env python3
"""A note-taking app that works on the subway: disconnected operation.

Exercises the paper's section IV-E machinery end to end: the local cache,
immediate local acknowledgement of mutations, queries served offline,
persistence across app restarts, reconnection reconciliation, and
last-update-wins conflict resolution between two devices.

Run:  python examples/offline_notes.py
"""

from repro import FirestoreService
from repro.client import InMemoryPersistence, MobileClient
from repro.core.values import SERVER_TIMESTAMP


def show(view, label: str) -> None:
    flags = []
    if view.from_cache:
        flags.append("from-cache")
    if view.has_pending_writes:
        flags.append("pending-writes")
    note_list = ", ".join(d.data["title"] for d in view.documents) or "(none)"
    print(f"{label}: [{note_list}] {' '.join(flags)}")


def main() -> None:
    service = FirestoreService(region="nam5")
    db = service.create_database("notes-app")
    disk = InMemoryPersistence()  # the phone's storage

    phone = MobileClient(db, persistence=disk)
    views = []
    phone.on_snapshot(
        phone.query("notes").order_by("createdAt"), views.append
    )

    print("== online: notes sync immediately ==")
    phone.set("notes/groceries", {"title": "Groceries", "body": "milk, eggs",
                                  "createdAt": SERVER_TIMESTAMP})
    show(views[-1], "phone view")
    print(f"server has it too: {db.lookup('notes/groceries').exists}")

    print("\n== the subway: offline edits are acknowledged locally ==")
    service.clock.advance_seconds(60)  # time passes on the ride
    phone.disconnect()
    phone.set("notes/ideas", {"title": "Ideas", "body": "firestore clone?",
                              "createdAt": SERVER_TIMESTAMP})
    phone.update("notes/groceries", {"body": "milk, eggs, coffee"})
    show(views[-1], "phone view")
    print(f"pending writes queued: {phone.pending_writes}; "
          f"server still unaware: {not db.lookup('notes/ideas').exists}")

    print("\n== the app restarts underground: persistence warms the cache ==")
    phone.persist()
    restarted = MobileClient(db, persistence=disk, start_online=False)
    offline_view = restarted.get_query(restarted.query("notes").order_by("createdAt"))
    show(offline_view, "restarted phone (still offline)")
    print(f"restored pending writes: {restarted.pending_writes}")

    print("\n== meanwhile, the user's laptop edits the same note ==")
    laptop = MobileClient(db)
    laptop.update("notes/groceries", {"body": "EDITED ON LAPTOP"})

    print("\n== back above ground: reconnect, flush, reconcile ==")
    restarted.connect()
    service.clock.advance(100_000)
    db.pump_realtime()
    groceries = db.lookup("notes/groceries").data
    print(f"server now has {db.document_count()} notes")
    print(f"groceries body (last update wins): {groceries['body']!r}")
    assert db.lookup("notes/ideas").exists

    print("\n== laptop sees the phone's offline work via its listener ==")
    laptop_views = []
    laptop.on_snapshot(laptop.query("notes").order_by("createdAt"), laptop_views.append)
    show(laptop_views[-1], "laptop view")


if __name__ == "__main__":
    main()
