#!/usr/bin/env python3
"""The Firestore Web Codelab app: restaurant recommendations with reviews.

The paper's running example (sections III and V-D): "a functional
serverless restaurant recommendation web application, which lets users see
a list of restaurants with filtering and sorting, and view and add
reviews". This version is end-to-end: security rules from Figure 3,
third-party clients authenticated as end users, composite indexes for the
filtered+sorted views, a transaction that maintains the rating aggregates,
and a real-time listener driving the "UI".

Run:  python examples/restaurant_reviews.py
"""

from repro import AuthContext, FirestoreService, set_op
from repro.client import MobileClient

RULES = """
service cloud.firestore {
  match /databases/{database}/documents {
    match /restaurants/{restaurantId} {
      allow read: if true;
      // the codelab lets signed-in users update the rating aggregates
      allow update: if request.auth != null;
      match /ratings/{ratingId} {
        allow read: if request.auth != null;
        allow create: if request.auth != null
                      && request.resource.data.userId == request.auth.uid;
      }
    }
  }
}
"""

SAMPLE_RESTAURANTS = [
    ("burger-palace", {"name": "Burger Palace", "city": "SF", "type": "BBQ",
                       "avgRating": 0.0, "numRatings": 0}),
    ("noodle-hut", {"name": "Noodle Hut", "city": "SF", "type": "Noodles",
                    "avgRating": 0.0, "numRatings": 0}),
    ("ny-grill", {"name": "NY Grill", "city": "New York", "type": "BBQ",
                  "avgRating": 0.0, "numRatings": 0}),
]


def add_review(db, restaurant_id: str, user: AuthContext, rating: int, text: str) -> None:
    """The section IV-D2 write: one transaction inserts the rating and
    updates the parent's aggregates (executed with the user's auth, so
    the Figure 3 rules authorize the create)."""

    def txn(tx):
        snap = tx.get(f"restaurants/{restaurant_id}")
        count = snap.data["numRatings"]
        new_avg = (snap.data["avgRating"] * count + rating) / (count + 1)
        tx.create(
            f"restaurants/{restaurant_id}/ratings/{user.uid}-{count}",
            {"rating": rating, "text": text, "userId": user.uid},
        )
        tx.update(
            f"restaurants/{restaurant_id}",
            {"avgRating": new_avg, "numRatings": count + 1},
        )

    from repro.core.transaction import run_transaction

    run_transaction(db.backend, txn, auth=user)


def main() -> None:
    service = FirestoreService(region="nam5")
    db = service.create_database("friendly-eats")
    db.set_rules(RULES)

    # The developer seeds data with the (privileged) Server SDK.
    db.commit([set_op(f"restaurants/{rid}", data) for rid, data in SAMPLE_RESTAURANTS])

    # Composite index for the filtered + sorted view the UI needs.
    db.create_index("restaurants", [("city", "asc"), ("avgRating", "desc")])

    # An end-user device: the Mobile/Web SDK authenticated as "alice".
    alice = MobileClient(db, auth=AuthContext(uid="alice"))

    # The main UI is a real-time query (onSnapshot in the Codelab).
    def render(view):
        print("  -- top SF restaurants --")
        for doc in view.documents:
            data = doc.data
            print(f"  {data['name']:15s} {data['avgRating']:.1f}* "
                  f"({data['numRatings']} ratings)")

    alice.on_snapshot(
        alice.query("restaurants")
        .where("city", "==", "SF")
        .order_by("avgRating", "desc"),
        render,
    )

    print("alice adds reviews:")
    add_review(db, "burger-palace", alice.auth, 5, "Best burgers in town!")
    add_review(db, "noodle-hut", alice.auth, 4, "Solid noodles.")
    service.clock.advance(100_000)
    db.pump_realtime()

    print("bob reviews too:")
    bob = AuthContext(uid="bob")
    add_review(db, "burger-palace", bob, 4, "Pretty good")
    service.clock.advance(100_000)
    db.pump_realtime()

    # Security rules stop spoofed reviews cold.
    from repro.errors import PermissionDenied

    try:
        db.commit(
            [set_op("restaurants/burger-palace/ratings/spoof",
                    {"rating": 1, "userId": "bob"})],
            auth=alice.auth,
        )
    except PermissionDenied:
        print("spoofed review rejected by security rules (as in Fig. 3)")

    reviews = db.run_query(
        db.query("restaurants/burger-palace/ratings"), auth=alice.auth
    )
    print(f"burger-palace has {len(reviews.documents)} reviews:")
    for doc in reviews.documents:
        print(f"  {doc.data['userId']}: {doc.data['rating']}* {doc.data['text']}")


if __name__ == "__main__":
    main()
