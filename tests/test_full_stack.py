"""Whole-system integration: multiple tenants, rules, triggers, realtime,
clients, index lifecycle, and maintenance — all running together against
the shared simulated Spanner."""

import pytest

from repro import AuthContext, FirestoreService, set_op
from repro.client import MobileClient


@pytest.fixture
def service():
    return FirestoreService()


def pump(service, db, times=2):
    for _ in range(times):
        service.clock.advance(100_000)
        db.pump_realtime()


def test_restaurant_app_end_to_end(service):
    """The paper's running example, every subsystem engaged at once."""
    db = service.create_database("friendly-eats")
    db.set_rules(
        """
        service cloud.firestore {
          match /databases/{d}/documents {
            match /restaurants/{r} {
              allow read: if true;
              allow update: if request.auth != null;
              match /ratings/{id} {
                allow read: if request.auth != null;
                allow create: if request.auth != null
                              && request.resource.data.userId == request.auth.uid;
              }
            }
          }
        }
        """
    )
    db.commit([set_op("restaurants/bp", {"name": "BP", "city": "SF",
                                         "avgRating": 0.0, "numRatings": 0})])
    db.create_index("restaurants", [("city", "asc"), ("avgRating", "desc")])

    # a trigger keeps a counters document up to date
    def on_rating(event):
        if event.is_create:
            db.commit([set_op("counters/ratings",
                              {"total": event.commit_ts % 1000})])

    db.register_trigger("ratings", on_rating)

    # two devices watching the ranked list
    alice = MobileClient(db, auth=AuthContext(uid="alice"))
    bob = MobileClient(db, auth=AuthContext(uid="bob"))
    alice_views, bob_views = [], []
    ranked = (
        alice.query("restaurants").where("city", "==", "SF")
        .order_by("avgRating", "desc")
    )
    alice.on_snapshot(ranked, alice_views.append)
    bob.on_snapshot(
        bob.query("restaurants").where("city", "==", "SF")
        .order_by("avgRating", "desc"),
        bob_views.append,
    )

    # alice adds a rating through a client transaction
    from repro.core.transaction import run_transaction

    def add_rating(tx):
        snap = tx.get("restaurants/bp")
        count = snap.data["numRatings"]
        tx.create("restaurants/bp/ratings/a1",
                  {"rating": 5, "userId": "alice"})
        tx.update("restaurants/bp",
                  {"avgRating": 5.0, "numRatings": count + 1})

    run_transaction(db.backend, add_rating, auth=alice.auth)
    pump(service, db)

    assert alice_views[-1].documents[0].data["avgRating"] == 5.0
    assert bob_views[-1].documents[0].data["avgRating"] == 5.0
    assert db.deliver_triggers() == 1
    assert db.lookup("counters/ratings").exists

    # bob goes offline, keeps reading from cache, reconnects
    bob.disconnect()
    snapshot = bob.get("restaurants/bp")
    assert snapshot.from_cache and snapshot.data["avgRating"] == 5.0
    bob.connect()


def test_many_tenants_share_infrastructure(service):
    """Multi-tenancy: concurrent tenants with different workloads never
    observe each other's data, indexes, rules, or triggers."""
    tenants = []
    for i in range(6):
        db = service.create_database(f"tenant-{i}")
        for j in range(10):
            db.commit([set_op(f"items/i{j}", {"tenant": i, "n": j})])
        tenants.append(db)

    # tenant 0 gets an exemption; tenant 1 a composite index
    tenants[0].exempt_field("items", "n")
    tenants[1].create_index("items", [("tenant", "asc"), ("n", "desc")])

    for i, db in enumerate(tenants):
        result = db.run_query(db.query("items").where("tenant", "==", i))
        assert len(result.documents) == 10
    from repro.errors import FailedPrecondition

    with pytest.raises(FailedPrecondition):
        tenants[0].run_query(tenants[0].query("items").where("n", "==", 1))
    # the same query still works for every other tenant
    assert len(tenants[2].run_query(
        tenants[2].query("items").where("n", "==", 1)).documents) == 1

    # maintenance (splits + GC) across the shared spanner changes nothing
    service.run_maintenance()
    for i, db in enumerate(tenants):
        assert db.document_count() == 10


def test_gc_does_not_disturb_live_reads(service):
    db = service.create_database("gc-app")
    spanner = db.layout.spanner
    spanner.gc_horizon_us = 1000
    for v in range(20):
        db.commit([set_op("docs/hot", {"v": v})])
    service.clock.advance(10_000_000)
    dropped = spanner.gc()
    assert dropped > 0
    assert db.lookup("docs/hot").data["v"] == 19
    result = db.run_query(db.query("docs").where("v", "==", 19))
    assert len(result.documents) == 1


def test_realtime_across_tenant_boundary(service):
    """A listener on one tenant never sees another tenant's writes even
    though both share the same clock and maintenance machinery."""
    a = service.create_database("rt-a")
    b = service.create_database("rt-b")
    a_snaps, b_snaps = [], []
    a.connect().listen(a.query("events"), a_snaps.append)
    b.connect().listen(b.query("events"), b_snaps.append)
    a.commit([set_op("events/e1", {"from": "a"})])
    service.clock.advance(100_000)
    a.pump_realtime()
    b.pump_realtime()
    assert len(a_snaps) == 2
    assert len(b_snaps) == 1  # initial only; no cross-tenant leakage
