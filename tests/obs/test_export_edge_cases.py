"""Edge cases for the trace/metrics exporters (repro.obs.export).

The happy paths live in test_export.py; this file pins the corners a
refactor is most likely to break: empty inputs, zero-duration spans,
and the label-escaping grammar the text report depends on to stay
one-line-per-metric and parseable.
"""

import json

from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (
    _escape_label,
    chrome_trace_json,
    render_text_report,
    to_chrome_trace,
)
from repro.sim.clock import SimClock
from repro.sim.rand import SimRandom


def _tracer(seed: int = 3) -> tuple[SimClock, Tracer]:
    clock = SimClock()
    return clock, Tracer(clock, SimRandom(seed).fork("tracer"))


def test_empty_tracer_exports_cleanly():
    _, tracer = _tracer()
    trace = to_chrome_trace(tracer)
    assert trace["traceEvents"] == []
    # the JSON is still canonical and loadable
    assert json.loads(chrome_trace_json(tracer)) == {
        "displayTimeUnit": "ms",
        "traceEvents": [],
    }


def test_empty_tracer_text_report_says_none_recorded():
    _, tracer = _tracer()
    report = render_text_report(tracer=tracer, title="empty run")
    assert "=== empty run ===" in report
    assert "-- spans: none recorded --" in report


def test_empty_metrics_registry_omits_metrics_section():
    registry = MetricsRegistry()
    report = render_text_report(metrics=registry)
    assert "-- metrics" not in report
    # a single counter flips the section on
    registry.counter("requests").inc()
    report = render_text_report(metrics=registry)
    assert "-- metrics (1) --" in report
    assert "requests  value=1" in report


def test_zero_duration_span_exports_with_zero_dur():
    _, tracer = _tracer()
    with tracer.span("instant.op", component="core"):
        pass  # no clock advance: start == end
    events = to_chrome_trace(tracer)["traceEvents"]
    complete = [e for e in events if e["ph"] == "X"]
    assert len(complete) == 1
    assert complete[0]["dur"] == 0
    assert complete[0]["ts"] == 0


def test_zero_duration_spans_keep_deterministic_order():
    def build():
        clock, tracer = _tracer(seed=9)
        for name in ("a.op", "b.op", "c.op"):
            with tracer.span(name, component="core"):
                pass
        clock.advance(10)
        with tracer.span("d.op", component="core"):
            pass
        return chrome_trace_json(tracer)

    assert build() == build()


def test_escape_label_covers_every_special_character():
    assert _escape_label("plain") == "plain"
    assert _escape_label("a\\b") == "a\\\\b"
    assert _escape_label("a\nb") == "a\\nb"
    assert _escape_label("a{b}c") == "a\\{b\\}c"
    assert _escape_label("k=v,w") == "k\\=v\\,w"
    # escaping composes: backslash first, so escapes are unambiguous
    assert _escape_label("\\{") == "\\\\\\{"


def test_report_labels_stay_one_line_under_hostile_values():
    registry = MetricsRegistry()
    registry.counter("ops", database_id="db\n{1},a=b").inc(5)
    report = render_text_report(metrics=registry)
    metric_lines = [line for line in report.splitlines() if "ops{" in line]
    assert len(metric_lines) == 1
    line = metric_lines[0]
    assert "\\n" in line and "\\{" in line and "\\=" in line
    assert line.endswith("value=5")
