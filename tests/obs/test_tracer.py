import pytest

from repro.obs import NULL_SPAN, NULL_TRACER, SpanContext, Tracer
from repro.sim.clock import SimClock
from repro.sim.rand import SimRandom


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def tracer(clock):
    return Tracer(clock, SimRandom(42).fork("tracer"))


def test_span_ids_are_deterministic(clock):
    def ids():
        tracer = Tracer(clock, SimRandom(42).fork("tracer"))
        a = tracer.start_span("a")
        b = tracer.start_span("b", parent=a)
        a.end()
        b.end()
        return [(s.trace_id, s.span_id, s.parent_id) for s in tracer.finished]

    assert ids() == ids()


def test_different_seeds_produce_different_ids(clock):
    first = Tracer(clock, SimRandom(1).fork("tracer")).start_span("a")
    second = Tracer(clock, SimRandom(2).fork("tracer")).start_span("a")
    assert first.trace_id != second.trace_id


def test_span_timestamps_come_from_sim_clock(clock, tracer):
    clock.advance(100)
    span = tracer.start_span("op")
    clock.advance(250)
    span.end()
    assert span.start_us == 100
    assert span.end_us == 350
    assert span.duration_us == 250


def test_context_manager_nesting(clock, tracer):
    with tracer.span("outer") as outer:
        assert tracer.current_context() == outer.context
        with tracer.span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
    assert tracer.current_context() is None
    assert [s.name for s in tracer.finished] == ["inner", "outer"]


def test_explicit_parent_context_propagation(tracer):
    root = tracer.start_span("rpc")
    ctx = root.context
    assert isinstance(ctx, SpanContext)
    # the serving sim hands the context through the Rpc envelope; a span
    # started later (no stack nesting) still lands in the same trace
    child = tracer.start_span("pool.exec", parent=ctx)
    assert child.trace_id == root.trace_id
    assert child.parent_id == root.span_id
    child.end()
    root.end()
    assert tracer.children_of(root) == [child]


def test_start_span_without_parent_roots_new_trace(tracer):
    a = tracer.start_span("a")
    b = tracer.start_span("b")
    assert a.trace_id != b.trace_id
    assert a.parent_id is None and b.parent_id is None


def test_events_and_attributes(clock, tracer):
    with tracer.span("op", attributes={"database_id": "db1"}) as span:
        clock.advance(10)
        span.add_event("lock-acquired", {"rows": 3})
        span.set_attribute("step", 4)
    assert span.attributes == {"database_id": "db1", "step": 4}
    assert span.events == [(10, "lock-acquired", {"rows": 3})]


def test_exception_marks_span_as_error(tracer):
    with pytest.raises(ValueError):
        with tracer.span("op") as span:
            raise ValueError("boom")
    assert span.attributes["error"] == "ValueError"
    assert span.end_us is not None
    assert tracer.current_context() is None


def test_end_is_idempotent(clock, tracer):
    span = tracer.start_span("op")
    span.end()
    first_end = span.end_us
    clock.advance(50)
    span.end()
    assert span.end_us == first_end
    assert tracer.span_count == 1


def test_component_defaults_to_name_prefix(tracer):
    assert tracer.start_span("spanner.2pc").component == "spanner"
    assert tracer.start_span("exec", component="pool").component == "pool"


def test_max_spans_cap_counts_drops(clock):
    tracer = Tracer(clock, max_spans=2)
    for i in range(5):
        tracer.start_span(f"s{i}").end()
    assert tracer.span_count == 2
    assert tracer.dropped == 3
    tracer.clear()
    assert tracer.span_count == 0
    assert tracer.dropped == 0


def test_traces_grouping_and_find(tracer):
    with tracer.span("root"):
        tracer.start_span("leaf").end()
    tracer.start_span("leaf").end()
    assert len(tracer.traces()) == 2
    assert len(tracer.find("leaf")) == 2


def test_null_tracer_is_falsy_and_free(clock):
    assert not NULL_TRACER
    assert Tracer(clock)  # a real tracer is truthy
    span = NULL_TRACER.start_span("anything", attributes={"k": "v"})
    assert span is NULL_SPAN
    assert not span
    # every recording call is a no-op that keeps chaining
    span.set_attribute("a", 1).set_attributes({"b": 2}).add_event("e").end()
    with NULL_TRACER.span("ctx") as s:
        assert s is NULL_SPAN
        assert s.context is None
    assert NULL_TRACER.current_context() is None
    assert NULL_TRACER.span_count == 0
    assert NULL_TRACER.traces() == {}
    assert NULL_TRACER.find("anything") == []
