"""SLO engine arithmetic: windows, burn rates, multi-window alerts.

Everything here is hand-built event streams with known ratios, so each
assertion pins the exact SRE-workbook arithmetic the verdict blocks in
BENCH_*.json rely on.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import BUCKET_US, DEFAULT_SLOS, SloEngine, SloSpec

SECOND = BUCKET_US  # 1 simulated second per bucket
WINDOW = 60 * SECOND


def _availability_engine(target=0.999, **kwargs):
    spec = SloSpec(
        name="request.availability",
        kind="availability",
        target=target,
        window_us=WINDOW,
        stream="request",
        **kwargs,
    )
    return SloEngine([spec]), spec


def _one(engine, now_us):
    (verdict,) = engine.evaluate(now_us)
    return verdict


def test_spec_validation():
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="throughput", target=0.9)
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="availability", target=1.5)
    with pytest.raises(ValueError):
        SloSpec(name="x", kind="availability", target=0.0)
    # fairness targets are share factors, not ratios in (0, 1]
    SloSpec(name="x", kind="fairness", target=1.5)
    # stream defaults to the spec name; short window defaults to 1/12
    spec = SloSpec(name="s", kind="availability", target=0.9, window_us=WINDOW)
    assert spec.stream == "s"
    assert spec.short_window_us == WINDOW // 12


def test_duplicate_spec_names_rejected():
    spec = SloSpec(name="dup", kind="availability", target=0.9)
    with pytest.raises(ValueError):
        SloEngine([spec, spec])


def test_exact_burn_rate_arithmetic():
    """999 good + 1 bad at a 99.9% target burns the budget at exactly 1x."""
    engine, _ = _availability_engine(target=0.999)
    for i in range(999):
        engine.record("request", (i % 50) * SECOND, True)
    engine.record("request", 10 * SECOND, False)
    verdict = _one(engine, WINDOW - 1)
    assert verdict.good == 999 and verdict.bad == 1
    assert verdict.observed == pytest.approx(0.999)
    assert verdict.error_rate == pytest.approx(0.001)
    assert verdict.burn_rate == pytest.approx(1.0)
    assert verdict.ok  # observed >= target, boundary inclusive


def test_window_excludes_old_buckets():
    engine, _ = _availability_engine()
    engine.record("request", 0, False)  # bucket 0
    engine.record("request", 61 * SECOND, True)  # bucket 61
    # at t=61s the 60s window spans buckets [2..61]: the failure aged out
    verdict = _one(engine, 61 * SECOND + SECOND - 1)
    assert verdict.good == 1 and verdict.bad == 0
    assert verdict.ok


def test_empty_window_is_vacuously_ok():
    engine, _ = _availability_engine()
    verdict = _one(engine, WINDOW)
    assert verdict.ok
    assert verdict.observed == 1.0
    assert verdict.burn_rate == 0.0


def test_multi_window_alert_requires_both_windows_burning():
    """An old spike burns the long window but not the short one."""
    engine, spec = _availability_engine(target=0.999)
    now = WINDOW - 1  # short window = last 5 sim-seconds
    # heavy failures early in the window: long burn >> 14.4
    for i in range(100):
        engine.record("request", 1 * SECOND, False)
        engine.record("request", 1 * SECOND, True)
    # recent traffic is clean
    for i in range(100):
        engine.record("request", 58 * SECOND, True)
    verdict = _one(engine, now)
    assert verdict.burn_rate >= spec.burn_alert
    assert verdict.burn_rate_short == 0.0
    assert not verdict.alerting  # spike is old news
    # ... until failures reach the short window too
    for i in range(10):
        engine.record("request", 59 * SECOND, False)
    verdict = _one(engine, now)
    assert verdict.burn_rate_short >= spec.burn_alert
    assert verdict.alerting


def test_perfect_target_burns_infinitely_on_any_failure():
    engine, _ = _availability_engine(target=1.0)
    engine.record("request", 0, True)
    assert _one(engine, WINDOW - 1).burn_rate == 0.0
    engine.record("request", 0, False)
    verdict = _one(engine, WINDOW - 1)
    assert verdict.burn_rate == float("inf")
    assert not verdict.ok


def test_latency_samples_judged_against_threshold():
    spec = SloSpec(
        name="request.p99_latency",
        kind="latency",
        target=0.99,
        threshold_us=500_000,
        window_us=WINDOW,
        stream="request.latency",
    )
    engine = SloEngine([spec])
    for i in range(99):
        engine.record_latency("request.latency", i * SECOND // 2, 400_000)
    engine.record_latency("request.latency", 5 * SECOND, 500_001)
    verdict = _one(engine, WINDOW - 1)
    assert verdict.good == 99 and verdict.bad == 1
    assert verdict.ok  # exactly at the 99% target
    engine.record_latency("request.latency", 6 * SECOND, 900_000)
    assert not _one(engine, WINDOW - 1).ok


def test_latency_sample_without_consumer_counts_as_good():
    engine, _ = _availability_engine()
    engine.record_latency("unclaimed.stream", 0, 10**9)
    assert engine._streams["unclaimed.stream"][0].good == 1


def test_fairness_share_factor():
    spec = SloSpec(
        name="tenant.fairness",
        kind="fairness",
        target=1.5,
        window_us=WINDOW,
        stream="tenant.cpu",
    )
    engine = SloEngine([spec])
    # one tenant alone is trivially fair
    engine.record_share("tenant.cpu", 0, "solo", 1000)
    assert _one(engine, WINDOW - 1).ok
    # 900/100 split: hottest share is 1.8x the fair share of 500
    engine = SloEngine([spec])
    engine.record_share("tenant.cpu", 0, "hog", 900)
    engine.record_share("tenant.cpu", 0, "bystander", 100)
    verdict = _one(engine, WINDOW - 1)
    assert verdict.observed == pytest.approx(1.8)
    assert not verdict.ok
    assert verdict.alerting
    # an even split is 1.0x
    engine = SloEngine([spec])
    engine.record_share("tenant.cpu", 0, "a", 500)
    engine.record_share("tenant.cpu", 0, "b", 500)
    assert _one(engine, WINDOW - 1).observed == pytest.approx(1.0)


def test_convergence_tolerates_no_failures():
    spec = SloSpec(
        name="chaos.convergence",
        kind="convergence",
        target=1.0,
        window_us=WINDOW,
        stream="converged",
    )
    engine = SloEngine([spec])
    for i in range(100):
        engine.record("converged", i * SECOND // 2, True)
    assert _one(engine, WINDOW - 1).ok
    engine.record("converged", 10 * SECOND, False)
    verdict = _one(engine, WINDOW - 1)
    assert not verdict.ok  # 100/101 good would pass availability, not this


def test_verdict_block_is_name_sorted_and_replay_stable():
    def build():
        engine = SloEngine(DEFAULT_SLOS(window_us=WINDOW))
        for i in range(50):
            engine.record("request", i * SECOND, i % 7 != 0)
            engine.record_latency("request.latency", i * SECOND, 1_000 * i)
        engine.record_share("tenant.cpu", 0, "a", 700)
        engine.record_share("tenant.cpu", 0, "b", 300)
        return engine.verdict_block(WINDOW - 1)

    first, second = build(), build()
    assert first == second
    assert list(first) == sorted(first)
    for verdict in first.values():
        assert set(verdict) == {
            "name", "kind", "target", "ok", "observed", "error_rate",
            "burn_rate", "burn_rate_short", "alerting", "window_us",
            "good", "bad",
        }


def test_evaluate_surfaces_slo_metrics():
    registry = MetricsRegistry()
    spec = SloSpec(
        name="request.availability",
        kind="availability",
        target=0.5,
        window_us=WINDOW,
        stream="request",
        burn_alert=1.0,
        short_window_us=WINDOW,
    )
    engine = SloEngine([spec], metrics=registry)
    engine.record("request", 0, False)
    engine.evaluate(WINDOW - 1)
    by_name = {
        (m.name, m.labels): m for m in registry.collect()
    }
    label = (("slo", "request.availability"),)
    assert by_name[("slo.ok", label)].value == 0.0
    assert by_name[("slo.error_rate", label)].value == 1.0
    assert by_name[("slo.alerts", label)].value == 1
