"""Critical-path attribution: adversarial trees, tail sampling, acceptance.

The extraction invariant under attack throughout: the merged segments of
a request tile ``[root.start_us, root.end_us)`` exactly — no overlap, no
holes — whatever the span tree's shape (retry loops, hedged parallel
children, spans leaking past RPC boundaries, zero-duration probes,
orphaned roots). The acceptance tests then run the two traced chaos
scenarios end to end and pin the paper-shaped outcome: >= 99% coverage
and a blame table that names the right causes by name.
"""

import json

import pytest

from repro.obs.critpath import (
    COVERAGE_TARGET,
    UNATTRIBUTED,
    analyze,
    extract_critical_path,
    folded_paths,
    main,
    render_text,
    request_paths,
)
from repro.obs.sampling import TailSampler
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock
from repro.sim.rand import SimRandom


def _tracer(seed: int = 1) -> tuple[SimClock, Tracer]:
    clock = SimClock()
    return clock, Tracer(clock, SimRandom(seed).fork("tracer"))


def _assert_tiles(segments, lo: int, hi: int) -> None:
    """Segments must cover [lo, hi) exactly, in order, gap-free."""
    cursor = lo
    for segment in segments:
        assert segment.start_us == cursor, segments
        assert segment.end_us > segment.start_us, segments
        cursor = segment.end_us
    assert cursor == hi, segments


def _by_cause(segments) -> dict:
    out: dict = {}
    for segment in segments:
        out[segment.cause] = out.get(segment.cause, 0) + segment.us
    return out


# -- extraction: adversarial trees --------------------------------------------


def test_gap_classified_by_interval_wait_with_residual():
    clock, tracer = _tracer()
    root = tracer.start_span("chaos.op")
    child = tracer.start_span("backend.get", parent=root.context)
    clock.advance(40)
    child.end()
    root.wait("queue", start_us=40, end_us=90)
    clock.advance(60)
    root.end()  # [0, 100)
    segments = extract_critical_path(
        tracer.finished, tracer.waits, root
    )
    _assert_tiles(segments, 0, 100)
    assert _by_cause(segments) == {UNATTRIBUTED: 50, "queue": 50}
    # the wait interval [40, 90) is charged to queue; [90, 100) residual
    queue = [s for s in segments if s.cause == "queue"]
    assert [(s.start_us, s.end_us) for s in queue] == [(40, 90)]


def test_retry_loop_gaps_between_attempts_are_backoff():
    clock, tracer = _tracer()
    root = tracer.start_span("chaos.op")
    for _ in range(3):
        attempt = tracer.start_span("cluster.rpc", parent=root.context)
        clock.advance(10)
        attempt.end()
        paused_from = clock.now_us
        clock.advance(20)  # backoff pause between attempts
        tracer.record_wait(
            root.context,
            "retry_backoff",
            start_us=paused_from,
            end_us=clock.now_us,
        )
    root.end()  # [0, 90): 3 x 10us attempts + 3 x 20us backoffs
    segments = extract_critical_path(tracer.finished, tracer.waits, root)
    _assert_tiles(segments, 0, 90)
    causes = _by_cause(segments)
    assert causes["retry_backoff"] == 60
    assert causes[UNATTRIBUTED] == 30  # the attempts themselves


def test_hedged_parallel_children_follow_last_finisher_clipped():
    clock, tracer = _tracer()
    root = tracer.start_span("chaos.op")
    clock.advance(10)
    primary = tracer.start_span("tablet.read", parent=root.context)
    clock.advance(30)
    hedge = tracer.start_span("tablet.read", parent=root.context)
    hedge.set_attribute("hedge", True)
    clock.advance(40)
    hedge.end()  # [40, 80) — the hedge wins
    root.end()  # [0, 80): first response completes the request
    clock.advance(20)
    primary.end()  # [10, 100) — straggler outlives the root
    segments = extract_critical_path(tracer.finished, tracer.waits, root)
    # nothing on the path may leak past the root's end
    _assert_tiles(segments, 0, 80)
    assert all(s.end_us <= 80 for s in segments)


def test_failover_mid_request_names_quorum_and_apply():
    clock, tracer = _tracer()
    root = tracer.start_span("chaos.op")
    root.wait("quorum_rtt", start_us=0, end_us=120, detail="leader dark")
    clock.advance(120)
    root.wait("replication_apply", start_us=120, end_us=150)
    clock.advance(30)
    clock.advance(5)
    root.end()  # [0, 155)
    segments = extract_critical_path(tracer.finished, tracer.waits, root)
    _assert_tiles(segments, 0, 155)
    assert _by_cause(segments) == {
        "quorum_rtt": 120,
        "replication_apply": 30,
        UNATTRIBUTED: 5,
    }
    assert segments[0].detail == "leader dark"


def test_child_leaking_past_rpc_boundary_is_clipped():
    clock, tracer = _tracer()
    root = tracer.start_span("frontend.rpc")
    clock.advance(50)
    child = tracer.start_span("backend.flush", parent=root.context)
    child.end(end_us=200)  # runs 100us past the parent
    root.end(end_us=100)
    segments = extract_critical_path(tracer.finished, tracer.waits, root)
    _assert_tiles(segments, 0, 100)


def test_zero_duration_children_vanish():
    clock, tracer = _tracer()
    root = tracer.start_span("backend.get")
    clock.advance(5)
    tracer.start_span("cache.probe", parent=root.context).end()
    clock.advance(5)
    root.end()
    segments = extract_critical_path(tracer.finished, tracer.waits, root)
    _assert_tiles(segments, 0, 10)
    assert [s.span_name for s in segments] == ["backend.get"]


def test_self_cause_attribute_claims_residual():
    clock, tracer = _tracer()
    root = tracer.start_span("pool.exec")
    root.set_attribute("self_cause", "service")
    clock.advance(25)
    root.end()
    (path,) = request_paths(tracer.finished, tracer.waits)
    assert path.decomposition == {"service": 25}
    assert path.unattributed_us == 0


def test_adjacent_same_cause_segments_merge():
    clock, tracer = _tracer()
    root = tracer.start_span("chaos.op")
    root.wait("queue", start_us=0, end_us=10)
    root.wait("queue", start_us=10, end_us=30)
    clock.advance(30)
    root.end()
    segments = extract_critical_path(tracer.finished, tracer.waits, root)
    assert [(s.start_us, s.end_us, s.cause) for s in segments] == [
        (0, 30, "queue")
    ]


def test_orphaned_span_becomes_its_own_request():
    clock, tracer = _tracer()
    abandoned = tracer.start_span("chaos.op")  # never ends
    rpc = tracer.start_span("cluster.rpc", parent=abandoned.context)
    clock.advance(15)
    rpc.end()
    paths = request_paths(tracer.finished, tracer.waits)
    assert [p.operation for p in paths] == ["cluster.rpc"]
    assert paths[0].elapsed_us == 15


def test_modeled_waits_price_on_top_of_elapsed():
    clock, tracer = _tracer()
    root = tracer.start_span(
        "chaos.op", attributes={"operation": "commit", "database_id": "db1"}
    )
    clock.advance(100)
    root.wait("rpc_network", duration_us=694)
    root.wait("commit_wait", duration_us=250)
    root.end()
    (path,) = request_paths(tracer.finished, tracer.waits)
    assert path.elapsed_us == 100
    assert path.modeled_us == 944
    assert path.total_us == 1044
    assert path.decomposition["rpc_network"] == 694
    assert path.decomposition["commit_wait"] == 250
    # modeled entries also show up in the folded stacks
    folded = folded_paths([path])
    assert "commit;chaos.op;rpc_network 694" in folded


def test_analyze_summary_deterministic_and_renders():
    def build():
        clock, tracer = _tracer(seed=6)
        for latency in (10, 20, 400):
            root = tracer.start_span(
                "chaos.op", attributes={"operation": "get"}
            )
            root.wait("queue", start_us=clock.now_us, end_us=clock.now_us + latency)
            clock.advance(latency)
            root.end()
        return tracer

    first = analyze(build())
    second = analyze(build())
    assert json.dumps(first, sort_keys=True) == json.dumps(
        second, sort_keys=True
    )
    assert first["coverage"]["ok"]
    assert first["coverage"]["ratio"] == 1.0
    assert first["operations"]["get"]["top_tail_causes"] == ["queue"]
    report = render_text(first)
    assert "coverage 100.00%" in report
    assert "queue" in report


def test_coverage_gate_fails_on_unattributed_tail():
    clock, tracer = _tracer()
    root = tracer.start_span("chaos.op")
    clock.advance(1000)  # no wait records, no self_cause: a tap hole
    root.end()
    summary = analyze(tracer)
    assert summary["coverage"]["ratio"] == 0.0
    assert not summary["coverage"]["ok"]
    assert summary["coverage"]["target"] == COVERAGE_TARGET


# -- tail sampler --------------------------------------------------------------


def test_tail_sampler_keeps_slowest_per_window():
    sampler = TailSampler(keep=2, window_us=1_000)
    for trace_id, total in (("t1", 10), ("t2", 500), ("t3", 90), ("t4", 300)):
        sampler.offer("get", "db1", trace_id, total, start_us=0)
    assert sampler.retained() == {"t2", "t4"}
    assert sampler.offered == 4
    assert sampler.retained_count() == 2


def test_tail_sampler_windows_and_keys_are_independent():
    sampler = TailSampler(keep=1, window_us=1_000)
    sampler.offer("get", "db1", "a", 10, start_us=0)
    sampler.offer("get", "db1", "b", 5, start_us=1_500)  # next window
    sampler.offer("commit", "db1", "c", 1, start_us=0)  # other operation
    assert sampler.retained() == {"a", "b", "c"}


def test_tail_sampler_ties_break_toward_smaller_trace_id():
    sampler = TailSampler(keep=1)
    assert sampler.offer("get", "db", "zz", 100)
    assert not sampler.offer("get", "db", "aa", 100) or True
    assert sampler.retained() == {"aa"}


def test_tail_sampler_prune_drops_non_retained_traces():
    clock, tracer = _tracer()
    slow = tracer.start_span("chaos.op")
    slow.wait("queue", start_us=0, end_us=500)
    clock.advance(500)
    slow.end()
    fast = tracer.start_span("chaos.op")
    clock.advance(10)
    fast.end()
    sampler = TailSampler(keep=1, window_us=10_000)
    sampler.offer("chaos.op", "", slow.trace_id, 500, start_us=0)
    sampler.offer("chaos.op", "", fast.trace_id, 10, start_us=500)
    dropped = sampler.prune(tracer)
    assert dropped == 1
    assert {span.trace_id for span in tracer.finished} == {slow.trace_id}
    assert {wait.trace_id for wait in tracer.waits} == {slow.trace_id}


def test_tail_sampler_validates_arguments():
    with pytest.raises(ValueError):
        TailSampler(keep=0)
    with pytest.raises(ValueError):
        TailSampler(window_us=0)


# -- acceptance: the traced chaos scenarios ------------------------------------


def test_overload_storm_blames_queue_and_retry_backoff():
    from repro.faults.chaos import run_chaos

    run = run_chaos("overload-storm", seed=7, mix="none", trace=True)
    summary = run.extra["critpath"]
    assert summary["coverage"]["ok"]
    assert summary["coverage"]["ratio"] >= COVERAGE_TARGET
    top = summary["operations"]["get"]["top_tail_causes"]
    assert "queue" in top
    assert "retry_backoff" in top


def test_failover_blames_quorum_and_replication_apply():
    from repro.faults.chaos import run_chaos

    run = run_chaos("failover", seed=5, mix="region-outage", trace=True)
    summary = run.extra["critpath"]
    assert summary["coverage"]["ok"]
    top = summary["operations"]["commit"]["top_tail_causes"]
    assert "quorum_rtt" in top
    assert "replication_apply" in top


def test_tracing_does_not_perturb_the_run():
    from repro.faults.chaos import run_chaos

    untraced = run_chaos("failover", seed=5, mix="region-outage")
    traced = run_chaos("failover", seed=5, mix="region-outage", trace=True)
    assert traced.attempted == untraced.attempted
    assert traced.succeeded == untraced.succeeded
    assert traced.latency_percentile(99) == untraced.latency_percentile(99)


def test_traced_failover_byte_identical_on_replay():
    from repro.analysis.replay import run_replay
    from repro.faults.chaos import run_chaos

    def once():
        run = run_chaos("failover", seed=5, mix="region-outage", trace=True)
        return {"history": run.histories, "extra": run.to_dict()}

    report = run_replay(once, runs=2)
    assert report.deterministic


def test_cli_writes_artifacts(tmp_path, capsys):
    status = main(
        ["--scenario", "failover", "--out", str(tmp_path), "--no-svg"]
    )
    assert status == 0
    out = capsys.readouterr().out
    assert "critical-path attribution" in out
    payload = json.loads((tmp_path / "CRITPATH_failover.json").read_text())
    assert payload["schema"] == "repro.critpath/1"
    assert payload["coverage"]["ok"]
