"""The acceptance-criterion trace: one commit's full span tree.

A sampled commit through the functional stack must produce the section
IV-D2/D4 tree — frontend RPC -> Backend seven-step write -> Spanner
locks + 2PC and Real-time Cache Prepare/Accept -> matcher -> listener
notification — and two same-seed runs must export byte-identical JSON.
"""

import pytest

from repro.core.firestore import FirestoreService
from repro.obs import MetricsRegistry, Tracer, trace_full_commit
from repro.obs.export import chrome_trace_json
from repro.sim.clock import SimClock
from repro.sim.rand import SimRandom


def traced_commit(seed: int = 11):
    clock = SimClock()
    tracer = Tracer(clock, SimRandom(seed).fork("tracer"))
    metrics = MetricsRegistry()
    service = FirestoreService(clock=clock, tracer=tracer, metrics=metrics)
    db = service.create_database("traced")
    delivered = trace_full_commit(db, "rooms/r1", {"topic": "obs"})
    return tracer, metrics, delivered


@pytest.fixture(scope="module")
def traced():
    return traced_commit()


def test_commit_yields_sampled_root(traced):
    tracer, _, delivered = traced
    roots = tracer.find("frontend.rpc")
    assert len(roots) == 1
    root = roots[0]
    assert root.parent_id is None
    assert root.attributes["database_id"] == "traced"
    assert root.attributes["operation"] == "commit"
    assert root.attributes["sampled"] is True
    # listener setup happens before sampling starts: its initial snapshot
    # spans live in their own traces, not under the sampled root
    initial = [s for s in tracer.find("listener.notify")
               if s.attributes.get("initial")]
    assert all(s.trace_id != root.trace_id for s in initial)
    # the listener really saw the write inside the trace window
    assert delivered and any(d.documents for d in delivered)


def test_span_tree_covers_every_layer(traced):
    tracer, _, _ = traced
    names = {s.name for s in tracer.finished}
    # Backend write protocol + Real-time Cache 2PC + Spanner
    assert {
        "frontend.rpc",
        "backend.commit",
        "backend.stage_writes",
        "rtc.prepare",
        "spanner.commit",
        "spanner.locks",
        "spanner.2pc",
        "rtc.accept",
        "matcher.match",
        "listener.notify",
    } <= names


def test_parent_child_relationships(traced):
    tracer, _, _ = traced
    root = tracer.find("frontend.rpc")[0]
    commit = next(
        s for s in tracer.find("backend.commit")
        if s.parent_id == root.span_id
    )
    commit_children = {s.name for s in tracer.children_of(commit)}
    assert {
        "backend.stage_writes", "rtc.prepare", "spanner.commit", "rtc.accept"
    } <= commit_children

    spanner_commit = next(
        s for s in tracer.find("spanner.commit")
        if s.parent_id == commit.span_id
    )
    assert {"spanner.locks", "spanner.2pc"} <= {
        s.name for s in tracer.children_of(spanner_commit)
    }

    # listener fan-out for the committed write is part of the same trace
    notify = [s for s in tracer.find("listener.notify")
              if s.trace_id == root.trace_id]
    assert notify and not notify[0].attributes.get("initial")


def test_metrics_fed_by_realtime_layer(traced):
    _, metrics, _ = traced
    assert metrics.total("rtc_prepares") >= 1
    accepts = metrics.get("rtc_accepts", outcome="committed")
    assert accepts is not None and accepts.value >= 1
    assert metrics.total("matcher_changes_forwarded") >= 1


def test_same_seed_exports_are_byte_identical():
    first = chrome_trace_json(traced_commit(seed=3)[0])
    second = chrome_trace_json(traced_commit(seed=3)[0])
    assert first == second
    assert chrome_trace_json(traced_commit(seed=4)[0]) != first


def test_untraced_service_records_nothing():
    service = FirestoreService(clock=SimClock())
    db = service.create_database("plain")
    delivered = trace_full_commit(db, "rooms/r1", {"topic": "obs"})
    # NULL_TRACER swallowed every span but the commit still worked
    assert service.tracer.span_count == 0
    assert delivered and any(d.documents for d in delivered)
