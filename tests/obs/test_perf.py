"""Sim-time profiler: ledger accounting, coverage, flamegraph folding.

The profiler's contract is determinism — every read-side artifact
(rows, top-N table, collapsed stacks, SVG) must be byte-identical for
identical inputs — plus the coverage guarantee the gate checks.
"""

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.perf import (
    NULL_PROFILER,
    Profiler,
    collapse_spans,
    flamegraph_svg,
)
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock
from repro.sim.rand import SimRandom


def test_account_accumulates_per_triple():
    profiler = Profiler()
    profiler.account("service", "backend.get", 100, "db1")
    profiler.account("service", "backend.get", 50, "db1")
    profiler.account("service", "backend.get", 10, "db2")
    profiler.account("spanner", "commit", 30)
    rows = profiler.rows()
    assert [
        (r["subsystem"], r["operation"], r["database_id"], r["sim_us"], r["calls"])
        for r in rows
    ] == [
        ("service", "backend.get", "db1", 150, 2),
        ("service", "backend.get", "db2", 10, 1),
        ("spanner", "commit", "-", 30, 1),
    ]
    assert profiler.total_us() == 190
    assert profiler.by_subsystem() == {"service": 160, "spanner": 30}
    assert profiler.by_tenant() == {"-": 30, "db1": 150, "db2": 10}


def test_negative_busy_time_rejected():
    with pytest.raises(ValueError):
        Profiler().account("service", "op", -1)


def test_measure_accounts_clock_delta():
    clock = SimClock()
    profiler = Profiler()
    with profiler.measure("spanner", "commit", clock, "db1"):
        clock.advance(1234)
    with profiler.measure("spanner", "commit", clock, "db1"):
        pass  # zero-delta blocks still count a call
    (row,) = profiler.rows()
    assert row["sim_us"] == 1234
    assert row["calls"] == 2


def test_coverage():
    profiler = Profiler()
    assert profiler.coverage(0) == 1.0  # idle run: nothing to explain
    profiler.account("service", "op", 99)
    assert profiler.coverage(100) == pytest.approx(0.99)
    # over-attribution clamps at 1.0 rather than reporting >100%
    assert profiler.coverage(50) == 1.0


def test_top_self_ordering_is_stable():
    profiler = Profiler()
    profiler.account("b", "op", 100)
    profiler.account("a", "op", 100)
    profiler.account("c", "op", 500)
    top = profiler.top_self(2)
    assert [(r["sim_us"], r["subsystem"]) for r in top] == [(500, "c"), (100, "a")]


def test_wall_clock_kept_out_of_deterministic_snapshot():
    profiler = Profiler()
    profiler.account("service", "op", 10)
    profiler.record_wall("kernel.step", 5_000)
    profiler.record_wall("kernel.step", 7_000)
    snapshot = profiler.to_dict()
    assert set(snapshot) == {"total_us", "by_subsystem", "by_tenant", "entries"}
    assert "wall" not in repr(snapshot)
    assert profiler.wall_report() == {
        "kernel.step": {"wall_ns": 12_000, "events": 2}
    }


def test_per_tenant_metrics_surface_only_attributed_work():
    registry = MetricsRegistry()
    profiler = Profiler(metrics=registry)
    profiler.account("service", "op", 100, "db1")
    profiler.account("service", "op", 40)  # shared: no tenant counter
    counters = {
        m.labels: m.value for m in registry.collect() if m.name == "perf_cpu_us"
    }
    assert counters == {
        (("database_id", "db1"), ("subsystem", "service")): 100
    }


def test_null_profiler_is_falsy_and_inert():
    assert not NULL_PROFILER
    NULL_PROFILER.account("service", "op", 10)
    clock = SimClock()
    with NULL_PROFILER.measure("service", "op", clock):
        clock.advance(5)
    # nothing recorded anywhere; Profiler() by contrast is truthy
    assert Profiler()


def test_text_table_lists_share_percentages():
    profiler = Profiler()
    profiler.account("service", "backend.get", 75, "db1")
    profiler.account("spanner", "commit", 25, "db1")
    table = profiler.text_table()
    assert "backend.get" in table and "75.0%" in table
    assert "commit" in table and "25.0%" in table
    assert Profiler().text_table() == "profile: no busy time accounted\n"


def _span_tree(seed: int = 4) -> Tracer:
    clock = SimClock()
    tracer = Tracer(clock, SimRandom(seed).fork("tracer"))
    with tracer.span("frontend.rpc"):
        clock.advance(10)  # frontend self-time
        with tracer.span("backend.commit"):
            clock.advance(30)  # backend self-time
            with tracer.span("spanner.commit"):
                clock.advance(60)
        clock.advance(5)  # more frontend self-time
    return tracer


def test_collapse_spans_computes_self_time():
    folded = collapse_spans(_span_tree())
    assert folded == [
        "frontend.rpc 15",
        "frontend.rpc;backend.commit 30",
        "frontend.rpc;backend.commit;spanner.commit 60",
    ]


def test_collapse_spans_aggregates_identical_paths():
    clock = SimClock()
    tracer = Tracer(clock, SimRandom(1).fork("tracer"))
    for _ in range(3):
        with tracer.span("backend.get"):
            clock.advance(7)
    assert collapse_spans(tracer) == ["backend.get 21"]


def test_collapse_spans_byte_identical_across_builds():
    assert collapse_spans(_span_tree(seed=8)) == collapse_spans(
        _span_tree(seed=8)
    )


def test_collapse_spans_clips_child_past_parent_end():
    # regression: a child scheduled past its parent's end used to eat the
    # raw child duration out of the parent, zeroing (or going negative
    # before the clamp) the parent's real self time
    clock = SimClock()
    tracer = Tracer(clock, SimRandom(2).fork("tracer"))
    parent = tracer.start_span("frontend.rpc")
    clock.advance(50)
    child = tracer.start_span("backend.flush", parent=parent.context)
    child.end(end_us=200)  # keeps running 100us past the parent
    parent.end(end_us=100)
    assert collapse_spans(tracer) == [
        "frontend.rpc 50",  # only the clipped [50, 100) is subtracted
        "frontend.rpc;backend.flush 150",
    ]


def test_collapse_spans_merges_overlapping_parallel_children():
    # regression: two hedged children [10,60) and [40,90) cover 80us of
    # the parent, not 100 — summing raw durations double-counted the
    # overlap and reported parent self time as 0 instead of 20 (the
    # children keep their full 50us self each: parallel work may exceed
    # the parent's wall time, the parent's own time must not vanish)
    clock = SimClock()
    tracer = Tracer(clock, SimRandom(3).fork("tracer"))
    parent = tracer.start_span("cluster.rpc")
    clock.advance(10)
    primary = tracer.start_span("tablet.read", parent=parent.context)
    clock.advance(30)
    hedge = tracer.start_span("tablet.read", parent=parent.context)
    clock.advance(20)
    primary.end()  # [10, 60)
    clock.advance(30)
    hedge.end()  # [40, 90)
    clock.advance(10)
    parent.end()  # [0, 100)
    assert collapse_spans(tracer) == [
        "cluster.rpc 20",
        "cluster.rpc;tablet.read 100",
    ]


def test_collapse_spans_ignores_zero_duration_children():
    clock = SimClock()
    tracer = Tracer(clock, SimRandom(4).fork("tracer"))
    with tracer.span("backend.get") as parent:
        clock.advance(5)
        tracer.start_span("cache.probe", parent=parent.context).end()
        clock.advance(5)
    assert collapse_spans(tracer) == [
        "backend.get 10",
        "backend.get;cache.probe 0",
    ]


def test_flamegraph_svg_deterministic_and_well_formed():
    folded = collapse_spans(_span_tree())
    first = flamegraph_svg(folded, title="commit path")
    assert first == flamegraph_svg(folded, title="commit path")
    assert first.startswith("<svg ")
    assert first.rstrip().endswith("</svg>")
    assert "commit path (total 105us)" in first
    for frame in ("frontend.rpc", "backend.commit", "spanner.commit"):
        assert frame in first


def test_flamegraph_svg_empty_input():
    svg = flamegraph_svg([])
    assert "<svg " in svg and "total 0us" in svg
