"""Tracing and metrics through the discrete-event serving cluster.

Context propagates through the RPC envelope (``Rpc.trace_ctx``), so each
request's cluster.rpc root span collects the frontend and backend task
executions that served it; the scheduler, admission controller, and
autoscaler feed the shared metrics registry.
"""

import json

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.service.cluster import ClusterConfig, ServingCluster
from repro.service.rpc import RpcKind
from repro.sim.clock import MICROS_PER_SECOND
from repro.sim.events import EventKernel
from repro.sim.rand import SimRandom


def traced_cluster(seed: int = 9):
    kernel = EventKernel()
    tracer = Tracer(kernel.clock, SimRandom(seed).fork("tracer"))
    metrics = MetricsRegistry()
    cluster = ServingCluster(
        kernel=kernel,
        config=ClusterConfig(autoscale_frontend=False, autoscale_backend=False),
        tracer=tracer,
        metrics=metrics,
    )
    return kernel, cluster, tracer, metrics


def run_requests(kernel, cluster, count=20):
    latencies = []
    for i in range(count):
        kind = RpcKind.COMMIT if i % 2 else RpcKind.GET
        kernel.at(i * 1_000, lambda k=kind: cluster.submit(
            "db1", k, latencies.append
        ))
    kernel.run_until(5 * MICROS_PER_SECOND)
    return latencies


def test_request_span_tree():
    kernel, cluster, tracer, _ = traced_cluster()
    latencies = run_requests(kernel, cluster)
    assert len(latencies) == 20

    roots = tracer.find("cluster.rpc")
    assert len(roots) == 20
    for root in roots:
        assert root.parent_id is None
        assert root.attributes["database_id"] == "db1"
        assert root.attributes["operation"] in ("get", "commit")
        assert "latency_us" in root.attributes
        children = {s.name for s in tracer.children_of(root)}
        # context flowed through both hops of the serving path
        assert "frontend.exec" in children
        assert "backend.exec" in children

    execs = tracer.find("backend.exec")
    assert all("queue_wait_us" in s.attributes for s in execs)


def test_metrics_from_serving_components():
    kernel, cluster, _, metrics = traced_cluster()
    run_requests(kernel, cluster)

    assert metrics.total("requests_completed") == 20
    assert metrics.total("scheduler_enqueued") >= 40  # frontend + backend hops
    assert metrics.total("scheduler_dispatched") >= 40
    admitted = metrics.get("admission_decisions",
                           database_id="db1", outcome="admitted")
    assert admitted is not None and admitted.value == 20

    get_hist = metrics.get("request_latency_us",
                           database_id="db1", operation="get")
    commit_hist = metrics.get("request_latency_us",
                              database_id="db1", operation="commit")
    assert get_hist.count == 10 and commit_hist.count == 10
    assert commit_hist.p50 > get_hist.p50  # commits pay the quorum round


def test_cluster_trace_export(tmp_path):
    kernel, cluster, tracer, _ = traced_cluster()
    run_requests(kernel, cluster, count=4)
    path = cluster.export_trace(str(tmp_path / "trace.json"))
    trace = json.loads(open(path, encoding="utf-8").read())
    names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
    assert {"cluster.rpc", "frontend.exec", "backend.exec"} <= names

    report = cluster.report(title="serving test")
    assert "cluster.rpc" in report
    assert "requests_completed" in report


def test_same_seed_serving_runs_are_identical():
    from repro.obs.export import chrome_trace_json

    def run(seed):
        kernel, cluster, tracer, _ = traced_cluster(seed)
        run_requests(kernel, cluster, count=10)
        return chrome_trace_json(tracer)

    assert run(3) == run(3)


def test_untraced_cluster_records_nothing():
    kernel = EventKernel()
    cluster = ServingCluster(kernel=kernel)
    latencies = run_requests(kernel, cluster, count=4)
    assert len(latencies) == 4
    assert cluster.tracer.span_count == 0
    assert cluster.metrics is None


def test_rejection_is_visible_in_trace_and_metrics():
    kernel, cluster, tracer, metrics = traced_cluster()
    cluster.admission.config.per_database_inflight_limit = 1
    rejected = []
    done = []
    for _ in range(12):
        kernel.at(0, lambda: cluster.submit(
            "db1", RpcKind.GET, done.append, on_reject=rejected.append
        ))
    kernel.run_until(MICROS_PER_SECOND)
    assert rejected
    assert metrics.total("requests_rejected") == len(rejected)
    rejected_roots = [
        s for s in tracer.find("cluster.rpc") if "rejected" in s.attributes
    ]
    assert len(rejected_roots) == len(rejected)
