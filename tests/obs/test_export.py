import json

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.obs.export import (
    chrome_trace_json,
    render_text_report,
    to_chrome_trace,
    write_chrome_trace,
    write_text_report,
)
from repro.sim.clock import SimClock
from repro.sim.rand import SimRandom


def build_tracer(seed: int = 7) -> tuple[SimClock, Tracer]:
    clock = SimClock()
    tracer = Tracer(clock, SimRandom(seed).fork("tracer"))
    with tracer.span("frontend.rpc", attributes={"database_id": "db1"}) as root:
        clock.advance(20)
        with tracer.span("backend.commit") as commit:
            commit.add_event("locks-acquired", {"rows": 2})
            clock.advance(100)
        clock.advance(5)
    assert root.duration_us == 125
    return clock, tracer


def test_chrome_trace_structure():
    _, tracer = build_tracer()
    trace = to_chrome_trace(tracer)
    assert set(trace) == {"traceEvents", "displayTimeUnit"}
    events = trace["traceEvents"]

    metadata = [e for e in events if e["ph"] == "M"]
    assert {e["args"]["name"] for e in metadata} == {"frontend", "backend"}

    complete = {e["name"]: e for e in events if e["ph"] == "X"}
    assert set(complete) == {"frontend.rpc", "backend.commit"}
    root = complete["frontend.rpc"]
    child = complete["backend.commit"]
    assert root["ts"] == 0 and root["dur"] == 125
    assert child["ts"] == 20 and child["dur"] == 100
    assert child["args"]["parent_id"] == root["args"]["span_id"]
    assert child["args"]["trace_id"] == root["args"]["trace_id"]
    assert root["args"]["database_id"] == "db1"

    instants = [e for e in events if e["ph"] == "i"]
    assert len(instants) == 1
    assert instants[0]["name"] == "locks-acquired"
    assert instants[0]["args"] == {"rows": 2}


def test_chrome_trace_json_is_valid_and_byte_stable():
    first = chrome_trace_json(build_tracer(seed=5)[1])
    second = chrome_trace_json(build_tracer(seed=5)[1])
    assert first == second
    assert json.loads(first)["displayTimeUnit"] == "ms"

    different_seed = chrome_trace_json(build_tracer(seed=6)[1])
    assert different_seed != first


def test_write_chrome_trace_roundtrip(tmp_path):
    _, tracer = build_tracer()
    path = write_chrome_trace(tracer, str(tmp_path / "trace.json"))
    loaded = json.loads(open(path, encoding="utf-8").read())
    assert len(loaded["traceEvents"]) == len(to_chrome_trace(tracer)["traceEvents"])


def test_text_report_contents(tmp_path):
    _, tracer = build_tracer()
    metrics = MetricsRegistry()
    metrics.counter("requests_completed", database_id="db1").inc(3)
    hist = metrics.histogram("request_latency_us", operation="commit")
    hist.observe(125)

    report = render_text_report(tracer, metrics, title="unit test")
    assert "=== unit test ===" in report
    assert "frontend.rpc" in report
    assert "backend.commit" in report
    assert "requests_completed{database_id=db1}  value=3" in report
    assert "request_latency_us{operation=commit}" in report

    path = write_text_report(str(tmp_path / "report.txt"), tracer, metrics)
    assert "frontend.rpc" in open(path, encoding="utf-8").read()


def test_text_report_with_no_spans():
    clock = SimClock()
    report = render_text_report(Tracer(clock), None)
    assert "spans: none recorded" in report
