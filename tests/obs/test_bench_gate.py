"""Unified BENCH schema, regression comparison, gate canary, dashboard.

Covers the pure-arithmetic layer (metric/payload/compare), the disk
round-trip, the dashboard's determinism, and the one end-to-end
acceptance property cheap enough for tier-1: the functional-commit
gate cell is byte-stable under same-seed replay and a tablet_slow
canary trips the comparison with a named metric and factor.
"""

import json

import pytest

from repro.obs.bench import (
    BENCH_SCHEMA_VERSION,
    bench_payload,
    compare_bench,
    compare_suites,
    load_bench_dir,
    metric,
    write_payload,
)
from repro.obs.bench.dashboard import render_dashboard
from repro.obs.bench.gate import CANARY_SITE, gate_commit


def _payload(**metrics):
    return bench_payload(name="cell", figure="fig00", metrics=metrics)


def test_metric_validation():
    assert metric(5, "us") == {
        "value": 5, "unit": "us", "kind": "stat", "tolerance": 0.30,
    }
    assert metric(5, kind="exact") == {"value": 5, "unit": "", "kind": "exact"}
    with pytest.raises(ValueError):
        metric(5, kind="fuzzy")


def test_payload_carries_schema_version():
    payload = _payload(ops=metric(1, kind="exact"))
    assert payload["schema_version"] == BENCH_SCHEMA_VERSION
    assert payload["name"] == "cell"
    assert payload["figure"] == "fig00"


def test_identical_payloads_have_no_regressions():
    fresh = _payload(p50=metric(100, "us"), ops=metric(7, kind="exact"))
    assert compare_bench(fresh, fresh) == []


def test_exact_metric_must_match_exactly():
    baseline = _payload(ops=metric(7, kind="exact"))
    fresh = _payload(ops=metric(8, kind="exact"))
    (regression,) = compare_bench(fresh, baseline)
    assert regression.kind == "exact"
    assert regression.metric == "ops"
    assert "8" in str(regression) and "7" in str(regression)


def test_stat_metric_has_tolerance_band():
    baseline = _payload(p50=metric(100, "us", tolerance=0.30))
    # 29% off: inside the band
    assert compare_bench(_payload(p50=metric(129, "us")), baseline) == []
    # 31% off: outside, and the message names metric + factor
    (regression,) = compare_bench(_payload(p50=metric(131, "us")), baseline)
    assert regression.metric == "p50"
    assert regression.factor == pytest.approx(1.31)
    assert "1.31x" in str(regression)
    assert "±30%" in str(regression)
    # improvements beyond the band also flag (they move the baseline)
    assert compare_bench(_payload(p50=metric(60, "us")), baseline)


def test_vanished_metric_and_schema_mismatch_are_regressions():
    baseline = _payload(p50=metric(100, "us"))
    (regression,) = compare_bench(_payload(), baseline)
    assert regression.kind == "schema"
    stale = dict(baseline, schema_version=BENCH_SCHEMA_VERSION + 1)
    (regression,) = compare_bench(_payload(p50=metric(100, "us")), stale)
    assert regression.kind == "schema"


def test_failed_slo_in_fresh_run_is_a_regression():
    verdicts = {
        "request.availability": {
            "name": "request.availability", "ok": False, "target": 0.999,
            "observed": 0.5,
        }
    }
    fresh = bench_payload(name="cell", slos=verdicts)
    baseline = bench_payload(name="cell")
    (regression,) = compare_bench(fresh, baseline)
    assert regression.kind == "slo"
    assert "request.availability" in str(regression)


def test_compare_suites_catches_missing_runs():
    baseline = {"a": _payload(), "b": _payload()}
    regressions = compare_suites({"a": _payload()}, baseline)
    assert any(r.bench == "b" and "no fresh run" in str(r) for r in regressions)
    # a fresh benchmark with no baseline is skipped, not failed
    extra = {"a": _payload(), "new_cell": _payload()}
    assert compare_suites(extra, {"a": _payload()}) == []


def test_write_and_load_roundtrip(tmp_path):
    payload = _payload(ops=metric(3, kind="exact"))
    path = write_payload(tmp_path, payload)
    assert path.name == "BENCH_cell.json"
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == payload
    # pre-schema files are ignored, not mis-parsed
    (tmp_path / "BENCH_legacy.json").write_text('{"old": true}')
    assert load_bench_dir(tmp_path) == {"cell": payload}


def test_dashboard_deterministic_and_escaped():
    payloads = {
        "<cell>": bench_payload(
            name="<cell>",
            metrics={"p50": metric(100, "us")},
            slos={"s": {"name": "s", "ok": True, "target": 1, "observed": 1}},
        )
    }
    baselines = {"<cell>": bench_payload(
        name="<cell>", metrics={"p50": metric(90, "us")}
    )}
    first = render_dashboard(payloads, baselines=baselines)
    assert first == render_dashboard(payloads, baselines=baselines)
    assert "&lt;cell&gt;" in first and "<cell>" not in first
    assert "gate passed" in first


def test_gate_commit_cell_byte_stable_and_canary_trips():
    clean, _ = gate_commit(seed=42, ops=12)
    again, _ = gate_commit(seed=42, ops=12)
    assert json.dumps(clean, sort_keys=True) == json.dumps(again, sort_keys=True)
    # clean functional commits advance the sim clock by nothing
    assert clean["metrics"]["commit_p50_us"]["value"] == 0
    assert compare_bench(clean, clean) == []

    canary, _ = gate_commit(seed=42, canary=CANARY_SITE, ops=12)
    regressions = compare_bench(canary, clean)
    assert regressions, "tablet_slow canary must trip the gate"
    names = {r.metric for r in regressions}
    assert "commit_p50_us" in names
    for regression in regressions:
        assert regression.factor >= 1.0


def test_gate_failover_cell_byte_stable_and_clean():
    from repro.obs.bench.gate import GATE_CELLS, gate_failover

    assert GATE_CELLS["gate_failover"] is gate_failover
    payload, _ = gate_failover()
    again, _ = gate_failover()
    assert json.dumps(payload, sort_keys=True) == json.dumps(
        again, sort_keys=True
    )
    metrics = payload["metrics"]
    assert metrics["violations"]["value"] == 0
    assert metrics["failovers"]["value"] >= 1
    assert metrics["unavailability_us"]["value"] > 0
    slos = payload["slos"]
    assert slos["replication.lag"]["ok"]
    assert slos["replication.convergence"]["ok"]
    assert compare_bench(payload, payload) == []


def test_gate_tail_cell_pins_blame_and_ships_artifacts():
    from repro.obs.bench.gate import GATE_CELLS, gate_tail

    assert GATE_CELLS["gate_tail"] is gate_tail
    payload, artifacts = gate_tail()
    metrics = payload["metrics"]
    for scenario in ("overload", "failover"):
        assert metrics[f"{scenario}_coverage_ok"]["value"] == 1
        assert metrics[f"{scenario}_blame_ok"]["value"] == 1
        assert metrics[f"{scenario}_unattributed_us"]["value"] == 0
        assert metrics[f"{scenario}_requests"]["value"] > 0
    assert compare_bench(payload, payload) == []
    # artifacts are keyed by output filename, one json + svg per scenario
    assert sorted(artifacts) == [
        "CRITPATH_failover.json",
        "CRITPATH_failover.svg",
        "CRITPATH_overload-storm.json",
        "CRITPATH_overload-storm.svg",
    ]
    summary = json.loads(artifacts["CRITPATH_failover.json"])
    assert summary["schema"] == "repro.critpath/1"
    assert artifacts["CRITPATH_failover.svg"].startswith("<svg ")
    # the dashboard renders the decomposition + blame panel from raw
    html = render_dashboard({"gate_tail": payload})
    assert "critical-path tail attribution" in html
    assert "why the tail is slow" in html
    assert "retry_backoff" in html
