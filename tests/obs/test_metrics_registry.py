import pytest

from repro.obs import MetricsRegistry


@pytest.fixture
def registry():
    return MetricsRegistry()


def test_counter_get_or_create_identity(registry):
    a = registry.counter("requests", database_id="db1")
    b = registry.counter("requests", database_id="db1")
    assert a is b
    a.inc()
    a.inc(4)
    assert b.value == 5


def test_counter_rejects_negative_increment(registry):
    counter = registry.counter("requests")
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 0


def test_label_order_does_not_matter(registry):
    a = registry.counter("ops", database_id="db1", operation="get")
    b = registry.counter("ops", operation="get", database_id="db1")
    assert a is b


def test_distinct_labels_are_distinct_metrics(registry):
    registry.counter("ops", database_id="db1").inc()
    registry.counter("ops", database_id="db2").inc(2)
    assert registry.total("ops") == 3
    assert len(registry.with_name("ops")) == 2


def test_gauge_set_inc_dec(registry):
    gauge = registry.gauge("pool_tasks", pool="backend")
    gauge.set(6)
    gauge.inc(2)
    gauge.dec()
    assert gauge.value == 7


def test_histogram_percentiles_match_latency_recorder(registry):
    hist = registry.histogram("latency_us", operation="get")
    for value in range(1, 101):
        hist.observe(value)
    assert hist.count == 100
    assert hist.total == 5050
    assert hist.p50 == 50
    assert hist.p99 == 99
    assert hist.percentile(100) == 100
    assert hist.mean() == pytest.approx(50.5)


def test_empty_histogram_reads_zero(registry):
    hist = registry.histogram("latency_us")
    assert hist.count == 0
    assert hist.p50 == 0
    assert hist.p99 == 0
    assert hist.mean() == 0.0


def test_type_conflict_raises(registry):
    registry.counter("x", a="1")
    with pytest.raises(TypeError):
        registry.gauge("x", a="1")
    # the guard is per (name, labels) key, not per name
    registry.counter("x", a="2")


def test_get_does_not_create(registry):
    assert registry.get("missing") is None
    assert len(registry) == 0
    registry.gauge("present")
    assert registry.get("present") is not None
    assert len(registry) == 1


def test_collect_is_sorted_and_stable(registry):
    registry.counter("b")
    registry.counter("a", z="2")
    registry.counter("a", z="1")
    names = [(m.name, m.labels) for m in registry.collect()]
    assert names == [
        ("a", (("z", "1"),)),
        ("a", (("z", "2"),)),
        ("b", ()),
    ]


def test_to_dict_snapshot(registry):
    registry.counter("requests", database_id="db1").inc(3)
    registry.gauge("pool_tasks", pool="backend").set(8)
    hist = registry.histogram("latency_us", operation="get")
    hist.observe(10)
    hist.observe(30)
    snapshot = registry.to_dict()
    assert snapshot["requests"] == [
        {"labels": {"database_id": "db1"}, "type": "counter", "value": 3}
    ]
    assert snapshot["pool_tasks"][0]["type"] == "gauge"
    assert snapshot["pool_tasks"][0]["value"] == 8
    entry = snapshot["latency_us"][0]
    assert entry["type"] == "histogram"
    assert entry["count"] == 2
    assert entry["total"] == 40
