import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.core.values import (
    GeoPoint,
    Reference,
    SERVER_TIMESTAMP,
    SortKey,
    Timestamp,
    compare_values,
    delete_field,
    get_field,
    iter_leaf_fields,
    set_field,
    type_rank,
    validate_value,
    values_equal,
)


class TestTypeOrder:
    def test_cross_type_order(self):
        ordered = [
            None,
            False,
            True,
            float("nan"),
            -10,
            3.5,
            Timestamp(100),
            "string",
            b"bytes",
            Reference("col/doc"),
            GeoPoint(1.0, 2.0),
            [1, 2],
            {"a": 1},
        ]
        for i, a in enumerate(ordered):
            for j, b in enumerate(ordered):
                expected = (i > j) - (i < j)
                assert compare_values(a, b) == expected, (a, b)

    def test_bool_is_not_a_number(self):
        assert type_rank(True) != type_rank(1)
        assert compare_values(True, 0) < 0  # booleans sort before numbers


class TestNumbers:
    def test_int_double_interleave(self):
        assert compare_values(1, 1.5) < 0
        assert compare_values(2, 1.5) > 0
        assert compare_values(5, 5.0) == 0

    def test_exact_comparison_beyond_double_precision(self):
        big = 2**60
        assert compare_values(big, big + 1) < 0
        assert compare_values(float(big), big + 1) < 0

    def test_infinities(self):
        assert compare_values(float("-inf"), -(2**62)) < 0
        assert compare_values(float("inf"), 2**62) > 0

    def test_nan_sorts_before_numbers(self):
        assert compare_values(float("nan"), float("-inf")) < 0
        assert compare_values(float("nan"), float("nan")) == 0

    def test_negative_zero_equals_zero(self):
        assert compare_values(-0.0, 0.0) == 0
        assert compare_values(-0.0, 0) == 0


class TestComplexValues:
    def test_array_prefix_sorts_first(self):
        assert compare_values([1], [1, 2]) < 0
        assert compare_values([1, 3], [1, 2, 5]) > 0

    def test_map_order_by_sorted_keys(self):
        assert compare_values({"a": 1}, {"b": 0}) < 0
        assert compare_values({"a": 1}, {"a": 2}) < 0
        assert compare_values({"a": 1}, {"a": 1, "b": 0}) < 0

    def test_reference_segment_order(self):
        # 'a/b' < 'a!' as paths even though '!' < '/' as characters
        assert compare_values(Reference("a/b"), Reference("a!")) < 0
        assert compare_values(Reference("a"), Reference("a/b")) < 0

    def test_geopoint_order(self):
        assert compare_values(GeoPoint(1, 5), GeoPoint(2, 0)) < 0
        assert compare_values(GeoPoint(1, 5), GeoPoint(1, 6)) < 0

    def test_timestamps(self):
        assert compare_values(Timestamp(5), Timestamp(6)) < 0
        assert Timestamp(5) < Timestamp(6)


class TestValidation:
    def test_accepts_model_values(self):
        validate_value(
            {
                "s": "x",
                "n": 1,
                "d": 2.5,
                "b": True,
                "nil": None,
                "arr": [1, "two"],
                "map": {"nested": {"deep": 1}},
                "geo": GeoPoint(0, 0),
                "ts": Timestamp(0),
                "ref": Reference("a/b"),
                "bytes": b"\x00",
            }
        )

    def test_rejects_unsupported_types(self):
        with pytest.raises(InvalidArgument):
            validate_value({"bad": object()})
        with pytest.raises(InvalidArgument):
            validate_value({"bad": set()})

    def test_rejects_nested_arrays(self):
        with pytest.raises(InvalidArgument):
            validate_value({"a": [[1]]})

    def test_rejects_int64_overflow(self):
        with pytest.raises(InvalidArgument):
            validate_value({"n": 2**63})
        validate_value({"n": 2**63 - 1})

    def test_rejects_non_string_map_keys(self):
        with pytest.raises(InvalidArgument):
            validate_value({"m": {1: "x"}})

    def test_rejects_empty_map_keys(self):
        with pytest.raises(InvalidArgument):
            validate_value({"m": {"": "x"}})

    def test_rejects_excessive_nesting(self):
        deep: dict = {"v": 1}
        for _ in range(25):
            deep = {"d": deep}
        with pytest.raises(InvalidArgument):
            validate_value(deep)

    def test_server_timestamp_sentinel_allowed(self):
        validate_value({"at": SERVER_TIMESTAMP})

    def test_geopoint_range_validation(self):
        with pytest.raises(InvalidArgument):
            GeoPoint(91, 0)
        with pytest.raises(InvalidArgument):
            GeoPoint(0, 181)


class TestFieldPaths:
    def test_iter_leaf_fields_flattens_maps(self):
        data = {"a": 1, "m": {"x": 2, "y": {"z": 3}}, "arr": [1, 2]}
        leaves = dict(iter_leaf_fields(data))
        assert leaves == {"a": 1, "m.x": 2, "m.y.z": 3, "arr": [1, 2]}

    def test_empty_map_is_a_leaf(self):
        assert dict(iter_leaf_fields({"m": {}})) == {"m": {}}

    def test_get_field(self):
        data = {"m": {"x": 1}}
        assert get_field(data, "m.x") == (True, 1)
        assert get_field(data, "m.missing") == (False, None)
        assert get_field(data, "m") == (True, {"x": 1})
        assert get_field(data, "m.x.deeper") == (False, None)

    def test_set_field_creates_intermediates(self):
        data: dict = {}
        set_field(data, "a.b.c", 7)
        assert data == {"a": {"b": {"c": 7}}}
        set_field(data, "a.b.c", 8)
        assert data["a"]["b"]["c"] == 8

    def test_set_field_replaces_non_map(self):
        data = {"a": 5}
        set_field(data, "a.b", 1)
        assert data == {"a": {"b": 1}}

    def test_delete_field(self):
        data = {"a": {"b": 1, "c": 2}}
        assert delete_field(data, "a.b") is True
        assert data == {"a": {"c": 2}}
        assert delete_field(data, "a.b") is False
        assert delete_field(data, "x.y") is False


def test_sort_key_sorts_mixed_values():
    values = [{"z": 1}, "str", 3, None, [0], True, 2.5]
    ordered = sorted(values, key=SortKey)
    assert ordered[0] is None
    assert ordered[1] is True
    assert ordered[-1] == {"z": 1}


def test_values_equal():
    assert values_equal(5, 5.0)
    assert values_equal(float("nan"), float("nan"))
    assert not values_equal(5, "5")


@st.composite
def firestore_values(draw, depth=0):
    base = st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(2**63), max_value=2**63 - 1),
        st.floats(allow_nan=True, allow_infinity=True),
        st.text(max_size=8),
        st.binary(max_size=8),
        st.builds(Timestamp, st.integers(min_value=-(2**40), max_value=2**40)),
    )
    if depth >= 2:
        return draw(base)
    return draw(
        st.one_of(
            base,
            st.lists(firestore_values(depth=2), max_size=3),
            st.dictionaries(
                st.text(min_size=1, max_size=4), firestore_values(depth=depth + 1), max_size=3
            ),
        )
    )


@settings(max_examples=300, deadline=None)
@given(a=firestore_values(), b=firestore_values(), c=firestore_values())
def test_property_compare_is_a_total_order(a, b, c):
    # antisymmetry
    assert compare_values(a, b) == -compare_values(b, a)
    # reflexivity
    assert compare_values(a, a) == 0
    # transitivity (on this triple)
    ab, bc, ac = compare_values(a, b), compare_values(b, c), compare_values(a, c)
    if ab <= 0 and bc <= 0:
        assert ac <= 0
    if ab >= 0 and bc >= 0:
        assert ac >= 0
