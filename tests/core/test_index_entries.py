import pytest

from repro.errors import InvalidArgument
from repro.core.encoding import ASCENDING, DESCENDING
from repro.core.index_entries import (
    compute_document_entries,
    composite_entry_values,
    diff_entries,
    entry_key,
    index_id_prefix,
    scan_prefix,
)
from repro.core.indexes import IndexField, IndexMode, IndexRegistry, IndexState
from repro.core.path import Path


@pytest.fixture
def registry():
    return IndexRegistry()


DOC = Path.parse("restaurants/one")


class TestAutoEntries:
    def test_two_entries_per_scalar_field(self, registry):
        entries = compute_document_entries(registry, DOC, {"city": "SF"})
        assert len(entries) == 2  # asc + desc
        assert all(payload == ("restaurants", "one") for payload in entries.values())

    def test_entries_per_field_scale_linearly(self, registry):
        one = compute_document_entries(registry, DOC, {"f0": 0})
        ten = compute_document_entries(registry, DOC, {f"f{i}": i for i in range(10)})
        assert len(ten) == 10 * len(one)

    def test_map_fields_flatten(self, registry):
        entries = compute_document_entries(
            registry, DOC, {"address": {"city": "SF", "zip": "94000"}}
        )
        # two leaves plus the map node itself, each asc + desc — leaves
        # for dotted-path queries, the node for whole-map equality
        assert len(entries) == 6

    def test_array_fields_add_contains_entries(self, registry):
        entries = compute_document_entries(registry, DOC, {"tags": ["bbq", "cheap"]})
        # whole-array asc + desc, plus one contains entry per element
        assert len(entries) == 4

    def test_array_duplicates_deduplicated(self, registry):
        entries = compute_document_entries(registry, DOC, {"tags": ["a", "a", "a"]})
        assert len(entries) == 3  # asc + desc + single contains

    def test_exempt_fields_produce_nothing(self, registry):
        registry.add_exemption("restaurants", "blob")
        entries = compute_document_entries(registry, DOC, {"blob": "x", "city": "SF"})
        assert len(entries) == 2  # only city

    def test_entries_scoped_by_parent_collection(self, registry):
        restaurant = compute_document_entries(registry, DOC, {"city": "SF"})
        rating = compute_document_entries(
            registry, Path.parse("restaurants/one/ratings/2"), {"city": "SF"}
        )
        assert not set(restaurant) & set(rating)


class TestCompositeEntries:
    def test_doc_missing_field_absent(self, registry):
        registry.create_composite(
            "restaurants", [("city", ASCENDING), ("rating", DESCENDING)],
            state=IndexState.READY,
        )
        entries = compute_document_entries(registry, DOC, {"city": "SF"})
        assert len(entries) == 2  # auto only; composite needs both fields

    def test_full_doc_gets_composite_entry(self, registry):
        definition = registry.create_composite(
            "restaurants", [("city", ASCENDING), ("rating", DESCENDING)],
            state=IndexState.READY,
        )
        entries = compute_document_entries(
            registry, DOC, {"city": "SF", "rating": 4.5}
        )
        composite_keys = [
            key for key in entries if key.startswith(index_id_prefix(definition.index_id))
        ]
        assert len(composite_keys) == 1

    def test_creating_composites_maintained(self, registry):
        definition = registry.create_composite(
            "restaurants", [("a", ASCENDING), ("b", ASCENDING)]
        )
        assert definition.state is IndexState.CREATING
        entries = compute_document_entries(registry, DOC, {"a": 1, "b": 2})
        assert any(
            key.startswith(index_id_prefix(definition.index_id)) for key in entries
        )

    def test_deleting_composites_skipped(self, registry):
        definition = registry.create_composite(
            "restaurants", [("a", ASCENDING), ("b", ASCENDING)], state=IndexState.READY
        )
        registry.set_state(definition.index_id, IndexState.DELETING)
        entries = compute_document_entries(registry, DOC, {"a": 1, "b": 2})
        assert not any(
            key.startswith(index_id_prefix(definition.index_id)) for key in entries
        )

    def test_contains_fan_out(self, registry):
        definition = registry.create_composite(
            "restaurants",
            [IndexField("tags", ASCENDING, IndexMode.CONTAINS), IndexField("r", ASCENDING)],
            state=IndexState.READY,
        )
        values = composite_entry_values(
            definition, {"tags": ["a", "b", "c"], "r": 1}
        )
        assert len(values) == 3

    def test_contains_requires_nonempty_array(self, registry):
        definition = registry.create_composite(
            "restaurants",
            [IndexField("tags", ASCENDING, IndexMode.CONTAINS), IndexField("r", ASCENDING)],
            state=IndexState.READY,
        )
        assert composite_entry_values(definition, {"tags": [], "r": 1}) == []
        assert composite_entry_values(definition, {"tags": "str", "r": 1}) == []


class TestKeysAndDiff:
    def test_entry_key_layout(self):
        parent = Path.parse("restaurants")
        key = entry_key(7, parent, b"VALUES", DOC)
        assert key.startswith(index_id_prefix(7))
        assert b"VALUES" in key
        assert key.startswith(scan_prefix(7, parent))

    def test_scan_prefix_distinguishes_parents(self):
        a = scan_prefix(7, Path.parse("restaurants"))
        b = scan_prefix(7, Path.parse("hotels"))
        assert a != b
        assert a[:4] == b[:4]

    def test_diff(self):
        old = {b"a": ("d",), b"b": ("d",)}
        new = {b"b": ("d",), b"c": ("d",)}
        to_delete, to_insert = diff_entries(old, new)
        assert to_delete == [b"a"]
        assert to_insert == [(b"c", ("d",))]

    def test_diff_no_change(self):
        entries = {b"a": ("d",)}
        assert diff_entries(entries, dict(entries)) == ([], [])

    def test_entry_cap_enforced(self, registry):
        data = {"tags": [f"t{i}" for i in range(45_000)]}
        with pytest.raises(InvalidArgument):
            compute_document_entries(registry, DOC, data)
