"""A/B query-execution harness (section VI) and the emergency
dedicated-pool isolation tool (section VI)."""

import pytest

from repro.core.ab_testing import QueryABHarness
from repro.core.backend import set_op
from repro.core.firestore import FirestoreService
from repro.service.cluster import ClusterConfig, ServingCluster
from repro.service.metrics import LatencyRecorder
from repro.service.rpc import RpcKind


class TestABHarness:
    @pytest.fixture(scope="class")
    def db(self):
        database = FirestoreService().create_database("ab-tests")
        rows = [
            {"city": "SF", "type": "BBQ", "rating": 4.5, "open": True},
            {"city": "SF", "type": "Cafe", "rating": 4.0, "open": False},
            {"city": "LA", "type": "BBQ", "rating": 3.0, "open": True},
            {"city": "NY", "type": "Cafe", "rating": 5.0, "open": True},
            {"city": "SF", "type": "BBQ", "rating": 2.0, "open": False},
        ]
        for i, data in enumerate(rows):
            database.commit([set_op(f"restaurants/r{i}", data)])
        database.create_index("restaurants", [("city", "asc"), ("rating", "desc")])
        return database

    def test_single_query_comparison(self, db):
        harness = QueryABHarness(db)
        result = harness.compare(db.query("restaurants").where("city", "==", "SF"))
        assert result is not None and result.matched
        assert "OK" in result.describe()

    def test_needs_index_is_not_a_mismatch(self, db):
        harness = QueryABHarness(db)
        db.registry.add_exemption("restaurants", "nowhere")
        result = harness.compare(
            db.query("restaurants").where("nowhere", "==", 1)
        )
        assert result is None

    def test_random_corpus_zero_mismatches(self, db):
        """The paper's bar: A/B comparison confirms zero impact."""
        harness = QueryABHarness(db)
        report = harness.run_random("restaurants", count=150, seed=7)
        assert report.compared == 150
        assert report.is_clean, [r.describe() for r in report.mismatches]
        assert report.matched > 50  # a majority of random queries plan
        assert "MISMATCHES" in report.summary()

    def test_reference_detects_engine_divergence(self, db):
        """Sanity: the harness is capable of reporting a difference."""
        harness = QueryABHarness(db)
        # sabotage: surgically remove an index entry so the engine misses
        # a document the reference still sees
        from repro.core.layout import INDEX_ENTRIES

        read_ts = db.layout.spanner.current_timestamp()
        start, end = db.layout.directory_range()
        query = db.query("restaurants").where("type", "==", "Cafe")
        before = harness.compare(query)
        assert before.matched
        victim = None
        for key, payload in db.layout.spanner.snapshot_scan(
            INDEX_ENTRIES, start, end, read_ts
        ):
            if payload == ("restaurants", "r1"):
                victim = key
                break
        txn = db.layout.spanner.begin()
        txn.delete(INDEX_ENTRIES, victim)
        txn.commit()
        # some query now disagrees (which one depends on the index hit)
        report = harness.run_random("restaurants", count=150, seed=7)
        # repair for other tests
        txn = db.layout.spanner.begin()
        txn.put(INDEX_ENTRIES, victim, ("restaurants", "r1"))
        txn.commit()
        assert not report.is_clean


class TestEmergencyIsolation:
    def _run_mixed_load(self, cluster, duration_us=20_000_000):
        bystander = LatencyRecorder("bystander")
        kernel = cluster.kernel

        def culprit_tick():
            if kernel.now_us >= duration_us:
                return
            cluster.submit("culprit", RpcKind.QUERY, lambda lat: None,
                           cpu_cost_us=50_000)
            kernel.after(2_000, culprit_tick)

        def bystander_tick():
            if kernel.now_us >= duration_us:
                return
            cluster.submit("bystander", RpcKind.GET, bystander.record,
                           cpu_cost_us=150)
            kernel.after(10_000, bystander_tick)

        kernel.at(kernel.now_us, culprit_tick)
        kernel.at(kernel.now_us, bystander_tick)
        kernel.run_until(kernel.now_us + duration_us + 5_000_000)
        return bystander

    def _fixed_cluster(self):
        return ServingCluster(
            config=ClusterConfig(
                multi_region=False,
                backend_tasks=2,
                fair_scheduling=False,  # fairness off: the worst case
                autoscale_backend=False,
                autoscale_frontend=False,
            )
        )

    def test_isolating_culprit_protects_bystander(self):
        shared = self._fixed_cluster()
        shared_result = self._run_mixed_load(shared)

        isolated = self._fixed_cluster()
        isolated.isolate_database("culprit", tasks=1, autoscale=False)
        assert isolated.is_isolated("culprit")
        isolated_result = self._run_mixed_load(isolated)

        assert isolated_result.p99 < shared_result.p99 / 5

    def test_unisolate_returns_to_shared_pool(self):
        cluster = self._fixed_cluster()
        pool = cluster.isolate_database("tenant", tasks=1)
        assert cluster.is_isolated("tenant")
        assert pool.name == "isolated-tenant"
        cluster.unisolate_database("tenant")
        assert not cluster.is_isolated("tenant")

    def test_isolate_is_idempotent(self):
        cluster = self._fixed_cluster()
        first = cluster.isolate_database("tenant")
        second = cluster.isolate_database("tenant")
        assert first is second

    def test_isolated_pool_can_autoscale(self):
        cluster = self._fixed_cluster()
        pool = cluster.isolate_database("culprit", tasks=1, autoscale=True)
        self._run_mixed_load(cluster, duration_us=40_000_000)
        assert pool.size > 1  # scaled to the culprit's own traffic
