"""Backend write-protocol tests: the seven steps and the failure matrix
of paper section IV-D2."""

import pytest

from repro.errors import (
    Aborted,
    AlreadyExists,
    DeadlineExceeded,
    FailedPrecondition,
    InvalidArgument,
    NotFound,
    PermissionDenied,
    Unavailable,
)
from repro.core.backend import (
    AuthContext,
    Precondition,
    create_op,
    delete_op,
    set_op,
    update_op,
)
from repro.core.firestore import FirestoreService
from repro.core.values import SERVER_TIMESTAMP, Timestamp
from repro.realtime.protocol import WriteOutcome
from repro.spanner.transaction import (
    inject_definitive_failure,
    inject_unknown_outcome,
)


@pytest.fixture
def service():
    return FirestoreService()


@pytest.fixture
def db(service):
    return service.create_database("backend-tests")


class TestBasicWrites:
    def test_set_creates_and_replaces(self, db):
        db.commit([set_op("r/a", {"x": 1, "y": 2})])
        assert db.lookup("r/a").data == {"x": 1, "y": 2}
        db.commit([set_op("r/a", {"z": 3})])
        assert db.lookup("r/a").data == {"z": 3}  # replace, not merge

    def test_create_requires_absent(self, db):
        db.commit([create_op("r/a", {"x": 1})])
        with pytest.raises(AlreadyExists):
            db.commit([create_op("r/a", {"x": 2})])

    def test_update_requires_present(self, db):
        with pytest.raises(NotFound):
            db.commit([update_op("r/a", {"x": 1})])

    def test_update_merges_dotted_fields(self, db):
        db.commit([set_op("r/a", {"m": {"x": 1, "y": 2}, "keep": True})])
        db.commit([update_op("r/a", {"m": {"x": 10}})])
        assert db.lookup("r/a").data == {"m": {"x": 10, "y": 2}, "keep": True}

    def test_update_deletes_fields(self, db):
        db.commit([set_op("r/a", {"x": 1, "y": 2})])
        db.commit([update_op("r/a", {}, delete_fields=("y",))])
        assert db.lookup("r/a").data == {"x": 1}

    def test_delete(self, db):
        db.commit([set_op("r/a", {"x": 1})])
        db.commit([delete_op("r/a")])
        assert not db.lookup("r/a").exists

    def test_delete_of_missing_is_ok(self, db):
        db.commit([delete_op("r/nothing")])

    def test_multi_write_atomicity(self, db):
        db.commit([set_op("r/a", {"n": 1}), set_op("r/b", {"n": 1})])
        # second write fails its precondition; first must not apply
        with pytest.raises(AlreadyExists):
            db.commit([set_op("r/a", {"n": 2}), create_op("r/b", {"boom": 1})])
        assert db.lookup("r/a").data == {"n": 1}

    def test_multiple_writes_to_one_document_apply_in_order(self, db):
        result = db.commit(
            [set_op("r/a", {"x": 1}), update_op("r/a", {"y": 2})]
        )
        assert result.write_count == 2
        doc = db.lookup("r/a").document
        assert doc.data == {"x": 1, "y": 2}
        assert doc.create_time == result.commit_ts  # created this commit

    def test_empty_commit_rejected(self, db):
        with pytest.raises(InvalidArgument):
            db.commit([])

    def test_oversized_document_rejected(self, db):
        with pytest.raises(InvalidArgument):
            db.commit([set_op("r/big", {"blob": "x" * (1 << 20)})])

    def test_preconditions(self, db):
        result = db.commit([set_op("r/a", {"x": 1})])
        db.commit(
            [update_op("r/a", {"x": 2}, precondition=Precondition(update_time=result.commit_ts))]
        )
        with pytest.raises(FailedPrecondition):
            db.commit(
                [update_op("r/a", {"x": 3}, precondition=Precondition(update_time=result.commit_ts))]
            )
        with pytest.raises(FailedPrecondition):
            db.commit([delete_op("r/a", precondition=Precondition(exists=False))])

    def test_server_timestamp_transform(self, db):
        db.commit([set_op("r/a", {"at": SERVER_TIMESTAMP})])
        value = db.lookup("r/a").data["at"]
        assert isinstance(value, Timestamp)
        assert value.micros > 0


class TestTimesAndMetadata:
    def test_create_and_update_times(self, db):
        first = db.commit([set_op("r/a", {"v": 1})])
        second = db.commit([set_op("r/a", {"v": 2})])
        doc = db.lookup("r/a").document
        assert doc.create_time == first.commit_ts
        assert doc.update_time == second.commit_ts

    def test_recreate_resets_create_time(self, db):
        db.commit([set_op("r/a", {"v": 1})])
        db.commit([delete_op("r/a")])
        third = db.commit([set_op("r/a", {"v": 3})])
        doc = db.lookup("r/a").document
        assert doc.create_time == third.commit_ts

    def test_commit_reports_index_entries(self, db):
        result = db.commit([set_op("r/a", {"f1": 1, "f2": 2})])
        # 2 fields x (asc + desc) = 4 index entries
        assert result.index_entries_written == 4

    def test_index_entry_diff_on_update(self, db):
        def live_index_rows():
            read_ts = db.layout.spanner.current_timestamp()
            return {
                key
                for key, _ in db.layout.spanner.snapshot_scan(
                    "IndexEntries", None, None, read_ts
                )
            }

        db.commit([set_op("r/a", {"f1": 1, "f2": 2})])
        before = live_index_rows()
        db.commit([update_op("r/a", {"f1": 99})])  # f2 untouched
        after = live_index_rows()
        assert len(after) == len(before) == 4
        # f2's entries survive untouched; f1's two were replaced
        assert len(before & after) == 2

    def test_delete_removes_index_entries(self, db):
        db.commit([set_op("r/a", {"f1": 1})])
        db.commit([delete_op("r/a")])
        read_ts = db.layout.spanner.current_timestamp()
        rows = list(
            db.layout.spanner.snapshot_scan("IndexEntries", None, None, read_ts)
        )
        assert rows == []


class TestRealtime2PC:
    def test_prepare_and_accept_on_success(self, db):
        db.commit([set_op("r/a", {"x": 1})])
        assert db.realtime.changelog.prepares == 1

    def test_unavailable_cache_fails_write(self, db):
        db.realtime.available = False
        with pytest.raises(Unavailable):
            db.commit([set_op("r/a", {"x": 1})])
        # the write must not have been applied
        db.realtime.available = True
        assert not db.lookup("r/a").exists

    def test_definitive_spanner_failure_sends_failed_accept(self, db):
        accepts = []
        original = db.realtime.accept

        def spy(database_id, handle, outcome, commit_ts, changes):
            accepts.append(outcome)
            original(database_id, handle, outcome, commit_ts, changes)

        db.realtime.accept = spy
        db.layout.spanner.commit_fault_injector = (
            lambda txn_id: inject_definitive_failure()
        )
        with pytest.raises(Aborted):
            db.commit([set_op("r/a", {"x": 1})])
        db.layout.spanner.commit_fault_injector = None
        assert accepts == [WriteOutcome.FAILED]
        assert not db.lookup("r/a").exists

    @pytest.mark.parametrize("applied", [True, False])
    def test_unknown_outcome_notifies_cache(self, db, applied):
        accepts = []
        original = db.realtime.accept

        def spy(database_id, handle, outcome, commit_ts, changes):
            accepts.append(outcome)
            original(database_id, handle, outcome, commit_ts, changes)

        db.realtime.accept = spy
        db.layout.spanner.commit_fault_injector = (
            lambda txn_id: inject_unknown_outcome(applied)
        )
        with pytest.raises(DeadlineExceeded):
            db.commit([set_op("r/a", {"x": 1})])
        db.layout.spanner.commit_fault_injector = None
        assert accepts == [WriteOutcome.UNKNOWN]
        assert db.lookup("r/a").exists is applied


class TestThirdPartyAccess:
    def test_no_rules_denies_third_parties(self, db):
        with pytest.raises(PermissionDenied):
            db.commit([set_op("r/a", {"x": 1})], auth=AuthContext(uid="alice"))
        with pytest.raises(PermissionDenied):
            db.lookup("r/a", auth=AuthContext(uid="alice"))

    def test_privileged_callers_bypass_rules(self, db):
        db.set_rules(
            "service cloud.firestore { match /databases/{d}/documents {"
            " match /r/{id} { allow read, write: if false; } } }"
        )
        db.commit([set_op("r/a", {"x": 1})])  # no auth: privileged
        assert db.lookup("r/a").exists

    def test_query_rules_apply_per_document(self, db):
        db.set_rules(
            "service cloud.firestore { match /databases/{d}/documents {"
            " match /r/{id} { allow read: if resource.data.public == true; } } }"
        )
        db.commit([set_op("r/pub", {"public": True}), set_op("r/priv", {"public": False})])
        alice = AuthContext(uid="alice")
        result = db.run_query(db.query("r").where("public", "==", True), auth=alice)
        assert [p.id for p in result.paths] == ["pub"]
        with pytest.raises(PermissionDenied):
            db.run_query(db.query("r"), auth=alice)


class TestTriggers:
    def test_trigger_delivery(self, db):
        events = []
        db.register_trigger("r", events.append)
        db.commit([set_op("r/a", {"x": 1})])
        assert events == []  # asynchronous: nothing until delivery runs
        delivered = db.deliver_triggers()
        assert delivered == 1
        event = events[0]
        assert str(event.path) == "r/a"
        assert event.is_create
        assert event.new_data == {"x": 1}

    def test_trigger_update_and_delete_deltas(self, db):
        events = []
        db.register_trigger("r", events.append)
        db.commit([set_op("r/a", {"x": 1})])
        db.commit([update_op("r/a", {"x": 2})])
        db.commit([delete_op("r/a")])
        db.deliver_triggers()
        assert [e.is_create for e in events] == [True, False, False]
        assert events[1].old_data == {"x": 1}
        assert events[1].new_data == {"x": 2}
        assert events[2].is_delete

    def test_trigger_scoped_to_collection_group(self, db):
        events = []
        db.register_trigger("r", events.append)
        db.commit([set_op("other/a", {"x": 1})])
        db.deliver_triggers()
        assert events == []

    def test_failed_write_enqueues_nothing(self, db):
        events = []
        db.register_trigger("r", events.append)
        db.commit([set_op("r/existing", {"n": 0})])
        db.deliver_triggers()
        events.clear()
        with pytest.raises(AlreadyExists):
            db.commit([set_op("r/a", {"x": 1}), create_op("r/existing", {})])
        db.deliver_triggers()
        # the atomic commit failed entirely; neither trigger fires
        assert events == []
