"""Index backfill / backremoval tests (paper section IV-D1)."""

import pytest

from repro.errors import FailedPrecondition
from repro.core.backend import set_op
from repro.core.encoding import ASCENDING, DESCENDING
from repro.core.firestore import FirestoreService
from repro.core.index_entries import index_id_prefix
from repro.core.indexes import IndexState


@pytest.fixture
def db():
    return FirestoreService().create_database("backfill-tests")


def index_rows(db, index_id):
    start, end = db.layout.index_scan_range(index_id_prefix(index_id))
    read_ts = db.layout.spanner.current_timestamp()
    return list(db.layout.spanner.snapshot_scan("IndexEntries", start, end, read_ts))


def test_backfill_covers_existing_documents(db):
    for i in range(25):
        db.commit([set_op(f"r/d{i}", {"a": i, "b": i % 3})])
    definition = db.registry.create_composite("r", [("a", ASCENDING), ("b", DESCENDING)])
    stats = db.backfill_service.backfill(definition.index_id)
    assert stats.documents_scanned == 25
    assert stats.entries_added == 25
    assert db.registry.get(definition.index_id).state is IndexState.READY
    assert len(index_rows(db, definition.index_id)) == 25


def test_backfill_skips_docs_missing_fields(db):
    db.commit([set_op("r/full", {"a": 1, "b": 2}), set_op("r/partial", {"a": 1})])
    definition = db.registry.create_composite("r", [("a", ASCENDING), ("b", ASCENDING)])
    db.backfill_service.backfill(definition.index_id)
    rows = index_rows(db, definition.index_id)
    assert [payload for _, payload in rows] == [("r", "full")]


def test_backfill_only_touches_its_collection_group(db):
    db.commit([set_op("r/x", {"a": 1, "b": 2}), set_op("other/y", {"a": 1, "b": 2})])
    definition = db.registry.create_composite("r", [("a", ASCENDING), ("b", ASCENDING)])
    stats = db.backfill_service.backfill(definition.index_id)
    assert stats.entries_added == 1


def test_writes_during_creating_state_conform(db):
    """A doc written while the index is CREATING already has its entry, so
    the backfill must not duplicate it."""
    definition = db.registry.create_composite("r", [("a", ASCENDING), ("b", ASCENDING)])
    db.commit([set_op("r/live", {"a": 1, "b": 2})])  # conforms to backfill
    assert len(index_rows(db, definition.index_id)) == 1
    stats = db.backfill_service.backfill(definition.index_id)
    assert stats.entries_added == 0
    assert len(index_rows(db, definition.index_id)) == 1


def test_query_unusable_until_ready_then_usable(db):
    db.commit([set_op("r/x", {"a": 1, "b": 2})])
    query = db.query("r").where("a", "==", 1).order_by("b", DESCENDING)
    definition = db.registry.create_composite("r", [("a", ASCENDING), ("b", DESCENDING)])
    with pytest.raises(FailedPrecondition):
        db.run_query(query)
    db.backfill_service.backfill(definition.index_id)
    assert [p.id for p in db.run_query(query).paths] == ["x"]


def test_backremoval_deletes_rows_and_definition(db):
    for i in range(10):
        db.commit([set_op(f"r/d{i}", {"a": i, "b": i})])
    definition = db.create_index("r", [("a", ASCENDING), ("b", ASCENDING)])
    assert len(index_rows(db, definition.index_id)) == 10
    stats = db.drop_index(definition.index_id)
    assert stats.entries_removed == 10
    assert index_rows(db, definition.index_id) == []
    with pytest.raises(FailedPrecondition):
        db.registry.get(definition.index_id)


def test_writes_during_deleting_state_conform(db):
    db.commit([set_op("r/a", {"a": 1, "b": 1})])
    definition = db.create_index("r", [("a", ASCENDING), ("b", ASCENDING)])
    db.registry.set_state(definition.index_id, IndexState.DELETING)
    db.commit([set_op("r/b", {"a": 2, "b": 2})])  # must not add an entry
    assert len(index_rows(db, definition.index_id)) == 1  # only the old row


def test_exemption_backremoval(db):
    for i in range(5):
        db.commit([set_op(f"r/d{i}", {"hot": i, "cold": i})])
    asc_id = db.registry.auto_index("r", "hot", ASCENDING).index_id
    assert len(index_rows(db, asc_id)) == 5
    stats = db.exempt_field("r", "hot")
    assert stats.entries_removed == 10  # asc + desc
    assert index_rows(db, asc_id) == []
    # new writes produce no entries for the exempted field
    db.commit([set_op("r/new", {"hot": 99, "cold": 99})])
    assert index_rows(db, asc_id) == []
    # queries on the exempted field now fail
    with pytest.raises(FailedPrecondition):
        db.run_query(db.query("r").where("hot", "==", 1))
    # the other field is unaffected
    assert len(db.run_query(db.query("r").where("cold", "==", 99)).documents) == 1


def test_backfill_batching(db):
    for i in range(25):
        db.commit([set_op(f"r/d{i}", {"a": i, "b": i})])
    db.backfill_service.batch_size = 10
    definition = db.registry.create_composite("r", [("a", ASCENDING), ("b", ASCENDING)])
    stats = db.backfill_service.backfill(definition.index_id)
    assert stats.batches == 3
    assert stats.entries_added == 25
