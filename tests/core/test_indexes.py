import pytest

from repro.errors import FailedPrecondition, InvalidArgument
from repro.core.encoding import ASCENDING, DESCENDING
from repro.core.indexes import (
    IndexField,
    IndexKind,
    IndexMode,
    IndexRegistry,
    IndexState,
)


@pytest.fixture
def registry():
    return IndexRegistry()


class TestAutoIndexes:
    def test_lazily_allocated_and_stable(self, registry):
        first = registry.auto_index("restaurants", "city", ASCENDING)
        again = registry.auto_index("restaurants", "city", ASCENDING)
        assert first.index_id == again.index_id
        assert first.kind is IndexKind.AUTO
        assert first.state is IndexState.READY

    def test_directions_are_distinct_indexes(self, registry):
        asc = registry.auto_index("r", "city", ASCENDING)
        desc = registry.auto_index("r", "city", DESCENDING)
        assert asc.index_id != desc.index_id
        assert desc.fields[0].direction == DESCENDING

    def test_collection_groups_are_distinct(self, registry):
        a = registry.auto_index("restaurants", "city", ASCENDING)
        b = registry.auto_index("hotels", "city", ASCENDING)
        assert a.index_id != b.index_id

    def test_contains_index(self, registry):
        contains = registry.auto_contains_index("r", "tags")
        assert contains.fields[0].mode is IndexMode.CONTAINS
        assert registry.auto_contains_index("r", "tags").index_id == contains.index_id


class TestExemptions:
    def test_add_and_remove(self, registry):
        registry.add_exemption("r", "bigBlob")
        assert registry.is_exempt("r", "bigBlob")
        assert not registry.is_exempt("r", "other")
        assert not registry.is_exempt("other", "bigBlob")
        registry.remove_exemption("r", "bigBlob")
        assert not registry.is_exempt("r", "bigBlob")


class TestComposites:
    def test_create_starts_creating(self, registry):
        definition = registry.create_composite(
            "restaurants", [("city", ASCENDING), ("avgRating", DESCENDING)]
        )
        assert definition.kind is IndexKind.COMPOSITE
        assert definition.state is IndexState.CREATING
        assert definition.field_paths == ("city", "avgRating")

    def test_requires_two_fields(self, registry):
        with pytest.raises(InvalidArgument):
            registry.create_composite("r", [("city", ASCENDING)])

    def test_duplicate_definition_rejected(self, registry):
        fields = [("city", ASCENDING), ("rating", DESCENDING)]
        registry.create_composite("r", fields)
        with pytest.raises(InvalidArgument):
            registry.create_composite("r", fields)

    def test_duplicate_field_rejected(self, registry):
        with pytest.raises(InvalidArgument):
            registry.create_composite("r", [("a", ASCENDING), ("a", DESCENDING)])

    def test_state_transitions(self, registry):
        definition = registry.create_composite("r", [("a", ASCENDING), ("b", ASCENDING)])
        ready = registry.set_state(definition.index_id, IndexState.READY)
        assert ready.state is IndexState.READY
        assert registry.get(definition.index_id).state is IndexState.READY
        assert registry.ready_composites_for("r") == [ready]

    def test_creating_not_in_ready_list(self, registry):
        registry.create_composite("r", [("a", ASCENDING), ("b", ASCENDING)])
        assert registry.ready_composites_for("r") == []
        assert len(registry.composites_for("r")) == 1

    def test_drop(self, registry):
        definition = registry.create_composite("r", [("a", ASCENDING), ("b", ASCENDING)])
        registry.drop(definition.index_id)
        with pytest.raises(FailedPrecondition):
            registry.get(definition.index_id)

    def test_drop_auto_clears_cache(self, registry):
        auto = registry.auto_index("r", "f", ASCENDING)
        registry.drop(auto.index_id)
        fresh = registry.auto_index("r", "f", ASCENDING)
        assert fresh.index_id != auto.index_id


class TestIndexField:
    def test_contains_must_be_ascending(self):
        with pytest.raises(InvalidArgument):
            IndexField("tags", DESCENDING, IndexMode.CONTAINS)

    def test_bad_direction(self):
        with pytest.raises(InvalidArgument):
            IndexField("f", "sideways")

    def test_describe(self, registry):
        definition = registry.create_composite(
            "r", [IndexField("tags", ASCENDING, IndexMode.CONTAINS), IndexField("n", DESCENDING)]
        )
        assert "tags contains" in definition.describe()
        assert "n desc" in definition.describe()

    def test_at_most_one_contains(self, registry):
        with pytest.raises(InvalidArgument):
            registry.create_composite(
                "r",
                [
                    IndexField("a", ASCENDING, IndexMode.CONTAINS),
                    IndexField("b", ASCENDING, IndexMode.CONTAINS),
                ],
            )
