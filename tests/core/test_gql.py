"""GQL compiler tests, anchored on the paper's own query examples."""

import pytest

from repro.errors import InvalidArgument
from repro.core.backend import set_op
from repro.core.firestore import FirestoreService
from repro.core.gql import parse_gql
from repro.core.query import Operator


class TestParsing:
    def test_select_star(self):
        query = parse_gql("select * from restaurants")
        assert str(query.parent) == "restaurants"
        assert query.projection is None
        assert query.filters == ()

    def test_paper_example_one(self):
        query = parse_gql(
            'select * from restaurants where city="SF" and type="BBQ" '
            "order by avgRating desc"
        )
        assert [f.describe() for f in query.filters] == [
            "city == 'SF'",
            "type == 'BBQ'",
        ]
        assert query.orders[0].field_path == "avgRating"
        assert query.orders[0].direction == "desc"

    def test_paper_example_limit(self):
        query = parse_gql('select * from restaurants where city="SF" limit 10')
        assert query.limit == 10

    def test_paper_example_inequality(self):
        query = parse_gql("select * from restaurants where numRatings > 2")
        assert query.filters[0].op is Operator.GT
        assert query.filters[0].value == 2

    def test_projection_fields(self):
        query = parse_gql("select name, avgRating from restaurants")
        assert query.projection == ("name", "avgRating")

    def test_all_literal_types(self):
        query = parse_gql(
            "select * from t where a = 1 and b = 1.5 and c = 'x' "
            "and d = true and e = false and f = null"
        )
        values = [f.value for f in query.filters]
        assert values == [1, 1.5, "x", True, False, None]

    def test_double_quotes_and_escapes(self):
        query = parse_gql("select * from t where a = \"it\\\"s\"")
        assert query.filters[0].value == 'it"s'

    def test_contains(self):
        query = parse_gql("select * from t where tags contains 'bbq'")
        assert query.filters[0].op is Operator.ARRAY_CONTAINS

    def test_multiple_orders_and_offset(self):
        query = parse_gql(
            "select * from t order by a desc, b limit 5 offset 2"
        )
        assert [(o.field_path, o.direction) for o in query.orders] == [
            ("a", "desc"),
            ("b", "asc"),
        ]
        assert query.limit == 5 and query.offset == 2

    def test_subcollection_path(self):
        query = parse_gql("select * from restaurants/one/ratings")
        assert str(query.parent) == "restaurants/one/ratings"

    def test_dotted_field_paths(self):
        query = parse_gql("select * from t where address.city = 'SF'")
        assert query.filters[0].field_path == "address.city"

    def test_case_insensitive_keywords(self):
        query = parse_gql("SELECT * FROM t WHERE a = 1 ORDER BY a LIMIT 1")
        assert query.limit == 1


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "selct * from t",
            "select * from",
            "select * from t where",
            "select * from t where a ~ 1",
            "select * from t where a = ",
            "select * from t limit 1.5",
            "select * from t bogus trailing",
            "select * from t where a != 1",
            "select * from t/doc",  # document path, not a collection
        ],
    )
    def test_rejected(self, bad):
        with pytest.raises(InvalidArgument):
            parse_gql(bad)


class TestExecution:
    @pytest.fixture(scope="class")
    def db(self):
        database = FirestoreService().create_database("gql-tests")
        rows = [
            ("one", {"city": "SF", "type": "BBQ", "avgRating": 4.5, "numRatings": 10}),
            ("two", {"city": "SF", "type": "Noodles", "avgRating": 4.8, "numRatings": 3}),
            ("three", {"city": "NY", "type": "BBQ", "avgRating": 3.9, "numRatings": 7}),
        ]
        for doc_id, data in rows:
            database.commit([set_op(f"restaurants/{doc_id}", data)])
        return database

    def test_gql_equals_builder(self, db):
        via_gql = db.run_query(db.gql('select * from restaurants where city="SF"'))
        via_builder = db.run_query(db.query("restaurants").where("city", "==", "SF"))
        assert [p.id for p in via_gql.paths] == [p.id for p in via_builder.paths]

    def test_gql_zigzag(self, db):
        result = db.run_query(
            db.gql('select * from restaurants where city="SF" and type="BBQ"')
        )
        assert [p.id for p in result.paths] == ["one"]

    def test_gql_inequality_with_order(self, db):
        result = db.run_query(
            db.gql("select * from restaurants where numRatings > 2 "
                   "order by numRatings desc")
        )
        assert [p.id for p in result.paths] == ["one", "three", "two"]

    def test_gql_projection(self, db):
        result = db.run_query(
            db.gql('select avgRating from restaurants where city="SF" limit 1')
        )
        assert set(result.documents[0].data) == {"avgRating"}
