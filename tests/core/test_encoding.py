import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidArgument
from repro.core.encoding import (
    ASCENDING,
    DESCENDING,
    decode_doc_name,
    decode_skip_value,
    encode_doc_name,
    encode_tuple,
    encode_value,
    prefix_successor,
)
from repro.core.values import GeoPoint, Reference, Timestamp, compare_values

from tests.core.test_values import firestore_values


SAMPLES = [
    None,
    False,
    True,
    float("nan"),
    float("-inf"),
    -(2**62),
    -1.5,
    0,
    0.5,
    1,
    2**60,
    2**60 + 1,
    float("inf"),
    Timestamp(-5),
    Timestamp(0),
    Timestamp(10**15),
    "",
    "a",
    "a\x00b",
    "ab",
    "b",
    b"",
    b"\x00",
    b"\x00\x01",
    b"\x01",
    Reference("a"),
    Reference("a/b"),
    Reference("ab"),
    GeoPoint(-10, 5),
    GeoPoint(0, 0),
    [],
    [1],
    [1, 2],
    [2],
    {},
    {"a": 1},
    {"a": 1, "b": 2},
    {"b": 0},
]


class TestOrderPreservation:
    def test_samples_pairwise_ascending(self):
        for a in SAMPLES:
            for b in SAMPLES:
                cmp = compare_values(a, b)
                ea, eb = encode_value(a), encode_value(b)
                enc_cmp = (ea > eb) - (ea < eb)
                assert enc_cmp == cmp, (a, b)

    def test_samples_pairwise_descending(self):
        for a in SAMPLES:
            for b in SAMPLES:
                cmp = compare_values(a, b)
                ea = encode_value(a, DESCENDING)
                eb = encode_value(b, DESCENDING)
                enc_cmp = (ea > eb) - (ea < eb)
                assert enc_cmp == -cmp, (a, b)

    def test_equal_values_encode_identically(self):
        assert encode_value(5) == encode_value(5.0)
        assert encode_value(-0.0) == encode_value(0.0)
        assert encode_value(float("nan")) == encode_value(float("nan"))


class TestSelfDelimiting:
    @pytest.mark.parametrize("value", SAMPLES)
    def test_skip_value_consumes_exactly(self, value):
        encoded = encode_value(value)
        assert decode_skip_value(encoded, 0) == len(encoded)

    def test_skip_value_in_concatenation(self):
        encoded = encode_value("abc") + encode_value([1, {"k": b"\x00"}]) + encode_value(7)
        offset = decode_skip_value(encoded, 0)
        offset = decode_skip_value(encoded, offset)
        offset = decode_skip_value(encoded, offset)
        assert offset == len(encoded)

    def test_no_encoding_is_a_prefix_of_another(self):
        encodings = [encode_value(v) for v in SAMPLES]
        for i, a in enumerate(encodings):
            for j, b in enumerate(encodings):
                if a != b:
                    assert not b.startswith(a), (SAMPLES[i], SAMPLES[j])


class TestTuples:
    def test_tuple_mixed_directions(self):
        # (city asc, rating desc): same city, higher rating first
        t1 = encode_tuple(["SF", 4.8], [ASCENDING, DESCENDING])
        t2 = encode_tuple(["SF", 4.5], [ASCENDING, DESCENDING])
        t3 = encode_tuple(["NY", 5.0], [ASCENDING, DESCENDING])
        assert t3 < t1 < t2

    def test_tuple_length_mismatch(self):
        with pytest.raises(InvalidArgument):
            encode_tuple([1, 2], [ASCENDING])


class TestDocNames:
    def test_roundtrip(self):
        segments = ("restaurants", "one", "ratings", "2")
        encoded = encode_doc_name(segments)
        decoded, end = decode_doc_name(encoded)
        assert decoded == segments
        assert end == len(encoded)

    def test_roundtrip_with_nul_and_unicode(self):
        segments = ("c\x00l", "δοκ")
        decoded, _ = decode_doc_name(encode_doc_name(segments))
        assert decoded == segments

    def test_segmentwise_order(self):
        assert encode_doc_name(("a", "b")) < encode_doc_name(("ab",))
        assert encode_doc_name(("a",)) < encode_doc_name(("a", "b"))

    def test_descending_complements(self):
        a = encode_doc_name(("a",), DESCENDING)
        b = encode_doc_name(("b",), DESCENDING)
        assert b < a

    def test_truncated_rejected(self):
        encoded = encode_doc_name(("abc",))
        with pytest.raises(InvalidArgument):
            decode_doc_name(encoded[:-1][:-1] or b"\x01")


class TestPrefixSuccessor:
    def test_simple(self):
        assert prefix_successor(b"ab") == b"ac"

    def test_trailing_ff(self):
        assert prefix_successor(b"a\xff\xff") == b"b"

    def test_all_ff_unbounded(self):
        assert prefix_successor(b"\xff\xff") is None

    def test_bounds_prefix_range(self):
        prefix = b"key\x42"
        successor = prefix_successor(prefix)
        assert prefix < prefix + b"\x00" < prefix + b"\xff" * 4 < successor


def test_unknown_direction_rejected():
    with pytest.raises(InvalidArgument):
        encode_value(1, "sideways")


@settings(max_examples=300, deadline=None)
@given(a=firestore_values(), b=firestore_values())
def test_property_encoding_matches_compare(a, b):
    cmp = compare_values(a, b)
    ea, eb = encode_value(a), encode_value(b)
    assert ((ea > eb) - (ea < eb)) == cmp


@settings(max_examples=200, deadline=None)
@given(value=firestore_values())
def test_property_skip_value_total(value):
    encoded = encode_value(value)
    assert decode_skip_value(encoded, 0) == len(encoded)


@settings(max_examples=200, deadline=None)
@given(
    segments=st.lists(
        st.text(min_size=1, max_size=6).filter(lambda s: "/" not in s and s not in (".", "..")),
        min_size=1,
        max_size=4,
    )
)
def test_property_doc_name_roundtrip_and_order(segments):
    encoded = encode_doc_name(tuple(segments))
    decoded, end = decode_doc_name(encoded)
    assert decoded == tuple(segments)
    assert end == len(encoded)
