"""WriteBatch and client convenience-API tests."""

import pytest

from repro.errors import AlreadyExists, InvalidArgument, PermissionDenied, Unavailable
from repro.core.backend import AuthContext, set_op
from repro.core.firestore import FirestoreService
from repro.client import MobileClient


@pytest.fixture
def db():
    return FirestoreService().create_database("batch-tests")


class TestWriteBatch:
    def test_batch_commits_atomically(self, db):
        outcome = (
            db.batch()
            .set("r/a", {"n": 1})
            .set("r/b", {"n": 2})
            .update("r/a", {"m": 3})
            .commit()
        )
        assert outcome.write_count == 3
        assert db.lookup("r/a").data == {"n": 1, "m": 3}

    def test_batch_failure_applies_nothing(self, db):
        db.commit([set_op("r/existing", {})])
        batch = db.batch().set("r/new", {"n": 1}).create("r/existing", {})
        with pytest.raises(AlreadyExists):
            batch.commit()
        assert not db.lookup("r/new").exists

    def test_batch_delete(self, db):
        db.commit([set_op("r/a", {})])
        db.batch().delete("r/a").commit()
        assert not db.lookup("r/a").exists

    def test_double_commit_rejected(self, db):
        batch = db.batch().set("r/a", {})
        batch.commit()
        with pytest.raises(InvalidArgument):
            batch.commit()
        with pytest.raises(InvalidArgument):
            batch.set("r/b", {})

    def test_size_cap(self, db):
        batch = db.batch()
        for i in range(500):
            batch.set(f"r/d{i}", {"n": i})
        with pytest.raises(InvalidArgument):
            batch.set("r/overflow", {})
        assert len(batch) == 500

    def test_batch_respects_rules(self, db):
        db.set_rules(
            "service cloud.firestore { match /databases/{d}/documents {"
            " match /r/{id} { allow write: if false; } } }"
        )
        with pytest.raises(PermissionDenied):
            db.batch().set("r/a", {}).commit(auth=AuthContext(uid="alice"))


class TestClientGetSource:
    def test_source_cache_never_hits_server(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        client.get("notes/a")  # warm
        reads_before = client.server_reads
        snapshot = client.get("notes/a", source="cache")
        assert snapshot.from_cache
        assert client.server_reads == reads_before

    def test_source_cache_miss_fails_even_online(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        with pytest.raises(Unavailable):
            client.get("notes/a", source="cache")

    def test_source_server_fails_offline(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        client.get("notes/a")
        client.disconnect()
        with pytest.raises(Unavailable):
            client.get("notes/a", source="server")
        assert client.get("notes/a").from_cache  # default degrades

    def test_unknown_source_rejected(self, db):
        client = MobileClient(db)
        with pytest.raises(InvalidArgument):
            client.get("notes/a", source="psychic")


class TestWaitForPendingWrites:
    def test_online_waits_until_flushed(self, db):
        client = MobileClient(db)
        client.set("notes/a", {"v": 1})
        assert client.wait_for_pending_writes() is True
        assert db.lookup("notes/a").exists

    def test_offline_reports_outstanding(self, db):
        client = MobileClient(db)
        client.disconnect()
        client.set("notes/a", {"v": 1})
        assert client.wait_for_pending_writes() is False
        client.connect()
        assert client.wait_for_pending_writes() is True
