"""Query execution end-to-end tests, including model-based verification
against a brute-force reference evaluator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.encoding import ASCENDING, DESCENDING
from repro.core.firestore import FirestoreService
from repro.core.backend import set_op
from repro.core.path import Path
from repro.core.query import Query
from repro.core.values import SortKey, get_field
from repro.realtime.matcher import document_matches_query

RESTAURANTS = [
    ("one", {"name": "Burger Palace", "city": "SF", "type": "BBQ", "avgRating": 4.5, "numRatings": 10}),
    ("two", {"name": "Noodle Hut", "city": "SF", "type": "Noodles", "avgRating": 4.8, "numRatings": 3}),
    ("three", {"name": "NY Grill", "city": "New York", "type": "BBQ", "avgRating": 3.9, "numRatings": 7}),
    ("four", {"name": "Quiet Cafe", "city": "SF", "type": "Cafe", "avgRating": 4.5, "numRatings": 2}),
    ("five", {"name": "Taco Stand", "city": "LA", "type": "Mexican", "avgRating": 4.1, "numRatings": 50}),
    ("six", {"name": "Unrated", "city": "SF", "type": "BBQ"}),  # no ratings fields
    ("seven", {"name": "Tagged", "city": "LA", "type": "BBQ", "avgRating": 2.0,
               "numRatings": 1, "tags": ["cheap", "late-night"]}),
]


@pytest.fixture(scope="module")
def db():
    service = FirestoreService()
    database = service.create_database("executor-tests")
    for doc_id, data in RESTAURANTS:
        database.commit([set_op(f"restaurants/{doc_id}", data)])
    # sub-collection documents must never leak into parent queries
    database.commit([set_op("restaurants/one/ratings/1", {"rating": 5, "city": "SF"})])
    database.create_index(
        "restaurants", [("city", ASCENDING), ("avgRating", DESCENDING)]
    )
    database.create_index(
        "restaurants", [("type", ASCENDING), ("avgRating", DESCENDING)]
    )
    database.create_index(
        "restaurants", [("city", ASCENDING), ("numRatings", ASCENDING)]
    )
    return database


def ids(result):
    return [path.id for path in result.paths]


def query(db) -> Query:
    return db.query("restaurants")


class TestEntitiesScans:
    def test_all_documents_name_order(self, db):
        result = db.run_query(query(db))
        assert ids(result) == ["five", "four", "one", "seven", "six", "three", "two"]

    def test_subcollection_docs_excluded(self, db):
        assert "1" not in ids(db.run_query(query(db)))

    def test_name_desc(self, db):
        result = db.run_query(query(db).order_by("__name__", DESCENDING))
        assert ids(result) == ["two", "three", "six", "seven", "one", "four", "five"]

    def test_limit_and_offset(self, db):
        result = db.run_query(query(db).limit_to(2).offset_by(1))
        assert ids(result) == ["four", "one"]

    def test_subcollection_query(self, db):
        result = db.run_query(db.query("restaurants/one/ratings"))
        assert ids(result) == ["1"]


class TestSingleFieldQueries:
    def test_equality(self, db):
        result = db.run_query(query(db).where("city", "==", "SF"))
        assert ids(result) == ["four", "one", "six", "two"]

    def test_equality_no_match(self, db):
        assert ids(db.run_query(query(db).where("city", "==", "Tokyo"))) == []

    def test_inequality_implied_order(self, db):
        result = db.run_query(query(db).where("numRatings", ">", 2))
        # ordered by numRatings ascending: three(7), one(10), five(50)... plus two(3)
        assert ids(result) == ["two", "three", "one", "five"]

    def test_inequality_excludes_docs_missing_field(self, db):
        result = db.run_query(query(db).where("numRatings", ">", 0))
        assert "six" not in ids(result)

    def test_range_both_bounds(self, db):
        result = db.run_query(
            query(db).where("numRatings", ">=", 3).where("numRatings", "<", 10)
        )
        assert ids(result) == ["two", "three"]

    def test_order_by_desc_with_limit(self, db):
        result = db.run_query(query(db).order_by("avgRating", DESCENDING).limit_to(2))
        assert ids(result) == ["two", "one"]

    def test_equal_order_values_tiebreak_by_name(self, db):
        result = db.run_query(query(db).where("avgRating", "==", 4.5))
        assert ids(result) == ["four", "one"]

    def test_array_contains(self, db):
        result = db.run_query(query(db).where("tags", "array-contains", "cheap"))
        assert ids(result) == ["seven"]


class TestCompositeAndJoins:
    def test_composite_eq_plus_order(self, db):
        result = db.run_query(
            query(db).where("city", "==", "SF").order_by("avgRating", DESCENDING)
        )
        assert ids(result) == ["two", "one", "four"]  # name tiebreak follows desc

    def test_composite_reversed_scan(self, db):
        result = db.run_query(
            query(db).where("city", "==", "SF").order_by("avgRating", ASCENDING)
        )
        assert ids(result) == ["four", "one", "two"]  # asc order, asc name tiebreak

    def test_zigzag_two_equalities(self, db):
        result = db.run_query(
            query(db).where("city", "==", "SF").where("type", "==", "BBQ")
        )
        assert ids(result) == ["one", "six"]

    def test_paper_join_with_order(self, db):
        result = db.run_query(
            query(db)
            .where("city", "==", "New York")
            .where("type", "==", "BBQ")
            .order_by("avgRating", DESCENDING)
        )
        assert ids(result) == ["three"]

    def test_zigzag_empty_intersection(self, db):
        result = db.run_query(
            query(db).where("city", "==", "New York").where("type", "==", "Cafe")
        )
        assert ids(result) == []

    def test_composite_eq_plus_inequality(self, db):
        result = db.run_query(
            query(db).where("city", "==", "SF").where("numRatings", ">", 2)
        )
        assert ids(result) == ["two", "one"]


class TestProjectionsAndCursors:
    def test_projection(self, db):
        result = db.run_query(
            query(db).where("city", "==", "SF").select("name", "avgRating")
        )
        for doc in result.documents:
            assert set(doc.data) <= {"name", "avgRating"}
        assert result.documents[0].data["name"]

    def test_projection_of_missing_field(self, db):
        result = db.run_query(query(db).where("city", "==", "SF").select("nope"))
        assert all(doc.data == {} for doc in result.documents)

    def test_start_after_cursor(self, db):
        ordered = query(db).order_by("avgRating", DESCENDING)
        result = db.run_query(ordered.start_after(4.5, "one"))
        assert ids(result) == ["four", "five", "three", "seven"]

    def test_start_at_cursor(self, db):
        ordered = query(db).order_by("avgRating", DESCENDING)
        result = db.run_query(ordered.start_at(4.5, "one"))
        assert ids(result) == ["one", "four", "five", "three", "seven"]

    def test_end_before_cursor(self, db):
        ordered = query(db).order_by("avgRating", DESCENDING)
        result = db.run_query(ordered.end_before(4.1))
        assert ids(result) == ["two", "one", "four"]  # name tiebreak follows desc

    def test_cursor_on_name_in_entities_scan(self, db):
        result = db.run_query(query(db).start_after("four"))
        assert ids(result)[0] == "one"


class TestPartialResults:
    def test_max_work_returns_partial_with_resume(self, db):
        q = query(db)
        first = db.run_query(q, max_work=3)
        assert first.partial
        assert first.resume_token is not None
        assert 0 < len(first.documents) <= 3
        rest = db.run_query(q, resume_token=first.resume_token)
        combined = [p.id for p in first.paths] + [p.id for p in rest.paths]
        assert combined == ids(db.run_query(q))

    def test_unlimited_work_not_partial(self, db):
        assert not db.run_query(query(db)).partial


class TestConsistency:
    def test_reads_at_old_timestamp_see_old_data(self, db):
        before = db.layout.spanner.current_timestamp()
        db.commit([set_op("restaurants/new", {"city": "SF", "avgRating": 5.0})])
        old = db.run_query(query(db).where("city", "==", "SF"), read_ts=before)
        now = db.run_query(query(db).where("city", "==", "SF"))
        assert "new" not in ids(old)
        assert "new" in ids(now)
        db.commit([__import__("repro.core.backend", fromlist=["delete_op"]).delete_op("restaurants/new")])

    def test_document_times_populated(self, db):
        result = db.run_query(query(db).limit_to(1))
        doc = result.documents[0]
        assert doc.create_time > 0
        assert doc.update_time >= doc.create_time


# -- model-based verification ------------------------------------------------------


def brute_force(db, q: Query):
    """Reference evaluation: filter + sort every stored document."""
    normalized = q.normalize()
    everything = db.run_query(db.query("restaurants"))
    matching = [
        doc
        for doc in everything.documents
        if document_matches_query(normalized, doc.path, doc.data)
    ]
    from repro.realtime.frontend import query_order_key

    key = query_order_key(normalized)
    matching.sort(key=lambda doc: key((doc.path, doc.data)))
    if q.offset:
        matching = matching[q.offset :]
    if q.limit is not None:
        matching = matching[: q.limit]
    return [doc.path.id for doc in matching]


FIELDS = st.sampled_from(["city", "type", "avgRating", "numRatings"])
VALUES = {
    "city": st.sampled_from(["SF", "LA", "New York", "Tokyo"]),
    "type": st.sampled_from(["BBQ", "Cafe", "Noodles"]),
    "avgRating": st.sampled_from([2.0, 3.9, 4.1, 4.5, 4.8]),
    "numRatings": st.sampled_from([1, 2, 3, 7, 10, 50]),
}


@settings(max_examples=120, deadline=None)
@given(data=st.data())
def test_property_matches_brute_force(db, data):
    q = query(db)
    eq_fields = data.draw(
        st.lists(FIELDS, unique=True, max_size=2), label="eq_fields"
    )
    for field in eq_fields:
        q = q.where(field, "==", data.draw(VALUES[field], label=f"eq_{field}"))
    remaining = [f for f in ("avgRating", "numRatings") if f not in eq_fields]
    if remaining and data.draw(st.booleans(), label="use_ineq"):
        field = data.draw(st.sampled_from(remaining), label="ineq_field")
        op = data.draw(st.sampled_from([">", ">=", "<", "<="]), label="op")
        q = q.where(field, op, data.draw(VALUES[field], label="ineq_value"))
        if data.draw(st.booleans(), label="explicit_order"):
            q = q.order_by(field, data.draw(st.sampled_from(["asc", "desc"]), label="dir"))
    if data.draw(st.booleans(), label="use_limit"):
        q = q.limit_to(data.draw(st.integers(0, 5), label="limit"))

    try:
        expected = brute_force(db, q)
    except Exception:
        return  # invalid query combination; planner errors are fine
    from repro.errors import FailedPrecondition

    try:
        actual = ids(db.run_query(q))
    except FailedPrecondition:
        return  # legitimately needs an index we have not defined
    assert actual == expected, q.describe()
