"""FirestoreService-level tests: multi-tenancy over shared Spanner."""

import pytest

from repro.errors import AlreadyExists, InvalidArgument, NotFound
from repro.core.backend import set_op
from repro.core.firestore import SPANNER_DATABASES_PER_REGION, FirestoreService


@pytest.fixture
def service():
    return FirestoreService()


def test_create_and_fetch_database(service):
    db = service.create_database("app-one")
    assert service.database("app-one") is db
    assert service.database_count == 1


def test_duplicate_database_rejected(service):
    service.create_database("app")
    with pytest.raises(AlreadyExists):
        service.create_database("app")


def test_empty_database_id_rejected(service):
    with pytest.raises(InvalidArgument):
        service.create_database("")


def test_unknown_database(service):
    with pytest.raises(NotFound):
        service.database("ghost")


def test_few_spanner_databases_shared_by_many(service):
    """Millions of Firestore databases share a small number of Spanner
    databases (paper section IV-D1, footnote 3)."""
    for i in range(20):
        service.create_database(f"tenant-{i}")
    assert len(service.spanner_databases) == SPANNER_DATABASES_PER_REGION
    used = {id(service.database(f"tenant-{i}").layout.spanner) for i in range(20)}
    assert len(used) == SPANNER_DATABASES_PER_REGION  # spread across all


def test_tenants_are_isolated_keyspaces(service):
    a = service.create_database("tenant-a")
    b = service.create_database("tenant-b")
    a.commit([set_op("docs/x", {"owner": "a"})])
    b.commit([set_op("docs/x", {"owner": "b"})])
    assert a.lookup("docs/x").data == {"owner": "a"}
    assert b.lookup("docs/x").data == {"owner": "b"}
    # queries see only the tenant's own documents
    assert len(a.run_query(a.query("docs")).documents) == 1


def test_tenant_indexes_are_isolated(service):
    a = service.create_database("idx-a")
    b = service.create_database("idx-b")
    a.commit([set_op("docs/x", {"n": 1})])
    b.commit([set_op("docs/y", {"n": 1})])
    result = a.run_query(a.query("docs").where("n", "==", 1))
    assert [p.id for p in result.paths] == ["x"]


def test_tenants_may_share_spanner_tablets(service):
    """Contiguous directories within shared tables: the multi-tenant
    layout the paper describes."""
    tenants = [service.create_database(f"t{i}") for i in range(8)]
    for tenant in tenants:
        tenant.commit([set_op("docs/d", {"v": 1})])
    shared = service.spanner_databases[0]
    assert shared.total_rows() > 0


def test_storage_and_document_count(service):
    db = service.create_database("stats")
    assert db.document_count() == 0
    assert db.storage_bytes() == 0
    db.commit([set_op("docs/a", {"blob": "x" * 1000})])
    db.commit([set_op("docs/b", {"blob": "y" * 1000})])
    assert db.document_count() == 2
    assert db.storage_bytes() > 2000


def test_run_maintenance_splits_hot_tablets(service):
    db = service.create_database("hot")
    for i in range(200):
        db.commit([set_op(f"docs/d{i:04d}", {"n": i})])
    spanner = db.layout.spanner
    from repro.spanner.splitting import SplitPolicy

    service.splitters[service.spanner_databases.index(spanner)].policy = SplitPolicy(
        max_rows=100, hot_load=1e12
    )
    before = len(spanner.tablets)
    service.run_maintenance()
    assert len(spanner.tablets) > before
    # data remains intact across the split
    assert db.document_count() == 200


def test_regional_vs_multiregional_latency_models():
    regional = FirestoreService(region="us-east1", multi_region=False)
    multi = FirestoreService(region="nam5", multi_region=True)
    assert multi.latency.quorum_us > regional.latency.quorum_us


def test_clock_is_shared_across_components(service):
    db = service.create_database("clocked")
    assert db.layout.spanner.clock is service.clock
    assert db.realtime.clock is service.clock
