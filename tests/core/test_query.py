import pytest

from repro.errors import InvalidArgument
from repro.core.encoding import ASCENDING, DESCENDING
from repro.core.path import Path
from repro.core.query import (
    Filter,
    NAME_FIELD,
    Operator,
    Order,
    Query,
    matches_filter,
)


def base_query() -> Query:
    return Query(parent=Path.parse("restaurants"))


class TestBuilder:
    def test_where_accepts_string_ops(self):
        q = base_query().where("city", "==", "SF").where("rating", ">", 3)
        assert q.filters[0].op is Operator.EQ
        assert q.filters[1].op is Operator.GT

    def test_builder_is_immutable(self):
        q = base_query()
        q2 = q.where("city", "==", "SF")
        assert q.filters == ()
        assert len(q2.filters) == 1

    def test_rejects_collection_parent_mismatch(self):
        with pytest.raises(InvalidArgument):
            Query(parent=Path.parse("restaurants/one"))

    def test_rejects_negative_limit_offset(self):
        with pytest.raises(InvalidArgument):
            base_query().limit_to(-1)
        with pytest.raises(InvalidArgument):
            base_query().offset_by(-1)

    def test_rejects_inequality_on_arrays(self):
        with pytest.raises(InvalidArgument):
            base_query().where("tags", ">", [1])


class TestNormalization:
    def test_single_inequality_field_enforced(self):
        q = base_query().where("a", ">", 1).where("b", "<", 2)
        with pytest.raises(InvalidArgument):
            q.normalize()

    def test_multiple_inequalities_same_field_ok(self):
        q = base_query().where("a", ">", 1).where("a", "<", 10)
        normalized = q.normalize()
        assert len(normalized.inequalities) == 2
        assert normalized.ineq_field == "a"

    def test_inequality_must_match_first_order(self):
        q = base_query().where("a", ">", 1).order_by("b")
        with pytest.raises(InvalidArgument):
            q.normalize()

    def test_inequality_implies_order(self):
        normalized = base_query().where("a", ">", 1).normalize()
        assert normalized.core_orders == (Order("a", ASCENDING),)

    def test_name_tiebreak_follows_last_order(self):
        asc = base_query().order_by("r", ASCENDING).normalize()
        assert asc.name_direction == ASCENDING
        desc = base_query().order_by("r", DESCENDING).normalize()
        assert desc.name_direction == DESCENDING

    def test_no_orders_name_asc(self):
        assert base_query().normalize().name_direction == ASCENDING

    def test_explicit_name_order(self):
        normalized = base_query().order_by(NAME_FIELD, DESCENDING).normalize()
        assert normalized.core_orders == ()
        assert normalized.name_direction == DESCENDING

    def test_name_order_must_be_last(self):
        q = base_query().order_by(NAME_FIELD).order_by("a")
        with pytest.raises(InvalidArgument):
            q.normalize()

    def test_duplicate_equality_rejected(self):
        q = base_query().where("a", "==", 1).where("a", "==", 2)
        with pytest.raises(InvalidArgument):
            q.normalize()

    def test_duplicate_orders_rejected(self):
        q = base_query().order_by("a").order_by("a", DESCENDING)
        with pytest.raises(InvalidArgument):
            q.normalize()

    def test_at_most_one_array_contains(self):
        q = (
            base_query()
            .where("tags", "array-contains", "x")
            .where("more", "array-contains", "y")
        )
        with pytest.raises(InvalidArgument):
            q.normalize()

    def test_name_filters_rejected(self):
        q = base_query().where(NAME_FIELD, "==", "x")
        with pytest.raises(InvalidArgument):
            q.normalize()

    def test_flipped_suffix(self):
        normalized = base_query().order_by("a").order_by("b", DESCENDING).normalize()
        assert normalized.flipped_suffix() == (
            Order("a", DESCENDING),
            Order("b", ASCENDING),
        )

    def test_cursor_arity_checked(self):
        q = base_query().order_by("a").start_at(1, "docid", "extra")
        with pytest.raises(InvalidArgument):
            q.normalize()


class TestMatchesFilter:
    def test_eq(self):
        assert matches_filter({"a": 5}, Filter("a", Operator.EQ, 5.0))
        assert not matches_filter({"a": 5}, Filter("a", Operator.EQ, 6))
        assert not matches_filter({}, Filter("a", Operator.EQ, 5))

    def test_inequalities_same_type_only(self):
        assert matches_filter({"a": 5}, Filter("a", Operator.GT, 3))
        # a string never matches a numeric inequality
        assert not matches_filter({"a": "zzz"}, Filter("a", Operator.GT, 3))

    def test_dotted_paths(self):
        assert matches_filter({"m": {"x": 1}}, Filter("m.x", Operator.EQ, 1))

    def test_array_contains(self):
        flt = Filter("tags", Operator.ARRAY_CONTAINS, "bbq")
        assert matches_filter({"tags": ["bbq", "cheap"]}, flt)
        assert not matches_filter({"tags": ["fancy"]}, flt)
        assert not matches_filter({"tags": "bbq"}, flt)

    def test_all_inequality_ops(self):
        data = {"n": 5}
        assert matches_filter(data, Filter("n", Operator.GE, 5))
        assert matches_filter(data, Filter("n", Operator.LE, 5))
        assert not matches_filter(data, Filter("n", Operator.LT, 5))
        assert not matches_filter(data, Filter("n", Operator.GT, 5))


def test_describe_mentions_parts():
    q = base_query().where("city", "==", "SF").order_by("r", DESCENDING).limit_to(3)
    text = q.describe()
    assert "city" in text and "limit 3" in text
