import math

import pytest
from hypothesis import given, settings

from repro.errors import InvalidArgument
from repro.core.serialization import deserialize_document, serialize_document
from repro.core.values import GeoPoint, Reference, Timestamp

from tests.core.test_values import firestore_values


def roundtrip(data: dict) -> dict:
    return deserialize_document(serialize_document(data))


def test_roundtrip_all_types():
    data = {
        "null": None,
        "bool_t": True,
        "bool_f": False,
        "int": -(2**62),
        "double": 3.14159,
        "ts": Timestamp(1234567),
        "str": "hello δοκ",
        "bytes": b"\x00\xff",
        "ref": Reference("restaurants/one"),
        "geo": GeoPoint(-45.5, 120.25),
        "arr": [1, "two", None, [0]] if False else [1, "two", None],
        "map": {"nested": {"deep": [True]}},
        "empty_map": {},
        "empty_arr": [],
        "empty_str": "",
    }
    assert roundtrip(data) == data


def test_roundtrip_preserves_int_float_distinction():
    out = roundtrip({"i": 5, "f": 5.0})
    assert isinstance(out["i"], int)
    assert isinstance(out["f"], float)


def test_roundtrip_special_floats():
    out = roundtrip({"inf": float("inf"), "ninf": float("-inf"), "nan": float("nan")})
    assert out["inf"] == float("inf")
    assert out["ninf"] == float("-inf")
    assert math.isnan(out["nan"])


def test_roundtrip_negative_zero():
    out = roundtrip({"z": -0.0})
    assert math.copysign(1, out["z"]) == -1


def test_rejects_non_map_document():
    with pytest.raises(InvalidArgument):
        serialize_document([1, 2])  # type: ignore[arg-type]


def test_rejects_trailing_bytes():
    raw = serialize_document({"a": 1}) + b"\x00"
    with pytest.raises(InvalidArgument):
        deserialize_document(raw)


def test_rejects_truncation():
    raw = serialize_document({"a": "hello"})
    with pytest.raises(InvalidArgument):
        deserialize_document(raw[:-2])


def test_rejects_unknown_wire_type():
    with pytest.raises(InvalidArgument):
        deserialize_document(b"\xfa")


def test_compactness():
    """The binary format should be smaller than a debug repr."""
    data = {"field": "x" * 100, "n": 12345}
    assert len(serialize_document(data)) < len(repr(data).encode())


@settings(max_examples=300, deadline=None)
@given(value=firestore_values())
def test_property_roundtrip(value):
    data = {"v": value}
    out = roundtrip(data)
    # NaN breaks ==; compare through Firestore semantics
    from repro.core.values import values_equal

    assert values_equal(out["v"], value) or out == data
