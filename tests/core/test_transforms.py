"""Field transform tests: increment, array union/remove, server timestamp."""

import pytest

from repro.errors import InvalidArgument
from repro.core.backend import set_op, update_op
from repro.core.firestore import FirestoreService
from repro.core.values import (
    SERVER_TIMESTAMP,
    Timestamp,
    apply_transform,
    array_remove,
    array_union,
    increment,
)
from repro.client import MobileClient


@pytest.fixture
def db():
    return FirestoreService().create_database("transform-tests")


class TestTransformPrimitives:
    def test_increment_on_number(self):
        assert apply_transform(increment(5), 10) == 15
        assert apply_transform(increment(-2.5), 1.0) == -1.5

    def test_increment_on_missing_or_non_numeric(self):
        assert apply_transform(increment(3), None) == 3
        assert apply_transform(increment(3), "text") == 3
        assert apply_transform(increment(3), True) == 3  # bools are not numbers

    def test_increment_validation(self):
        with pytest.raises(InvalidArgument):
            increment("five")
        with pytest.raises(InvalidArgument):
            increment(True)

    def test_array_union(self):
        assert apply_transform(array_union(3, 4), [1, 2, 3]) == [1, 2, 3, 4]
        assert apply_transform(array_union(1), None) == [1]
        assert apply_transform(array_union(1), "not-an-array") == [1]

    def test_array_union_firestore_equality(self):
        # 5 and 5.0 are equal values; the union must not duplicate
        assert apply_transform(array_union(5.0), [5]) == [5]

    def test_array_remove(self):
        assert apply_transform(array_remove(2, 9), [1, 2, 3, 2]) == [1, 3]
        assert apply_transform(array_remove(1), None) == []

    def test_unknown_kind_rejected(self):
        from repro.core.values import FieldTransform

        with pytest.raises(InvalidArgument):
            FieldTransform("bogus", 1)


class TestServerSideResolution:
    def test_increment_in_update(self, db):
        db.commit([set_op("counters/c", {"n": 10})])
        db.commit([update_op("counters/c", {"n": increment(5)})])
        assert db.lookup("counters/c").data["n"] == 15

    def test_increment_creates_field(self, db):
        db.commit([set_op("counters/c", {})])
        db.commit([update_op("counters/c", {"n": increment(1)})])
        assert db.lookup("counters/c").data["n"] == 1

    def test_increment_in_set_uses_old_value(self, db):
        db.commit([set_op("counters/c", {"n": 7})])
        db.commit([set_op("counters/c", {"n": increment(1)})])
        assert db.lookup("counters/c").data["n"] == 8

    def test_array_transforms(self, db):
        db.commit([set_op("docs/d", {"tags": ["a", "b"]})])
        db.commit([update_op("docs/d", {"tags": array_union("b", "c")})])
        assert db.lookup("docs/d").data["tags"] == ["a", "b", "c"]
        db.commit([update_op("docs/d", {"tags": array_remove("a")})])
        assert db.lookup("docs/d").data["tags"] == ["b", "c"]

    def test_nested_transform(self, db):
        db.commit([set_op("docs/d", {"stats": {"views": 1}})])
        db.commit([update_op("docs/d", {"stats": {"views": increment(1)}})])
        assert db.lookup("docs/d").data["stats"]["views"] == 2

    def test_transformed_fields_are_indexed(self, db):
        db.commit([set_op("docs/d", {"n": 0})])
        db.commit([update_op("docs/d", {"n": increment(41)})])
        result = db.run_query(db.query("docs").where("n", "==", 41))
        assert len(result.documents) == 1

    def test_repeated_increments_accumulate(self, db):
        db.commit([set_op("counters/c", {"n": 0})])
        for _ in range(5):
            db.commit([update_op("counters/c", {"n": increment(1)})])
        assert db.lookup("counters/c").data["n"] == 5


class TestClientSideEstimation:
    def test_offline_increment_estimated_and_reconciled(self, db):
        db.commit([set_op("counters/c", {"n": 10})])
        client = MobileClient(db)
        client.get("counters/c")
        client.disconnect()
        client.update("counters/c", {"n": increment(5)})
        assert client.get("counters/c").data["n"] == 15  # local estimate
        client.connect()
        assert db.lookup("counters/c").data["n"] == 15  # server agrees

    def test_offline_array_union_estimated(self, db):
        db.commit([set_op("docs/d", {"tags": ["a"]})])
        client = MobileClient(db)
        client.get("docs/d")
        client.disconnect()
        client.update("docs/d", {"tags": array_union("b")})
        assert client.get("docs/d").data["tags"] == ["a", "b"]

    def test_stacked_offline_increments(self, db):
        db.commit([set_op("counters/c", {"n": 0})])
        client = MobileClient(db)
        client.get("counters/c")
        client.disconnect()
        for _ in range(3):
            client.update("counters/c", {"n": increment(2)})
        assert client.get("counters/c").data["n"] == 6
        client.connect()
        assert db.lookup("counters/c").data["n"] == 6

    def test_server_timestamp_estimate_converges(self, db):
        service = db.service
        client = MobileClient(db)
        client.set("docs/stamped", {"at": SERVER_TIMESTAMP})
        stored = db.lookup("docs/stamped").data["at"]
        assert isinstance(stored, Timestamp)
