"""Data validation jobs (section VI) and COUNT queries (section VIII)."""

import pytest

from repro.errors import InternalError
from repro.core.backend import delete_op, set_op
from repro.core.firestore import FirestoreService
from repro.core.layout import ENTITIES, INDEX_ENTRIES, EntityRow
from repro.core.validation import DataValidator


@pytest.fixture
def db():
    return FirestoreService().create_database("validation-tests")


def seed(db, n=10):
    for i in range(n):
        db.commit([set_op(f"r/d{i}", {"n": i, "tag": "x" if i % 2 else "y"})])


class TestChecksums:
    def test_reads_verify_checksums(self, db):
        db.commit([set_op("r/a", {"v": 1})])
        assert db.lookup("r/a").exists  # clean read passes

    def test_corrupted_payload_detected_on_lookup(self, db):
        db.commit([set_op("r/a", {"v": 1})])
        self._corrupt(db, "r/a")
        with pytest.raises(InternalError, match="checksum"):
            db.lookup("r/a")

    def test_corrupted_payload_detected_in_query(self, db):
        db.commit([set_op("r/a", {"v": 1})])
        self._corrupt(db, "r/a")
        with pytest.raises(InternalError, match="checksum"):
            db.run_query(db.query("r").where("v", "==", 1))

    def _corrupt(self, db, path_str):
        """Flip a byte of the stored payload, keeping the old checksum."""
        from repro.core.path import Path

        key = db.layout.entity_key(Path.parse(path_str))
        spanner = db.layout.spanner
        ts, row = spanner.snapshot_read_versioned(
            ENTITIES, key, spanner.current_timestamp()
        )
        corrupted = bytearray(row.data)
        corrupted[-1] ^= 0xFF
        bad = EntityRow(bytes(corrupted), row.create_ts, checksum=row.checksum)
        txn = spanner.begin()
        txn.put(ENTITIES, key, bad)
        txn.commit()


class TestDataValidator:
    def test_clean_database(self, db):
        seed(db)
        report = DataValidator(db.layout, db.registry).run()
        assert report.is_clean
        assert report.documents_checked == 10
        assert report.index_entries_checked == 40  # 2 fields x 2 dirs x 10
        assert "clean" in report.summary()

    def test_detects_corrupt_document(self, db):
        seed(db, 3)
        TestChecksums()._corrupt(db, "r/d1")
        report = DataValidator(db.layout, db.registry).run()
        assert report.corrupt_documents == ["r/d1"]
        assert not report.is_clean
        assert "PROBLEMS" in report.summary()

    def test_detects_missing_index_entry(self, db):
        seed(db, 3)
        # surgically delete one index entry behind the system's back
        read_ts = db.layout.spanner.current_timestamp()
        start, end = db.layout.directory_range()
        victim = next(
            key
            for key, _ in db.layout.spanner.snapshot_scan(
                INDEX_ENTRIES, start, end, read_ts
            )
        )
        txn = db.layout.spanner.begin()
        txn.delete(INDEX_ENTRIES, victim)
        txn.commit()
        report = DataValidator(db.layout, db.registry).run()
        assert len(report.missing_entries) == 1

    def test_detects_dangling_index_entry(self, db):
        seed(db, 3)
        # inject a bogus entry pointing at a deleted document
        db.commit([delete_op("r/d0")])
        txn = db.layout.spanner.begin()
        txn.put(INDEX_ENTRIES, db.layout.index_key(b"\x00\x00\x00\x01bogus"), ("r", "d0"))
        txn.commit()
        report = DataValidator(db.layout, db.registry).run()
        assert len(report.dangling_entries) == 1

    def test_tolerates_inflight_backfill(self, db):
        seed(db, 5)
        db.registry.create_composite("r", [("n", "asc"), ("tag", "asc")])
        # CREATING and not yet backfilled: expected entries are missing
        # but the validator knows that is legal mid-backfill
        report = DataValidator(db.layout, db.registry).run()
        assert report.is_clean


class TestCount:
    def test_count_whole_collection(self, db):
        seed(db, 10)
        count, examined = db.backend.run_count(db.query("r"))
        assert count == 10
        assert examined >= 10

    def test_count_with_equality(self, db):
        seed(db, 10)
        count, _ = db.backend.run_count(db.query("r").where("tag", "==", "x"))
        assert count == 5

    def test_count_with_inequality(self, db):
        seed(db, 10)
        count, _ = db.backend.run_count(db.query("r").where("n", ">=", 7))
        assert count == 3

    def test_count_zigzag(self, db):
        seed(db, 10)
        count, _ = db.backend.run_count(
            db.query("r").where("tag", "==", "x").where("n", "==", 3)
        )
        assert count == 1

    def test_count_respects_limit_and_offset(self, db):
        seed(db, 10)
        count, _ = db.backend.run_count(db.query("r").limit_to(4))
        assert count == 4
        count, _ = db.backend.run_count(db.query("r").offset_by(8))
        assert count == 2

    def test_count_examines_without_fetching(self, db):
        """The billing motivation: counting is index work, not reads."""
        seed(db, 10)
        reads_before = db.backend.docs_read
        count, examined = db.backend.run_count(db.query("r").where("tag", "==", "x"))
        assert db.backend.docs_read == reads_before  # zero document fetches
        assert examined == count == 5

    def test_count_empty_result(self, db):
        seed(db, 3)
        count, _ = db.backend.run_count(db.query("r").where("tag", "==", "zz"))
        assert count == 0

    def test_count_work_limit(self, db):
        seed(db, 10)
        count, examined = db.backend.run_count(db.query("r"), max_work=3)
        assert examined <= 4
        assert count <= 3
