import pytest

from repro.errors import FailedPrecondition
from repro.core.encoding import ASCENDING, DESCENDING
from repro.core.indexes import IndexRegistry, IndexState
from repro.core.path import Path
from repro.core.planner import QueryPlanner
from repro.core.query import Query


@pytest.fixture
def registry():
    return IndexRegistry()


@pytest.fixture
def planner(registry):
    return QueryPlanner(registry)


def plan(planner, query):
    return planner.plan(query.normalize())


def restaurants() -> Query:
    return Query(parent=Path.parse("restaurants"))


class TestEntitiesPlans:
    def test_bare_query_scans_entities(self, planner):
        result = plan(planner, restaurants())
        assert result.kind == "entities"
        assert result.reverse is False

    def test_name_desc_reverses(self, planner):
        result = plan(planner, restaurants().order_by("__name__", "desc"))
        assert result.kind == "entities"
        assert result.reverse is True

    def test_limit_offset_stay_entities(self, planner):
        result = plan(planner, restaurants().limit_to(5).offset_by(2))
        assert result.kind == "entities"


class TestSingleIndexPlans:
    def test_single_equality_uses_auto_index(self, planner):
        result = plan(planner, restaurants().where("city", "==", "SF"))
        assert result.kind == "single"
        spec = result.scans[0]
        assert spec.index.field_paths == ("city",)
        assert spec.prefix_filters[0].value == "SF"

    def test_single_inequality_uses_auto_index(self, planner):
        result = plan(planner, restaurants().where("numRatings", ">", 2))
        assert result.kind == "single"
        assert result.scans[0].index.field_paths == ("numRatings",)
        assert result.scans[0].prefix_len == 0

    def test_order_only_asc_direct(self, planner):
        result = plan(planner, restaurants().order_by("avgRating"))
        assert result.kind == "single"
        assert result.reverse is False
        assert result.scans[0].index.directions == (ASCENDING,)

    def test_order_desc_uses_desc_index_directly(self, planner):
        result = plan(planner, restaurants().order_by("avgRating", DESCENDING))
        assert result.kind == "single"
        # either the desc auto index directly or the asc one reversed
        spec = result.scans[0]
        if result.reverse:
            assert spec.index.directions == (ASCENDING,)
        else:
            assert spec.index.directions == (DESCENDING,)

    def test_array_contains_uses_contains_index(self, planner):
        result = plan(planner, restaurants().where("tags", "array-contains", "bbq"))
        assert result.kind == "single"
        assert result.scans[0].index.fields[0].mode.value == "contains"

    def test_composite_preferred_for_eq_plus_order(self, planner, registry):
        registry.create_composite(
            "restaurants",
            [("city", ASCENDING), ("avgRating", DESCENDING)],
            state=IndexState.READY,
        )
        query = restaurants().where("city", "==", "SF").order_by("avgRating", DESCENDING)
        result = plan(planner, query)
        assert result.kind == "single"
        assert result.scans[0].index.field_paths == ("city", "avgRating")

    def test_creating_composite_unusable(self, planner, registry):
        registry.create_composite(
            "restaurants", [("city", ASCENDING), ("avgRating", DESCENDING)]
        )  # stays CREATING
        query = restaurants().where("city", "==", "SF").order_by("avgRating", DESCENDING)
        with pytest.raises(FailedPrecondition):
            plan(planner, query)

    def test_composite_reversed_orientation(self, planner, registry):
        registry.create_composite(
            "restaurants",
            [("city", ASCENDING), ("avgRating", DESCENDING)],
            state=IndexState.READY,
        )
        # ascending order served by scanning the desc composite backwards
        query = restaurants().where("city", "==", "SF").order_by("avgRating", ASCENDING)
        result = plan(planner, query)
        assert result.kind == "single"
        assert result.reverse is True

    def test_equality_plus_inequality_needs_composite(self, planner, registry):
        query = restaurants().where("city", "==", "SF").where("numRatings", ">", 2)
        with pytest.raises(FailedPrecondition):
            plan(planner, query)
        registry.create_composite(
            "restaurants",
            [("city", ASCENDING), ("numRatings", ASCENDING)],
            state=IndexState.READY,
        )
        result = plan(planner, query)
        assert result.kind == "single"


class TestZigZagPlans:
    def test_two_equalities_join_auto_indexes(self, planner):
        query = restaurants().where("city", "==", "SF").where("type", "==", "BBQ")
        result = plan(planner, query)
        assert result.kind == "join"
        assert len(result.scans) == 2
        covered = set()
        for spec in result.scans:
            covered |= {f for f, _ in spec.covered_units()}
        assert covered == {"city", "type"}

    def test_paper_example_join_of_user_indexes(self, planner, registry):
        """city="NY" and type="BBQ" order by avgRating desc via joining
        (city asc, avgRating desc) and (type asc, avgRating desc)."""
        registry.create_composite(
            "restaurants",
            [("city", ASCENDING), ("avgRating", DESCENDING)],
            state=IndexState.READY,
        )
        registry.create_composite(
            "restaurants",
            [("type", ASCENDING), ("avgRating", DESCENDING)],
            state=IndexState.READY,
        )
        query = (
            restaurants()
            .where("city", "==", "New York")
            .where("type", "==", "BBQ")
            .order_by("avgRating", DESCENDING)
        )
        result = plan(planner, query)
        assert result.kind == "join"
        assert {s.index.field_paths for s in result.scans} == {
            ("city", "avgRating"),
            ("type", "avgRating"),
        }

    def test_greedy_prefers_fewer_indexes(self, planner, registry):
        registry.create_composite(
            "restaurants",
            [("a", ASCENDING), ("b", ASCENDING), ("c", ASCENDING)],
            state=IndexState.READY,
        )
        query = (
            restaurants().where("a", "==", 1).where("b", "==", 2).where("c", "==", 3)
        )
        result = plan(planner, query)
        assert result.kind == "single"
        assert result.scans[0].index.field_paths == ("a", "b", "c")

    def test_join_plus_contains(self, planner):
        query = (
            restaurants()
            .where("city", "==", "SF")
            .where("tags", "array-contains", "bbq")
        )
        result = plan(planner, query)
        assert result.kind == "join"
        modes = {spec.index.fields[0].mode.value for spec in result.scans}
        assert modes == {"ordered", "contains"}

    def test_exempted_field_fails_with_suggestion(self, planner, registry):
        registry.add_exemption("restaurants", "city")
        with pytest.raises(FailedPrecondition) as excinfo:
            plan(planner, restaurants().where("city", "==", "SF"))
        assert "index" in str(excinfo.value)

    def test_suggestion_lists_required_fields(self, planner):
        query = restaurants().where("city", "==", "SF").where("n", ">", 2)
        with pytest.raises(FailedPrecondition) as excinfo:
            plan(planner, query)
        message = str(excinfo.value)
        assert "city asc" in message
        assert "n asc" in message


class TestDescribe:
    def test_plans_have_descriptions(self, planner):
        assert "entities" in plan(planner, restaurants()).describe()
        assert "single" in plan(
            planner, restaurants().where("city", "==", "SF")
        ).describe()
