"""Server-side transaction tests: locking, retries, read-before-write."""

import pytest

from repro.errors import Aborted, InvalidArgument
from repro.core.backend import set_op
from repro.core.firestore import FirestoreService
from repro.core.transaction import run_transaction


@pytest.fixture
def db():
    return FirestoreService().create_database("txn-tests")


def test_read_modify_write(db):
    db.commit([set_op("counters/c", {"value": 1})])

    def increment(tx):
        snap = tx.get("counters/c")
        tx.update("counters/c", {"value": snap.data["value"] + 1})
        return snap.data["value"]

    result = db.run_transaction(increment)
    assert result == 1
    assert db.lookup("counters/c").data["value"] == 2


def test_paper_rating_example(db):
    """The section IV-D2 example: insert a rating and update the parent
    restaurant's aggregates in one transaction."""
    db.commit([set_op("restaurants/one", {"avgRating": 4.0, "numRatings": 1})])

    def add_rating(tx):
        snap = tx.get("restaurants/one")
        assert snap.exists
        count = snap.data["numRatings"]
        new_avg = (snap.data["avgRating"] * count + 5.0) / (count + 1)
        tx.create("restaurants/one/ratings/2", {"rating": 5, "userId": "u1"})
        tx.update("restaurants/one", {"avgRating": new_avg, "numRatings": count + 1})

    db.run_transaction(add_rating)
    restaurant = db.lookup("restaurants/one").data
    assert restaurant == {"avgRating": 4.5, "numRatings": 2}
    assert db.lookup("restaurants/one/ratings/2").exists


def test_reads_must_precede_writes(db):
    def bad(tx):
        tx.set("r/a", {"x": 1})
        tx.get("r/a")

    with pytest.raises(InvalidArgument):
        db.run_transaction(bad)


def test_read_only_transaction(db):
    db.commit([set_op("r/a", {"x": 1})])
    value = db.run_transaction(lambda tx: tx.get("r/a").data["x"])
    assert value == 1


def test_queries_inside_transactions(db):
    db.commit([set_op("r/a", {"city": "SF"}), set_op("r/b", {"city": "LA"})])

    def count_sf(tx):
        return len(tx.query(db.query("r").where("city", "==", "SF")).documents)

    assert db.run_transaction(count_sf) == 1


def test_retry_on_contention(db):
    """A transaction aborted by a conflicting lock retries and succeeds."""
    db.commit([set_op("r/a", {"v": 0})])
    attempts = []
    blocker = db.layout.spanner.begin()
    blocker.read("Entities", db.layout.entity_key(db.lookup("r/a").path), for_update=True)

    def contended(tx):
        attempts.append(1)
        if len(attempts) == 2:
            blocker.rollback()  # free the lock for the retry
        snap = tx.get("r/a")
        tx.update("r/a", {"v": snap.data["v"] + 1})

    db.run_transaction(contended)
    assert len(attempts) >= 2
    assert db.lookup("r/a").data["v"] == 1


def test_exhausted_retries_raise_aborted(db):
    db.commit([set_op("r/a", {"v": 0})])
    blocker = db.layout.spanner.begin()
    blocker.read("Entities", db.layout.entity_key(db.lookup("r/a").path), for_update=True)

    def contended(tx):
        tx.get("r/a")

    with pytest.raises(Aborted):
        db.run_transaction(contended, max_attempts=2)
    blocker.rollback()


def test_backoff_advances_clock(db):
    db.commit([set_op("r/a", {"v": 0})])
    blocker = db.layout.spanner.begin()
    blocker.read("Entities", db.layout.entity_key(db.lookup("r/a").path), for_update=True)
    before = db.service.clock.now_us
    with pytest.raises(Aborted):
        db.run_transaction(lambda tx: tx.get("r/a"), max_attempts=3)
    blocker.rollback()
    assert db.service.clock.now_us > before


def test_user_exception_rolls_back(db):
    db.commit([set_op("r/a", {"v": 0})])

    def boom(tx):
        tx.update("r/a", {"v": 99})
        raise RuntimeError("user bug")

    with pytest.raises(RuntimeError):
        db.run_transaction(boom)
    assert db.lookup("r/a").data["v"] == 0
    assert db.layout.spanner.locks.active_lock_count() == 0


def test_max_attempts_validation(db):
    with pytest.raises(InvalidArgument):
        db.run_transaction(lambda tx: None, max_attempts=0)


def test_serializability_of_concurrent_increments(db):
    """Interleaved transactions on one document never lose updates."""
    db.commit([set_op("counters/c", {"value": 0})])
    for _ in range(10):
        db.run_transaction(
            lambda tx: tx.update(
                "counters/c", {"value": tx.get("counters/c").data["value"] + 1}
            )
        )
    assert db.lookup("counters/c").data["value"] == 10
