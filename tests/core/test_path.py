import pytest

from repro.errors import InvalidArgument
from repro.core.path import Path, collection_path, document_path


class TestConstruction:
    def test_parse(self):
        path = Path.parse("restaurants/one/ratings/2")
        assert path.segments == ("restaurants", "one", "ratings", "2")

    def test_rejects_empty(self):
        with pytest.raises(InvalidArgument):
            Path.parse("")
        with pytest.raises(InvalidArgument):
            Path()

    def test_rejects_empty_segments(self):
        with pytest.raises(InvalidArgument):
            Path.parse("a//b")

    def test_rejects_slash_in_segment(self):
        with pytest.raises(InvalidArgument):
            Path("a/b")

    def test_rejects_dots(self):
        with pytest.raises(InvalidArgument):
            Path("a", ".")
        with pytest.raises(InvalidArgument):
            Path("a", "..")

    def test_rejects_oversized_segment(self):
        with pytest.raises(InvalidArgument):
            Path("x" * 1501)

    def test_rejects_excessive_depth(self):
        with pytest.raises(InvalidArgument):
            Path(*[f"s{i}" for i in range(101)])

    def test_immutable(self):
        path = Path("a")
        with pytest.raises(AttributeError):
            path.segments = ("b",)


class TestClassification:
    def test_document_vs_collection(self):
        assert Path.parse("restaurants/one").is_document
        assert Path.parse("restaurants").is_collection
        assert Path.parse("restaurants/one/ratings").is_collection
        assert Path.parse("restaurants/one/ratings/2").is_document

    def test_coercion_helpers(self):
        assert document_path("a/b") == Path("a", "b")
        assert collection_path("a") == Path("a")
        with pytest.raises(InvalidArgument):
            document_path("a")
        with pytest.raises(InvalidArgument):
            collection_path("a/b")


class TestNavigation:
    def test_ids(self):
        path = Path.parse("restaurants/one/ratings/2")
        assert path.id == "2"
        assert path.collection_id == "ratings"
        assert Path.parse("restaurants").collection_id == "restaurants"
        assert Path.parse("restaurants/one").collection_id == "restaurants"

    def test_parent_chain(self):
        path = Path.parse("a/b/c/d")
        assert path.parent() == Path.parse("a/b/c")
        assert Path.parse("a").parent() is None

    def test_child(self):
        assert Path.parse("a").child("b") == Path.parse("a/b")

    def test_ancestry(self):
        parent = Path.parse("a/b")
        assert parent.is_ancestor_of(Path.parse("a/b/c"))
        assert parent.is_ancestor_of(Path.parse("a/b/c/d"))
        assert not parent.is_ancestor_of(parent)
        assert not parent.is_ancestor_of(Path.parse("a"))
        assert not parent.is_ancestor_of(Path.parse("a/bb/c"))


class TestProtocol:
    def test_str_roundtrip(self):
        assert str(Path.parse("a/b/c")) == "a/b/c"

    def test_equality_and_hash(self):
        assert Path.parse("a/b") == Path.parse("a/b")
        assert len({Path.parse("a/b"), Path.parse("a/b")}) == 1

    def test_ordering_is_segmentwise(self):
        assert Path.parse("a/b") < Path.parse("ab")
        assert Path.parse("a") < Path.parse("a/b")

    def test_len_and_depth(self):
        path = Path.parse("a/b/c")
        assert len(path) == path.depth == 3
