"""Executor edge cases: reverse zig-zag joins, array equality,
mixed-type ordering, empty collections, cursor + inequality interaction."""

import pytest

from repro.core.backend import set_op
from repro.core.encoding import ASCENDING, DESCENDING
from repro.core.firestore import FirestoreService
from repro.core.values import GeoPoint, Timestamp


@pytest.fixture
def db():
    return FirestoreService().create_database("executor-edge")


def ids(result):
    return [p.id for p in result.paths]


class TestReverseZigZag:
    def test_join_with_descending_order(self, db):
        db.create_index("r", [("city", ASCENDING), ("n", ASCENDING)])
        db.create_index("r", [("kind", ASCENDING), ("n", ASCENDING)])
        rows = [
            ("a", "SF", "x", 1),
            ("b", "SF", "x", 5),
            ("c", "SF", "y", 3),
            ("d", "LA", "x", 4),
            ("e", "SF", "x", 2),
        ]
        for doc_id, city, kind, n in rows:
            db.commit([set_op(f"r/{doc_id}", {"city": city, "kind": kind, "n": n})])
        # the asc composites serve a DESC order via reverse zig-zag
        query = (
            db.query("r")
            .where("city", "==", "SF")
            .where("kind", "==", "x")
            .order_by("n", DESCENDING)
        )
        plan = db.backend.planner.plan(query.normalize())
        assert plan.kind == "join" and plan.reverse
        assert ids(db.run_query(query)) == ["b", "e", "a"]

    def test_reverse_join_with_inequality(self, db):
        db.create_index("r", [("city", ASCENDING), ("n", ASCENDING)])
        db.create_index("r", [("kind", ASCENDING), ("n", ASCENDING)])
        for i in range(10):
            db.commit(
                [set_op(f"r/d{i}", {"city": "SF", "kind": "x", "n": i})]
            )
        query = (
            db.query("r")
            .where("city", "==", "SF")
            .where("kind", "==", "x")
            .where("n", ">=", 4)
            .where("n", "<", 8)
            .order_by("n", DESCENDING)
        )
        assert ids(db.run_query(query)) == ["d7", "d6", "d5", "d4"]


class TestValueEdgeCases:
    def test_equality_on_whole_array(self, db):
        db.commit([set_op("r/a", {"tags": ["x", "y"]})])
        db.commit([set_op("r/b", {"tags": ["x"]})])
        result = db.run_query(db.query("r").where("tags", "==", ["x", "y"]))
        assert ids(result) == ["a"]

    def test_equality_on_map_value(self, db):
        db.commit([set_op("r/a", {"loc": {"city": "SF", "zip": "94"}})])
        db.commit([set_op("r/b", {"loc": {"city": "LA"}})])
        result = db.run_query(
            db.query("r").where("loc", "==", {"zip": "94", "city": "SF"})
        )
        assert ids(result) == ["a"]

    def test_order_across_mixed_types(self, db):
        """Sorting across inconsistent types — one of the two reasons
        Firestore cannot map its queries onto Spanner's (section IV-D1)."""
        db.commit([set_op("r/str", {"v": "text"})])
        db.commit([set_op("r/num", {"v": 7})])
        db.commit([set_op("r/null", {"v": None})])
        db.commit([set_op("r/arr", {"v": [1]})])
        db.commit([set_op("r/bool", {"v": True})])
        result = db.run_query(db.query("r").order_by("v"))
        assert ids(result) == ["null", "bool", "num", "str", "arr"]

    def test_timestamps_and_geopoints_ordered(self, db):
        db.commit([set_op("r/t1", {"at": Timestamp(100)})])
        db.commit([set_op("r/t2", {"at": Timestamp(50)})])
        result = db.run_query(db.query("r").order_by("at"))
        assert ids(result) == ["t2", "t1"]
        db.commit([set_op("g/p1", {"where": GeoPoint(10, 0)})])
        db.commit([set_op("g/p2", {"where": GeoPoint(-10, 0)})])
        result = db.run_query(db.query("g").order_by("where", DESCENDING))
        assert ids(result) == ["p1", "p2"]

    def test_nan_equality_query(self, db):
        nan = float("nan")
        db.commit([set_op("r/weird", {"v": nan})])
        result = db.run_query(db.query("r").where("v", "==", nan))
        assert ids(result) == ["weird"]

    def test_int_float_cross_match(self, db):
        db.commit([set_op("r/i", {"v": 5})])
        db.commit([set_op("r/f", {"v": 5.0})])
        result = db.run_query(db.query("r").where("v", "==", 5))
        assert set(ids(result)) == {"i", "f"}


class TestEmptyAndBoundary:
    def test_empty_collection(self, db):
        assert ids(db.run_query(db.query("nothing"))) == []
        count, _ = db.run_count(db.query("nothing"))
        assert count == 0

    def test_offset_past_end(self, db):
        db.commit([set_op("r/a", {"n": 1})])
        assert ids(db.run_query(db.query("r").offset_by(10))) == []

    def test_inequality_empty_range(self, db):
        db.commit([set_op("r/a", {"n": 5})])
        query = db.query("r").where("n", ">", 10).where("n", "<", 3)
        assert ids(db.run_query(query)) == []

    def test_cursor_beyond_all_data(self, db):
        for i in range(3):
            db.commit([set_op(f"r/d{i}", {"n": i})])
        query = db.query("r").order_by("n").start_after(99)
        assert ids(db.run_query(query)) == []

    def test_cursor_with_inequality_tightens(self, db):
        for i in range(10):
            db.commit([set_op(f"r/d{i}", {"n": i})])
        query = db.query("r").where("n", ">=", 2).order_by("n").start_after(5)
        assert ids(db.run_query(query)) == ["d6", "d7", "d8", "d9"]

    def test_unicode_document_ids_and_values(self, db):
        db.commit([set_op("r/日本", {"name": "すし"})])
        result = db.run_query(db.query("r").where("name", "==", "すし"))
        assert ids(result) == ["日本"]

    def test_collection_with_single_huge_field_value(self, db):
        big = "x" * 500_000
        db.commit([set_op("r/big", {"payload": big})])
        result = db.run_query(db.query("r").where("payload", "==", big))
        assert ids(result) == ["big"]
