"""Metadata Cache tests: durable index definitions and rules, TTL
caching, and recovery across simulated task restarts (paper Fig. 4)."""

import pytest

from repro.errors import PermissionDenied
from repro.core.backend import AuthContext, set_op
from repro.core.encoding import ASCENDING, DESCENDING
from repro.core.firestore import FirestoreService
from repro.core.indexes import IndexKind, IndexRegistry, IndexState
from repro.core.metadata import MetadataCache, MetadataStore


@pytest.fixture
def service():
    return FirestoreService()


@pytest.fixture
def db(service):
    return service.create_database("meta-tests")


class TestDurability:
    def test_registry_roundtrip(self, db):
        db.commit([set_op("r/a", {"city": "SF", "n": 1})])  # auto indexes
        db.create_index("r", [("city", ASCENDING), ("n", DESCENDING)])
        db.registry.add_exemption("r", "blob")

        store = MetadataStore(db.layout)
        store.save_registry(db.registry)
        loaded = store.load_registry()

        original = {d.index_id: d for d in db.registry.all_indexes()}
        recovered = {d.index_id: d for d in loaded.all_indexes()}
        assert recovered == original
        assert loaded.is_exempt("r", "blob")

    def test_auto_index_ids_stable_after_reload(self, db):
        db.commit([set_op("r/a", {"city": "SF"})])
        asc_id = db.registry.auto_index("r", "city", ASCENDING).index_id
        store = MetadataStore(db.layout)
        store.save_registry(db.registry)
        loaded = store.load_registry()
        assert loaded.auto_index("r", "city", ASCENDING).index_id == asc_id

    def test_id_allocation_resumes_past_persisted(self, db):
        db.commit([set_op("r/a", {"city": "SF"})])
        store = MetadataStore(db.layout)
        store.save_registry(db.registry)
        loaded = store.load_registry()
        existing = {d.index_id for d in loaded.all_indexes()}
        fresh = loaded.auto_index("r", "newfield", ASCENDING)
        assert fresh.index_id not in existing

    def test_rules_roundtrip(self, db):
        source = (
            "service cloud.firestore { match /databases/{d}/documents {"
            " match /r/{id} { allow read: if true; } } }"
        )
        db.set_rules(source)
        assert MetadataStore(db.layout).load_rules() == source
        db.clear_rules()
        assert MetadataStore(db.layout).load_rules() is None

    def test_empty_store_loads_none(self, db):
        fresh = FirestoreService().create_database("empty")
        store = MetadataStore(fresh.layout)
        # a brand-new database has its (empty) registry persisted lazily
        assert store.load_rules() is None


class TestTaskRestart:
    def test_reopen_recovers_indexes_and_queries(self, service, db):
        db.commit([set_op("r/a", {"city": "SF", "n": 2})])
        db.create_index("r", [("city", ASCENDING), ("n", DESCENDING)])
        query = db.query("r").where("city", "==", "SF").order_by("n", DESCENDING)
        assert len(db.run_query(query).documents) == 1

        restarted = service.reopen_database("meta-tests")
        assert restarted is not db
        # the composite index survived the "restart"
        assert len(restarted.run_query(query).documents) == 1
        # so did the automatic indexes (ids must match existing entries)
        assert len(
            restarted.run_query(restarted.query("r").where("n", "==", 2)).documents
        ) == 1

    def test_reopen_recovers_exemptions(self, service, db):
        db.commit([set_op("r/a", {"hot": 1})])
        db.exempt_field("r", "hot")
        restarted = service.reopen_database("meta-tests")
        assert restarted.registry.is_exempt("r", "hot")
        from repro.errors import FailedPrecondition

        with pytest.raises(FailedPrecondition):
            restarted.run_query(restarted.query("r").where("hot", "==", 1))

    def test_reopen_recovers_rules(self, service, db):
        db.set_rules(
            "service cloud.firestore { match /databases/{d}/documents {"
            " match /r/{id} { allow read: if true; } } }"
        )
        restarted = service.reopen_database("meta-tests")
        restarted.commit([set_op("r/a", {"x": 1})])
        # reads allowed, writes denied: the recovered ruleset is live
        assert restarted.lookup("r/a", auth=AuthContext(uid="u")).exists
        with pytest.raises(PermissionDenied):
            restarted.commit(
                [set_op("r/b", {"x": 1})], auth=AuthContext(uid="u")
            )

    def test_writes_after_reopen_extend_same_indexes(self, service, db):
        db.commit([set_op("r/a", {"city": "SF"})])
        restarted = service.reopen_database("meta-tests")
        restarted.commit([set_op("r/b", {"city": "SF"})])
        result = restarted.run_query(restarted.query("r").where("city", "==", "SF"))
        assert [p.id for p in result.paths] == ["a", "b"]
        # and the validator agrees everything is consistent
        assert restarted.validate().is_clean


class TestCacheBehaviour:
    def test_ttl_expiry_refreshes(self, service, db):
        store = MetadataStore(db.layout)
        cache = MetadataCache(store, service.clock, ttl_us=1_000_000)
        cache.registry()
        misses = cache.misses
        cache.registry()  # within TTL: served from cache
        assert cache.misses == misses
        assert cache.hits >= 1
        service.clock.advance(2_000_000)
        cache.registry()  # expired: reloaded
        assert cache.misses == misses + 1

    def test_invalidate_forces_reload(self, service, db):
        store = MetadataStore(db.layout)
        cache = MetadataCache(store, service.clock, ttl_us=10**12)
        cache.registry()
        misses = cache.misses
        cache.invalidate()
        cache.registry()
        assert cache.misses == misses + 1

    def test_stale_cache_converges_after_ttl(self, service, db):
        """Another task's cache misses a new index until its TTL lapses —
        the relaxed consistency production accepts for metadata."""
        other_task = MetadataCache(
            MetadataStore(db.layout), service.clock, ttl_us=5_000_000
        )
        other_task.registry()
        db.create_index("r", [("a", ASCENDING), ("b", ASCENDING)])
        stale = other_task.registry()
        assert stale.composites_for("r") == []  # still cached
        service.clock.advance(6_000_000)
        fresh = other_task.registry()
        assert len(fresh.composites_for("r")) == 1
