"""Datastore API tests: entity vocabulary over the shared database,
including cross-API visibility (paper section II)."""

import pytest

from repro.errors import InvalidArgument
from repro.core.backend import set_op
from repro.core.firestore import FirestoreService
from repro.datastore import DatastoreClient, Entity, Key


@pytest.fixture
def db():
    return FirestoreService().create_database("datastore-tests")


@pytest.fixture
def client(db):
    return DatastoreClient(db)


class TestKeys:
    def test_flat_path(self):
        key = Key.of("Restaurant", "one", "Rating", 2)
        assert key.kind == "Rating"
        assert key.identifier == "2"
        assert str(key) == "Restaurant/one/Rating/2"

    def test_parent_chain(self):
        key = Key.of("Restaurant", "one", "Rating", "2")
        assert key.parent == Key.of("Restaurant", "one")
        assert key.parent.parent is None

    def test_child(self):
        assert Key.of("A", "1").child("B", 2) == Key.of("A", "1", "B", "2")

    def test_document_path_roundtrip(self):
        key = Key.of("Restaurant", "one")
        assert str(key.to_document_path()) == "Restaurant/one"
        assert Key.from_document_path(key.to_document_path()) == key

    def test_invalid_keys(self):
        with pytest.raises(InvalidArgument):
            Key(())
        with pytest.raises(InvalidArgument):
            Key(("OnlyKind",))


class TestEntityCrud:
    def test_put_get_delete(self, client):
        entity = Entity(Key.of("Task", "t1"), {"done": False, "priority": 2})
        client.put(entity)
        fetched = client.get(entity.key)
        assert fetched.properties == {"done": False, "priority": 2}
        assert fetched["priority"] == 2
        client.delete(entity.key)
        assert client.get(entity.key) is None

    def test_put_multi_get_multi(self, client):
        entities = [Entity(Key.of("Task", f"t{i}"), {"n": i}) for i in range(3)]
        client.put_multi(entities)
        fetched = client.get_multi([e.key for e in entities] + [Key.of("Task", "nope")])
        assert [e.properties["n"] for e in fetched[:3]] == [0, 1, 2]
        assert fetched[3] is None

    def test_entity_mapping_protocol(self):
        entity = Entity(Key.of("Task", "t"))
        entity["name"] = "laundry"
        assert entity["name"] == "laundry"
        assert entity.get("missing", 42) == 42

    def test_allocate_ids_unique(self, client):
        keys = client.allocate_ids("Task", 5)
        assert len({k.identifier for k in keys}) == 5
        assert all(k.kind == "Task" for k in keys)
        with pytest.raises(InvalidArgument):
            client.allocate_ids("Task", 0)


class TestQueries:
    @pytest.fixture(autouse=True)
    def seed(self, client):
        for i in range(6):
            client.put(
                Entity(
                    Key.of("Task", f"t{i}"),
                    {"done": i % 2 == 0, "priority": i},
                )
            )

    def test_filter_and_order(self, client):
        # like production Datastore, a filter + different-field order
        # needs a composite index (historically via index.yaml)
        client.database.create_index("Task", [("done", "asc"), ("priority", "desc")])
        query = client.query("Task").filter("done", "=", True).order("-priority")
        results = client.run_query(query)
        assert [e["priority"] for e in results] == [4, 2, 0]

    def test_inequality(self, client):
        query = client.query("Task").filter("priority", ">=", 4)
        results = client.run_query(query)
        assert sorted(e["priority"] for e in results) == [4, 5]

    def test_keys_only(self, client):
        keys = client.run_query(client.query("Task").select_keys_only().limit_to(2))
        assert all(isinstance(k, Key) for k in keys)
        assert len(keys) == 2

    def test_projection(self, client):
        results = client.run_query(client.query("Task").select("priority").limit_to(1))
        assert set(results[0].properties) == {"priority"}

    def test_count(self, client):
        assert client.count(client.query("Task")) == 6
        assert client.count(client.query("Task").filter("done", "=", True)) == 3

    def test_kindless_rejected(self, client):
        with pytest.raises(InvalidArgument):
            client.query("")


class TestAncestorQueries:
    def test_ancestor_scopes_results(self, client):
        restaurant_one = Key.of("Restaurant", "one")
        restaurant_two = Key.of("Restaurant", "two")
        client.put(Entity(restaurant_one.child("Rating", 1), {"stars": 5}))
        client.put(Entity(restaurant_one.child("Rating", 2), {"stars": 3}))
        client.put(Entity(restaurant_two.child("Rating", 1), {"stars": 1}))
        query = client.query("Rating", ancestor=restaurant_one).order("-stars")
        results = client.run_query(query)
        assert [e["stars"] for e in results] == [5, 3]
        assert all(e.key.parent == restaurant_one for e in results)


class TestTransactions:
    def test_entity_transaction(self, client):
        client.put(Entity(Key.of("Counter", "c"), {"value": 10}))

        def bump(txn):
            counter = txn.get(Key.of("Counter", "c"))
            counter["value"] += 1
            txn.put(counter)
            return counter["value"]

        assert client.transaction(bump) == 11
        assert client.get(Key.of("Counter", "c"))["value"] == 11

    def test_transaction_delete(self, client):
        client.put(Entity(Key.of("Temp", "x"), {"v": 1}))
        client.transaction(lambda txn: txn.delete(Key.of("Temp", "x")))
        assert client.get(Key.of("Temp", "x")) is None


class TestCrossApiAccess:
    """The section II promise: one database, two APIs."""

    def test_datastore_write_firestore_read(self, db, client):
        client.put(Entity(Key.of("Task", "shared"), {"via": "datastore"}))
        snapshot = db.lookup("Task/shared")
        assert snapshot.data == {"via": "datastore"}

    def test_firestore_write_datastore_read(self, db, client):
        db.commit([set_op("Task/shared2", {"via": "firestore"})])
        entity = client.get(Key.of("Task", "shared2"))
        assert entity["via"] == "firestore"

    def test_firestore_realtime_sees_datastore_writes(self, db, client):
        """Real-time queries are exclusive to the Firestore API, but they
        observe entities written through the Datastore API."""
        snaps = []
        db.connect().listen(db.query("Task"), snaps.append)
        client.put(Entity(Key.of("Task", "live"), {"n": 1}))
        db.service.clock.advance(100_000)
        db.pump_realtime()
        assert [d.path.id for d in snaps[-1].added] == ["live"]

    def test_indexes_shared_across_apis(self, db, client):
        client.put(Entity(Key.of("Task", "a"), {"priority": 9}))
        result = db.run_query(db.query("Task").where("priority", "==", 9))
        assert len(result.documents) == 1
