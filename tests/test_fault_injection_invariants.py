"""Failure-injection property tests: whatever commits fail, the database's
invariants hold — indexes stay consistent with documents, checksums stay
valid, the A/B harness finds no divergence, realtime listeners converge
after recovery, and the recorded execution history checks clean.

Every guardrail failure — dynamic sanitizer, replay divergence, history
checker — surfaces through the one ``repro.errors.VerificationError``
family, so these tests assert on that family alone."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.check.checker import assert_clean, check_history
from repro.check.history import recording
from repro.core.ab_testing import QueryABHarness
from repro.core.backend import delete_op, set_op
from repro.core.firestore import FirestoreService
from repro.errors import (
    Aborted,
    CheckerViolation,
    DeadlineExceeded,
    NotFound,
    SanitizerViolation,
    VerificationError,
)
from repro.faults.plan import FaultPlan
from repro.spanner.transaction import inject_definitive_failure

OPS = st.lists(
    st.tuples(
        st.sampled_from(["set", "delete"]),
        st.sampled_from(["a", "b", "c", "d"]),
        st.integers(0, 5),
        # fault: None | "fail" | "unknown-applied" | "unknown-lost"
        st.sampled_from([None, None, None, "fail", "unknown-applied", "unknown-lost"]),
    ),
    min_size=1,
    max_size=20,
)


def run_sequence(db, ops):
    """Apply ops with injected faults; returns the surviving expectation.

    Faults are armed through the central fault plane (one-shot, FIFO per
    site) — the deterministic-test mode of :class:`repro.faults.FaultPlan`.
    """
    expected: dict[str, dict | None] = {}
    spanner = db.layout.spanner
    plan = spanner.fault_plan
    if plan is None:
        plan = FaultPlan(seed=0)
        spanner.fault_plan = plan
    for op, doc_id, n, fault in ops:
        path = f"docs/{doc_id}"
        write = set_op(path, {"n": n, "tag": doc_id}) if op == "set" else delete_op(path)
        if fault == "fail":
            plan.arm("spanner.commit_fail")
        elif fault == "unknown-applied":
            plan.arm("spanner.commit_unknown", applied=True)
        elif fault == "unknown-lost":
            plan.arm("spanner.commit_unknown", applied=False)
        try:
            db.commit([write])
            applied = True
        except (Aborted, DeadlineExceeded):
            applied = fault == "unknown-applied"
        except NotFound:
            applied = False
        finally:
            plan.disarm()
        if applied:
            expected[path] = {"n": n, "tag": doc_id} if op == "set" else None
    return {k: v for k, v in expected.items() if v is not None}


@settings(max_examples=50, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_property_invariants_survive_faults(ops):
    service = FirestoreService()
    db = service.create_database("faulty")
    expected = run_sequence(db, ops)

    # 1. the surviving documents are exactly the ones whose commits applied
    survivors = {
        str(d.path): d.data for d in db.run_query(db.query("docs")).documents
    }
    assert survivors == expected

    # 2. indexes are consistent with the documents (validator clean)
    report = db.validate()
    assert report.is_clean, report.summary()

    # 3. the index engine agrees with brute force on a query corpus
    ab = QueryABHarness(db).run_random("docs", count=30, seed=1)
    assert ab.is_clean, [r.describe() for r in ab.mismatches]


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_property_listeners_recover_from_faults(ops):
    """Every unknown-outcome commit triggers the reset path; after
    recovery the listener's view equals a fresh query."""
    service = FirestoreService()
    db = service.create_database("faulty-rt")
    snaps = []
    db.connect().listen(db.query("docs"), snaps.append)
    run_sequence(db, ops)
    for _ in range(3):
        service.clock.advance(100_000)
        db.pump_realtime()
    fresh = {str(d.path): d.data for d in db.run_query(db.query("docs")).documents}
    listener = {str(d.path): d.data for d in snaps[-1].documents}
    assert listener == fresh


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(ops=OPS)
def test_property_histories_check_clean_under_faults(ops):
    """The recorded execution history of a faulty run has no consistency
    violations: unknown outcomes are excused, everything else must hold.
    A violation here raises CheckerViolation — the VerificationError
    family these tests reserve for reproduction bugs."""
    with recording() as recorders:
        service = FirestoreService()
        db = service.create_database("faulty-hist")
        snaps = []
        connection = db.connect()
        connection.listen(db.query("docs"), snaps.append)
        run_sequence(db, ops)
        for _ in range(3):
            service.clock.advance(100_000)
            db.pump_realtime()
        connection.close()
    assert any(recorder.events for recorder in recorders)
    for recorder in recorders:
        assert_clean(check_history(recorder.events), context="fault run")


def test_legacy_commit_fault_injector_shim_still_works():
    """The pre-fault-plane one-shot hook remains a supported compat shim:
    it fires once, clears itself, and leaves later commits untouched."""
    service = FirestoreService()
    db = service.create_database("legacy-shim")
    spanner = db.layout.spanner
    spanner.commit_fault_injector = lambda txn_id: inject_definitive_failure()
    with pytest.raises((Aborted, DeadlineExceeded)):
        db.commit([set_op("docs/a", {"n": 1})])
    assert spanner.commit_fault_injector is None
    db.commit([set_op("docs/a", {"n": 2})])
    assert db.lookup("docs/a").data == {"n": 2}


def test_guardrail_violations_share_one_exception_family():
    """Sanitizer and checker failures are the same assertable family."""
    assert issubclass(SanitizerViolation, VerificationError)
    assert issubclass(CheckerViolation, VerificationError)

    # a deliberately broken history must surface as VerificationError
    from repro.check.scenarios import run_scenario

    result = run_scenario("anomaly-lost-update", seed=1)
    assert result.violations
    with pytest.raises(VerificationError) as excinfo:
        assert_clean(result.violations, context="anomaly")
    assert isinstance(excinfo.value, CheckerViolation)
    assert excinfo.value.check == result.violations[0].check
