import pytest

from repro.errors import RulesSyntaxError
from repro.rules.lexer import Token, TokenType, tokenize


def kinds(source):
    return [(t.type, t.value) for t in tokenize(source)[:-1]]


def test_empty_source_only_eof():
    tokens = tokenize("")
    assert len(tokens) == 1
    assert tokens[0].type is TokenType.EOF


def test_keywords_vs_identifiers():
    tokens = kinds("service match allow custom_name")
    assert tokens == [
        (TokenType.KEYWORD, "service"),
        (TokenType.KEYWORD, "match"),
        (TokenType.KEYWORD, "allow"),
        (TokenType.IDENT, "custom_name"),
    ]


def test_string_literals_both_quotes():
    assert kinds("'abc' \"def\"") == [
        (TokenType.STRING, "abc"),
        (TokenType.STRING, "def"),
    ]


def test_string_escapes():
    assert kinds(r"'a\'b'") == [(TokenType.STRING, "a'b")]


def test_unterminated_string():
    with pytest.raises(RulesSyntaxError):
        tokenize("'abc")
    with pytest.raises(RulesSyntaxError):
        tokenize("'abc\ndef'")


def test_numbers():
    assert kinds("42 3.14") == [
        (TokenType.NUMBER, "42"),
        (TokenType.NUMBER, "3.14"),
    ]


def test_operators_maximal_munch():
    values = [t.value for t in tokenize("== != <= >= && || = < > !")[:-1]]
    assert values == ["==", "!=", "<=", ">=", "&&", "||", "=", "<", ">", "!"]


def test_line_comments_skipped():
    assert kinds("a // comment here\nb") == [
        (TokenType.IDENT, "a"),
        (TokenType.IDENT, "b"),
    ]


def test_block_comments_skipped():
    assert kinds("a /* multi\nline */ b") == [
        (TokenType.IDENT, "a"),
        (TokenType.IDENT, "b"),
    ]


def test_unterminated_block_comment():
    with pytest.raises(RulesSyntaxError):
        tokenize("/* oops")


def test_line_and_column_tracking():
    tokens = tokenize("a\n  b")
    assert tokens[0].line == 1 and tokens[0].column == 1
    assert tokens[1].line == 2 and tokens[1].column == 3


def test_unexpected_character():
    with pytest.raises(RulesSyntaxError) as excinfo:
        tokenize("a @ b")
    assert "@" in str(excinfo.value)


def test_path_tokens():
    values = [t.value for t in tokenize("/databases/{db}/documents")[:-1]]
    assert values == ["/", "databases", "/", "{", "db", "}", "/", "documents"]
