import pytest

from repro.errors import RulesSyntaxError
from repro.rules import ast
from repro.rules.parser import parse_rules

MINIMAL = """
service cloud.firestore {
  match /databases/{database}/documents {
    match /users/{userId} {
      allow read: if true;
    }
  }
}
"""


def test_minimal_structure():
    ruleset = parse_rules(MINIMAL)
    assert len(ruleset.services) == 1
    service = ruleset.services[0]
    assert service.name == "cloud.firestore"
    outer = service.matches[0]
    assert [s.kind for s in outer.pattern] == ["literal", "capture", "literal"]
    inner = outer.children[0]
    assert inner.pattern[1] == ast.Segment("capture", "userId")
    assert inner.allows[0].methods == ("read",)


def test_rules_version_header_tolerated():
    parse_rules("rules_version = '2';\n" + MINIMAL)


def test_allow_without_condition():
    ruleset = parse_rules(
        "service cloud.firestore { match /a/{x} { allow read, write; } }"
    )
    allow = ruleset.services[0].matches[0].allows[0]
    assert allow.methods == ("read", "write")
    assert allow.condition is None


def test_all_methods_accepted():
    parse_rules(
        "service cloud.firestore { match /a/{x} {"
        " allow get, list, create, update, delete; } }"
    )


def test_unknown_method_rejected():
    with pytest.raises(RulesSyntaxError):
        parse_rules("service cloud.firestore { match /a/{x} { allow destroy; } }")


def test_glob_capture():
    ruleset = parse_rules(
        "service cloud.firestore { match /a/{rest=**} { allow read; } }"
    )
    segment = ruleset.services[0].matches[0].pattern[1]
    assert segment == ast.Segment("glob", "rest")


def test_empty_pattern_rejected():
    with pytest.raises(RulesSyntaxError):
        parse_rules("service cloud.firestore { match { allow read; } }")


def test_expression_precedence():
    ruleset = parse_rules(
        "service cloud.firestore { match /a/{x} {"
        " allow read: if a == 1 && b == 2 || !c; } }"
    )
    condition = ruleset.services[0].matches[0].allows[0].condition
    assert isinstance(condition, ast.Binary)
    assert condition.op == "||"
    assert isinstance(condition.left, ast.Binary) and condition.left.op == "&&"
    assert isinstance(condition.right, ast.Unary) and condition.right.op == "!"


def test_member_and_index_access():
    ruleset = parse_rules(
        "service cloud.firestore { match /a/{x} {"
        " allow read: if request.resource.data['key'].size() > 0; } }"
    )
    condition = ruleset.services[0].matches[0].allows[0].condition
    assert isinstance(condition, ast.Binary)
    call = condition.left
    assert isinstance(call, ast.Call)
    assert isinstance(call.func, ast.Member) and call.func.name == "size"


def test_path_literal_with_interpolation():
    ruleset = parse_rules(
        "service cloud.firestore { match /a/{x} {"
        " allow read: if exists(/databases/$(database)/documents/users/$(request.auth.uid)); } }"
    )
    condition = ruleset.services[0].matches[0].allows[0].condition
    path_arg = condition.args[0]
    assert isinstance(path_arg, ast.PathLiteral)
    assert path_arg.parts[0] == "databases"
    assert isinstance(path_arg.parts[1], ast.Var)


def test_list_literals_and_in():
    ruleset = parse_rules(
        "service cloud.firestore { match /a/{x} {"
        " allow read: if request.auth.uid in ['a', 'b']; } }"
    )
    condition = ruleset.services[0].matches[0].allows[0].condition
    assert condition.op == "in"
    assert isinstance(condition.right, ast.ListLiteral)


def test_functions():
    ruleset = parse_rules(
        """
        service cloud.firestore {
          function isOwner(userId) { return request.auth.uid == userId; }
          match /docs/{id} {
            allow write: if isOwner(id);
          }
        }
        """
    )
    service = ruleset.services[0]
    assert "isOwner" in service.functions
    assert service.functions["isOwner"].params == ("userId",)


def test_nested_match_functions():
    ruleset = parse_rules(
        """
        service cloud.firestore {
          match /a/{x} {
            function helper() { return true; }
            allow read: if helper();
          }
        }
        """
    )
    assert "helper" in ruleset.services[0].matches[0].functions


def test_missing_service_rejected():
    with pytest.raises(RulesSyntaxError):
        parse_rules("")
    with pytest.raises(RulesSyntaxError):
        parse_rules("match /a/{x} { allow read; }")


def test_garbage_in_match_block():
    with pytest.raises(RulesSyntaxError):
        parse_rules("service cloud.firestore { match /a/{x} { bogus; } }")


def test_arithmetic_expressions():
    ruleset = parse_rules(
        "service cloud.firestore { match /a/{x} {"
        " allow read: if 1 + 2 * 3 - 4 % 2 == 7; } }"
    )
    assert ruleset.services[0].matches[0].allows[0].condition is not None


def test_is_type_check():
    ruleset = parse_rules(
        "service cloud.firestore { match /a/{x} {"
        " allow read: if request.resource.data.age is 'int'; } }"
    )
    condition = ruleset.services[0].matches[0].allows[0].condition
    assert condition.op == "is"
