"""Rules evaluation semantics, including the paper's Figure 3 ruleset."""

import pytest

from repro.errors import PermissionDenied
from repro.core.backend import AuthContext
from repro.core.document import Document
from repro.core.path import Path
from repro.rules import compile_rules


class FakeReader:
    """In-memory document source for get()/exists()."""

    def __init__(self, docs: dict[str, dict]):
        self.docs = docs
        self.lookups: list[str] = []

    def get(self, path: Path):
        self.lookups.append(str(path))
        data = self.docs.get(str(path))
        if data is None:
            return None
        return Document(path, data, 1, 1)

    def exists(self, path: Path) -> bool:
        return self.get(path) is not None


def allows(engine, method, path, auth=None, resource=None, new_resource=None, reader=None):
    doc_path = Path.parse(path)
    resource_doc = (
        Document(doc_path, resource, 1, 1) if resource is not None else None
    )
    new_doc = (
        Document(doc_path, new_resource, 1, 1) if new_resource is not None else None
    )
    return engine.allows(
        method, doc_path, auth, resource_doc, new_doc,
        reader if reader is not None else FakeReader({}),
    )


ALICE = AuthContext(uid="alice")
ANON = AuthContext(uid=None)


FIG3_RULES = """
service cloud.firestore {
  match /databases/{database}/documents {
    match /restaurants/{restaurantId} {
      allow read: if true;
      match /ratings/{ratingId} {
        allow read: if request.auth != null;
        allow create: if request.auth != null
                      && request.resource.data.userId == request.auth.uid;
      }
    }
  }
}
"""


class TestFigure3:
    @pytest.fixture
    def engine(self):
        return compile_rules(FIG3_RULES)

    def test_anyone_reads_restaurants(self, engine):
        assert allows(engine, "get", "restaurants/one", auth=ANON)
        assert allows(engine, "list", "restaurants/one", auth=ALICE)

    def test_nobody_writes_restaurants(self, engine):
        assert not allows(engine, "create", "restaurants/one", auth=ALICE,
                          new_resource={"x": 1})

    def test_only_authenticated_read_ratings(self, engine):
        assert allows(engine, "get", "restaurants/one/ratings/2", auth=ALICE)
        assert not allows(engine, "get", "restaurants/one/ratings/2", auth=ANON)

    def test_create_rating_requires_own_uid(self, engine):
        assert allows(
            engine, "create", "restaurants/one/ratings/2",
            auth=ALICE, new_resource={"userId": "alice", "rating": 5},
        )
        assert not allows(
            engine, "create", "restaurants/one/ratings/2",
            auth=ALICE, new_resource={"userId": "bob", "rating": 1},
        )

    def test_updates_and_deletes_denied(self, engine):
        assert not allows(
            engine, "update", "restaurants/one/ratings/2",
            auth=ALICE, resource={"userId": "alice"},
            new_resource={"userId": "alice"},
        )
        assert not allows(
            engine, "delete", "restaurants/one/ratings/2",
            auth=ALICE, resource={"userId": "alice"},
        )

    def test_unmatched_paths_denied(self, engine):
        assert not allows(engine, "get", "secrets/s1", auth=ALICE)

    def test_authorize_raises(self, engine):
        with pytest.raises(PermissionDenied):
            engine.authorize(
                "delete", Path.parse("restaurants/one"), ALICE, None, None, FakeReader({})
            )


class TestMatching:
    def test_glob_matches_any_depth(self):
        engine = compile_rules(
            "service cloud.firestore { match /databases/{d}/documents {"
            " match /{document=**} { allow read: if true; } } }"
        )
        assert allows(engine, "get", "a/b", auth=ANON)
        assert allows(engine, "get", "a/b/c/d/e/f", auth=ANON)

    def test_glob_binding_value(self):
        engine = compile_rules(
            "service cloud.firestore { match /databases/{d}/documents {"
            " match /{path=**} { allow read: if path == 'a/b/c/d'; } } }"
        )
        assert allows(engine, "get", "a/b/c/d", auth=ANON)
        assert not allows(engine, "get", "a/b", auth=ANON)

    def test_capture_bindings_usable_in_conditions(self):
        engine = compile_rules(
            "service cloud.firestore { match /databases/{d}/documents {"
            " match /users/{userId} { allow write: if userId == request.auth.uid; } } }"
        )
        assert allows(engine, "update", "users/alice", auth=ALICE,
                      resource={}, new_resource={})
        assert not allows(engine, "update", "users/bob", auth=ALICE,
                          resource={}, new_resource={})

    def test_multiple_match_chains_any_allows(self):
        engine = compile_rules(
            """
            service cloud.firestore {
              match /databases/{d}/documents {
                match /docs/{id} { allow read: if false; }
                match /docs/{id} { allow read: if true; }
              }
            }
            """
        )
        assert allows(engine, "get", "docs/x", auth=ANON)

    def test_rules_do_not_cascade_to_children(self):
        engine = compile_rules(
            "service cloud.firestore { match /databases/{d}/documents {"
            " match /docs/{id} { allow read: if true; } } }"
        )
        assert not allows(engine, "get", "docs/x/sub/y", auth=ANON)

    def test_wrong_service_ignored(self):
        engine = compile_rules(
            "service firebase.storage { match /{f=**} { allow read; } }"
        )
        assert not allows(engine, "get", "docs/x", auth=ANON)


class TestExpressions:
    def _engine(self, condition: str):
        return compile_rules(
            "service cloud.firestore { match /databases/{d}/documents {"
            f" match /docs/{{id}} {{ allow write: if {condition}; }} }} }}"
        )

    def check(self, condition, auth=ALICE, new_resource=None, reader=None):
        return allows(
            self._engine(condition), "update", "docs/x",
            auth=auth, resource={}, new_resource=new_resource or {}, reader=reader,
        )

    def test_comparisons(self):
        assert self.check("request.resource.data.n > 3", new_resource={"n": 5})
        assert not self.check("request.resource.data.n > 3", new_resource={"n": 2})
        assert self.check("'abc' < 'abd'")

    def test_missing_field_denies(self):
        assert not self.check("request.resource.data.missing == 1", new_resource={})

    def test_error_never_grants_via_or(self):
        assert self.check("request.resource.data.missing == 1 || true", new_resource={})

    def test_non_boolean_condition_denies(self):
        assert not self.check("1 + 1")

    def test_in_operator(self):
        assert self.check("request.auth.uid in ['alice', 'bob']")
        assert self.check("'k' in request.resource.data", new_resource={"k": 1})
        assert not self.check("'z' in request.resource.data", new_resource={"k": 1})

    def test_is_operator(self):
        assert self.check("request.resource.data.n is 'int'", new_resource={"n": 1})
        assert self.check("request.resource.data.n is 'number'", new_resource={"n": 1.5})
        assert not self.check("request.resource.data.n is 'string'", new_resource={"n": 1})
        assert self.check("request.resource.data.m is 'map'", new_resource={"m": {}})

    def test_arithmetic(self):
        assert self.check("1 + 2 * 3 == 7")
        assert self.check("10 % 3 == 1")
        assert self.check("7 / 2 == 3.5")
        assert not self.check("1 / 0 == 0")  # division by zero denies

    def test_string_methods(self):
        assert self.check("request.resource.data.s.size() == 3", new_resource={"s": "abc"})
        assert self.check("'ABC'.lower() == 'abc'")
        assert self.check("'a-b'.split('-')[1] == 'b'")
        assert self.check("'user123'.matches('user[0-9]+')")

    def test_collection_methods(self):
        assert self.check(
            "request.resource.data.keys().hasAll(['a', 'b'])",
            new_resource={"a": 1, "b": 2, "c": 3},
        )
        assert self.check(
            "request.resource.data.tags.hasAny(['x'])", new_resource={"tags": ["x", "y"]}
        )

    def test_unary_and_not(self):
        assert self.check("!(1 > 2)")
        assert self.check("-request.resource.data.n == 5", new_resource={"n": -5})

    def test_anonymous_auth_is_null(self):
        assert self.check("request.auth == null", auth=ANON)
        assert not self.check("request.auth == null", auth=ALICE)

    def test_auth_token_claims(self):
        admin = AuthContext(uid="root", token={"admin": True})
        assert allows(
            self._engine("request.auth.token.admin == true"),
            "update", "docs/x", auth=admin, resource={}, new_resource={},
        )


class TestLookups:
    def test_get_reads_other_documents(self):
        engine = compile_rules(
            """
            service cloud.firestore {
              match /databases/{database}/documents {
                match /docs/{id} {
                  allow write: if get(/databases/$(database)/documents/roles/$(request.auth.uid)).data.role == 'editor';
                }
              }
            }
            """
        )
        reader = FakeReader({"roles/alice": {"role": "editor"}})
        assert allows(engine, "update", "docs/x", auth=ALICE,
                      resource={}, new_resource={}, reader=reader)
        assert reader.lookups == ["roles/alice"]
        reader_bad = FakeReader({"roles/alice": {"role": "viewer"}})
        assert not allows(engine, "update", "docs/x", auth=ALICE,
                          resource={}, new_resource={}, reader=reader_bad)

    def test_get_of_missing_document_denies(self):
        engine = compile_rules(
            """
            service cloud.firestore {
              match /databases/{d}/documents {
                match /docs/{id} {
                  allow write: if get(/databases/$(d)/documents/acl/x).data.ok == true;
                }
              }
            }
            """
        )
        assert not allows(engine, "update", "docs/x", auth=ALICE,
                          resource={}, new_resource={}, reader=FakeReader({}))

    def test_exists(self):
        engine = compile_rules(
            """
            service cloud.firestore {
              match /databases/{d}/documents {
                match /docs/{id} {
                  allow read: if exists(/databases/$(d)/documents/allow/$(request.auth.uid));
                }
              }
            }
            """
        )
        reader = FakeReader({"allow/alice": {}})
        assert allows(engine, "get", "docs/x", auth=ALICE, reader=reader)
        assert not allows(engine, "get", "docs/x", auth=AuthContext(uid="mallory"),
                          reader=reader)


class TestFunctions:
    def test_user_defined_function(self):
        engine = compile_rules(
            """
            service cloud.firestore {
              match /databases/{d}/documents {
                function isOwner(uid) { return request.auth.uid == uid; }
                match /users/{userId} {
                  allow write: if isOwner(userId);
                }
              }
            }
            """
        )
        assert allows(engine, "update", "users/alice", auth=ALICE,
                      resource={}, new_resource={})
        assert not allows(engine, "update", "users/bob", auth=ALICE,
                          resource={}, new_resource={})

    def test_recursion_depth_capped(self):
        engine = compile_rules(
            """
            service cloud.firestore {
              match /databases/{d}/documents {
                function loop(x) { return loop(x); }
                match /docs/{id} { allow read: if loop(1); }
              }
            }
            """
        )
        assert not allows(engine, "get", "docs/x", auth=ALICE)

    def test_wrong_arity_denies(self):
        engine = compile_rules(
            """
            service cloud.firestore {
              match /databases/{d}/documents {
                function two(a, b) { return true; }
                match /docs/{id} { allow read: if two(1); }
              }
            }
            """
        )
        assert not allows(engine, "get", "docs/x", auth=ALICE)
