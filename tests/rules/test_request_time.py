"""request.time in security rules (timestamp comparisons)."""

import pytest

from repro.core.backend import AuthContext, set_op
from repro.core.firestore import FirestoreService
from repro.core.values import Timestamp
from repro.errors import PermissionDenied
from repro.rules import compile_rules

from tests.rules.test_evaluator import FakeReader


def test_request_time_bound_and_comparable():
    engine = compile_rules(
        "service cloud.firestore { match /databases/{d}/documents {"
        " match /docs/{id} { allow read: if request.time.seconds() >= 100; } } }"
    )
    from repro.core.path import Path

    alice = AuthContext(uid="alice")
    assert engine.allows(
        "get", Path.parse("docs/x"), alice, None, None, FakeReader({}),
        now_us=150_000_000,
    )
    assert not engine.allows(
        "get", Path.parse("docs/x"), alice, None, None, FakeReader({}),
        now_us=50_000_000,
    )


def test_timestamp_comparison_against_stored_field():
    """The classic pattern: a document is readable until it expires."""
    engine = compile_rules(
        "service cloud.firestore { match /databases/{d}/documents {"
        " match /docs/{id} { allow read: if resource.data.expiresAt > request.time; } } }"
    )
    from repro.core.document import Document
    from repro.core.path import Path

    path = Path.parse("docs/x")
    doc = Document(path, {"expiresAt": Timestamp(1_000_000)}, 1, 1)
    alice = AuthContext(uid="alice")
    assert engine.allows("get", path, alice, doc, None, FakeReader({}), now_us=500_000)
    assert not engine.allows(
        "get", path, alice, doc, None, FakeReader({}), now_us=2_000_000
    )


def test_end_to_end_expiry_rule():
    service = FirestoreService()
    db = service.create_database("time-rules")
    db.set_rules(
        "service cloud.firestore { match /databases/{d}/documents {"
        " match /offers/{id} { allow read: if resource.data.expiresAt > request.time; } } }"
    )
    future = Timestamp(service.clock.now_us + 60_000_000)
    db.commit([set_op("offers/sale", {"expiresAt": future, "pct": 20})])
    alice = AuthContext(uid="alice")
    assert db.lookup("offers/sale", auth=alice).exists
    service.clock.advance(120_000_000)  # the offer expires
    with pytest.raises(PermissionDenied):
        db.lookup("offers/sale", auth=alice)


def test_to_millis():
    engine = compile_rules(
        "service cloud.firestore { match /databases/{d}/documents {"
        " match /docs/{id} { allow read: if request.time.toMillis() == 5; } } }"
    )
    from repro.core.path import Path

    assert engine.allows(
        "get", Path.parse("docs/x"), AuthContext(uid="u"), None, None,
        FakeReader({}), now_us=5_000,
    )
