"""Workload generators reproduce the paper's experiment *shapes* at small
scale (the benchmarks run the full-size versions)."""

import math

import pytest

from repro.workloads import (
    FanoutConfig,
    FleetConfig,
    IsolationConfig,
    YcsbConfig,
    YcsbRunner,
    run_fanout_experiment,
    run_field_count_sweep,
    run_isolation_experiment,
    synthesize_fleet,
)
from repro.workloads.datashape import run_doc_size_sweep


class TestYcsb:
    def test_rejects_unknown_workload(self):
        with pytest.raises(ValueError):
            YcsbConfig(workload="Z")

    def test_rejects_bad_qps(self):
        with pytest.raises(ValueError):
            YcsbConfig(target_qps=0)

    def test_achieves_target_qps(self):
        result = YcsbRunner(
            YcsbConfig(workload="A", target_qps=200, duration_s=30, measure_last_s=15)
        ).run()
        assert result.achieved_qps == pytest.approx(200, rel=0.2)

    def test_workload_b_read_heavy(self):
        result = YcsbRunner(
            YcsbConfig(workload="B", target_qps=200, duration_s=30, measure_last_s=15)
        ).run()
        # the mix shows in the sample counts reflected through percentiles
        assert result.read_p50_us > 0
        assert result.update_p50_us > result.read_p50_us  # commits cost more

    def test_deterministic_with_seed(self):
        config = dict(workload="A", target_qps=100, duration_s=20, measure_last_s=10)
        a = YcsbRunner(YcsbConfig(seed=9, **config)).run()
        b = YcsbRunner(YcsbConfig(seed=9, **config)).run()
        assert (a.read_p50_us, a.update_p99_us) == (b.read_p50_us, b.update_p99_us)

    def test_different_seeds_differ(self):
        config = dict(workload="A", target_qps=100, duration_s=20, measure_last_s=10)
        a = YcsbRunner(YcsbConfig(seed=1, **config)).run()
        b = YcsbRunner(YcsbConfig(seed=2, **config)).run()
        assert (a.read_p50_us, a.read_p99_us) != (b.read_p50_us, b.read_p99_us)


class TestFanout:
    def test_latency_stable_across_exponential_listeners(self):
        results = run_fanout_experiment(
            FanoutConfig(listener_counts=(100, 1000, 10_000), writes_per_level=20)
        )
        p50s = [r.notify_p50_us for r in results]
        # the paper's shape: once auto-scaling tracks connections, a 10x
        # listener increase leaves notification latency flat
        assert p50s[2] < 3 * p50s[1]
        # and growth is strongly sub-linear overall (100x listeners)
        assert p50s[2] < 10 * p50s[0]
        # because the frontend pool grew with the listener count
        assert results[-1].frontend_tasks_at_end > results[0].frontend_tasks_at_end


class TestIsolation:
    def test_fair_scheduling_protects_bystander(self):
        config = IsolationConfig(duration_s=40)
        fair = run_isolation_experiment(True, config)
        unfair = run_isolation_experiment(False, config)
        assert unfair.bystander_p99_saturated_us > 5 * fair.bystander_p99_saturated_us
        assert fair.bystander_completed > 0

    def test_series_cover_run(self):
        result = run_isolation_experiment(True, IsolationConfig(duration_s=30))
        assert len(result.bystander_p50_series) >= 2
        assert result.bystander_p50_series[0][0] == 0


class TestDataShape:
    def test_commit_latency_grows_with_doc_size(self):
        results = run_doc_size_sweep(
            sizes_kb=(10, 500), commits_per_size=10, seed_docs=50
        )
        assert results[1].commit_p50_us > results[0].commit_p50_us

    def test_commit_latency_and_entries_grow_with_fields(self):
        results = run_field_count_sweep(
            field_counts=(1, 100), commits_per_count=10, seed_docs=50
        )
        assert results[1].commit_p50_us > results[0].commit_p50_us
        assert results[1].index_entries_per_commit == pytest.approx(
            100 * results[0].index_entries_per_commit
        )
        assert results[1].participants_per_commit > results[0].participants_per_commit

    def test_exemption_ablation_flattens_entries(self):
        indexed = run_field_count_sweep(
            field_counts=(100,), commits_per_count=5, seed_docs=20
        )
        exempted = run_field_count_sweep(
            field_counts=(100,), commits_per_count=5, seed_docs=20, exempt_fields=True
        )
        assert exempted[0].index_entries_per_commit == 0
        assert exempted[0].commit_p50_us < indexed[0].commit_p50_us


class TestFleet:
    def test_nine_orders_of_magnitude_spread(self):
        stats = synthesize_fleet(FleetConfig(databases=50_000))
        storage = stats["storage_bytes"].normalized()
        assert math.log10(storage.maximum) > 7.5
        assert math.log10(storage.minimum) < -7.5

    def test_realtime_spread_hundreds_of_thousands(self):
        stats = synthesize_fleet(FleetConfig(databases=50_000))
        realtime = stats["active_realtime_queries"].normalized()
        assert realtime.maximum > 1e5

    def test_normalized_median_is_one(self):
        stats = synthesize_fleet(FleetConfig(databases=1000))
        for metric in stats.values():
            assert metric.normalized().median == 1.0

    def test_deterministic(self):
        a = synthesize_fleet(FleetConfig(databases=1000, seed=5))
        b = synthesize_fleet(FleetConfig(databases=1000, seed=5))
        assert a["qps"].maximum == b["qps"].maximum
