"""The failover chaos scenario: leader outage mid-traffic, checked."""

import pytest

from repro.faults.chaos import replay_digest, run_chaos, sweep


def test_failover_run_is_clean_and_fails_over():
    run = run_chaos("failover", seed=3, mix="region-outage")
    assert run.violations == []
    assert run.exactly_once
    assert run.converged
    assert run.attempted == 20
    assert run.extra["failovers"] >= 1
    assert run.extra["unavailability_us"] > 0
    assert run.extra["final_term"] >= 2
    assert run.extra["replication_lag_p99_us"] >= 0
    assert len(run.extra["lag_samples_us"]) == run.attempted


def test_failover_commits_survive_into_the_new_term():
    run = run_chaos("failover", seed=3, mix="region-outage")
    # the scenario keeps writing after the armed leader outage; some of
    # those commits land under the successor's term
    assert run.succeeded > run.attempted // 2
    # every applied transaction went through the replicated log (unknown
    # outcomes may apply without an ack, so the log can run ahead of the
    # client's view but never behind it)
    assert run.extra["log_entries"] >= run.succeeded


@pytest.mark.parametrize("mix", ["region-outage", "region-partition",
                                 "replica-slow"])
def test_failover_mixes_stay_consistent(mix):
    for seed in (0, 1, 2):
        run = run_chaos("failover", seed=seed, mix=mix)
        assert run.violations == []
        assert run.exactly_once
        assert run.converged


def test_failover_replay_is_byte_identical():
    replay_digest("failover", seed=3, mix="region-outage")


def test_failover_sweep_summary():
    runs, summary = sweep(
        ["failover"], seeds=[0, 1], mixes=["region-outage"]
    )
    assert len(runs) == 2
    assert summary["violations"] == 0
    assert summary["cells"]["failover/region-outage"]["runs"] == 2
    assert summary["exactly_once_failures"] == 0
    assert summary["convergence_failures"] == 0
