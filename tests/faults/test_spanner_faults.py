"""Spanner-layer fault hooks, driven through the public commit path.

Each site maps to one failure mode of the paper's section-V storage
layer; the assertions pin both the surfaced error and the resulting
database state (applied / not applied / locks released).
"""

import pytest

from repro.core.backend import set_op
from repro.core.firestore import FirestoreService
from repro.errors import Aborted, DeadlineExceeded, Unavailable
from repro.faults.plan import FaultPlan
from repro.spanner.transaction import (
    inject_definitive_failure,
    inject_unknown_outcome,
)


@pytest.fixture()
def db():
    service = FirestoreService()
    database = service.create_database("spanner-faults")
    plan = FaultPlan(seed=0)
    database.layout.spanner.fault_plan = plan
    database.fault_plan = plan
    yield database
    plan.disarm()


def spanner_of(db):
    return db.layout.spanner


def test_lock_timeout_surfaces_aborted_and_releases_locks(db):
    db.fault_plan.arm("spanner.lock_timeout")
    with pytest.raises(Aborted, match="lock acquisition timed out"):
        db.commit([set_op("docs/a", {"n": 1})])
    # the aborted transaction holds nothing: the same write now succeeds
    db.commit([set_op("docs/a", {"n": 2})])
    assert db.lookup("docs/a").data == {"n": 2}


def test_tablet_unavailable_surfaces_unavailable(db):
    db.fault_plan.arm("spanner.tablet_unavailable")
    with pytest.raises(Unavailable, match="unreachable"):
        db.commit([set_op("docs/a", {"n": 1})])
    assert db.run_query(db.query("docs")).documents == []


def test_tablet_slow_advances_the_sim_clock(db):
    clock = spanner_of(db).clock
    db.commit([set_op("docs/a", {"n": 1})])
    baseline = clock.now_us
    db.fault_plan.arm("spanner.tablet_slow", delay_us=7_000)
    db.commit([set_op("docs/a", {"n": 2})])
    assert clock.now_us >= baseline + 7_000
    assert db.lookup("docs/a").data == {"n": 2}


def test_commit_fail_aborts_and_applies_nothing(db):
    db.fault_plan.arm("spanner.commit_fail")
    with pytest.raises(Aborted, match="definitively"):
        db.commit([set_op("docs/a", {"n": 1})])
    assert db.run_query(db.query("docs")).documents == []
    db.commit([set_op("docs/a", {"n": 2})])
    assert db.lookup("docs/a").data == {"n": 2}


def test_commit_unknown_applied_raises_but_the_write_landed(db):
    db.fault_plan.arm("spanner.commit_unknown", applied=True)
    with pytest.raises(DeadlineExceeded, match="may or may not"):
        db.commit([set_op("docs/a", {"n": 1})])
    assert db.lookup("docs/a").data == {"n": 1}


def test_commit_unknown_lost_raises_and_nothing_landed(db):
    db.fault_plan.arm("spanner.commit_unknown", applied=False)
    with pytest.raises(DeadlineExceeded, match="may or may not"):
        db.commit([set_op("docs/a", {"n": 1})])
    assert db.run_query(db.query("docs")).documents == []


def test_commit_unknown_releases_locks_either_way(db):
    for applied in (True, False):
        db.fault_plan.arm("spanner.commit_unknown", applied=applied)
        with pytest.raises(DeadlineExceeded):
            db.commit([set_op("docs/a", {"n": 1})])
        # the server side resolved the 2PC; a follow-up write must not
        # deadlock on leaked locks
        db.commit([set_op("docs/a", {"n": 9})])
        assert db.lookup("docs/a").data == {"n": 9}


def test_split_during_commit_grows_topology_and_still_commits(db):
    spanner = spanner_of(db)
    db.commit([set_op("docs/a", {"n": 1})])
    before = len(spanner.tablets)
    db.fault_plan.arm("spanner.split_during_commit")
    db.commit([set_op("docs/b", {"n": 2})])
    assert len(spanner.tablets) == before + 1
    assert db.lookup("docs/b").data == {"n": 2}
    report = db.validate()
    assert report.is_clean, report.summary()


def test_legacy_injector_takes_precedence_over_the_plan(db):
    spanner = spanner_of(db)
    spanner.commit_fault_injector = lambda txn_id: inject_definitive_failure()
    db.fault_plan.arm("spanner.commit_unknown", applied=True)
    with pytest.raises(Aborted):
        db.commit([set_op("docs/a", {"n": 1})])
    # the legacy one-shot fired and cleared; the armed plan fault is
    # still queued for the next commit
    assert spanner.commit_fault_injector is None
    assert db.fault_plan.armed("spanner.commit_unknown") == 1
    with pytest.raises(DeadlineExceeded):
        db.commit([set_op("docs/a", {"n": 1})])


def test_legacy_unknown_injector_maps_to_the_same_path(db):
    spanner = spanner_of(db)
    spanner.commit_fault_injector = (
        lambda txn_id: inject_unknown_outcome(applied=True)
    )
    with pytest.raises(DeadlineExceeded, match="may or may not"):
        db.commit([set_op("docs/a", {"n": 5})])
    assert db.lookup("docs/a").data == {"n": 5}
