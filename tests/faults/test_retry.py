"""Retry machinery: classification, backoff, deadlines, commit dedup."""

import pytest

from repro.core.backend import set_op
from repro.core.firestore import FirestoreService
from repro.core.values import increment
from repro.errors import (
    Aborted,
    CommitOutcomeUnknown,
    DeadlineExceeded,
    InvalidArgument,
    NotFound,
    ResourceExhausted,
    Unavailable,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import (
    DEFAULT_POLICY,
    RetryBudget,
    RetryPolicy,
    call_with_retry,
    commit_with_retry,
    is_retryable,
    retry_stream,
)
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import SimClock


# -- classification ----------------------------------------------------------


def test_always_retryable_codes():
    for error in (Aborted("a"), Unavailable("u"), ResourceExhausted("r")):
        assert is_retryable(error)
        assert is_retryable(error, idempotent=True)


def test_may_have_applied_codes_require_idempotency():
    for error in (CommitOutcomeUnknown("?"), DeadlineExceeded("d")):
        assert not is_retryable(error)
        assert is_retryable(error, idempotent=True)


def test_terminal_codes_never_retry():
    for error in (InvalidArgument("bad"), NotFound("gone"), ValueError("x")):
        assert not is_retryable(error)
        assert not is_retryable(error, idempotent=True)


# -- backoff -----------------------------------------------------------------


def test_backoff_grows_exponentially_to_the_cap():
    policy = RetryPolicy(
        initial_backoff_us=1_000,
        multiplier=2.0,
        max_backoff_us=5_000,
        jitter=0.0,
    )
    rand = retry_stream("growth")
    assert [policy.backoff_us(n, rand) for n in range(4)] == [
        1_000,
        2_000,
        4_000,
        5_000,  # capped
    ]


def test_backoff_jitter_stays_in_band_and_is_seeded():
    policy = RetryPolicy(initial_backoff_us=100_000, jitter=0.5)
    first = policy.backoff_us(0, retry_stream("jit"))
    pauses = [policy.backoff_us(0, retry_stream(f"jit{i}")) for i in range(30)]
    assert all(50_000 <= p <= 100_000 for p in pauses)
    assert len(set(pauses)) > 1  # jitter actually varies across streams
    assert first == policy.backoff_us(0, retry_stream("jit"))  # and replays


def test_backoff_never_returns_zero():
    policy = RetryPolicy(initial_backoff_us=1, jitter=0.999)
    rand = retry_stream("tiny")
    assert all(policy.backoff_us(0, rand) >= 1 for _ in range(20))


# -- call_with_retry ---------------------------------------------------------


class Flaky:
    """Fails ``failures`` times with ``error`` then returns ``value``."""

    def __init__(self, failures, error, value="ok"):
        self.failures = failures
        self.error = error
        self.value = value
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.error
        return self.value


def test_succeeds_after_transient_failures_and_advances_clock():
    clock = SimClock()
    metrics = MetricsRegistry()
    op = Flaky(2, Unavailable("flap"))
    result = call_with_retry(
        op,
        clock=clock,
        rand=retry_stream("t"),
        metrics=metrics,
    )
    assert result == "ok"
    assert op.calls == 3
    assert clock.now_us > 0  # both backoffs were slept on the sim clock
    snapshot = metrics.to_dict()
    assert snapshot["faults_retries"][0]["value"] == 2
    assert snapshot["faults_backoff_us"][0]["value"] == clock.now_us


def test_terminal_error_raises_immediately():
    op = Flaky(5, NotFound("gone"))
    with pytest.raises(NotFound):
        call_with_retry(op, rand=retry_stream("t"))
    assert op.calls == 1


def test_unknown_outcome_is_terminal_unless_idempotent():
    op = Flaky(1, CommitOutcomeUnknown("?"))
    with pytest.raises(CommitOutcomeUnknown):
        call_with_retry(op, rand=retry_stream("t"))
    assert op.calls == 1
    op = Flaky(1, CommitOutcomeUnknown("?"))
    assert call_with_retry(op, rand=retry_stream("t"), idempotent=True) == "ok"
    assert op.calls == 2


def test_attempts_exhausted_raises_the_last_error():
    op = Flaky(99, Aborted("conflict"))
    with pytest.raises(Aborted):
        call_with_retry(op, rand=retry_stream("t"))
    assert op.calls == DEFAULT_POLICY.max_attempts


def test_backoff_never_overruns_the_deadline():
    clock = SimClock()
    op = Flaky(99, Unavailable("down"))
    with pytest.raises(DeadlineExceeded, match="would overrun the deadline"):
        call_with_retry(
            op,
            clock=clock,
            rand=retry_stream("t"),
            deadline_us=clock.now_us + 5_000,  # < one default backoff
        )
    assert op.calls == 1
    assert clock.now_us < 5_000  # gave up instead of sleeping past it


# -- commit_with_retry: the ledger makes unknown outcomes safe ---------------


def make_db(name):
    service = FirestoreService()
    db = service.create_database(name)
    plan = FaultPlan(seed=0)
    db.layout.spanner.fault_plan = plan
    return db, plan


def test_commit_unknown_applied_dedups_through_the_ledger():
    db, plan = make_db("retry-applied")
    db.commit([set_op("docs/c", {"n": 0})])
    plan.arm("spanner.commit_unknown", applied=True)
    outcome = commit_with_retry(
        db,
        [set_op("docs/c", {"n": increment(1)})],
        token="t-applied",
        rand=retry_stream("t"),
    )
    # first attempt applied, ack was lost; the retry replayed the ledger
    # row instead of incrementing again
    assert db.lookup("docs/c").data == {"n": 1}
    assert outcome.commit_ts > 0


def test_commit_unknown_lost_retries_fresh():
    db, plan = make_db("retry-lost")
    db.commit([set_op("docs/c", {"n": 0})])
    plan.arm("spanner.commit_unknown", applied=False)
    commit_with_retry(
        db,
        [set_op("docs/c", {"n": increment(1)})],
        token="t-lost",
        rand=retry_stream("t"),
    )
    # first attempt vanished entirely; the retry committed fresh — in
    # both unknown flavours the increment lands exactly once
    assert db.lookup("docs/c").data == {"n": 1}


def test_replaying_a_token_returns_the_original_result():
    db, _ = make_db("retry-replay")
    first = db.commit(
        [set_op("docs/a", {"n": increment(1)})], idempotency_token="tok"
    )
    second = db.commit(
        [set_op("docs/a", {"n": increment(1)})], idempotency_token="tok"
    )
    assert second.commit_ts == first.commit_ts
    assert db.lookup("docs/a").data == {"n": 1}


def test_distinct_tokens_apply_independently():
    db, _ = make_db("retry-distinct")
    db.commit([set_op("docs/a", {"n": increment(1)})], idempotency_token="t1")
    db.commit([set_op("docs/a", {"n": increment(1)})], idempotency_token="t2")
    assert db.lookup("docs/a").data == {"n": 2}


# -- retry budgets: bounded amplification under sustained failure ------------


def test_budget_earns_on_success_and_spends_on_retry():
    budget = RetryBudget(max_tokens=2.0, ratio=0.5)
    assert budget.tokens == 2.0  # starts full
    assert budget.try_spend()
    assert budget.try_spend()
    assert not budget.try_spend()  # dry
    assert budget.exhausted == 1
    for _ in range(10):
        budget.on_success()
    assert budget.tokens == 2.0  # capped at max_tokens


def test_budget_dry_stops_retrying_and_counts():
    metrics = MetricsRegistry()
    budget = RetryBudget(max_tokens=2.0, ratio=0.1)
    op = Flaky(99, Unavailable("down"))
    with pytest.raises(Unavailable):
        call_with_retry(
            op,
            clock=SimClock(),
            rand=retry_stream("t"),
            metrics=metrics,
            budget=budget,
        )
    # two retries spent the bucket; the third was suppressed
    assert op.calls == 3
    assert budget.exhausted == 1
    snapshot = metrics.to_dict()
    assert snapshot["faults_retry_budget_exhausted"][0]["value"] == 1


def test_budget_success_refills_across_calls():
    budget = RetryBudget(max_tokens=1.0, ratio=1.0)
    assert budget.try_spend()  # drain the bucket
    op = Flaky(0, None)
    assert call_with_retry(op, rand=retry_stream("t"), budget=budget) == "ok"
    assert budget.tokens == 1.0  # the success earned a whole token back
    assert budget.try_spend()


# -- server-driven backoff hints ---------------------------------------------


def test_server_hint_raises_the_pause():
    clock = SimClock()
    error = Unavailable("shed")
    error.retry_after_us = 400_000
    op = Flaky(1, error)
    policy = RetryPolicy(initial_backoff_us=1_000, jitter=0.0)
    assert call_with_retry(
        op, policy=policy, clock=clock, rand=retry_stream("t")
    ) == "ok"
    assert clock.now_us == 400_000  # the hint overrode the 1ms schedule


def test_server_hint_below_schedule_is_ignored():
    clock = SimClock()
    error = Unavailable("shed")
    error.retry_after_us = 10
    op = Flaky(1, error)
    policy = RetryPolicy(initial_backoff_us=50_000, jitter=0.0)
    assert call_with_retry(
        op, policy=policy, clock=clock, rand=retry_stream("t")
    ) == "ok"
    assert clock.now_us == 50_000


# -- deadline expiry racing a queued backoff timer ---------------------------


class CoalescingClock(SimClock):
    """A clock whose sleeps overshoot, like a coalesced backoff timer."""

    __slots__ = ("slop_us",)

    def __init__(self, slop_us):
        super().__init__()
        self.slop_us = slop_us

    def advance(self, delta_us):
        return super().advance(delta_us + self.slop_us)


def test_backoff_timer_firing_after_deadline_is_terminal():
    # the pre-backoff check passes (now + pause < deadline), but the
    # timer fires late and lands past the absolute deadline: the race
    # must surface terminal DeadlineExceeded, never another attempt
    clock = CoalescingClock(slop_us=6_000)
    op = Flaky(99, Unavailable("down"))
    policy = RetryPolicy(initial_backoff_us=5_000, jitter=0.0)
    with pytest.raises(DeadlineExceeded, match="during retry backoff"):
        call_with_retry(
            op,
            policy=policy,
            clock=clock,
            rand=retry_stream("t"),
            deadline_us=10_000,
        )
    assert op.calls == 1  # no attempt ran past the deadline
    assert clock.now_us == 11_000  # the overshooting sleep, nothing more


def test_on_time_timer_still_retries():
    clock = CoalescingClock(slop_us=0)
    op = Flaky(1, Unavailable("down"))
    policy = RetryPolicy(initial_backoff_us=5_000, jitter=0.0)
    assert (
        call_with_retry(
            op,
            policy=policy,
            clock=clock,
            rand=retry_stream("t"),
            deadline_us=10_000,
        )
        == "ok"
    )
    assert op.calls == 2
