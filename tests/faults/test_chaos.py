"""The chaos runner: per-scenario smoke, sweep aggregation, replay, CLI."""

import json

import pytest

from repro.faults.chaos import (
    CHAOS_SCENARIOS,
    default_ops,
    replay_digest,
    run_chaos,
    sweep,
)


def test_control_mix_injects_nothing_and_stays_clean():
    run = run_chaos("commit", seed=1, mix="none", ops=6)
    assert run.ok
    assert run.attempted == 6
    assert run.succeeded == 6
    assert run.availability == 1.0
    assert run.injected == {}
    assert run.histories  # the recording context captured the run


def test_commit_chaos_under_storage_faults():
    run = run_chaos("commit", seed=3, mix="storage", ops=10)
    assert run.ok, (run.violations, run.extra)
    assert run.attempted == 10
    # accounting invariant: the counter equals the ledger, always
    assert run.extra["counter"] == run.extra["ledger_applied"]


def test_fanout_chaos_converges_after_network_faults():
    run = run_chaos("realtime-fanout", seed=2, mix="network", ops=10)
    assert run.ok, (run.violations, run.extra)
    assert run.converged


def test_ycsb_chaos_accounts_drops_and_crashes():
    run = run_chaos("ycsb", seed=0, mix="chaos")
    assert run.ok, run.violations
    assert run.attempted == run.succeeded + run.failed
    assert 0.0 < run.availability <= 1.0
    assert set(run.extra) >= {
        "read_p99_us",
        "update_p99_us",
        "achieved_qps",
        "task_crashes",
        "deadline_expired",
    }


def test_chaos_mix_over_commit_scenario():
    run = run_chaos("commit", seed=5, mix="chaos", ops=10)
    assert run.ok, (run.violations, run.extra)


def test_same_seed_same_run():
    a = run_chaos("commit", seed=4, mix="storage", ops=8)
    b = run_chaos("commit", seed=4, mix="storage", ops=8)
    assert a.to_dict() == b.to_dict()
    assert a.histories == b.histories


def test_to_dict_is_json_serializable():
    run = run_chaos("commit", seed=1, mix="storage", ops=6)
    payload = json.dumps(run.to_dict(), sort_keys=True)
    assert '"scenario": "commit"' in payload


def test_unknown_scenario_and_defaults():
    with pytest.raises(ValueError, match="unknown chaos scenario"):
        run_chaos("nope", seed=0, mix="none")
    for name, (_builder, dflt) in CHAOS_SCENARIOS.items():
        assert default_ops(name) == dflt > 0


def test_sweep_summary_shape():
    runs, summary = sweep(
        ["commit"], seeds=[0, 1], mixes=["none", "storage"], ops=6
    )
    assert len(runs) == 4
    assert summary["sweep"]["runs"] == 4
    assert summary["violations"] == 0
    assert summary["exactly_once_failures"] == 0
    assert summary["convergence_failures"] == 0
    assert set(summary["cells"]) == {"commit/none", "commit/storage"}
    for cell in summary["cells"].values():
        assert cell["runs"] == 2
        assert 0.0 <= cell["availability"] <= 1.0
        assert cell["latency_p99_us"] >= cell["latency_p50_us"] >= 0
    assert summary["cells"]["commit/none"]["total_injected"] == 0


def test_sweep_rejects_unknown_mix():
    with pytest.raises(ValueError, match="unknown fault mix"):
        sweep(["commit"], seeds=[0], mixes=["bogus"])


def test_replay_digest_is_byte_identical():
    report = replay_digest("commit", seed=1, mix="storage", ops=6)
    assert report.deterministic


def test_cli_writes_summary_and_exits_zero(tmp_path, capsys):
    from repro.faults.__main__ import main

    out = tmp_path / "BENCH_faults.json"
    rc = main(
        [
            "--scenarios",
            "commit",
            "--mixes",
            "none,storage",
            "--seeds",
            "2",
            "--ops",
            "6",
            "--out",
            str(out),
        ]
    )
    assert rc == 0
    payload = json.loads(out.read_text())
    # the unified BENCH schema (repro.obs.bench): hard verdicts as exact
    # metrics, pooled SLO verdicts, the full sweep summary under raw
    assert payload["schema_version"] == 1
    assert payload["name"] == "faults"
    assert payload["metrics"]["violations"] == {
        "value": 0, "unit": "count", "kind": "exact",
    }
    assert "replay_failures" in payload["metrics"]
    assert payload["slos"]["chaos.convergence"]["ok"]
    assert "commit/storage" in payload["raw"]["cells"]
    assert "commit/storage" in capsys.readouterr().out


def test_cli_usage_errors(capsys):
    from repro.faults.__main__ import main

    assert main(["--scenarios", "nope", "--out", "-"]) == 2
    assert main(["--mixes", "bogus", "--out", "-"]) == 2
    assert main(["--seeds", "0", "--out", "-"]) == 2
    capsys.readouterr()
