"""FaultPlan unit tests: seeded determinism, arming, accounting.

The plan is the single source of injected faults, so these tests pin
down the properties everything else leans on: same seed => same
schedule, per-site stream independence, and armed one-shots that never
perturb the rate-driven streams.
"""

import pytest

from repro.faults.plan import (
    ALL_SITES,
    FAULT_MIXES,
    FaultPlan,
    install,
    plan_for_mix,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Tracer
from repro.sim.clock import SimClock


def decisions(plan, site, n):
    return [plan.decide(site) is not None for _ in range(n)]


def test_same_seed_same_schedule():
    a = FaultPlan(7, rates={"x": 0.3, "y": 0.3})
    b = FaultPlan(7, rates={"x": 0.3, "y": 0.3})
    assert decisions(a, "x", 200) == decisions(b, "x", 200)
    assert decisions(a, "y", 200) == decisions(b, "y", 200)


def test_different_seeds_diverge():
    a = FaultPlan(1, rates={"x": 0.5})
    b = FaultPlan(2, rates={"x": 0.5})
    assert decisions(a, "x", 200) != decisions(b, "x", 200)


def test_sites_draw_from_independent_streams():
    """Consulting one site never shifts another site's schedule."""
    interleaved = FaultPlan(11, rates={"x": 0.5, "y": 0.5})
    alone = FaultPlan(11, rates={"x": 0.5, "y": 0.5})
    seq = []
    for _ in range(100):
        seq.append(interleaved.decide("x") is not None)
        interleaved.decide("y")
    assert decisions(alone, "x", 100) == seq


def test_armed_faults_fire_fifo_with_detail():
    plan = FaultPlan(0)
    plan.arm("s", order=1)
    plan.arm("s", order=2)
    assert plan.armed("s") == 2
    assert plan.decide("s") == {"order": 1}
    assert plan.decide("s") == {"order": 2}
    assert plan.decide("s") is None
    assert plan.armed("s") == 0


def test_armed_faults_do_not_consume_rate_draws():
    """The deterministic-test mode leaves the chaos streams untouched."""
    rates = {"s": 0.4}
    control = FaultPlan(5, rates=rates)
    baseline = decisions(control, "s", 50)
    plan = FaultPlan(5, rates=rates)
    plan.arm("s")
    assert plan.decide("s") == {}
    assert decisions(plan, "s", 50) == baseline


def test_disarm_one_site_and_all_sites():
    plan = FaultPlan(0)
    plan.arm("a")
    plan.arm("b")
    plan.disarm("a")
    assert plan.armed("a") == 0
    assert plan.armed("b") == 1
    plan.arm("a")
    plan.disarm()
    assert plan.armed("a") == 0
    assert plan.armed("b") == 0


def test_zero_rate_never_fires():
    plan = FaultPlan(3)
    assert decisions(plan, "quiet", 50) == [False] * 50
    assert plan.total_injected == 0
    assert plan.log == []


def test_accounting_log_and_report():
    plan = FaultPlan(9, rates={"x": 1.0})
    plan.arm("y", applied=True)
    assert plan.decide("y") == {"applied": True}
    assert plan.decide("x") == {}
    assert plan.injected == {"x": 1, "y": 1}
    assert plan.total_injected == 2
    assert plan.log == [("y", {"applied": True}), ("x", {})]
    report = plan.report()
    assert report["seed"] == 9
    assert report["injected"] == {"x": 1, "y": 1}
    assert report["total_injected"] == 2


def test_metrics_counter_and_span_tagging():
    clock = SimClock()
    metrics = MetricsRegistry()
    tracer = Tracer(clock)
    plan = FaultPlan(0, metrics=metrics, tracer=tracer)
    plan.arm("rpc.drop")
    with tracer.span("op", component="test") as span:
        assert plan.decide("rpc.drop") is not None
    assert span.attributes["fault.injected"] == "rpc.drop"
    assert any(name == "fault-injected" for _, name, _ in span.events)
    entries = metrics.to_dict()["faults_injected"]
    assert entries[0]["labels"] == {"site": "rpc.drop"}
    assert entries[0]["value"] == 1


def test_plan_for_mix_and_unknown_mix():
    plan = plan_for_mix(4, "storage")
    assert plan.rates == FAULT_MIXES["storage"]
    assert plan_for_mix(4, "none").rates == {}
    with pytest.raises(ValueError, match="unknown fault mix"):
        plan_for_mix(4, "nope")


def test_every_mix_rate_targets_a_declared_site():
    for mix, rates in FAULT_MIXES.items():
        for site in rates:
            assert site in ALL_SITES, (mix, site)


def test_install_threads_plan_through_every_layer():
    from repro.core.firestore import FirestoreService

    service = FirestoreService()
    database = service.create_database("wired")
    plan = FaultPlan(0)
    assert install(plan, database) is plan
    assert database.layout.spanner.fault_plan is plan
    assert database.realtime.fault_plan is plan
    assert database.fault_plan is plan
