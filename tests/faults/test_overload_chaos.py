"""The overload chaos scenarios: storms, retry feedback, metastability.

These are the checked demonstrations of the graceful-degradation layer
(:mod:`repro.service.overload`): a 10x load surge sheds fairly and
recovers, a fault-injected error burst trips circuit breakers without a
retry storm, and the metastable contrast — the same fleet collapses
without budgets + adaptive admission and recovers with them.
"""

from repro.faults.chaos import metastable_run, replay_digest, run_chaos


def test_overload_storm_recovers_goodput():
    run = run_chaos("overload-storm", seed=1, mix="none")
    assert run.ok, (run.violations, run.extra.get("overload_slo"))
    fleet = run.extra["fleet"]
    assert run.extra["recovered"]
    assert fleet["recovery_ratio"] >= 0.9
    # the surge actually bit: the door shed work and the limit stepped down
    assert fleet["door_sheds"] > 0
    assert fleet["limit_decreases"] > 0
    # hedges fired against the follower stub without becoming overload
    assert fleet["hedges_fired"] > 0
    verdicts = run.extra["overload_slo"]
    assert all(v["ok"] for v in verdicts.values()), verdicts


def test_overload_storm_sheds_fairly_across_tenants():
    run = run_chaos("overload-storm", seed=2, mix="none")
    assert run.extra["overload_slo"]["overload.shed_fairness"]["ok"]
    # zero consistency violations across the storm + functional sidecar
    assert not run.violations
    assert run.exactly_once


def test_retry_storm_trips_breakers_and_recovers():
    run = run_chaos("retry-storm", seed=1, mix="none")
    assert run.ok, (run.violations, run.extra.get("overload_slo"))
    fleet = run.extra["fleet"]
    assert run.extra["breaker_tripped"]
    assert fleet["breaker_opens"] > 0
    # the budget bounded the retry amplification during the burst
    assert fleet["budget_exhausted"] > 0
    assert run.extra["recovered"]


def test_metastable_contrast_is_the_paper_demonstration():
    run = run_chaos("metastable", seed=1, mix="none")
    assert run.ok, (run.violations, run.extra.get("overload_slo"))
    resilient = run.extra["resilient"]
    fragile = run.extra["fragile"]
    # budgets + adaptive admission: goodput back above 90% of baseline
    assert run.extra["recovered"]
    assert resilient["recovery_ratio"] >= 0.9
    # no budgets, no deadlines, static shed depth: the trigger clears but
    # sustaining retry feedback keeps the fleet collapsed below 50%
    assert run.extra["collapsed"]
    assert fragile["recovery_ratio"] < 0.5
    # both arms saw the same offered load until the surge
    assert fragile["baseline_per_s"] > 0


def test_metastable_run_exposes_both_arms_for_the_gate():
    resilient = metastable_run(seed=1, resilient=True)
    fragile = metastable_run(seed=1, resilient=False)
    assert resilient["arm"] == "resilient"
    assert fragile["arm"] == "fragile"
    assert resilient["recovery_ratio"] > fragile["recovery_ratio"]
    assert "latencies" not in resilient  # summaries stay JSON-small


def test_overload_scenarios_replay_byte_identical():
    replay_digest("retry-storm", 5, "none")  # raises on divergence
