"""Deadline helpers and their propagation into the write protocol."""

import pytest

from repro.core.backend import set_op
from repro.core.firestore import FirestoreService
from repro.errors import DeadlineExceeded
from repro.faults import deadline
from repro.sim.clock import SimClock


def test_after_is_absolute():
    clock = SimClock()
    clock.advance(1_000)
    assert deadline.after(clock, 500) == 1_500


def test_expired_inclusive_and_none_passthrough():
    assert not deadline.expired(None, 10**9)
    assert not deadline.expired(100, 99)
    assert deadline.expired(100, 100)
    assert deadline.expired(100, 101)


def test_remaining_us_floors_at_zero():
    assert deadline.remaining_us(None, 50) is None
    assert deadline.remaining_us(100, 40) == 60
    assert deadline.remaining_us(100, 200) == 0


def test_check_names_the_hop():
    deadline.check(None, 10**9, "anything")
    deadline.check(100, 99, "step 5")
    with pytest.raises(DeadlineExceeded, match="before step 5"):
        deadline.check(100, 100, "step 5")


def test_per_hop_splits_the_remaining_budget():
    assert deadline.per_hop(None, 0, 3) is None
    assert deadline.per_hop(1_000, 0, 1) == 1_000
    assert deadline.per_hop(1_000, 0, 2) == 500
    assert deadline.per_hop(1_000, 400, 2) == 700
    # exhausted budget: the first hop's deadline is "now"
    assert deadline.per_hop(1_000, 2_000, 2) == 2_000


def test_expired_commit_deadline_applies_nothing():
    service = FirestoreService()
    db = service.create_database("dead")
    service.clock.advance(1_000)
    with pytest.raises(DeadlineExceeded):
        db.commit(
            [set_op("docs/a", {"n": 1})], deadline_us=service.clock.now_us
        )
    assert db.run_query(db.query("docs")).documents == []


def test_live_commit_deadline_passes_through():
    service = FirestoreService()
    db = service.create_database("alive")
    db.commit(
        [set_op("docs/a", {"n": 1})],
        deadline_us=service.clock.now_us + 60_000_000,
    )
    assert db.lookup("docs/a").data == {"n": 1}
