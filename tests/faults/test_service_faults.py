"""Serving-fleet fault hooks: RPC loss, delay, duplication, crashes,
and deadline expiry inside the queues."""

from repro.faults.plan import FaultPlan
from repro.obs.metrics import MetricsRegistry
from repro.service.cluster import ClusterConfig, ServingCluster
from repro.service.rpc import RpcKind


def make_cluster(metrics=None, **overrides):
    config = ClusterConfig(
        multi_region=False,
        autoscale_frontend=False,
        autoscale_backend=False,
        **overrides,
    )
    return ServingCluster(config=config, metrics=metrics)


def one_request(cluster, **kwargs):
    """Submit one GET and return (latencies, reject_reasons) after a run."""
    latencies, reasons = [], []
    cluster.submit(
        "db", RpcKind.GET, latencies.append, on_reject=reasons.append, **kwargs
    )
    cluster.kernel.run_for(60_000_000)
    return latencies, reasons


def test_rpc_drop_rejects_instead_of_completing():
    metrics = MetricsRegistry()
    cluster = make_cluster(metrics=metrics)
    plan = FaultPlan(0)
    cluster.fault_plan = plan
    plan.arm("rpc.drop")
    latencies, reasons = one_request(cluster)
    assert latencies == []
    assert reasons == ["rpc dropped (injected)"]
    failed = metrics.to_dict()["requests_failed"]
    assert sum(entry["value"] for entry in failed) == 1


def test_rpc_delay_inflates_latency():
    baseline_cluster = make_cluster()
    baseline, _ = one_request(baseline_cluster)

    cluster = make_cluster()
    plan = FaultPlan(0)
    cluster.fault_plan = plan
    plan.arm("rpc.delay")
    delayed, reasons = one_request(cluster)
    assert reasons == []
    assert len(delayed) == 1
    # injected delay is >= 1ms, dwarfing the fault-free service time
    assert delayed[0] >= baseline[0] + 1_000


def test_rpc_reorder_lets_a_later_arrival_finish_first():
    cluster = make_cluster()
    plan = FaultPlan(0)
    cluster.fault_plan = plan
    order = []
    plan.arm("rpc.reorder")
    cluster.submit("db", RpcKind.GET, lambda _l: order.append("first"))
    cluster.submit("db", RpcKind.GET, lambda _l: order.append("second"))
    cluster.kernel.run_for(60_000_000)
    assert order == ["second", "first"]


def test_rpc_duplicate_swallows_the_extra_completion():
    cluster = make_cluster()
    plan = FaultPlan(0)
    cluster.fault_plan = plan
    plan.arm("rpc.duplicate")
    latencies, reasons = one_request(cluster)
    # the caller sees exactly one completion ...
    assert len(latencies) == 1
    assert reasons == []
    # ... but both copies consumed serving capacity
    assert cluster.frontend_pool.completed == 2


def test_task_crash_requeues_inflight_work():
    metrics = MetricsRegistry()
    cluster = make_cluster(metrics=metrics)
    plan = FaultPlan(0)
    cluster.fault_plan = plan
    size_before = cluster.backend_pool.size
    plan.arm("service.task_crash")
    latencies, reasons = one_request(cluster)
    assert len(latencies) == 1  # the request survives the crash
    assert reasons == []
    assert cluster.backend_pool.size == size_before  # fast restart
    crashes = metrics.to_dict()["pool_task_crashes"]
    assert sum(entry["value"] for entry in crashes) == 1


def test_crash_tasks_cancels_and_requeues_midflight():
    cluster = make_cluster()
    done = []
    cluster.submit("db", RpcKind.COMMIT, done.append)
    # the RPC is in flight on the frontend the moment submit dispatches
    assert cluster.frontend_pool.crash_tasks(1) == 1
    cluster.kernel.run_for(60_000_000)
    assert len(done) == 1  # exactly one completion despite the crash


def test_expired_deadline_is_shed_in_the_queue():
    metrics = MetricsRegistry()
    cluster = make_cluster(metrics=metrics)
    latencies, reasons = one_request(
        cluster, deadline_us=cluster.kernel.now_us
    )
    assert latencies == []
    assert reasons == ["deadline exceeded in queue"]
    expired = metrics.to_dict()["faults_deadline_expired"]
    assert sum(entry["value"] for entry in expired) == 1


def test_generous_deadline_completes_normally():
    cluster = make_cluster()
    latencies, reasons = one_request(
        cluster, deadline_us=cluster.kernel.now_us + 60_000_000
    )
    assert len(latencies) == 1
    assert reasons == []
