import pytest

from repro.sim.clock import SimClock
from repro.service.admission import (
    AdmissionConfig,
    AdmissionController,
    CONFORMING_BASE_QPS,
)
from repro.service.overload import ShedReason
from repro.service.billing import MICROS_PER_DAY, BillingLedger, FreeQuota


class TestAdmission:
    def test_admits_normally(self):
        controller = AdmissionController(SimClock())
        admitted, reason = controller.try_admit("db", queue_depth=0)
        assert admitted and reason is None
        assert controller.inflight("db") == 1
        controller.release("db")
        assert controller.inflight("db") == 0

    def test_load_shedding_at_queue_depth(self):
        controller = AdmissionController(
            SimClock(), AdmissionConfig(shed_queue_depth=10)
        )
        admitted, reason = controller.try_admit("db", queue_depth=10)
        assert not admitted and reason is ShedReason.QUEUE_DEPTH
        assert controller.shed == 1

    def test_per_database_inflight_limit(self):
        controller = AdmissionController(
            SimClock(),
            AdmissionConfig(per_database_inflight_limit=2, limited_databases={"bad"}),
        )
        assert controller.try_admit("bad", 0)[0]
        assert controller.try_admit("bad", 0)[0]
        admitted, reason = controller.try_admit("bad", 0)
        assert not admitted and reason is ShedReason.INFLIGHT
        assert "in-flight" in reason.message
        # unlimited databases are unaffected
        assert controller.try_admit("good", 0)[0]

    def test_limit_applies_to_all_when_unscoped(self):
        controller = AdmissionController(
            SimClock(), AdmissionConfig(per_database_inflight_limit=1)
        )
        assert controller.try_admit("any", 0)[0]
        assert not controller.try_admit("any", 0)[0]

    def test_release_never_goes_negative(self):
        controller = AdmissionController(SimClock())
        controller.release("db")
        assert controller.inflight("db") == 0

    def test_conformance_within_base_qps(self):
        clock = SimClock()
        controller = AdmissionController(clock)
        for _ in range(100):
            clock.advance(10_000)  # 100 QPS
            controller.try_admit("db", 0)
        assert controller.is_conforming("db")

    def test_nonconforming_spike_detected(self):
        clock = SimClock()
        controller = AdmissionController(clock)
        for _ in range(5000):
            clock.advance(100)  # 10,000 QPS burst
            controller.try_admit("db", 0)
        assert not controller.is_conforming("db")
        # but the traffic was still accepted (the paper: Firestore "will
        # still accept traffic that violates this rule")
        assert controller.admitted == 5000

    def test_allowance_grows_50_percent_per_window(self):
        clock = SimClock()
        controller = AdmissionController(clock)
        # sustain ~1000 QPS for just over one full window
        for _ in range(302_000):
            clock.advance(1000)
            controller._track("db")
        allowance = controller.conforming_allowance_qps("db")
        assert allowance >= CONFORMING_BASE_QPS
        assert allowance == pytest.approx(1000 * 1.5, rel=0.05)


class TestBilling:
    def test_free_quota_costs_nothing(self):
        ledger = BillingLedger(SimClock())
        ledger.record_reads("db", 50_000)
        ledger.record_writes("db", 20_000)
        assert ledger.charge_today_usd("db") == 0.0

    def test_overage_is_billed(self):
        ledger = BillingLedger(SimClock())
        ledger.record_reads("db", 150_000)  # 100k over
        charge = ledger.charge_today_usd("db")
        assert charge == pytest.approx(0.06)

    def test_writes_cost_more_than_reads(self):
        ledger = BillingLedger(SimClock())
        ledger.record_reads("r", ledger.quota.reads_per_day + 100_000)
        ledger.record_writes("w", ledger.quota.writes_per_day + 100_000)
        assert ledger.charge_today_usd("w") > ledger.charge_today_usd("r")

    def test_quota_resets_daily(self):
        clock = SimClock()
        ledger = BillingLedger(clock)
        ledger.record_reads("db", 60_000)
        assert ledger.billable_today("db")["reads"] == 10_000
        clock.advance(MICROS_PER_DAY)
        assert ledger.billable_today("db")["reads"] == 0
        # yesterday's usage is still recorded
        assert ledger.day_usage("db", day=0).reads == 60_000

    def test_storage_overage(self):
        ledger = BillingLedger(SimClock())
        ledger.set_storage_bytes("db", 2 << 30)  # 1 GiB over the free GiB
        assert ledger.charge_today_usd("db") > 0

    def test_databases_are_independent(self):
        ledger = BillingLedger(SimClock())
        ledger.record_reads("a", 100_000)
        assert ledger.day_usage("b").reads == 0

    def test_custom_quota(self):
        ledger = BillingLedger(SimClock(), quota=FreeQuota(reads_per_day=10))
        ledger.record_reads("db", 20)
        assert ledger.billable_today("db")["reads"] == 10
