from repro.service.cluster import ClusterConfig, ServingCluster
from repro.service.metrics import LatencyRecorder
from repro.service.rpc import RpcKind


def make_cluster(**overrides):
    config = ClusterConfig(
        multi_region=False,
        autoscale_frontend=False,
        autoscale_backend=False,
        **overrides,
    )
    return ServingCluster(config=config)


def run_requests(cluster, count, kind=RpcKind.GET, db="db", **kwargs):
    recorder = LatencyRecorder()
    for _ in range(count):
        cluster.submit(db, kind, recorder.record, **kwargs)
    cluster.kernel.run_for(60_000_000)
    return recorder


def test_request_completes_with_positive_latency():
    cluster = make_cluster()
    recorder = run_requests(cluster, 10)
    assert len(recorder) == 10
    assert recorder.p50 > 0
    assert cluster.completed == 10


def test_commits_slower_than_gets():
    cluster = make_cluster()
    gets = run_requests(cluster, 50, RpcKind.GET)
    commits = run_requests(cluster, 50, RpcKind.COMMIT)
    assert commits.p50 > gets.p50


def test_multi_region_commits_slower_than_regional():
    regional = make_cluster()
    multi = ServingCluster(
        config=ClusterConfig(
            multi_region=True, autoscale_frontend=False, autoscale_backend=False
        )
    )
    r = run_requests(regional, 50, RpcKind.COMMIT)
    m = run_requests(multi, 50, RpcKind.COMMIT)
    assert m.p50 > 2 * r.p50


def test_more_commit_participants_cost_more():
    cluster = make_cluster()
    few = run_requests(cluster, 50, RpcKind.COMMIT, commit_participants=1)
    many = run_requests(cluster, 50, RpcKind.COMMIT, commit_participants=16)
    assert many.p50 > few.p50


def test_queueing_latency_under_overload():
    cluster = make_cluster(backend_tasks=1)
    # all arrive at t=0; each costs 150us CPU: deep queue builds
    fast_recorder = run_requests(cluster, 200)
    assert fast_recorder.percentile(99) > 10 * fast_recorder.percentile(1)


def test_billing_integration():
    cluster = make_cluster()
    run_requests(cluster, 5, RpcKind.GET, db="tenant")
    run_requests(cluster, 3, RpcKind.COMMIT, db="tenant")
    usage = cluster.billing.day_usage("tenant")
    assert usage.reads == 5
    assert usage.writes == 3


def test_rejection_callback():
    cluster = make_cluster()
    cluster.config.admission.shed_queue_depth = 0
    reasons = []
    ok = cluster.submit(
        "db", RpcKind.GET, lambda latency: None, on_reject=reasons.append
    )
    # with shed depth 0 the first request still passes (queue empty),
    # so force the in-flight limiter instead
    cluster.admission.config.per_database_inflight_limit = 0
    ok2 = cluster.submit(
        "db", RpcKind.GET, lambda latency: None, on_reject=reasons.append
    )
    assert not ok2
    assert reasons and cluster.rejected >= 1


def test_notification_fanout_latency_scales_with_listeners():
    cluster = make_cluster(frontend_tasks=2)
    latencies = []
    cluster.submit_notification_fanout("db", 10, latencies.append)
    cluster.kernel.run_for(10_000_000)
    small = latencies[-1]
    cluster.submit_notification_fanout("db", 1000, latencies.append)
    cluster.kernel.run_for(60_000_000)
    large = latencies[-1]
    assert large > small


def test_frontend_floor_follows_connections():
    cluster = ServingCluster(
        config=ClusterConfig(multi_region=False, autoscale_frontend=True)
    )
    cluster.set_active_connections(1000)
    cluster.kernel.run_until(20_000_000)  # a few autoscaler evaluations
    assert cluster.frontend_pool.size >= 10


def test_global_routing_prices_remote_clients():
    cluster = make_cluster()
    cluster.router.register_database("db", "us-central")
    local = LatencyRecorder("local")
    remote = LatencyRecorder("remote")
    for _ in range(20):
        cluster.submit("db", RpcKind.GET, local.record, client_region="us-central")
        cluster.submit("db", RpcKind.GET, remote.record, client_region="europe-west")
    cluster.kernel.run_for(30_000_000)
    # the intercontinental client pays the WAN round trip on every call
    assert remote.p50 > local.p50 + 80_000


# -- bounded-staleness read routing ------------------------------------------


class _StubGroup:
    """Replica-group stand-in: always serves from a fixed region."""

    leader_region = "us-central"

    def __init__(self, region):
        self.region = region

    def route_read(self, client_region, staleness_bound_us):
        return self.region, 0


def make_multi_cluster():
    config = ClusterConfig(
        multi_region=True,
        autoscale_frontend=False,
        autoscale_backend=False,
    )
    return ServingCluster(config=config)


def test_bounded_read_from_nearby_follower_beats_the_leader_hop():
    far = make_multi_cluster()
    far.router.register_database("db", "us-central")
    far.router.attach_replicas("db", _StubGroup("us-central"))
    near = make_multi_cluster()
    near.router.register_database("db", "us-central")
    near.router.attach_replicas("db", _StubGroup("us-east"))
    kwargs = dict(client_region="us-east", staleness_bound_us=10_000)
    leader_served = run_requests(far, 50, RpcKind.GET, **kwargs)
    follower_served = run_requests(near, 50, RpcKind.GET, **kwargs)
    # us-east client: leader hop is 2x15000us, the local follower ~2x500
    assert follower_served.p50 < leader_served.p50 - 20_000


def test_bounded_read_only_reprices_reads():
    cluster = make_multi_cluster()
    cluster.router.register_database("db", "us-central")
    cluster.router.attach_replicas("db", _StubGroup("us-east"))
    kwargs = dict(client_region="us-east", staleness_bound_us=10_000)
    commits = run_requests(cluster, 50, RpcKind.COMMIT, **kwargs)
    strong = run_requests(cluster, 50, RpcKind.COMMIT,
                          client_region="us-east")
    # commits ignore the staleness bound: same leader path either way
    assert abs(commits.p50 - strong.p50) < 0.5 * max(strong.p50, 1)
