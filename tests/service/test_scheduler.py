import pytest

from repro.service.rpc import Rpc, RpcKind
from repro.service.scheduler import FairShareScheduler


def rpc(db="db", cost=100, sensitive=True):
    return Rpc(db, RpcKind.GET, cost, 0, latency_sensitive=sensitive)


class TestFairMode:
    def test_empty_pick_returns_none(self):
        assert FairShareScheduler().pick() is None

    def test_single_database_fifo(self):
        scheduler = FairShareScheduler()
        first, second = rpc(), rpc()
        scheduler.enqueue(first)
        scheduler.enqueue(second)
        assert scheduler.pick() is first
        assert scheduler.pick() is second

    def test_fair_interleaving_despite_flood(self):
        """A database with 100 queued RPCs cannot starve one with 1."""
        scheduler = FairShareScheduler()
        for _ in range(100):
            scheduler.enqueue(rpc("culprit", cost=100))
        scheduler.enqueue(rpc("bystander", cost=100))
        picks = [scheduler.pick().database_id for _ in range(3)]
        assert "bystander" in picks

    def test_cpu_share_proportional_to_cost(self):
        """Expensive RPCs consume more virtual time, so a cheap-RPC
        database gets picked more often."""
        scheduler = FairShareScheduler()
        for _ in range(50):
            scheduler.enqueue(rpc("heavy", cost=1000))
            scheduler.enqueue(rpc("light", cost=10))
        first_20 = [scheduler.pick().database_id for _ in range(20)]
        assert first_20.count("light") > first_20.count("heavy")

    def test_latency_sensitive_before_batch_within_database(self):
        scheduler = FairShareScheduler()
        batch = rpc("db", sensitive=False)
        interactive = rpc("db", sensitive=True)
        scheduler.enqueue(batch)
        scheduler.enqueue(interactive)
        assert scheduler.pick() is interactive
        assert scheduler.pick() is batch

    def test_idle_database_cannot_bank_credit(self):
        scheduler = FairShareScheduler()
        # hog runs alone for a while, building virtual time
        for _ in range(10):
            scheduler.enqueue(rpc("hog", cost=1000))
        for _ in range(10):
            scheduler.pick()
        # a newcomer starts at the global virtual floor, not zero
        scheduler.enqueue(rpc("hog", cost=1000))
        for _ in range(5):
            scheduler.enqueue(rpc("newcomer", cost=10))
        picks = [scheduler.pick().database_id for _ in range(6)]
        # the newcomer is served but the hog is not starved forever
        assert "newcomer" in picks

    def test_queued_counts(self):
        scheduler = FairShareScheduler()
        scheduler.enqueue(rpc("a"))
        scheduler.enqueue(rpc("a"))
        scheduler.enqueue(rpc("b"))
        assert scheduler.queued() == 3
        assert scheduler.queued("a") == 2
        assert scheduler.queued("missing") == 0


class TestFifoMode:
    def test_global_fifo_ignores_database(self):
        scheduler = FairShareScheduler(fair=False)
        order = [rpc("a"), rpc("b", cost=10_000), rpc("a")]
        for r in order:
            scheduler.enqueue(r)
        assert [scheduler.pick() for _ in range(3)] == order

    def test_flood_starves_bystander(self):
        """The Figure 11 failure mode: FIFO lets the culprit starve."""
        scheduler = FairShareScheduler(fair=False)
        for _ in range(50):
            scheduler.enqueue(rpc("culprit", cost=10_000))
        scheduler.enqueue(rpc("bystander"))
        first_50 = [scheduler.pick().database_id for _ in range(50)]
        assert "bystander" not in first_50

    def test_queued_in_fifo_mode(self):
        scheduler = FairShareScheduler(fair=False)
        scheduler.enqueue(rpc("a"))
        scheduler.enqueue(rpc("b"))
        assert scheduler.queued() == 2
        assert scheduler.queued("a") == 1


def test_dispatch_counters():
    scheduler = FairShareScheduler()
    scheduler.enqueue(rpc())
    scheduler.pick()
    assert scheduler.enqueued == 1
    assert scheduler.dispatched == 1
