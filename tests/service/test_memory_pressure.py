"""Memory-pressure isolation (paper section VIII, future work):
rejection targets the database consuming the most in-flight memory."""

import pytest

from repro.sim.clock import SimClock
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.cluster import ClusterConfig, ServingCluster
from repro.service.overload import ShedReason
from repro.service.rpc import RpcKind


@pytest.fixture
def controller():
    return AdmissionController(
        SimClock(), AdmissionConfig(memory_pressure_bytes=1000)
    )


class TestMemoryAccounting:
    def test_memory_tracked_per_database(self, controller):
        controller.try_admit("a", 0, memory_bytes=300)
        controller.try_admit("b", 0, memory_bytes=100)
        assert controller.inflight_memory("a") == 300
        assert controller.total_inflight_memory() == 400
        controller.release("a", memory_bytes=300)
        assert controller.inflight_memory("a") == 0

    def test_release_never_negative(self, controller):
        controller.release("a", memory_bytes=500)
        assert controller.inflight_memory("a") == 0


class TestSelectiveRejection:
    def test_below_threshold_everything_admitted(self, controller):
        for _ in range(3):
            admitted, _ = controller.try_admit("a", 0, memory_bytes=300)
            assert admitted

    def test_top_consumer_rejected_under_pressure(self, controller):
        assert controller.try_admit("hog", 0, memory_bytes=900)[0]
        # the hog's next request would breach the limit: rejected
        admitted, reason = controller.try_admit("hog", 0, memory_bytes=300)
        assert not admitted and reason is ShedReason.MEMORY
        assert controller.memory_rejected == 1

    def test_small_consumers_unaffected_under_pressure(self, controller):
        """Selective: the bystander is admitted even while the component
        is past its memory threshold, because it is not the top holder."""
        controller.try_admit("hog", 0, memory_bytes=950)
        admitted, _ = controller.try_admit("bystander", 0, memory_bytes=100)
        assert admitted
        # but the hog stays blocked
        assert not controller.try_admit("hog", 0, memory_bytes=100)[0]

    def test_pressure_clears_on_release(self, controller):
        controller.try_admit("hog", 0, memory_bytes=900)
        assert not controller.try_admit("hog", 0, memory_bytes=300)[0]
        controller.release("hog", memory_bytes=900)
        assert controller.try_admit("hog", 0, memory_bytes=300)[0]

    def test_zero_memory_requests_unaffected(self, controller):
        controller.try_admit("hog", 0, memory_bytes=1500)  # first is free
        admitted, _ = controller.try_admit("other", 0)  # no memory estimate
        assert admitted

    def test_disabled_when_unconfigured(self):
        controller = AdmissionController(SimClock())
        for _ in range(10):
            assert controller.try_admit("hog", 0, memory_bytes=10**9)[0]


class TestClusterIntegration:
    def test_memory_hungry_database_rejected_end_to_end(self):
        cluster = ServingCluster(
            config=ClusterConfig(
                multi_region=False,
                autoscale_backend=False,
                autoscale_frontend=False,
                admission=AdmissionConfig(memory_pressure_bytes=10_000_000),
            )
        )
        reasons = []
        admitted = 0
        for _ in range(5):
            ok = cluster.submit(
                "ram-hog",
                RpcKind.QUERY,
                lambda latency: None,
                cpu_cost_us=1_000_000,  # long-running: memory stays held
                memory_bytes=4_000_000,
                on_reject=reasons.append,
            )
            admitted += ok
        assert admitted == 2  # third request would exceed 10MB
        assert reasons.count(ShedReason.MEMORY.message) == 3
        cluster.kernel.run_for(10_000_000)
        # after the queries finish, memory is released and traffic flows
        assert cluster.submit(
            "ram-hog", RpcKind.QUERY, lambda latency: None,
            memory_bytes=4_000_000,
        )
