import pytest

from repro.errors import NotFound
from repro.service.routing import GlobalRouter


@pytest.fixture
def router():
    r = GlobalRouter()
    r.register_database("us-app", "us-central")
    r.register_database("eu-app", "europe-west")
    return r


def test_home_region(router):
    assert router.home_region("us-app") == "us-central"


def test_unrouted_database(router):
    with pytest.raises(NotFound):
        router.home_region("ghost")


def test_same_region_is_fast(router):
    assert router.network_latency_us("us-central", "us-app") < 1000


def test_cross_region_pays_wan(router):
    local = router.network_latency_us("us-central", "us-app")
    remote = router.network_latency_us("us-central", "eu-app")
    assert remote > 10 * local


def test_latency_is_symmetric(router):
    ab = router.network_latency_us("us-central", "eu-app")
    router.register_database("us-app2", "us-central")
    ba = router.network_latency_us("europe-west", "us-app2")
    assert ab == ba


def test_unknown_pair_assumed_intercontinental(router):
    router.register_database("mars-app", "mars-base")
    assert router.network_latency_us("us-central", "mars-app") >= 100_000


# -- unknown databases (typed error + counter) -------------------------------


def test_unrouted_database_error_names_the_database():
    router = GlobalRouter()
    with pytest.raises(NotFound, match="ghost"):
        router.home_region("ghost")


def test_unrouted_database_bumps_the_counter():
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    router = GlobalRouter(metrics=metrics)
    for _ in range(3):
        with pytest.raises(NotFound):
            router.home_region("ghost")
    assert metrics.counter("routing.unknown_database").value == 3


# -- replica-aware routing ---------------------------------------------------


class _FakeGroup:
    leader_region = "us-central"

    def __init__(self):
        self.calls = []

    def route_read(self, client_region, staleness_bound_us):
        self.calls.append((client_region, staleness_bound_us))
        return "us-east", 1234


def test_route_read_without_replicas_serves_from_home(router):
    assert router.route_read("us-app", "europe-west", 5_000) == (
        "us-central",
        None,
    )


def test_route_read_delegates_to_the_replica_group():
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    router = GlobalRouter(metrics=metrics)
    group = _FakeGroup()
    router.attach_replicas("geo", group)
    assert router.home_region("geo") == "us-central"  # from the group
    assert router.route_read("geo", "us-east", 9_000) == ("us-east", 1234)
    assert group.calls == [("us-east", 9_000)]
    assert (
        metrics.counter(
            "routing.bounded_reads", database_id="geo", region="us-east"
        ).value
        == 1
    )


def test_pair_latency_uses_the_shared_matrix(router):
    assert router.pair_latency_us("us-central", "us-east") == 15_000
    assert router.pair_latency_us("nowhere", "elsewhere") == 100_000
