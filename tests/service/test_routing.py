import pytest

from repro.errors import NotFound
from repro.service.routing import GlobalRouter


@pytest.fixture
def router():
    r = GlobalRouter()
    r.register_database("us-app", "us-central")
    r.register_database("eu-app", "europe-west")
    return r


def test_home_region(router):
    assert router.home_region("us-app") == "us-central"


def test_unrouted_database(router):
    with pytest.raises(NotFound):
        router.home_region("ghost")


def test_same_region_is_fast(router):
    assert router.network_latency_us("us-central", "us-app") < 1000


def test_cross_region_pays_wan(router):
    local = router.network_latency_us("us-central", "us-app")
    remote = router.network_latency_us("us-central", "eu-app")
    assert remote > 10 * local


def test_latency_is_symmetric(router):
    ab = router.network_latency_us("us-central", "eu-app")
    router.register_database("us-app2", "us-central")
    ba = router.network_latency_us("europe-west", "us-app2")
    assert ab == ba


def test_unknown_pair_assumed_intercontinental(router):
    router.register_database("mars-app", "mars-base")
    assert router.network_latency_us("us-central", "mars-app") >= 100_000
