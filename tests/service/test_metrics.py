import pytest

from repro.service.metrics import LatencyRecorder, WindowedPercentiles


class TestLatencyRecorder:
    def test_percentiles(self):
        recorder = LatencyRecorder()
        for v in range(1, 101):
            recorder.record(v)
        assert recorder.p50 == 50
        assert recorder.p99 == 99
        assert recorder.percentile(100) == 100
        assert recorder.percentile(1) == 1

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(42)
        assert recorder.p50 == recorder.p99 == 42

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder("x").p50

    def test_invalid_percentile(self):
        recorder = LatencyRecorder()
        recorder.record(1)
        with pytest.raises(ValueError):
            recorder.percentile(0)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_mean_and_len(self):
        recorder = LatencyRecorder()
        for v in (10, 20, 30):
            recorder.record(v)
        assert recorder.mean() == 20
        assert len(recorder) == 3

    def test_record_after_percentile_query(self):
        recorder = LatencyRecorder()
        recorder.record(5)
        assert recorder.p50 == 5
        recorder.record(1)
        assert recorder.p50 == 1  # re-sorts correctly

    def test_reset(self):
        recorder = LatencyRecorder()
        recorder.record(5)
        recorder.reset()
        assert len(recorder) == 0


class TestWindowedPercentiles:
    def test_series_by_window(self):
        windows = WindowedPercentiles(window_us=1000)
        windows.record(100, 10)
        windows.record(900, 20)
        windows.record(1500, 100)
        series = windows.series(50)
        assert series == [(0, 10), (1000, 100)]

    def test_window_lookup(self):
        windows = WindowedPercentiles(window_us=1000)
        windows.record(2500, 7)
        assert windows.window(2999).p50 == 7
        assert windows.window(0) is None
