import pytest

from repro.service.metrics import LatencyRecorder, WindowedPercentiles


class TestLatencyRecorder:
    def test_percentiles(self):
        recorder = LatencyRecorder()
        for v in range(1, 101):
            recorder.record(v)
        assert recorder.p50 == 50
        assert recorder.p99 == 99
        assert recorder.percentile(100) == 100
        assert recorder.percentile(1) == 1

    def test_single_sample(self):
        recorder = LatencyRecorder()
        recorder.record(42)
        assert recorder.p50 == recorder.p99 == 42

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder("x").p50

    def test_invalid_percentile(self):
        recorder = LatencyRecorder()
        recorder.record(1)
        with pytest.raises(ValueError):
            recorder.percentile(0)
        with pytest.raises(ValueError):
            recorder.percentile(101)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyRecorder().record(-1)

    def test_mean_and_len(self):
        recorder = LatencyRecorder()
        for v in (10, 20, 30):
            recorder.record(v)
        assert recorder.mean() == 20
        assert len(recorder) == 3

    def test_record_after_percentile_query(self):
        recorder = LatencyRecorder()
        recorder.record(5)
        assert recorder.p50 == 5
        recorder.record(1)
        assert recorder.p50 == 1  # re-sorts correctly

    def test_reset(self):
        recorder = LatencyRecorder()
        recorder.record(5)
        recorder.reset()
        assert len(recorder) == 0

    def test_reset_is_reusable(self):
        recorder = LatencyRecorder()
        recorder.record(100)
        assert recorder.p50 == 100
        recorder.reset()
        with pytest.raises(ValueError):
            recorder.p50
        recorder.record(7)
        assert recorder.p50 == recorder.p99 == 7

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            LatencyRecorder().mean()

    def test_two_samples_nearest_rank(self):
        recorder = LatencyRecorder()
        recorder.record(10)
        recorder.record(20)
        # nearest-rank: p50 is the 1st of 2 samples, p99 the 2nd
        assert recorder.p50 == 10
        assert recorder.p99 == 20

    def test_zero_latency_is_valid(self):
        recorder = LatencyRecorder()
        recorder.record(0)
        assert recorder.p50 == 0


class TestWindowedPercentiles:
    def test_series_by_window(self):
        windows = WindowedPercentiles(window_us=1000)
        windows.record(100, 10)
        windows.record(900, 20)
        windows.record(1500, 100)
        series = windows.series(50)
        assert series == [(0, 10), (1000, 100)]

    def test_window_lookup(self):
        windows = WindowedPercentiles(window_us=1000)
        windows.record(2500, 7)
        assert windows.window(2999).p50 == 7
        assert windows.window(0) is None

    def test_window_boundary_belongs_to_next_window(self):
        windows = WindowedPercentiles(window_us=1000)
        windows.record(999, 1)
        windows.record(1000, 2)
        assert windows.window(999).p50 == 1
        assert windows.window(1000).p50 == 2
        assert windows.series(50) == [(0, 1), (1000, 2)]

    def test_series_skips_empty_windows(self):
        windows = WindowedPercentiles(window_us=1000)
        windows.record(100, 5)
        windows.record(5100, 9)
        # windows 1..4 received nothing and do not appear
        assert windows.series(50) == [(0, 5), (5000, 9)]

    def test_empty_series(self):
        assert WindowedPercentiles(window_us=1000).series(99) == []
