import pytest

from repro.sim.events import EventKernel
from repro.service.autoscaler import Autoscaler, AutoscalerConfig
from repro.service.pool import TaskPool
from repro.service.rpc import Rpc, RpcKind
from repro.service.scheduler import FairShareScheduler


def make_rpc(latencies, db="db", cost=1000, storage=0):
    return Rpc(
        db,
        RpcKind.GET,
        cost,
        0,
        storage_latency_us=storage,
        on_complete=lambda rpc, latency: latencies.append(latency),
    )


class TestTaskPool:
    def test_single_task_serializes_work(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=1)
        latencies = []
        pool.submit(make_rpc(latencies, cost=100))
        pool.submit(make_rpc(latencies, cost=100))
        kernel.drain()
        assert latencies == [100, 200]  # second waits for the first

    def test_parallel_tasks(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=2)
        latencies = []
        pool.submit(make_rpc(latencies, cost=100))
        pool.submit(make_rpc(latencies, cost=100))
        kernel.drain()
        assert latencies == [100, 100]

    def test_storage_latency_added_after_service(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=1)
        latencies = []
        pool.submit(make_rpc(latencies, cost=100, storage=500))
        kernel.drain()
        assert latencies == [600]

    def test_add_tasks_drains_queue_faster(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=1)
        latencies = []
        for _ in range(4):
            pool.submit(make_rpc(latencies, cost=100))
        pool.add_tasks(3)
        kernel.drain()
        assert latencies == [100, 100, 100, 100]

    def test_remove_tasks_keeps_at_least_one(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=3)
        removed = pool.remove_tasks(10)
        assert removed == 2
        assert pool.size == 1

    def test_utilization_window(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=1)
        latencies = []
        pool.submit(make_rpc(latencies, cost=500))
        kernel.run_until(1000)
        assert pool.utilization() == pytest.approx(0.5)
        kernel.run_until(2000)
        assert pool.utilization() == pytest.approx(0.0)

    def test_queue_depth(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=1)
        for _ in range(3):
            pool.submit(make_rpc([], cost=1000))
        assert pool.queue_depth() == 2  # one in service, two queued

    def test_needs_at_least_one_task(self):
        with pytest.raises(ValueError):
            TaskPool("p", EventKernel(), initial_tasks=0)


class TestAutoscaler:
    def _saturate(self, pool, kernel, rate_per_sec, cost, duration_s):
        interval = 1_000_000 // rate_per_sec

        def tick():
            pool.submit(Rpc("db", RpcKind.GET, cost, kernel.now_us))
            if kernel.now_us < duration_s * 1_000_000:
                kernel.after(interval, tick)

        kernel.at(0, tick)
        kernel.run_until(duration_s * 1_000_000)

    def test_scales_up_under_sustained_load(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=1)
        scaler = Autoscaler(
            pool, kernel, AutoscalerConfig(evaluation_interval_us=1_000_000)
        )
        self._saturate(pool, kernel, rate_per_sec=100, cost=20_000, duration_s=20)
        assert pool.size > 1
        assert scaler.scale_ups >= 1

    def test_delay_before_scaling(self):
        """Scaling requires consecutive hot evaluations — a short spike
        does not trigger it (paper: short-lived spikes do not merit
        auto-scaling)."""
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=1)
        Autoscaler(
            pool,
            kernel,
            AutoscalerConfig(evaluation_interval_us=1_000_000, scale_up_after_evals=3),
        )
        self._saturate(pool, kernel, rate_per_sec=100, cost=20_000, duration_s=2)
        kernel.run_until(2_500_000)
        assert pool.size == 1  # only 2 hot evals so far

    def test_scales_down_when_cold(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=8)
        scaler = Autoscaler(
            pool,
            kernel,
            AutoscalerConfig(
                evaluation_interval_us=1_000_000, scale_down_after_evals=3
            ),
        )
        kernel.run_until(10_000_000)  # totally idle
        assert pool.size < 8
        assert scaler.scale_downs >= 1

    def test_disabled_autoscaler_never_resizes(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=2)
        Autoscaler(pool, kernel, enabled=False)
        self._saturate(pool, kernel, rate_per_sec=200, cost=20_000, duration_s=15)
        assert pool.size == 2

    def test_size_floor_applies_quickly(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=2)
        floor = [2]
        Autoscaler(
            pool,
            kernel,
            AutoscalerConfig(evaluation_interval_us=1_000_000),
            size_floor_fn=lambda: floor[0],
        )
        floor[0] = 12
        kernel.run_until(2_000_000)
        assert pool.size == 12

    def test_max_tasks_cap(self):
        kernel = EventKernel()
        pool = TaskPool("p", kernel, initial_tasks=1)
        Autoscaler(
            pool,
            kernel,
            AutoscalerConfig(evaluation_interval_us=1_000_000, max_tasks=3),
        )
        self._saturate(pool, kernel, rate_per_sec=500, cost=50_000, duration_s=30)
        assert pool.size <= 3
