"""The graceful-degradation layer: AIMD limits, CoDel, breakers, hedges."""

from repro.obs.metrics import MetricsRegistry
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.overload import (
    AdaptiveLimit,
    BreakerBoard,
    CircuitBreaker,
    CodelShedder,
    HedgeThrottle,
    OverloadConfig,
    OverloadState,
    QueueDiscipline,
    ReadLatencyTracker,
    ShedReason,
)
from repro.sim.clock import SimClock


def config(**overrides):
    return OverloadConfig(enabled=True, **overrides)


# -- shed reasons ------------------------------------------------------------


def test_shed_reasons_have_distinct_labels_and_messages():
    labels = {reason.value for reason in ShedReason}
    messages = {reason.message for reason in ShedReason}
    assert len(labels) == len(ShedReason)
    assert len(messages) == len(ShedReason)
    assert ShedReason.BREAKER.message == "load shed: circuit breaker open"


# -- adaptive concurrency ----------------------------------------------------


def test_limit_grows_additively_while_mean_wait_is_healthy():
    limiter = AdaptiveLimit(
        config(initial_limit=10, additive_increase=4, adjust_interval_us=1_000)
    )
    limiter.observe(queue_wait_us=5_000, now_us=500)
    limiter.observe(queue_wait_us=5_000, now_us=1_000)  # closes the window
    assert limiter.limit == 14
    assert limiter.increases == 1


def test_limit_cuts_multiplicatively_on_overshoot():
    limiter = AdaptiveLimit(
        config(
            initial_limit=100,
            multiplicative_decrease=0.7,
            target_queue_delay_us=50_000,
            adjust_interval_us=1_000,
        )
    )
    limiter.observe(queue_wait_us=200_000, now_us=1_000)
    assert limiter.limit == 70
    assert limiter.decreases == 1
    assert limiter.last_observed_us == 200_000


def test_one_fast_tenant_cannot_mask_a_standing_queue():
    # the fair-share trap: one short-queue tenant keeps landing ~0 waits
    # while everyone else queues 200ms — the windowed *mean* still reads
    # congested, so the limit cuts (a windowed min would read healthy)
    limiter = AdaptiveLimit(
        config(
            initial_limit=100,
            target_queue_delay_us=50_000,
            adjust_interval_us=10_000,
        )
    )
    for i in range(9):
        limiter.observe(queue_wait_us=200_000, now_us=i * 1_000)
    limiter.observe(queue_wait_us=0, now_us=10_000)  # the fast tenant
    assert limiter.decreases == 1
    assert limiter.limit == 70


def test_codel_shed_forces_a_decrease_despite_healthy_mean():
    limiter = AdaptiveLimit(
        config(initial_limit=100, adjust_interval_us=1_000)
    )
    limiter.note_congested()
    limiter.observe(queue_wait_us=0, now_us=1_000)  # mean is healthy
    assert limiter.decreases == 1
    # the flag resets with the window
    limiter.observe(queue_wait_us=0, now_us=2_000)
    assert limiter.increases == 1


def test_limit_respects_min_and_max():
    limiter = AdaptiveLimit(
        config(
            initial_limit=5,
            min_limit=4,
            max_limit=6,
            adjust_interval_us=1_000,
        )
    )
    limiter.observe(queue_wait_us=0, now_us=1_000)
    limiter.observe(queue_wait_us=0, now_us=2_000)
    assert limiter.limit == 6  # clamped at max
    limiter.observe(queue_wait_us=10**9, now_us=3_000)
    limiter.observe(queue_wait_us=10**9, now_us=4_000)
    limiter.observe(queue_wait_us=10**9, now_us=5_000)
    assert limiter.limit == 4  # clamped at min


def test_retry_after_hint_tracks_observed_delay_and_clamps():
    limiter = AdaptiveLimit(
        config(
            adjust_interval_us=1_000,
            retry_after_min_us=20_000,
            retry_after_max_us=100_000,
        )
    )
    assert limiter.retry_after_us() == 20_000  # floor before any window
    limiter.observe(queue_wait_us=30_000, now_us=1_000)
    assert limiter.retry_after_us() == 60_000  # 2x the observed mean
    limiter.observe(queue_wait_us=10**6, now_us=2_000)
    assert limiter.retry_after_us() == 100_000  # ceiling


# -- CoDel queue-deadline shedding -------------------------------------------


def test_short_bursts_ride_through_untouched():
    shedder = CodelShedder(target_us=100, interval_us=1_000)
    assert not shedder.should_shed(sojourn_us=500, now_us=0)  # first above
    assert not shedder.should_shed(sojourn_us=50, now_us=500)  # recovered
    assert not shedder.should_shed(sojourn_us=500, now_us=900)
    assert shedder.shed == 0


def test_standing_queue_enters_dropping_after_a_full_interval():
    shedder = CodelShedder(target_us=100, interval_us=1_000)
    assert not shedder.should_shed(500, now_us=0)
    assert not shedder.should_shed(500, now_us=999)
    assert shedder.should_shed(500, now_us=1_000)
    assert shedder.shed == 1


def test_drop_rate_accelerates_by_inverse_sqrt():
    shedder = CodelShedder(target_us=100, interval_us=1_000)
    shedder.should_shed(500, 0)
    assert shedder.should_shed(500, 1_000)  # enters dropping
    assert not shedder.should_shed(500, 1_500)  # next drop not due yet
    assert shedder.should_shed(500, 2_000)  # interval/sqrt(1) later
    # interval/sqrt(2) ~= 707us after the second drop
    assert not shedder.should_shed(500, 2_700)
    assert shedder.should_shed(500, 2_707)
    assert shedder.shed == 3


def test_recovery_exits_the_dropping_state():
    shedder = CodelShedder(target_us=100, interval_us=1_000)
    shedder.should_shed(500, 0)
    assert shedder.should_shed(500, 1_000)
    assert not shedder.should_shed(50, 1_100)  # queue drained
    # a fresh excursion starts a fresh interval, no immediate drop
    assert not shedder.should_shed(500, 1_200)
    assert not shedder.should_shed(500, 2_100)
    assert shedder.should_shed(500, 2_200)


def test_batch_tier_sheds_at_half_the_target():
    discipline = QueueDiscipline(
        config(codel_target_us=100, codel_interval_us=1_000)
    )
    # sojourn 60us: below the interactive target, above the batch one
    assert not discipline.should_shed(60, 0, latency_sensitive=True)
    assert not discipline.should_shed(60, 0, latency_sensitive=False)
    assert not discipline.should_shed(60, 499, latency_sensitive=False)
    assert discipline.should_shed(60, 500, latency_sensitive=False)
    assert discipline.total_shed == 1
    # the interactive tier never fired
    assert discipline.interactive.shed == 0


def test_codel_shed_notifies_the_limiter():
    conf = config(codel_target_us=100, codel_interval_us=1_000)
    limiter = AdaptiveLimit(conf)
    discipline = QueueDiscipline(conf, limiter=limiter)
    discipline.should_shed(500, 0, latency_sensitive=True)
    assert not limiter._window_congested
    discipline.should_shed(500, 1_000, latency_sensitive=True)  # sheds
    assert limiter._window_congested


# -- circuit breakers --------------------------------------------------------


def make_breaker(**overrides):
    defaults = dict(
        failure_threshold=0.5, min_volume=4, window_us=1_000, cooldown_us=500
    )
    defaults.update(overrides)
    return CircuitBreaker(**defaults)


def test_breaker_stays_closed_below_min_volume():
    breaker = make_breaker()
    for _ in range(3):
        breaker.record(ok=False, now_us=0)
    assert breaker.state == "closed"
    assert breaker.allow(0)


def test_breaker_trips_at_the_failure_threshold():
    breaker = make_breaker()
    breaker.record(True, 0)
    breaker.record(True, 0)
    breaker.record(False, 0)
    assert breaker.state == "closed"
    breaker.record(False, 0)  # 2/4 failed = threshold
    assert breaker.state == "open"
    assert breaker.opens == 1
    assert not breaker.allow(100)


def test_half_open_probe_closes_on_success():
    breaker = make_breaker()
    for _ in range(4):
        breaker.record(False, 0)
    assert not breaker.allow(499)
    assert breaker.allow(500)  # cooldown over: the probe
    assert breaker.state == "half_open"
    breaker.record(True, 600)
    assert breaker.state == "closed"
    assert breaker.allow(601)


def test_half_open_probe_failure_reopens():
    breaker = make_breaker()
    for _ in range(4):
        breaker.record(False, 0)
    assert breaker.allow(500)
    breaker.record(False, 600)
    assert breaker.state == "open"
    assert breaker.opens == 2
    assert not breaker.allow(700)
    assert breaker.allow(1_100)  # a second cooldown, a second probe


def test_rolling_window_forgets_stale_outcomes():
    # the same outcome mix trips when recent ...
    recent = make_breaker(window_us=1_000)
    recent.record(False, 0)
    recent.record(False, 0)
    recent.record(True, 100)
    recent.record(False, 200)  # 3 bad / 4 total
    assert recent.state == "open"
    # ... but not once the early failures are two windows old
    aged = make_breaker(window_us=1_000)
    aged.record(False, 0)
    aged.record(False, 0)
    aged.record(True, 2_000)  # rolls once: failures move to prev window
    aged.record(True, 3_500)  # rolls again: failures age out entirely
    aged.record(True, 3_600)
    aged.record(False, 3_700)  # 1 bad / 4 judged
    assert aged.state == "closed"


def test_board_keys_breakers_by_database_and_region():
    metrics = MetricsRegistry()
    board = BreakerBoard(
        config(breaker_min_volume=2, breaker_failure_threshold=0.5),
        metrics=metrics,
    )
    board.record("db-a", "us-east", False, 0)
    board.record("db-a", "us-east", False, 0)
    assert not board.allow("db-a", "us-east", 100)
    assert board.allow("db-a", "us-west", 100)  # different region
    assert board.allow("db-b", "us-east", 100)  # different database
    assert board.total_opens() == 1
    opens = metrics.to_dict()["overload_breaker_opens"]
    assert opens[0]["labels"] == {"database_id": "db-a", "region": "us-east"}


# -- hedged reads ------------------------------------------------------------


def test_latency_tracker_estimates_p99():
    tracker = ReadLatencyTracker()
    assert tracker.p99_us() == -1
    for latency in range(1, 101):
        tracker.observe(latency * 1_000)
    assert tracker.p99_us() == 100_000


def test_latency_tracker_ring_forgets_old_samples():
    tracker = ReadLatencyTracker()
    for _ in range(ReadLatencyTracker.RING):
        tracker.observe(10**6)
    for _ in range(ReadLatencyTracker.RING):
        tracker.observe(1_000)
    assert tracker.p99_us() == 1_000


def test_hedge_throttle_caps_hedges_to_a_fraction_of_reads():
    throttle = HedgeThrottle(ratio=0.5, burst=1.0)
    assert throttle.try_spend()  # starts with the burst
    assert not throttle.try_spend()
    assert throttle.denied == 1
    throttle.on_read()
    assert not throttle.try_spend()  # 0.5 tokens: still short
    throttle.on_read()
    assert throttle.try_spend()  # two reads earned one hedge


def test_hedge_delay_uses_default_then_p99_with_a_floor():
    state = OverloadState(
        config(hedge_default_delay_us=100_000, hedge_min_delay_us=20_000)
    )
    assert state.hedge_after_us() == 100_000  # no samples yet
    for _ in range(64):
        state.read_latency.observe(5_000)
    assert state.hedge_after_us() == 20_000  # floored
    for _ in range(ReadLatencyTracker.RING):
        state.read_latency.observe(75_000)
    assert state.hedge_after_us() == 75_000  # live p99


def test_hedge_accounting_splits_outcomes():
    metrics = MetricsRegistry()
    state = OverloadState(config(), metrics=metrics)
    state.account_hedge("fired", "db")
    state.account_hedge("win", "db")
    state.account_hedge("waste", "db")
    assert (state.hedges_fired, state.hedge_wins, state.hedge_waste) == (
        1,
        1,
        1,
    )
    outcomes = {
        entry["labels"]["outcome"]
        for entry in metrics.to_dict()["overload_hedges"]
    }
    assert outcomes == {"fired", "win", "waste"}


# -- admission integration ---------------------------------------------------


def make_admission(limiter):
    controller = AdmissionController(SimClock(), AdmissionConfig())
    controller.adaptive = limiter
    controller.batch_admit_fraction = 0.5
    return controller


def test_admission_uses_the_adaptive_limit():
    limiter = AdaptiveLimit(config(initial_limit=10))
    controller = make_admission(limiter)
    assert controller.try_admit("db", queue_depth=9)[0]
    admitted, reason = controller.try_admit("db", queue_depth=10)
    assert not admitted and reason is ShedReason.QUEUE_DEPTH


def test_batch_traffic_sheds_at_the_admit_fraction():
    limiter = AdaptiveLimit(config(initial_limit=10))
    controller = make_admission(limiter)
    admitted, reason = controller.try_admit(
        "db", queue_depth=5, latency_sensitive=False
    )
    assert not admitted and reason is ShedReason.QUEUE_DEPTH
    # the same depth is fine for user-facing traffic
    assert controller.try_admit("db", queue_depth=5)[0]


def test_crash_requeue_recheck_honors_the_live_limit():
    limiter = AdaptiveLimit(config(initial_limit=10, adjust_interval_us=1_000))
    controller = make_admission(limiter)
    assert controller.recheck("db", queue_depth=9) is None
    # the limit cut after this request was first admitted
    limiter.observe(queue_wait_us=10**6, now_us=1_000)
    assert limiter.limit == 7
    assert controller.recheck("db", queue_depth=9) is ShedReason.QUEUE_DEPTH
    assert controller.shed == 1
