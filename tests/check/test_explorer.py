"""The schedule explorer: perturber determinism, seed sweeps over the
seeded anomalies, and shrinking to minimal named reproducers."""

import pytest

from repro.check.explorer import (
    DelayPerturber,
    FlipPerturber,
    MODES,
    Reproducer,
    explore,
    make_perturber,
    shrink,
)
from repro.check.scenarios import default_ops, run_scenario


def test_make_perturber():
    assert make_perturber("none", 1) is None
    assert isinstance(make_perturber("delay", 1), DelayPerturber)
    assert isinstance(make_perturber("flip", 1), FlipPerturber)
    with pytest.raises(ValueError):
        make_perturber("chaos", 1)


def test_perturbers_are_seed_deterministic_and_targeted():
    sequence = [("txn-start", 100), ("idle", 100), ("commit-x", 200)]

    def run(perturber):
        return [perturber.perturb(t, label, 0) for label, t in sequence]

    assert run(DelayPerturber(7)) == run(DelayPerturber(7))
    assert run(FlipPerturber(7)) == run(FlipPerturber(7))
    # untargeted labels pass through unchanged
    delayed = run(DelayPerturber(7))
    assert delayed[1] == (100, 0)
    flipped = run(FlipPerturber(7))
    assert flipped[1] == (100, 0)
    # flip perturbs priority only, never the time
    assert all(t == orig for (t, _), (_, orig) in zip(flipped, sequence))


def test_reproducer_command():
    reproducer = Reproducer("isolation", 3, "flip", 6, ("lost-update",))
    assert reproducer.command() == (
        "python -m repro.check --scenario isolation "
        "--seed 3 --mode flip --ops 6"
    )


def test_explore_finds_and_shrinks_lost_update():
    report = explore("anomaly-lost-update", seeds=range(4), modes=["none"])
    assert report.found_violation
    assert report.runs == 4
    assert report.clean + len(report.reproducers) == 4
    for reproducer in report.reproducers:
        assert "lost-update" in reproducer.violations
        assert reproducer.ops <= default_ops("anomaly-lost-update")
        # the reproducer really reproduces
        rerun = run_scenario(
            reproducer.scenario,
            reproducer.seed,
            reproducer.mode,
            reproducer.ops,
        )
        assert rerun.violations


def test_explore_stop_at_caps_the_sweep():
    report = explore(
        "anomaly-non-monotonic-ts",
        seeds=range(10),
        modes=["none"],
        stop_at=1,
    )
    assert len(report.reproducers) == 1
    assert report.runs < 10


def test_each_anomaly_yields_its_named_class():
    expected = {
        "anomaly-lost-update": "lost-update",
        "anomaly-write-skew": "write-skew",
        "anomaly-stale-notification": "notification-loss",
        "anomaly-non-monotonic-ts": "non-monotonic-commit",
    }
    for scenario, check in expected.items():
        report = explore(scenario, seeds=range(6), modes=["none", "delay"])
        assert report.found_violation, scenario
        found = {
            violation
            for reproducer in report.reproducers
            for violation in reproducer.violations
        }
        assert check in found, (scenario, found)


def test_shrink_requires_a_violating_run():
    with pytest.raises(AssertionError):
        shrink("commit", seed=1, mode="none", ops=2)


def test_modes_constant_matches_make_perturber():
    for mode in MODES:
        make_perturber(mode, 1)  # no ValueError
