"""Unit histories: every violation class fires on its minimal history
and stays silent on the legal variant."""

import pytest

from repro.check.checker import (
    CommitWindowViolation,
    ExternalConsistencyViolation,
    IndexInconsistency,
    LostUpdate,
    NonMonotonicCommit,
    NotificationLoss,
    NotificationOrderViolation,
    SerializabilityCycle,
    StaleSnapshotRead,
    WriteSkew,
    assert_clean,
    check_history,
)
from repro.check.graph import committed_txns, dependency_edges
from repro.errors import CheckerViolation

K1, K2, K3 = "aa01", "aa02", "aa03"


def begin(txn, start=0):
    return {"k": "begin", "txn": txn, "start": start}


def read(txn, key, ts, fu=False):
    return {"k": "read", "txn": txn, "key": key, "ts": ts, "fu": fu}


def commit(txn, ts, writes, min_ts=0, max_ts=None):
    return {
        "k": "commit",
        "txn": txn,
        "ts": ts,
        "writes": writes,
        "min": min_ts,
        "max": max_ts,
        "tt_e": ts - 2,
        "tt_l": ts + 2,
    }


def checks_of(events):
    return {v.check for v in check_history(events)}


def test_clean_history_has_no_violations():
    events = [
        begin(1),
        read(1, K1, -1),
        commit(1, 10, [[K1, "w"]]),
        begin(2),
        read(2, K1, 10),
        commit(2, 20, [[K1, "w"]]),
    ]
    assert check_history(events) == []


def test_lost_update_cycle():
    events = [
        begin(1),
        read(1, K1, -1),
        begin(2),
        read(2, K1, -1),
        commit(1, 10, [[K1, "w"]]),
        commit(2, 11, [[K1, "w"]]),
    ]
    violations = check_history(events)
    assert any(isinstance(v, LostUpdate) for v in violations)
    lost = next(v for v in violations if isinstance(v, LostUpdate))
    # implicated events point at the two transactions' begins/commits
    assert set(lost.events) == {0, 2, 4, 5}


def test_write_skew_cycle():
    events = [
        begin(1),
        read(1, K1, -1),
        read(1, K2, -1),
        begin(2),
        read(2, K1, -1),
        read(2, K2, -1),
        commit(1, 10, [[K1, "w"]]),
        commit(2, 11, [[K2, "w"]]),
    ]
    violations = check_history(events)
    assert any(isinstance(v, WriteSkew) for v in violations)


def test_three_txn_cycle_is_plain_serializability():
    events = [
        begin(1),
        read(1, K3, -1),
        begin(2),
        read(2, K1, -1),
        begin(3),
        read(3, K2, -1),
        commit(1, 10, [[K1, "w"]]),
        commit(2, 11, [[K2, "w"]]),
        commit(3, 12, [[K3, "w"]]),
    ]
    violations = check_history(events)
    cycle = [v for v in violations if isinstance(v, SerializabilityCycle)]
    assert cycle and type(cycle[0]) is SerializabilityCycle


def test_tombstone_read_is_read_from_not_anti_dependency():
    """Reading a committed tombstone reads-from the deleter: wr, no cycle."""
    events = [
        begin(1),
        read(1, K1, -1),
        commit(1, 10, [[K1, "d"]]),
        begin(2),
        read(2, K1, 10),  # reads txn 1's tombstone version
        commit(2, 20, [[K1, "w"]]),
    ]
    assert check_history(events) == []
    txns = committed_txns(events)
    kinds = {(e.src, e.dst, e.kind) for e in dependency_edges(txns)}
    assert (1, 2, "wr") in kinds
    assert (1, 2, "ww") in kinds
    assert (2, 1, "rw") not in kinds


def test_non_monotonic_commit():
    events = [
        begin(1),
        commit(1, 100, [[K1, "w"]]),
        begin(2),
        commit(2, 90, [[K2, "w"]]),
    ]
    assert "non-monotonic-commit" in checks_of(events)


def test_commit_window_violation():
    events = [begin(1), commit(1, 100, [[K1, "w"]], min_ts=200, max_ts=300)]
    violations = check_history(events)
    assert any(isinstance(v, CommitWindowViolation) for v in violations)
    # inside the window is fine
    assert check_history(
        [begin(1), commit(1, 250, [[K1, "w"]], min_ts=200, max_ts=300)]
    ) == []


def test_external_consistency_violation():
    events = [
        begin(1),
        commit(1, 100, [[K1, "w"]]),
        begin(2),  # begins after txn 1's commit applied
        commit(2, 50, [[K2, "w"]]),
    ]
    violations = check_history(events)
    assert any(
        isinstance(v, ExternalConsistencyViolation) for v in violations
    )


def test_unknown_applied_commit_counts():
    """An unknown-outcome commit that applied is part of the history."""
    events = [
        begin(1),
        {"k": "unknown", "txn": 1, "applied": True},
        commit(1, 100, [[K1, "w"]]),
        begin(2),
        commit(2, 50, [[K2, "w"]]),
    ]
    assert 1 in committed_txns(events)
    assert "non-monotonic-commit" in checks_of(events)


def test_stale_snapshot_read():
    events = [
        begin(1),
        commit(1, 10, [[K1, "w"]]),
        {"k": "snap_read", "key": K1, "read_ts": 20, "ts": -1},
    ]
    violations = check_history(events)
    assert any(isinstance(v, StaleSnapshotRead) for v in violations)
    # observing the correct version is fine
    assert check_history(
        [
            begin(1),
            commit(1, 10, [[K1, "w"]]),
            {"k": "snap_read", "key": K1, "read_ts": 20, "ts": 10},
        ]
    ) == []


def test_snapshot_read_of_deleted_doc_expects_absent():
    events = [
        begin(1),
        commit(1, 10, [[K1, "w"]]),
        begin(2),
        commit(2, 30, [[K1, "d"]]),
        {"k": "snap_read", "key": K1, "read_ts": 40, "ts": 10},
    ]
    assert "stale-snapshot-read" in checks_of(events)


def test_index_inconsistency_stale_and_deleted():
    stale = [
        begin(1),
        commit(1, 10, [[K1, "w"]]),
        {"k": "query", "db": "d", "read_ts": 20, "rows": [[K1, 5]]},
    ]
    assert any(
        isinstance(v, IndexInconsistency) for v in check_history(stale)
    )
    deleted = [
        begin(1),
        commit(1, 10, [[K1, "w"]]),
        begin(2),
        commit(2, 30, [[K1, "d"]]),
        {"k": "query", "db": "d", "read_ts": 40, "rows": [[K1, 10]]},
    ]
    assert any(
        isinstance(v, IndexInconsistency) for v in check_history(deleted)
    )
    fresh = [
        begin(1),
        commit(1, 10, [[K1, "w"]]),
        {"k": "query", "db": "d", "read_ts": 20, "rows": [[K1, 10]]},
    ]
    assert check_history(fresh) == []


def test_notification_order_violations():
    deliveries = [
        {"k": "cl_deliver", "range": 1, "ts": 100, "path": "docs/a"},
        {"k": "cl_deliver", "range": 1, "ts": 50, "path": "docs/b"},
    ]
    assert any(
        isinstance(v, NotificationOrderViolation)
        for v in check_history(deliveries)
    )
    watermarks = [
        {"k": "cl_watermark", "range": 1, "wm": 100},
        {"k": "cl_watermark", "range": 1, "wm": 50},
    ]
    assert "notification-order" in checks_of(watermarks)
    snapshots = [
        {"k": "notify", "tag": "q", "read_ts": 100, "initial": True, "paths": []},
        {"k": "notify", "tag": "q", "read_ts": 100, "initial": False, "paths": []},
    ]
    assert "notification-order" in checks_of(snapshots)


def test_notification_loss_and_its_excuses():
    lost = [
        {
            "k": "cl_accept",
            "range": 1,
            "pid": 1,
            "outcome": "committed",
            "ts": 100,
            "paths": ["docs/a"],
        },
        {"k": "cl_watermark", "range": 1, "wm": 200},
    ]
    assert any(
        isinstance(v, NotificationLoss) for v in check_history(lost)
    )
    # delivered: clean
    delivered = lost[:1] + [
        {"k": "cl_deliver", "range": 1, "ts": 100, "path": "docs/a"},
        lost[1],
    ]
    assert check_history(delivered) == []
    # out-of-sync fail-safe excuses the loss
    excused = lost[:1] + [{"k": "cl_oos", "range": 1}, lost[1]]
    assert check_history(excused) == []
    # watermark never reached it: not yet due
    not_due = lost[:1] + [{"k": "cl_watermark", "range": 1, "wm": 50}]
    assert check_history(not_due) == []


def test_metrics_counter_increments():
    from repro.obs.metrics import MetricsRegistry

    metrics = MetricsRegistry()
    events = [
        begin(1),
        commit(1, 100, [[K1, "w"]]),
        begin(2),
        commit(2, 90, [[K2, "w"]]),
    ]
    check_history(events, metrics=metrics)
    counter = metrics.counter(
        "checker.violations", check="non-monotonic-commit"
    )
    assert counter.value >= 1


def test_assert_clean():
    assert_clean([])  # no-op
    violations = check_history(
        [begin(1), commit(1, 100, [[K1, "w"]]), begin(2), commit(2, 90, [[K2, "w"]])]
    )
    with pytest.raises(CheckerViolation) as excinfo:
        assert_clean(violations, context="unit")
    assert excinfo.value.check == violations[0].check
    assert "unit" in str(excinfo.value)
