"""Replication histories: each violation class fires on its minimal
history and stays silent on the legal variant."""

from repro.check.checker import (
    FailoverConsistencyViolation,
    FollowerStalenessViolation,
    ReplicaWatermarkViolation,
    check_history,
)


def repl_commit(ts, term=1, leader="a", grp="g", acks=1):
    return {
        "k": "repl_commit", "grp": grp, "term": term, "leader": leader,
        "ts": ts, "acks": acks,
    }


def repl_apply(region, ts, grp="g"):
    return {"k": "repl_apply", "grp": grp, "region": region, "ts": ts}


def repl_elect(term, min_ts, leader="b", grp="g"):
    return {
        "k": "repl_elect", "grp": grp, "term": term, "leader": leader,
        "min_ts": min_ts,
    }


def repl_read(read_ts, safe, bound=1_000, t=None, region="b", grp="g"):
    event = {
        "k": "repl_read", "grp": grp, "region": region,
        "read_ts": read_ts, "safe": safe, "bound": bound,
    }
    if t is not None:
        event["t"] = t
    return event


def checks_of(events):
    return {type(v) for v in check_history(events)}


def test_clean_replication_history():
    events = [
        repl_commit(10),
        repl_apply("b", 10),
        repl_commit(20),
        repl_elect(2, 21),
        repl_commit(30, term=2, leader="b"),
        repl_apply("b", 20),
        repl_read(read_ts=9_000, safe=9_500, bound=1_000, t=10_000),
    ]
    assert check_history(events) == []


def test_commit_timestamp_regression_is_flagged():
    events = [repl_commit(20), repl_commit(20)]
    assert checks_of(events) == {FailoverConsistencyViolation}


def test_commit_below_failover_floor_is_flagged():
    events = [repl_commit(20), repl_elect(2, 21), repl_commit(25, term=2)]
    assert check_history(events) == []
    events = [repl_commit(30), repl_elect(2, 31), repl_commit(25, term=2)]
    # ts went backwards *and* dipped below the published floor
    assert checks_of(events) == {FailoverConsistencyViolation}
    assert len(check_history(events)) == 2


def test_term_regression_is_flagged():
    events = [repl_elect(2, 1), repl_elect(2, 5)]
    assert checks_of(events) == {FailoverConsistencyViolation}


def test_apply_watermark_regression_is_flagged():
    events = [repl_apply("b", 10), repl_apply("b", 9)]
    assert checks_of(events) == {ReplicaWatermarkViolation}
    # distinct replicas have independent watermarks
    assert check_history([repl_apply("b", 10), repl_apply("c", 9)]) == []


def test_read_beyond_safe_time_is_flagged():
    events = [repl_read(read_ts=100, safe=99)]
    assert checks_of(events) == {FollowerStalenessViolation}


def test_read_older_than_the_bound_is_flagged():
    events = [repl_read(read_ts=7_000, safe=9_999, bound=1_000, t=10_000)]
    assert checks_of(events) == {FollowerStalenessViolation}


def test_groups_are_independent():
    events = [
        repl_commit(20, grp="g1"),
        repl_commit(10, grp="g2"),
        repl_apply("b", 20, grp="g1"),
        repl_apply("b", 10, grp="g2"),
    ]
    assert check_history(events) == []
