"""The recorder: event encoding, opt-in installation, and the
byte-identical-same-seed property the replay harness enforces."""

from types import SimpleNamespace

from repro.analysis.replay import run_replay
from repro.check.history import (
    HistoryRecorder,
    checking_enabled,
    drain_recorders,
    install,
    maybe_install,
    recording,
    set_enabled,
)
from repro.check.scenarios import run_scenario


def make_db(name="db"):
    return SimpleNamespace(clock=None, name=name, recorder=None)


def test_event_encoding_roundtrip():
    recorder = HistoryRecorder(name="unit")
    recorder.txn_begin(1, 5)
    recorder.txn_read(1, b"\x01", -1, True)
    recorder.txn_commit(1, 10, [(b"\x01", "w"), (b"\x02", "d")], 0, 99, 8, 12)
    recorder.txn_abort(2)
    recorder.txn_unknown(3, applied=True)
    recorder.snapshot_read(b"\x01", 20, 10)
    recorder.backend_prepare("db", 7, 1, 99, ["docs/a"])
    recorder.backend_accept("db", 7, "committed", 10, ["docs/a"])
    recorder.changelog_accept(1, 7, "committed", 10, ["docs/a"])
    recorder.changelog_deliver(1, 10, "docs/a")
    recorder.changelog_watermark(1, 10)
    recorder.notify("tag", 10, True, ["docs/a"])
    assert [e["k"] for e in recorder.events] == [
        "begin",
        "read",
        "commit",
        "abort",
        "unknown",
        "snap_read",
        "prepare",
        "accept",
        "cl_accept",
        "cl_deliver",
        "cl_watermark",
        "notify",
    ]
    # no clock -> no "t" field; commit carries window + TrueTime interval
    assert "t" not in recorder.events[0]
    commit = recorder.events[2]
    assert commit["writes"] == [["01", "w"], ["02", "d"]]
    assert (commit["min"], commit["max"]) == (0, 99)
    assert (commit["tt_e"], commit["tt_l"]) == (8, 12)
    parsed = HistoryRecorder.parse_jsonl(recorder.to_jsonl())
    assert parsed == recorder.events


def test_clock_and_span_stamping():
    clock = SimpleNamespace(now_us=1234)
    recorder = HistoryRecorder(clock=clock)
    recorder.txn_begin(1, 0)
    assert recorder.events[0]["t"] == 1234


def test_opt_in_gate(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    set_enabled(None)
    assert not checking_enabled()
    monkeypatch.setenv("REPRO_CHECK", "1")
    assert checking_enabled()
    monkeypatch.setenv("REPRO_CHECK", "0")
    assert not checking_enabled()
    set_enabled(True)
    try:
        assert checking_enabled()
    finally:
        set_enabled(None)


def test_maybe_install_respects_gate_and_existing(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    set_enabled(None)
    drain_recorders()
    assert maybe_install(make_db()) is None  # disabled: no recorder
    set_enabled(True)
    try:
        db = make_db()
        recorder = maybe_install(db)
        assert recorder is not None and db.recorder is recorder
        assert maybe_install(db) is None  # already installed
        assert drain_recorders() == [recorder]
        assert drain_recorders() == []  # drained exactly once
    finally:
        set_enabled(None)


def test_recording_context_collects_and_restores(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    set_enabled(None)
    with recording() as recorders:
        assert checking_enabled()
        installed = install(make_db())
    assert not checking_enabled()
    assert recorders == [installed]


def test_same_seed_history_logs_are_byte_identical():
    def jsonl(run):
        import json

        return "".join(
            json.dumps(e, sort_keys=True, separators=(",", ":")) + "\n"
            for history in run.histories
            for e in history
        )

    first = run_scenario("commit", seed=5)
    second = run_scenario("commit", seed=5)
    assert first.event_count > 0
    assert jsonl(first) == jsonl(second)
    other = run_scenario("commit", seed=6)
    assert jsonl(first) != jsonl(other)


def test_replay_harness_fingerprints_history():
    report = run_replay(
        lambda: {"history": run_scenario("commit", seed=3).histories},
        runs=2,
    )
    assert report.deterministic
    assert report.runs[0].history_hash is not None
