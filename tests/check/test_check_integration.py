"""End-to-end: real-system scenarios check clean, the CLI's exit codes,
and the ``pytest --check`` per-test wiring."""

import os
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.check.__main__ import main
from repro.check.checker import check_history
from repro.check.history import HistoryRecorder
from repro.check.scenarios import SCENARIOS, run_scenario

REPO = Path(__file__).resolve().parents[2]


@pytest.mark.parametrize("scenario", ["commit", "isolation"])
@pytest.mark.parametrize("seed", [0, 7])
def test_real_scenarios_check_clean(scenario, seed):
    result = run_scenario(scenario, seed)
    assert result.event_count > 0
    assert result.violations == []


def test_acceptance_run_is_clean():
    """The ISSUE acceptance criterion: traced YCSB checks clean."""
    result = run_scenario("ycsb", 42)
    assert result.event_count > 0
    assert result.violations == []


def test_isolation_scenario_survives_perturbation():
    for mode in ("delay", "flip"):
        result = run_scenario("isolation", 3, mode)
        assert result.violations == [], mode


def test_scenario_registry():
    assert {"commit", "ycsb", "isolation"} <= set(SCENARIOS)
    assert {name for name in SCENARIOS if name.startswith("anomaly-")} == {
        "anomaly-lost-update",
        "anomaly-write-skew",
        "anomaly-stale-notification",
        "anomaly-non-monotonic-ts",
    }
    with pytest.raises(ValueError):
        run_scenario("no-such", 1)


def test_cli_exit_codes(tmp_path, capsys):
    assert main(["--scenario", "commit", "--seed", "1"]) == 0
    assert main(["--scenario", "anomaly-lost-update", "--seed", "1"]) == 1
    out = capsys.readouterr().out
    assert "[lost-update]" in out
    assert (
        main(["--explore", "--scenario", "commit", "--modes", "chaos"]) == 2
    )


def test_cli_log_out_then_check_log(tmp_path, capsys):
    log = tmp_path / "history.jsonl"
    assert (
        main(
            [
                "--scenario",
                "anomaly-non-monotonic-ts",
                "--seed",
                "2",
                "--log-out",
                str(log),
            ]
        )
        == 1
    )
    events = HistoryRecorder.parse_jsonl(log.read_text())
    assert events and check_history(events)
    assert main(["--check-log", str(log)]) == 1
    capsys.readouterr()


def test_cli_explore_prints_reproducers(capsys):
    code = main(
        [
            "--explore",
            "--scenario",
            "anomaly-write-skew",
            "--seeds",
            "4",
            "--modes",
            "none",
        ]
    )
    assert code == 1
    out = capsys.readouterr().out
    assert "python -m repro.check --scenario anomaly-write-skew" in out


def test_pytest_check_flag_wires_the_teardown(tmp_path):
    """--check records every test's databases and fails the test whose
    history is broken (via a deliberately poisoned recorder)."""
    shutil.copy(REPO / "conftest.py", tmp_path / "conftest.py")
    (tmp_path / "test_checked.py").write_text(
        """
from types import SimpleNamespace

from repro.check.history import install
from repro.core.backend import set_op
from repro.core.firestore import FirestoreService


def test_clean_commit():
    import os

    service = FirestoreService(multi_region=False)
    db = service.create_database("ok")
    db.commit([set_op("docs/a", {"n": 1})])
    if os.environ.get("REPRO_CHECK") == "1":
        assert db.layout.spanner.recorder is not None


def test_poisoned_history():
    recorder = install(SimpleNamespace(clock=None, name="bad", recorder=None))
    recorder.txn_begin(1, 0)
    recorder.txn_commit(1, 100, [(b"k", "w")], 0, None, 98, 102)
    recorder.txn_begin(2, 0)
    recorder.txn_commit(2, 90, [(b"j", "w")], 0, None, 88, 92)
"""
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    env.pop("REPRO_CHECK", None)
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "--check",
            "-q",
            "-p",
            "no:cacheprovider",
            str(tmp_path / "test_checked.py"),
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    output = result.stdout + result.stderr
    assert result.returncode != 0
    assert "test_clean_commit" not in output or "1 passed" in output
    assert "CheckerViolation" in output
    assert "non-monotonic-commit" in output
    # without --check the poisoned recorder is never drained or judged
    result = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            "-q",
            "-p",
            "no:cacheprovider",
            str(tmp_path / "test_checked.py"),
        ],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert result.returncode == 0, result.stdout + result.stderr
