"""MobileClient end-to-end tests: latency compensation, offline operation,
reconnection reconciliation, OCC transactions, persistence (paper
sections III-E and IV-E)."""

import pytest

from repro.errors import Aborted, PermissionDenied, Unavailable
from repro.core.backend import AuthContext, set_op
from repro.core.firestore import FirestoreService
from repro.client import InMemoryPersistence, MobileClient


@pytest.fixture
def service():
    return FirestoreService()


@pytest.fixture
def db(service):
    return service.create_database("client-tests")


def pump(db, times=2, advance_us=100_000):
    for _ in range(times):
        db.service.clock.advance(advance_us)
        db.pump_realtime()


class TestOnlineBasics:
    def test_get_from_server(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        snap = client.get("notes/a")
        assert snap.exists and snap.data == {"v": 1}
        assert not snap.from_cache

    def test_get_missing_doc(self, db):
        client = MobileClient(db)
        snap = client.get("notes/missing")
        assert not snap.exists and snap.data is None

    def test_set_is_visible_server_side(self, db):
        client = MobileClient(db)
        client.set("notes/a", {"v": 1})
        assert db.lookup("notes/a").data == {"v": 1}
        assert client.pending_writes == 0  # auto-flushed while online

    def test_one_shot_query(self, db):
        db.commit([set_op("notes/a", {"order": 2}), set_op("notes/b", {"order": 1})])
        client = MobileClient(db)
        snapshot = client.get_query(client.query("notes").order_by("order"))
        assert [d.path.id for d in snapshot.documents] == ["b", "a"]
        assert not snapshot.from_cache

    def test_listener_sees_other_writers(self, db):
        client = MobileClient(db)
        snaps = []
        client.on_snapshot(client.query("notes"), snaps.append)
        db.commit([set_op("notes/x", {"v": 1})])  # another user
        pump(db)
        assert [d.path.id for d in snaps[-1].documents] == ["x"]

    def test_latency_compensation_before_server_ack(self, db):
        client = MobileClient(db)
        snaps = []
        client.on_snapshot(client.query("notes"), snaps.append)
        client.set("notes/mine", {"v": 1})
        # local emit happened before any realtime pump
        compensated = snaps[1]
        assert [d.path.id for d in compensated.documents] == ["mine"]
        assert compensated.has_pending_writes or client.pending_writes == 0


class TestOfflineOperation:
    def test_offline_get_served_from_cache(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        client.get("notes/a")  # warm the cache
        client.disconnect()
        snap = client.get("notes/a")
        assert snap.from_cache and snap.data == {"v": 1}
        assert client.cache_reads == 1

    def test_offline_get_of_uncached_doc_fails(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        client.disconnect()
        with pytest.raises(Unavailable):
            client.get("notes/a")

    def test_offline_writes_queue_and_apply_locally(self, db):
        client = MobileClient(db)
        client.disconnect()
        client.set("notes/a", {"v": 1})
        assert client.pending_writes == 1
        assert client.get("notes/a").data == {"v": 1}
        assert client.get("notes/a").has_pending_writes
        assert not db.lookup("notes/a").exists  # not yet on the server

    def test_offline_query_from_cache_plus_mutations(self, db):
        db.commit([set_op("notes/a", {"order": 1})])
        client = MobileClient(db)
        client.get_query(client.query("notes"))  # warm cache
        client.disconnect()
        client.set("notes/b", {"order": 0})
        snapshot = client.get_query(client.query("notes").order_by("order"))
        assert [d.path.id for d in snapshot.documents] == ["b", "a"]
        assert snapshot.from_cache

    def test_offline_listener_keeps_updating(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        snaps = []
        client.on_snapshot(client.query("notes"), snaps.append)
        client.disconnect()
        client.delete("notes/a")
        assert snaps[-1].documents == ()
        assert snaps[-1].from_cache

    def test_reconnect_flushes_and_reconciles(self, db):
        client = MobileClient(db)
        snaps = []
        client.on_snapshot(client.query("notes"), snaps.append)
        client.disconnect()
        client.set("notes/offline", {"v": 1})
        db.commit([set_op("notes/other", {"v": 2})])  # someone else writes
        client.connect()
        pump(db)
        assert db.lookup("notes/offline").exists
        ids = {d.path.id for d in snaps[-1].documents}
        assert ids == {"offline", "other"}
        assert not snaps[-1].has_pending_writes

    def test_last_update_wins_on_conflict(self, db):
        db.commit([set_op("notes/a", {"v": "original"})])
        client = MobileClient(db)
        client.get("notes/a")
        client.disconnect()
        client.set("notes/a", {"v": "from-client"})
        db.commit([set_op("notes/a", {"v": "from-server"})])
        client.connect()  # client's blind write lands later: it wins
        assert db.lookup("notes/a").data == {"v": "from-client"}

    def test_offline_update_of_server_deleted_doc_lost(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        client.get("notes/a")
        client.disconnect()
        client.update("notes/a", {"v": 2})
        db.commit([__import__("repro.core.backend", fromlist=["delete_op"]).delete_op("notes/a")])
        client.connect()
        assert not db.lookup("notes/a").exists  # update silently dropped
        assert client.flush_errors == []


class TestRulesIntegration:
    RULES = (
        "service cloud.firestore { match /databases/{d}/documents {"
        " match /notes/{id} {"
        "   allow read: if true;"
        "   allow write: if request.resource.data.owner == request.auth.uid;"
        " } } }"
    )

    def test_rejected_flush_records_error(self, db):
        db.set_rules(self.RULES)
        client = MobileClient(db, auth=AuthContext(uid="alice"))
        client.set("notes/mine", {"owner": "alice"})
        assert db.lookup("notes/mine").exists
        client.set("notes/spoof", {"owner": "bob"})
        assert not db.lookup("notes/spoof").exists
        assert len(client.flush_errors) == 1
        assert isinstance(client.flush_errors[0], PermissionDenied)


class TestTransactions:
    def test_occ_transaction_commits(self, db):
        db.commit([set_op("counters/c", {"n": 1})])
        client = MobileClient(db)

        def bump(tx):
            snap = tx.get("counters/c")
            tx.update("counters/c", {"n": snap.data["n"] + 1})

        client.run_transaction(bump)
        assert db.lookup("counters/c").data["n"] == 2

    def test_occ_retries_on_stale_read(self, db):
        db.commit([set_op("counters/c", {"n": 0})])
        client = MobileClient(db)
        attempts = []

        def racy(tx):
            snap = tx.get("counters/c")
            attempts.append(snap.data["n"])
            if len(attempts) == 1:
                # somebody else commits between our read and our commit
                db.commit([set_op("counters/c", {"n": 100})])
            tx.update("counters/c", {"n": snap.data["n"] + 1})

        client.run_transaction(racy)
        assert len(attempts) == 2  # first attempt failed freshness check
        assert db.lookup("counters/c").data["n"] == 101

    def test_occ_gives_up_after_max_attempts(self, db):
        db.commit([set_op("counters/c", {"n": 0})])
        client = MobileClient(db)

        def always_racy(tx):
            tx.get("counters/c")
            db.commit([set_op("counters/c", {"n": -1})])
            tx.update("counters/c", {"n": 1})

        with pytest.raises(Aborted):
            client.run_transaction(always_racy, max_attempts=3)

    def test_transactions_require_connectivity(self, db):
        client = MobileClient(db)
        client.disconnect()
        with pytest.raises(Unavailable):
            client.run_transaction(lambda tx: None)


class TestPersistence:
    def test_cache_survives_restart(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        disk = InMemoryPersistence()
        client = MobileClient(db, persistence=disk)
        client.get("notes/a")
        client.disconnect()  # persists

        restarted = MobileClient(db, persistence=disk, start_online=False)
        snap = restarted.get("notes/a")
        assert snap.data == {"v": 1}
        assert snap.from_cache

    def test_pending_mutations_survive_restart(self, db):
        disk = InMemoryPersistence()
        client = MobileClient(db, persistence=disk, start_online=False)
        client.set("notes/offline", {"v": 1})
        client.persist()

        restarted = MobileClient(db, persistence=disk, start_online=False)
        assert restarted.pending_writes == 1
        restarted.connect()  # flushes the restored queue
        assert db.lookup("notes/offline").data == {"v": 1}

    def test_no_persistence_cold_start(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        client.get("notes/a")
        client.disconnect()
        fresh = MobileClient(db, start_online=False)
        with pytest.raises(Unavailable):
            fresh.get("notes/a")


class TestBilling:
    def test_cache_hits_not_billed_as_server_reads(self, db):
        db.commit([set_op("notes/a", {"v": 1})])
        client = MobileClient(db)
        client.get("notes/a")
        server_reads_before = client.server_reads
        client.disconnect()
        client.get("notes/a")
        client.get("notes/a")
        assert client.server_reads == server_reads_before
        assert client.cache_reads == 2
