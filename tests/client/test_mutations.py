from repro.core.path import Path
from repro.core.values import SERVER_TIMESTAMP, Timestamp
from repro.client.mutations import MutationKind, MutationQueue


def overlay(queue, path="notes/a", server=None, now=1000):
    data, pending = queue.overlay(Path.parse(path), server, now)
    return data, pending


def test_empty_queue_passthrough():
    queue = MutationQueue()
    data, pending = overlay(queue, server={"v": 1})
    assert data == {"v": 1}
    assert not pending
    assert queue.is_empty


def test_set_overlays_absent_doc():
    queue = MutationQueue()
    queue.enqueue(MutationKind.SET, Path.parse("notes/a"), {"v": 9})
    data, pending = overlay(queue, server=None)
    assert data == {"v": 9}
    assert pending


def test_update_merges_on_server_data():
    queue = MutationQueue()
    queue.enqueue(MutationKind.UPDATE, Path.parse("notes/a"), {"m": {"x": 2}})
    data, _ = overlay(queue, server={"m": {"x": 1, "y": 0}, "keep": True})
    assert data == {"m": {"x": 2, "y": 0}, "keep": True}


def test_update_on_missing_doc_is_noop():
    queue = MutationQueue()
    queue.enqueue(MutationKind.UPDATE, Path.parse("notes/a"), {"v": 1})
    data, pending = overlay(queue, server=None)
    assert data is None
    assert pending


def test_update_delete_fields():
    queue = MutationQueue()
    queue.enqueue(
        MutationKind.UPDATE, Path.parse("notes/a"), {}, delete_fields=("gone",)
    )
    data, _ = overlay(queue, server={"gone": 1, "stay": 2})
    assert data == {"stay": 2}


def test_delete_overlays_tombstone():
    queue = MutationQueue()
    queue.enqueue(MutationKind.DELETE, Path.parse("notes/a"))
    data, pending = overlay(queue, server={"v": 1})
    assert data is None and pending


def test_mutations_apply_in_order():
    queue = MutationQueue()
    path = Path.parse("notes/a")
    queue.enqueue(MutationKind.SET, path, {"v": 1})
    queue.enqueue(MutationKind.UPDATE, path, {"v": 2})
    queue.enqueue(MutationKind.DELETE, path)
    queue.enqueue(MutationKind.SET, path, {"v": 4})
    data, _ = overlay(queue, server=None)
    assert data == {"v": 4}


def test_server_timestamp_estimated_locally():
    queue = MutationQueue()
    queue.enqueue(MutationKind.SET, Path.parse("notes/a"), {"at": SERVER_TIMESTAMP})
    data, _ = overlay(queue, server=None, now=777)
    assert data["at"] == Timestamp(777)


def test_overlay_only_affects_target_path():
    queue = MutationQueue()
    queue.enqueue(MutationKind.DELETE, Path.parse("notes/a"))
    data, pending = overlay(queue, path="notes/b", server={"v": 1})
    assert data == {"v": 1}
    assert not pending


def test_drain_and_requeue():
    queue = MutationQueue()
    path = Path.parse("notes/a")
    queue.enqueue(MutationKind.SET, path, {"v": 1})
    queue.enqueue(MutationKind.SET, path, {"v": 2})
    drained = queue.drain()
    assert len(drained) == 2 and queue.is_empty
    queue.requeue_front(drained[1:])
    assert len(queue) == 1
    assert queue.mutations()[0].data == {"v": 2}


def test_pending_paths_and_has_pending():
    queue = MutationQueue()
    queue.enqueue(MutationKind.SET, Path.parse("notes/a"), {})
    assert queue.pending_paths() == {Path.parse("notes/a")}
    assert queue.has_pending(Path.parse("notes/a"))
    assert not queue.has_pending(Path.parse("notes/b"))
