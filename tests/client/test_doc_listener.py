"""Single-document listeners on the client SDK."""

import pytest

from repro.core.backend import delete_op, set_op, update_op
from repro.core.firestore import FirestoreService
from repro.client import MobileClient


@pytest.fixture
def db():
    return FirestoreService().create_database("doc-listener-tests")


def pump(db, times=2):
    for _ in range(times):
        db.service.clock.advance(100_000)
        db.pump_realtime()


def test_initial_snapshot_missing_doc(db):
    client = MobileClient(db)
    snaps = []
    client.on_document_snapshot("notes/a", snaps.append)
    assert len(snaps) == 1
    assert not snaps[0].exists


def test_create_update_delete_lifecycle(db):
    client = MobileClient(db)
    snaps = []
    client.on_document_snapshot("notes/a", snaps.append)
    db.commit([set_op("notes/a", {"v": 1})])
    pump(db)
    assert snaps[-1].exists and snaps[-1].data == {"v": 1}
    db.commit([update_op("notes/a", {"v": 2})])
    pump(db)
    assert snaps[-1].data == {"v": 2}
    db.commit([delete_op("notes/a")])
    pump(db)
    assert not snaps[-1].exists


def test_sibling_documents_do_not_leak(db):
    client = MobileClient(db)
    snaps = []
    client.on_document_snapshot("notes/target", snaps.append)
    db.commit([set_op("notes/other", {"v": 1})])
    pump(db)
    # snapshots may fire for collection activity, but the view of the
    # target document stays "missing"
    assert all(not snap.exists for snap in snaps)


def test_local_writes_compensated(db):
    client = MobileClient(db)
    snaps = []
    client.on_document_snapshot("notes/a", snaps.append)
    client.disconnect()
    client.set("notes/a", {"v": 1})
    assert snaps[-1].exists
    assert snaps[-1].has_pending_writes
    assert snaps[-1].from_cache


def test_detach_by_tag(db):
    client = MobileClient(db)
    snaps = []
    tag = client.on_document_snapshot("notes/a", snaps.append, tag="watch-a")
    assert tag == "watch-a"
    client.detach(tag)
    db.commit([set_op("notes/a", {"v": 1})])
    pump(db)
    assert len(snaps) == 1  # only the initial snapshot
