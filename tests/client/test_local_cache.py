from repro.core.path import Path
from repro.core.query import Query
from repro.client.local_cache import LocalCache


def normalized(collection="notes", **kwargs):
    q = Query(parent=Path.parse(collection))
    for field, op, value in kwargs.get("filters", []):
        q = q.where(field, op, value)
    for field, direction in kwargs.get("orders", []):
        q = q.order_by(field, direction)
    if "limit" in kwargs:
        q = q.limit_to(kwargs["limit"])
    return q.normalize()


def test_record_and_get():
    cache = LocalCache()
    path = Path.parse("notes/a")
    cache.record_document(path, {"v": 1}, 100)
    cached = cache.get(path)
    assert cached.exists and cached.data == {"v": 1}
    assert cached.version_ts == 100


def test_never_regresses_to_older_versions():
    cache = LocalCache()
    path = Path.parse("notes/a")
    cache.record_document(path, {"v": 2}, 200)
    cache.record_document(path, {"v": 1}, 100)  # stale: ignored
    assert cache.get(path).data == {"v": 2}


def test_tombstones_cached():
    cache = LocalCache()
    path = Path.parse("notes/a")
    cache.record_document(path, {"v": 1}, 100)
    cache.record_document(path, None, 200)
    cached = cache.get(path)
    assert cached is not None and not cached.exists
    assert len(cache) == 0  # live count excludes tombstones


def test_run_query_filters_and_sorts():
    cache = LocalCache()
    cache.record_document(Path.parse("notes/a"), {"order": 3, "tag": "x"}, 1)
    cache.record_document(Path.parse("notes/b"), {"order": 1, "tag": "x"}, 1)
    cache.record_document(Path.parse("notes/c"), {"order": 2, "tag": "y"}, 1)
    cache.record_document(Path.parse("other/z"), {"order": 0, "tag": "x"}, 1)
    result = cache.run_query(
        normalized(filters=[("tag", "==", "x")], orders=[("order", "asc")])
    )
    assert [d.path.id for d in result] == ["b", "a"]


def test_run_query_respects_limit_offset():
    cache = LocalCache()
    for i in range(5):
        cache.record_document(Path.parse(f"notes/n{i}"), {"order": i}, 1)
    q = Query(parent=Path.parse("notes")).order_by("order").limit_to(2).offset_by(1)
    result = cache.run_query(q.normalize())
    assert [d.data["order"] for d in result] == [1, 2]


def test_query_sync_marks():
    cache = LocalCache()
    cache.mark_query_synced("notes|all")
    assert cache.is_query_synced("notes|all")
    assert not cache.is_query_synced("other")


def test_clear():
    cache = LocalCache()
    cache.record_document(Path.parse("notes/a"), {"v": 1}, 1)
    cache.mark_query_synced("k")
    cache.clear()
    assert len(cache) == 0
    assert not cache.is_query_synced("k")
