"""Client disconnect/reconnect: offline mutations replay exactly once
and listeners resume through resync without missed or duplicated
notifications (the ISSUE's satellite coverage for ``client.flap``)."""

import pytest

from repro.check.checker import assert_clean, check_history
from repro.check.history import recording
from repro.client.client import MobileClient
from repro.core.backend import set_op
from repro.core.firestore import FirestoreService
from repro.core.values import increment
from repro.faults.plan import FaultPlan, install


def make_stack(name):
    service = FirestoreService()
    database = service.create_database(name)
    plan = FaultPlan(seed=0)
    install(plan, database)
    return service, database, plan


def drain(service, database, pumps=8):
    """Advance past the Accept-timeout horizon so dropped Accepts
    surface as out-of-sync and the resync fail-safe runs."""
    for _ in range(pumps):
        service.clock.advance(1_000_000)
        database.pump_realtime()


def test_offline_mutations_replay_exactly_once():
    service, database, _plan = make_stack("flap-once")
    client = MobileClient(database)
    client.set("docs/a", {"n": increment(1)})  # online: flushed now
    assert client.pending_writes == 0

    client.disconnect()
    client.set("docs/a", {"n": increment(1)})
    client.set("docs/b", {"v": 1})
    assert client.pending_writes == 2
    # offline writes are invisible to the server ...
    assert database.lookup("docs/a").data == {"n": 1}

    client.connect()  # ... until reconnection replays them
    assert client.pending_writes == 0
    assert database.lookup("docs/a").data == {"n": 2}
    assert database.lookup("docs/b").data == {"v": 1}

    # a second flap with an empty queue replays nothing
    client.disconnect()
    client.connect()
    assert database.lookup("docs/a").data == {"n": 2}


def test_replay_with_unknown_outcome_applies_once():
    """A flush interrupted by a lost commit ack retries through the
    idempotency ledger: the non-idempotent increment lands exactly once."""
    service, database, plan = make_stack("flap-unknown")
    client = MobileClient(database)
    database.commit([set_op("docs/c", {"n": 0})])

    client.disconnect()
    client.set("docs/c", {"n": increment(1)})
    plan.arm("spanner.commit_unknown", applied=True)
    client.connect()
    assert client.pending_writes == 0
    assert client.flush_errors == []
    assert database.lookup("docs/c").data == {"n": 1}

    client.disconnect()
    client.set("docs/c", {"n": increment(1)})
    plan.arm("spanner.commit_unknown", applied=False)
    client.connect()
    assert database.lookup("docs/c").data == {"n": 2}


def test_interrupted_flush_resumes_without_duplicates():
    """Unavailability mid-flush leaves the remainder queued; the next
    reconnect finishes the replay without re-applying the first half."""
    service, database, plan = make_stack("flap-interrupt")
    client = MobileClient(database)
    client.disconnect()
    client.set("docs/a", {"n": increment(1)})
    client.set("docs/b", {"n": increment(1)})

    # every retry attempt for the first mutation finds the tablet down
    policy_attempts = 5
    for _ in range(policy_attempts):
        plan.arm("spanner.tablet_unavailable")
    client.connect()
    assert client.pending_writes == 2  # nothing applied, nothing lost
    assert database.run_query(database.query("docs")).documents == []

    client.disconnect()
    client.connect()
    assert client.pending_writes == 0
    assert database.lookup("docs/a").data == {"n": 1}
    assert database.lookup("docs/b").data == {"n": 1}


def test_listener_resumes_via_resync_without_missed_or_dup():
    """A dropped Accept forces the out-of-sync path; after recovery the
    listener view equals the server and the recorded history is clean
    (no missed or duplicated notifications)."""
    with recording() as recorders:
        service, database, plan = make_stack("flap-listen")
        client = MobileClient(database)
        snaps = []
        client.on_snapshot(client.query("docs"), snaps.append)

        database.commit([set_op("docs/a", {"v": 1})])
        drain(service, database, pumps=2)

        plan.arm("realtime.drop_accept")
        database.commit([set_op("docs/b", {"v": 2})])
        database.commit([set_op("docs/c", {"v": 3})])
        drain(service, database)  # resync fail-safe kicks in

        server = {
            str(d.path): d.data
            for d in database.run_query(database.query("docs")).documents
        }
        view = {str(d.path): d.data for d in snaps[-1].documents}
        assert view == server == {
            "docs/a": {"v": 1},
            "docs/b": {"v": 2},
            "docs/c": {"v": 3},
        }
        assert database.realtime.total_resets >= 1
        client.disconnect()
    for recorder in recorders:
        assert_clean(check_history(recorder.events), context="flap listen")


def test_listener_survives_a_full_flap_cycle():
    """Disconnect serves from cache; reconnect replays writes first and
    then re-registers the listen, so the initial snapshot already
    reflects this device's offline writes."""
    with recording() as recorders:
        service, database, _plan = make_stack("flap-cycle")
        client = MobileClient(database)
        snaps = []
        client.on_snapshot(client.query("docs"), snaps.append)
        client.set("docs/a", {"v": 1})
        drain(service, database, pumps=2)

        client.disconnect()
        client.set("docs/b", {"v": 2})  # latency compensation, offline
        assert snaps[-1].from_cache
        offline_view = {str(d.path): d.data for d in snaps[-1].documents}
        assert offline_view == {"docs/a": {"v": 1}, "docs/b": {"v": 2}}
        # another writer commits while this device is away
        database.commit([set_op("docs/remote", {"v": 3})])

        client.connect()
        drain(service, database, pumps=2)
        server = {
            str(d.path): d.data
            for d in database.run_query(database.query("docs")).documents
        }
        view = {str(d.path): d.data for d in snaps[-1].documents}
        assert view == server
        assert "docs/remote" in view
        client.disconnect()
    for recorder in recorders:
        assert_clean(check_history(recorder.events), context="flap cycle")
