import pytest

from repro.core.path import Path
from repro.core.query import Query
from repro.core.values import SERVER_TIMESTAMP, GeoPoint, Timestamp
from repro.client.local_cache import LocalCache
from repro.client.mutations import MutationKind, MutationQueue
from repro.client.persistence import (
    FilePersistence,
    InMemoryPersistence,
    deserialize_state,
    serialize_state,
)
from repro.client.view import QueryView


class _Doc:
    def __init__(self, path, data, update_time=1, create_time=1):
        self.path = Path.parse(path)
        self.data = data
        self.update_time = update_time
        self.create_time = create_time


class TestQueryView:
    def make_view(self, **query_kwargs):
        q = Query(parent=Path.parse("notes"))
        for field, direction in query_kwargs.get("orders", []):
            q = q.order_by(field, direction)
        if "limit" in query_kwargs:
            q = q.limit_to(query_kwargs["limit"])
        return QueryView(q.normalize())

    def test_server_snapshot_plus_overlay(self):
        view = self.make_view()
        view.apply_server_snapshot([_Doc("notes/a", {"v": 1})])
        queue = MutationQueue()
        queue.enqueue(MutationKind.SET, Path.parse("notes/b"), {"v": 2})
        snapshot = view.compute(queue, from_cache=False, local_now_us=0)
        assert snapshot.paths == [Path.parse("notes/a"), Path.parse("notes/b")]
        assert snapshot.has_pending_writes

    def test_pending_delete_hides_server_doc(self):
        view = self.make_view()
        view.apply_server_snapshot([_Doc("notes/a", {"v": 1})])
        queue = MutationQueue()
        queue.enqueue(MutationKind.DELETE, Path.parse("notes/a"))
        snapshot = view.compute(queue, from_cache=False, local_now_us=0)
        assert snapshot.documents == ()

    def test_mutation_can_move_doc_out_of_query(self):
        q = Query(parent=Path.parse("notes")).where("live", "==", True)
        view = QueryView(q.normalize())
        view.apply_server_snapshot([_Doc("notes/a", {"live": True})])
        queue = MutationQueue()
        view.compute(queue, from_cache=False, local_now_us=0)  # baseline
        queue.enqueue(MutationKind.UPDATE, Path.parse("notes/a"), {"live": False})
        snapshot = view.compute(queue, from_cache=False, local_now_us=0)
        assert snapshot.documents == ()
        assert snapshot.removed == (Path.parse("notes/a"),)

    def test_delta_tracking_across_computes(self):
        view = self.make_view()
        queue = MutationQueue()
        view.apply_server_snapshot([_Doc("notes/a", {"v": 1})])
        first = view.compute(queue, from_cache=False, local_now_us=0)
        assert first.added == (Path.parse("notes/a"),)
        view.apply_server_snapshot(
            [_Doc("notes/a", {"v": 2}), _Doc("notes/b", {"v": 1})]
        )
        second = view.compute(queue, from_cache=False, local_now_us=0)
        assert second.added == (Path.parse("notes/b"),)
        assert second.modified == (Path.parse("notes/a"),)

    def test_limit_applied_after_overlay(self):
        view = self.make_view(orders=[("n", "asc")], limit=2)
        view.apply_server_snapshot(
            [_Doc("notes/a", {"n": 5}), _Doc("notes/b", {"n": 7})]
        )
        queue = MutationQueue()
        queue.enqueue(MutationKind.SET, Path.parse("notes/c"), {"n": 1})
        snapshot = view.compute(queue, from_cache=False, local_now_us=0)
        assert [d.data["n"] for d in snapshot.documents] == [1, 5]

    def test_extra_docs_serve_as_overlay_base(self):
        view = self.make_view()
        queue = MutationQueue()
        queue.enqueue(MutationKind.UPDATE, Path.parse("notes/cached"), {"v": 2})
        snapshot = view.compute(
            queue,
            from_cache=True,
            local_now_us=0,
            extra_docs={Path.parse("notes/cached"): {"v": 1, "keep": True}},
        )
        assert snapshot.documents[0].data == {"v": 2, "keep": True}

    def test_data_by_id(self):
        view = self.make_view()
        view.apply_server_snapshot([_Doc("notes/a", {"v": 1})])
        snapshot = view.compute(MutationQueue(), from_cache=False, local_now_us=0)
        assert snapshot.data_by_id() == {"a": {"v": 1}}


class TestPersistenceFormat:
    def make_state(self):
        cache = LocalCache()
        cache.record_document(
            Path.parse("notes/rich"),
            {
                "ts": Timestamp(123),
                "geo": GeoPoint(1.5, -2.5),
                "nested": {"arr": [1, "two"]},
            },
            version_ts=42,
        )
        cache.record_document(Path.parse("notes/gone"), None, 50)
        queue = MutationQueue()
        queue.enqueue(
            MutationKind.SET, Path.parse("notes/new"), {"at": SERVER_TIMESTAMP}
        )
        queue.enqueue(
            MutationKind.UPDATE, Path.parse("notes/rich"), {"v": 2}, ("nested.arr",)
        )
        queue.enqueue(MutationKind.DELETE, Path.parse("notes/gone"))
        return cache, queue

    def test_roundtrip(self):
        cache, queue = self.make_state()
        blob = serialize_state(cache, queue)
        cache2, queue2 = deserialize_state(blob)
        rich = cache2.get(Path.parse("notes/rich"))
        assert rich.data["ts"] == Timestamp(123)
        assert rich.version_ts == 42
        gone = cache2.get(Path.parse("notes/gone"))
        assert gone is not None and not gone.exists
        mutations = queue2.mutations()
        assert [m.kind for m in mutations] == [
            MutationKind.SET,
            MutationKind.UPDATE,
            MutationKind.DELETE,
        ]
        assert mutations[0].data["at"] is SERVER_TIMESTAMP
        assert mutations[1].delete_fields == ("nested.arr",)

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            deserialize_state(b"garbage")

    def test_in_memory_persistence(self):
        disk = InMemoryPersistence()
        assert disk.load() is None
        disk.save(b"blob")
        assert disk.load() == b"blob"

    def test_file_persistence(self, tmp_path):
        disk = FilePersistence(tmp_path / "state.bin")
        assert disk.load() is None
        cache, queue = self.make_state()
        disk.save(serialize_state(cache, queue))
        restored_cache, restored_queue = deserialize_state(disk.load())
        assert len(restored_queue) == 3
