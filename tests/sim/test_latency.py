import pytest

from repro.sim.latency import LatencyModel, MultiRegionalLatency, RegionalLatency
from repro.sim.rand import SimRandom


@pytest.fixture
def rand():
    return SimRandom(1)


def _median(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def test_multiregional_commits_slower_than_regional(rand):
    regional = RegionalLatency()
    multi = MultiRegionalLatency()
    r = _median([regional.commit_us(rand) for _ in range(500)])
    m = _median([multi.commit_us(rand) for _ in range(500)])
    assert m > 3 * r  # the paper: quorum across metros is much slower


def test_more_participants_cost_more(rand):
    model = RegionalLatency()
    single = _median([model.commit_us(rand, participants=1) for _ in range(500)])
    many = _median([model.commit_us(rand, participants=8) for _ in range(500)])
    assert many > single


def test_participants_must_be_positive(rand):
    with pytest.raises(ValueError):
        RegionalLatency().commit_us(rand, participants=0)


def test_reads_cheaper_than_commits(rand):
    model = MultiRegionalLatency()
    read = _median([model.read_us(rand) for _ in range(500)])
    commit = _median([model.commit_us(rand) for _ in range(500)])
    assert read < commit


def test_samples_are_positive_and_jittered(rand):
    model = RegionalLatency()
    samples = {model.rpc_us(rand) for _ in range(50)}
    assert all(s >= 1 for s in samples)
    assert len(samples) > 1  # jitter produces variety


def test_zero_base_has_zero_latency(rand):
    model = LatencyModel(rpc_hop_us=0, quorum_us=0, per_participant_us=0)
    assert model.rpc_us(rand) == 0
