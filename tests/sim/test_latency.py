import pytest

from repro.sim.latency import LatencyModel, MultiRegionalLatency, RegionalLatency
from repro.sim.rand import SimRandom


@pytest.fixture
def rand():
    return SimRandom(1)


def _median(samples):
    ordered = sorted(samples)
    return ordered[len(ordered) // 2]


def test_multiregional_commits_slower_than_regional(rand):
    regional = RegionalLatency()
    multi = MultiRegionalLatency()
    r = _median([regional.commit_us(rand) for _ in range(500)])
    m = _median([multi.commit_us(rand) for _ in range(500)])
    assert m > 3 * r  # the paper: quorum across metros is much slower


def test_more_participants_cost_more(rand):
    model = RegionalLatency()
    single = _median([model.commit_us(rand, participants=1) for _ in range(500)])
    many = _median([model.commit_us(rand, participants=8) for _ in range(500)])
    assert many > single


def test_participants_must_be_positive(rand):
    with pytest.raises(ValueError):
        RegionalLatency().commit_us(rand, participants=0)


def test_reads_cheaper_than_commits(rand):
    model = MultiRegionalLatency()
    read = _median([model.read_us(rand) for _ in range(500)])
    commit = _median([model.commit_us(rand) for _ in range(500)])
    assert read < commit


def test_samples_are_positive_and_jittered(rand):
    model = RegionalLatency()
    samples = {model.rpc_us(rand) for _ in range(50)}
    assert all(s >= 1 for s in samples)
    assert len(samples) > 1  # jitter produces variety


def test_zero_base_has_zero_latency(rand):
    model = LatencyModel(rpc_hop_us=0, quorum_us=0, per_participant_us=0)
    assert model.rpc_us(rand) == 0


# -- replica topologies ------------------------------------------------------


def test_regional_topology_quorum_matches_legacy_scalar():
    from repro.sim.latency import regional_topology

    topo = regional_topology()
    assert topo.quorum_size == 2
    # quorum RTT = fastest follower round trip = 2 x intra-metro one-way
    assert topo.quorum_rtt_us() == 2_000
    assert RegionalLatency().quorum_us == 2_000


def test_nam5_topology_quorum_matches_legacy_scalar():
    from repro.sim.latency import NAM5_TOPOLOGY

    assert NAM5_TOPOLOGY.quorum_size == 3
    # 5 replicas: the quorum closes on the 2nd-fastest follower RTT
    assert NAM5_TOPOLOGY.quorum_rtt_us() == 12_000
    assert MultiRegionalLatency().quorum_us == 12_000


def test_quorum_rtt_depends_on_the_leader():
    from repro.sim.latency import NAM5_TOPOLOGY

    central = NAM5_TOPOLOGY.quorum_rtt_us("us-central")
    west = NAM5_TOPOLOGY.quorum_rtt_us("us-west")
    assert west > central  # us-west is far from the other four


def test_topology_rejects_bad_placements():
    from repro.sim.latency import ReplicaTopology

    with pytest.raises(ValueError):
        ReplicaTopology(leader="x", regions=("a", "b"))
    with pytest.raises(ValueError):
        ReplicaTopology(leader="a", regions=("a", "a", "b"))


def test_pair_lookup_fallback_chain():
    from repro.sim.latency import pair_one_way_us

    assert pair_one_way_us("r", "r") == 500  # self pair
    assert pair_one_way_us("us-central", "us-east") == 15_000  # direct
    assert pair_one_way_us("us-east", "us-central") == 15_000  # reverse
    assert pair_one_way_us("m-a", "m-b") == 1_000  # same metro, zones
    assert pair_one_way_us("foo", "bar") == 100_000  # unknown: assume WAN


def test_explicit_table_overrides_the_shared_matrix():
    from repro.sim.latency import pair_one_way_us

    table = {("x", "y"): 42}
    assert pair_one_way_us("x", "y", table) == 42
    assert pair_one_way_us("y", "x", table) == 42


def test_local_read_skips_the_quorum(rand):
    model = MultiRegionalLatency()
    local = _median([model.local_read_us(rand) for _ in range(200)])
    replicated = _median([model.read_us(rand) for _ in range(200)])
    assert local < replicated
