"""Cross-cutting sim-layer checks used by the higher layers' guarantees."""

from repro.sim.clock import SimClock
from repro.sim.events import EventKernel
from repro.sim.latency import MultiRegionalLatency, RegionalLatency
from repro.sim.rand import SimRandom
from repro.sim.truetime import TrueTime


def test_commit_timestamps_totally_ordered_across_interleaving():
    """The Real-time Cache watermarks rely on a global total order of
    commit timestamps, whatever order commits interleave in."""
    clock = SimClock()
    tt = TrueTime(clock)
    stamps = []
    rand = SimRandom(3)
    for _ in range(200):
        if rand.bernoulli(0.5):
            clock.advance(rand.randint(0, 5000))
        stamps.append(tt.issue_commit_timestamp())
    assert stamps == sorted(stamps)
    assert len(set(stamps)) == len(stamps)


def test_commit_wait_preserves_external_consistency():
    """After commit-wait elapses, a later transaction's timestamp is
    strictly greater — the causality TrueTime buys."""
    clock = SimClock(1_000_000)
    tt = TrueTime(clock)
    first = tt.issue_commit_timestamp()
    clock.advance(tt.commit_wait_us(first))
    assert tt.after(first)
    second = tt.issue_commit_timestamp()
    assert second > first


def test_latency_model_deterministic_given_stream():
    a = MultiRegionalLatency()
    s1, s2 = SimRandom(9).fork("lat"), SimRandom(9).fork("lat")
    assert [a.commit_us(s1) for _ in range(20)] == [
        a.commit_us(s2) for _ in range(20)
    ]


def test_kernel_time_monotonic_under_mixed_scheduling():
    kernel = EventKernel()
    seen = []

    def record():
        seen.append(kernel.now_us)
        if len(seen) < 50:
            kernel.after(len(seen) % 7, record)

    kernel.at(0, record)
    kernel.run_until(1_000)
    assert seen == sorted(seen)


def test_regional_read_fraction_of_multiregional():
    rand = SimRandom(4)
    regional = RegionalLatency()
    multi = MultiRegionalLatency()
    r = sorted(regional.read_us(rand) for _ in range(300))[150]
    m = sorted(multi.read_us(rand) for _ in range(300))[150]
    assert m > 2 * r
