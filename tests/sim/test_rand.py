import math

import pytest

from repro.sim.rand import SimRandom


def test_same_seed_same_sequence():
    a = SimRandom(7)
    b = SimRandom(7)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = SimRandom(1)
    b = SimRandom(2)
    assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]


def test_fork_is_deterministic_and_independent():
    parent1 = SimRandom(7)
    parent2 = SimRandom(7)
    fork1 = parent1.fork("workload")
    fork2 = parent2.fork("workload")
    assert [fork1.random() for _ in range(5)] == [fork2.random() for _ in range(5)]
    # forking does not perturb the parent stream
    assert parent1.random() == parent2.random()


def test_fork_labels_give_distinct_streams():
    parent = SimRandom(7)
    a = parent.fork("a")
    b = parent.fork("b")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_randint_inclusive_bounds():
    rng = SimRandom(0)
    draws = {rng.randint(1, 3) for _ in range(200)}
    assert draws == {1, 2, 3}


def test_exponential_mean_roughly_right():
    rng = SimRandom(3)
    samples = [rng.exponential(10.0) for _ in range(5000)]
    mean = sum(samples) / len(samples)
    assert 9.0 < mean < 11.0


def test_exponential_rejects_nonpositive_mean():
    with pytest.raises(ValueError):
        SimRandom(0).exponential(0)


def test_pareto_minimum_scale():
    rng = SimRandom(4)
    samples = [rng.pareto(1.5, scale=2.0) for _ in range(1000)]
    assert min(samples) >= 2.0


def test_pareto_rejects_bad_alpha():
    with pytest.raises(ValueError):
        SimRandom(0).pareto(0)


def test_zipf_range_and_skew():
    rng = SimRandom(5)
    n = 100
    draws = [rng.zipf(n, theta=0.99) for _ in range(20_000)]
    assert min(draws) >= 0 and max(draws) < n
    # rank 0 should be drawn far more often than rank n-1
    count0 = draws.count(0)
    count_last = draws.count(n - 1)
    assert count0 > 10 * max(1, count_last)


def test_zipf_theta_zero_is_roughly_uniform():
    rng = SimRandom(6)
    n = 10
    draws = [rng.zipf(n, theta=0.0) for _ in range(20_000)]
    counts = [draws.count(i) for i in range(n)]
    assert max(counts) < 2 * min(counts)


def test_zipf_rejects_empty_domain():
    with pytest.raises(ValueError):
        SimRandom(0).zipf(0)


def test_bernoulli_probability():
    rng = SimRandom(8)
    hits = sum(rng.bernoulli(0.25) for _ in range(10_000))
    assert 2200 < hits < 2800


def test_lognormal_positive():
    rng = SimRandom(9)
    assert all(rng.lognormal(0, 0.5) > 0 for _ in range(100))


def test_bytes_length():
    assert len(SimRandom(0).bytes(16)) == 16
