import pytest

from repro.sim.events import EventKernel


def test_events_fire_in_time_order():
    kernel = EventKernel()
    fired = []
    kernel.at(30, lambda: fired.append("c"))
    kernel.at(10, lambda: fired.append("a"))
    kernel.at(20, lambda: fired.append("b"))
    kernel.run_until(100)
    assert fired == ["a", "b", "c"]


def test_ties_break_by_insertion_order():
    kernel = EventKernel()
    fired = []
    kernel.at(10, lambda: fired.append("first"))
    kernel.at(10, lambda: fired.append("second"))
    kernel.run_until(10)
    assert fired == ["first", "second"]


def test_clock_advances_to_each_event_time():
    kernel = EventKernel()
    seen = []
    kernel.at(5, lambda: seen.append(kernel.now_us))
    kernel.at(9, lambda: seen.append(kernel.now_us))
    kernel.run_until(20)
    assert seen == [5, 9]
    assert kernel.now_us == 20  # ends at the run boundary


def test_run_until_leaves_future_events():
    kernel = EventKernel()
    fired = []
    kernel.at(10, lambda: fired.append(1))
    kernel.at(50, lambda: fired.append(2))
    kernel.run_until(20)
    assert fired == [1]
    assert kernel.pending == 1


def test_cannot_schedule_in_the_past():
    kernel = EventKernel()
    kernel.run_until(100)
    with pytest.raises(ValueError):
        kernel.at(50, lambda: None)


def test_after_schedules_relative():
    kernel = EventKernel()
    kernel.run_until(100)
    fired = []
    kernel.after(25, lambda: fired.append(kernel.now_us))
    kernel.run_until(200)
    assert fired == [125]


def test_after_rejects_negative_delay():
    with pytest.raises(ValueError):
        EventKernel().after(-1, lambda: None)


def test_cancelled_events_do_not_fire():
    kernel = EventKernel()
    fired = []
    event = kernel.at(10, lambda: fired.append(1))
    event.cancel()
    kernel.run_until(100)
    assert fired == []
    assert kernel.pending == 0


def test_events_can_schedule_more_events():
    kernel = EventKernel()
    fired = []

    def chain():
        fired.append(kernel.now_us)
        if len(fired) < 3:
            kernel.after(10, chain)

    kernel.at(0, chain)
    kernel.run_until(100)
    assert fired == [0, 10, 20]


def test_drain_runs_everything():
    kernel = EventKernel()
    fired = []
    for t in (5, 15, 25):
        kernel.at(t, lambda t=t: fired.append(t))
    executed = kernel.drain()
    assert executed == 3
    assert fired == [5, 15, 25]


def test_drain_guards_against_runaway():
    kernel = EventKernel()

    def forever():
        kernel.after(1, forever)

    kernel.at(0, forever)
    with pytest.raises(RuntimeError):
        kernel.drain(max_events=100)


def test_step_executes_one_event():
    kernel = EventKernel()
    fired = []
    kernel.at(1, lambda: fired.append(1))
    kernel.at(2, lambda: fired.append(2))
    assert kernel.step() is True
    assert fired == [1]
    assert kernel.step() is True
    assert kernel.step() is False


def test_executed_counter():
    kernel = EventKernel()
    kernel.at(1, lambda: None)
    kernel.at(2, lambda: None)
    kernel.run_until(10)
    assert kernel.executed == 2
