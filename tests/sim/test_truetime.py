import pytest

from repro.sim.clock import SimClock
from repro.sim.truetime import TrueTime, TTInterval


@pytest.fixture
def tt():
    clock = SimClock(1_000_000)
    return TrueTime(clock, epsilon_us=1000)


def test_interval_brackets_now(tt):
    interval = tt.now()
    assert interval.earliest == 999_000
    assert interval.latest == 1_001_000
    assert interval.width == 2000


def test_interval_clamps_at_epoch():
    tt = TrueTime(SimClock(10), epsilon_us=100)
    assert tt.now().earliest == 0


def test_inverted_interval_rejected():
    with pytest.raises(ValueError):
        TTInterval(10, 5)


def test_negative_epsilon_rejected():
    with pytest.raises(ValueError):
        TrueTime(SimClock(), epsilon_us=-1)


def test_after_and_before(tt):
    assert tt.after(990_000) is True            # definitely past
    assert tt.after(1_000_500) is False         # inside uncertainty
    assert tt.before(1_002_000) is True         # definitely future
    assert tt.before(1_000_500) is False


def test_commit_timestamps_at_or_after_latest(tt):
    ts = tt.issue_commit_timestamp()
    assert ts >= tt.now().latest


def test_commit_timestamps_strictly_monotonic(tt):
    first = tt.issue_commit_timestamp()
    second = tt.issue_commit_timestamp()
    assert second > first


def test_commit_timestamp_respects_min(tt):
    ts = tt.issue_commit_timestamp(min_allowed_us=5_000_000)
    assert ts == 5_000_000


def test_commit_timestamp_rejects_unsatisfiable_max(tt):
    # now().latest is 1_001_000 so a max of 1_000_000 cannot be met
    with pytest.raises(ValueError):
        tt.issue_commit_timestamp(max_allowed_us=1_000_000)


def test_commit_timestamp_within_valid_window(tt):
    ts = tt.issue_commit_timestamp(min_allowed_us=0, max_allowed_us=2_000_000)
    assert ts <= 2_000_000


def test_commit_wait_positive_until_uncertainty_passes(tt):
    ts = tt.issue_commit_timestamp()
    wait = tt.commit_wait_us(ts)
    assert wait > 0
    tt.clock.advance(wait)
    assert tt.after(ts)


def test_commit_wait_zeroish_for_old_timestamps(tt):
    assert tt.commit_wait_us(1) == 1  # already safely past


def test_last_issued_tracks(tt):
    assert tt.last_issued == 0
    ts = tt.issue_commit_timestamp()
    assert tt.last_issued == ts


def test_monotonicity_across_clock_stall():
    """Even if the clock does not move, issued timestamps advance."""
    tt = TrueTime(SimClock(100), epsilon_us=0)
    stamps = [tt.issue_commit_timestamp() for _ in range(5)]
    assert stamps == sorted(set(stamps))
