import pytest

from repro.sim.clock import MICROS_PER_SECOND, SimClock


def test_starts_at_zero_by_default():
    assert SimClock().now_us == 0


def test_starts_at_given_time():
    assert SimClock(42).now_us == 42


def test_rejects_negative_start():
    with pytest.raises(ValueError):
        SimClock(-1)


def test_advance_moves_forward():
    clock = SimClock()
    assert clock.advance(10) == 10
    assert clock.now_us == 10


def test_advance_rejects_negative_delta():
    with pytest.raises(ValueError):
        SimClock().advance(-5)


def test_advance_seconds_converts_to_micros():
    clock = SimClock()
    clock.advance_seconds(1.5)
    assert clock.now_us == 1_500_000


def test_now_seconds():
    clock = SimClock(2 * MICROS_PER_SECOND)
    assert clock.now_seconds == 2.0


def test_advance_to_is_monotonic():
    clock = SimClock(100)
    clock.advance_to(50)  # ignored, not an error
    assert clock.now_us == 100
    clock.advance_to(200)
    assert clock.now_us == 200


def test_repr_mentions_time():
    assert "123" in repr(SimClock(123))
