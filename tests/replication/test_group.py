"""ReplicaGroup unit tests: quorum commit, shipping, leases, failover."""

import pytest

from repro.errors import InternalError, Unavailable
from repro.faults.plan import FaultPlan
from repro.replication import ReplicaGroup
from repro.sim.clock import SimClock
from repro.sim.latency import NAM5_TOPOLOGY, regional_topology


def make_group(lease_us=50_000, topology=None, seed=1):
    clock = SimClock()
    group = ReplicaGroup(
        "g",
        clock,
        topology if topology is not None else regional_topology(),
        seed=seed,
        lease_us=lease_us,
    )
    return clock, group


# -- quorum commit -----------------------------------------------------------


def test_commit_appends_and_applies_on_leader():
    clock, group = make_group()
    ack = group.commit(100, 2)
    assert len(group.log) == 1
    assert group.leader.applied_index == 1
    assert group.leader.applied_ts == 100
    assert ack == group.topology.quorum_rtt_us()


def test_regional_quorum_ack_matches_topology():
    _, group = make_group()
    # 3 zones, quorum 2: one follower ack at the intra-metro round trip
    assert group.quorum_size == 2
    assert group.commit(10, 1) == 2_000


def test_nam5_quorum_ack_matches_topology():
    _, group = make_group(topology=NAM5_TOPOLOGY)
    # 5 regions, quorum 3: the 2nd-fastest follower round trip
    assert group.quorum_size == 3
    assert group.commit(10, 1) == 12_000


def test_commit_timestamps_must_increase():
    _, group = make_group()
    group.commit(100, 1)
    with pytest.raises(ValueError):
        group.commit(100, 1)


def test_commit_through_unreachable_leader_is_internal_error():
    clock, group = make_group()
    group.leader.down_until_us = clock.now_us + 1_000_000
    with pytest.raises(InternalError):
        group.commit(50, 1)


def test_commit_never_advances_the_clock():
    clock, group = make_group()
    before = clock.now_us
    group.precommit()
    group.commit(100, 1)
    assert clock.now_us == before


# -- log shipping and watermarks ---------------------------------------------


def test_follower_applies_when_the_shipped_entry_arrives():
    clock, group = make_group()
    group.commit(100, 1)
    follower = next(
        group.replicas[r] for r in sorted(group.replicas)
        if r != group.leader_region
    )
    assert follower.applied_index == 0
    # intra-metro one-way is 1000us; the entry lands at t=1000
    clock.advance(999)
    group.catch_up()
    assert follower.applied_index == 0
    clock.advance(1)
    group.catch_up()
    assert follower.applied_index == 1
    assert follower.applied_ts == 100


def test_safe_time_tracks_the_apply_watermark():
    clock, group = make_group()
    regions = sorted(group.replicas)
    follower = next(r for r in regions if r != group.leader_region)
    # fully caught up: safe time is now
    assert group.safe_time_us(follower) == clock.now_us
    group.commit(500, 1)
    # pending entry at ts=500: the follower can only serve below it
    assert group.safe_time_us(follower) == 499
    assert group.safe_time_us(group.leader_region) == clock.now_us
    clock.advance(2_000)
    group.catch_up()
    assert group.safe_time_us(follower) == clock.now_us


def test_replication_lag_is_clamped_and_recovers():
    clock, group = make_group()
    clock.advance(10_000)
    group.commit(4_000, 1)
    # followers are pending the ts=4000 entry: safe=3999, now=10000
    assert group.replication_lag_us() == 10_000 - 3_999
    clock.advance(2_000)
    group.catch_up()
    assert group.replication_lag_us() == 0


# -- fault plane -------------------------------------------------------------


def leader_outage(group, duration_us=500_000):
    plan = FaultPlan(seed=7)
    group.fault_plan = plan
    plan.arm("region.outage", region=group.leader_region,
             duration_us=duration_us)
    return plan


def test_leader_outage_blocks_commits_while_lease_is_held():
    clock, group = make_group(lease_us=50_000)
    leader_outage(group)
    with pytest.raises(Unavailable):
        group.precommit()
    assert group.term == 1  # no election while the lease is live


def test_lease_expiry_triggers_failover():
    clock, group = make_group(lease_us=50_000)
    group.commit(100, 1)
    old_leader = group.leader_region
    leader_outage(group)
    with pytest.raises(Unavailable):
        group.precommit()
    clock.advance(60_000)
    group.precommit()  # lease expired: elects and admits
    assert group.term == 2
    assert group.failovers == 1
    assert group.leader_region != old_leader
    assert group.min_next_commit_ts == 101
    assert group.unavailability_us == 60_000


def test_new_leader_recovers_the_full_log():
    clock, group = make_group(lease_us=50_000)
    group.commit(100, 1)
    group.commit(200, 1)
    leader_outage(group)
    with pytest.raises(Unavailable):
        group.precommit()
    clock.advance(60_000)
    group.precommit()
    leader = group.leader
    assert leader.applied_index == len(group.log) == 2
    assert leader.applied_ts == 200
    # post-failover commits must clear the published floor
    group.commit(201, 1)


def test_election_prefers_the_most_caught_up_replica():
    clock, group = make_group()
    a, b, c = sorted(group.replicas)
    group.commit(100, 1)
    clock.advance(2_000)
    group.catch_up()
    # c falls behind: it loses its applied progress? No — instead commit
    # another entry and let only b receive it before the leader dies.
    group.replicas[c].slow_penalty_us = 1_000_000
    group.replicas[c].slow_until_us = clock.now_us + 10_000_000
    group.commit(300, 1)
    clock.advance(2_000)
    group.catch_up()
    assert group.replicas[b].applied_ts == 300
    assert group.replicas[c].applied_ts == 100
    group.leader.down_until_us = clock.now_us + 1_000_000
    winner = group.elect()
    assert winner == b
    assert group.term == 2


def test_returning_leader_keeps_its_seat_before_lease_expiry():
    clock, group = make_group(lease_us=500_000)
    leader_outage(group, duration_us=10_000)
    with pytest.raises(Unavailable):
        group.precommit()
    clock.advance(20_000)  # outage over, lease still live
    group.precommit()
    assert group.term == 1
    assert group.failovers == 0


def test_no_quorum_is_unavailable():
    clock, group = make_group()
    regions = sorted(group.replicas)
    for region in regions:
        if region != group.leader_region:
            group.replicas[region].partitioned_until_us = 1_000_000
    with pytest.raises(Unavailable):
        group.precommit()


def test_outage_drops_the_inflight_stream_and_reships():
    clock, group = make_group()
    regions = sorted(group.replicas)
    follower_region = next(
        r for r in regions if r != group.leader_region
    )
    follower = group.replicas[follower_region]
    group.commit(100, 1)
    assert follower.inflight  # shipped but not yet arrived
    plan = FaultPlan(seed=7)
    group.fault_plan = plan
    plan.arm("region.outage", region=follower_region, duration_us=5_000)
    group.precommit()
    assert not follower.inflight
    assert follower.next_index == follower.applied_index == 0
    clock.advance(5_000)
    group.precommit()  # recovery: the leader re-ships from the watermark
    clock.advance(2_000)
    group.catch_up()
    assert follower.applied_ts == 100


def test_slow_replica_inflates_the_quorum_ack():
    clock, group = make_group()
    clean = group.topology.quorum_rtt_us()
    for region in sorted(group.replicas):
        if region != group.leader_region:
            replica = group.replicas[region]
            replica.slow_penalty_us = 30_000
            replica.slow_until_us = clock.now_us + 1_000_000
    assert group.commit(10, 1) == clean + 60_000


def test_heal_clears_every_fault_effect():
    clock, group = make_group()
    group.commit(100, 1)
    for replica in group.replicas.values():
        replica.down_until_us = 9_000_000
    clock.advance(5_000)
    group.heal()
    assert all(r.reachable(clock.now_us) for r in group.replicas.values())
    assert all(
        r.applied_ts == 100 for r in group.replicas.values()
    )
    group.precommit()  # lease was reset: admission works again


# -- determinism -------------------------------------------------------------


def test_same_seed_same_history():
    def run():
        clock, group = make_group(lease_us=50_000, seed=3)
        plan = FaultPlan(seed=3, rates={"region.outage": 0.5})
        group.fault_plan = plan
        states = []
        ts = 0
        for i in range(30):
            clock.advance(7_000)
            try:
                group.precommit()
            except Unavailable:
                clock.advance(60_000)
                continue
            ts = max(ts + 1, clock.now_us - 5_000)
            group.commit(ts, 1)
            states.append(
                (group.term, group.leader_region, len(group.log),
                 group.replication_lag_us())
            )
        return states, plan.log

    assert run() == run()
