"""Bounded-staleness routing: the staleness bound is never violated.

The contract under test (ISSUE satellite): a lagging follower must never
serve data older than the requested bound — it either qualifies (its
safe time covers ``now - bound``) or the read falls back toward the
leader, which always qualifies.
"""

import pytest

from repro.core.backend import set_op
from repro.core.firestore import FirestoreService
from repro.errors import InternalError, Unavailable
from repro.faults.plan import FaultPlan
from repro.replication import ReplicaGroup
from repro.sim.clock import SimClock
from repro.sim.latency import NAM5_TOPOLOGY, regional_topology


def make_group(topology=None, seed=1):
    clock = SimClock()
    group = ReplicaGroup(
        "g",
        clock,
        topology if topology is not None else regional_topology(),
        seed=seed,
    )
    return clock, group


def test_caught_up_follower_serves_nearby_client():
    clock, group = make_group()
    a, b, c = sorted(group.replicas)
    group.commit(100, 1)
    clock.advance(5_000)
    region, read_ts = group.route_read(b, staleness_bound_us=1_000)
    assert region == b  # self-hop beats the intra-metro hop to the leader
    assert read_ts == clock.now_us - 1_000


def test_lagging_follower_never_serves_older_than_bound():
    clock, group = make_group()
    clock.advance(10_000)
    # entry stamped just behind now; followers have not applied it yet
    group.commit(clock.now_us - 5, 1)
    for client in sorted(group.replicas):
        region, read_ts = group.route_read(client, staleness_bound_us=0)
        # a zero bound demands read_ts == now; only the leader's safe
        # time covers it while the entry is in flight
        assert region == group.leader_region
        assert group.safe_time_us(region) >= read_ts


def test_leader_fallback_when_no_follower_qualifies():
    clock, group = make_group(topology=NAM5_TOPOLOGY)
    clock.advance(50_000)
    group.commit(clock.now_us - 10, 1)
    # nothing has arrived anywhere (min one-way is 3000us)
    region, read_ts = group.route_read("us-east", staleness_bound_us=5)
    assert region == group.leader_region == "us-central"


def test_loose_bound_lets_a_lagging_follower_serve():
    clock, group = make_group(topology=NAM5_TOPOLOGY)
    clock.advance(50_000)
    group.commit(clock.now_us - 10, 1)
    # bound far wider than the pending entry's age: the nearest
    # follower qualifies even though it is behind the leader
    region, _ = group.route_read("us-east", staleness_bound_us=200_000)
    assert region == "us-east"


def test_unreachable_followers_are_skipped():
    clock, group = make_group()
    a, b, c = sorted(group.replicas)
    group.commit(100, 1)
    clock.advance(5_000)
    group.replicas[b].partitioned_until_us = clock.now_us + 1_000_000
    region, _ = group.route_read(b, staleness_bound_us=10_000)
    assert region != b


def test_negative_bound_is_rejected():
    _, group = make_group()
    with pytest.raises(InternalError):
        group.route_read(group.leader_region, -1)


def test_staleness_invariant_under_random_lag(seed=11):
    """Property sweep: whatever the lag pattern, the served replica's
    safe time always covers the read timestamp (deterministic, seeded)."""
    clock, group = make_group(topology=NAM5_TOPOLOGY, seed=seed)
    plan = FaultPlan(seed=seed, rates={"replica.slow": 0.3})
    group.fault_plan = plan
    ts = 0
    rand = group.rand.fork("test")
    for i in range(60):
        clock.advance(rand.randint(1_000, 40_000))
        try:
            group.precommit()
        except Unavailable:
            continue
        ts = max(ts + 1, clock.now_us - rand.randint(0, 8))
        group.commit(ts, 1)
        client = rand.choice(sorted(group.replicas))
        bound = rand.randint(0, 300_000)
        region, read_ts = group.route_read(client, bound)
        now = clock.now_us
        assert read_ts == max(0, now - bound)
        assert group.safe_time_us(region, now) >= read_ts


def test_bounded_read_through_the_service_stack():
    service = FirestoreService(multi_region=True)
    database = service.create_database("geo")
    database.commit([set_op("cities/par", {"name": "Paris"})])
    spanner = database.layout.spanner
    group = spanner.replication
    assert group is not None
    service.clock.advance(30_000)
    doc = database.lookup("cities/par")
    assert doc is not None
    # a bound wider than the replication lag routes to the us-east
    # follower, and the entity row is visible at the read timestamp
    entities = spanner.table("Entities")
    composite = min(
        key
        for tablet in spanner.tablets
        for key in tablet.rows
        if key.startswith(entities.prefix())
    )
    row_key = composite[len(entities.prefix()):]
    region, read_ts, value = spanner.bounded_staleness_read(
        "Entities", row_key, staleness_bound_us=10_000,
        client_region="us-east",
    )
    assert region == "us-east"
    assert read_ts == service.clock.now_us - 10_000
    assert value is not None


def test_routing_is_deterministic():
    def run():
        clock, group = make_group(topology=NAM5_TOPOLOGY, seed=5)
        out = []
        ts = 0
        rand = group.rand.fork("drive")
        for i in range(40):
            clock.advance(rand.randint(500, 20_000))
            ts = max(ts + 1, clock.now_us - rand.randint(0, 1_000))
            group.commit(ts, 1)
            out.append(group.route_read("us-west", rand.randint(0, 50_000)))
        return out

    assert run() == run()
