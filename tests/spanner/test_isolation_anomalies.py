"""Serializability anomaly tests: the lock-based protocol must exclude
the classic anomalies (lost update, write skew, dirty/non-repeatable
reads) by aborting one of the contenders."""

import pytest

from repro.errors import Aborted
from repro.sim.clock import SimClock
from repro.spanner.database import SpannerDatabase


@pytest.fixture
def db():
    database = SpannerDatabase(clock=SimClock(1_000_000))
    database.create_table("T")
    return database


def seed(db, key, value):
    txn = db.begin()
    txn.put("T", key, value)
    txn.commit()


def test_lost_update_prevented(db):
    """Two read-modify-write transactions on one row cannot both commit
    from the same snapshot."""
    seed(db, b"acct", 100)
    t1 = db.begin()
    t2 = db.begin()
    v1 = t1.read("T", b"acct")
    # t2's read conflicts only at write time (shared locks coexist)
    v2 = t2.read("T", b"acct")
    t1.put("T", b"acct", v1 + 10)
    t2.put("T", b"acct", v2 + 10)
    # first committer needs the exclusive lock; t2 still holds shared
    with pytest.raises(Aborted):
        t1.commit()
    t2.rollback()
    assert db.snapshot_read("T", b"acct", 10**12) == 100  # neither applied


def test_write_skew_prevented(db):
    """The textbook write-skew pair (each reads the other's row, writes
    its own) cannot both commit under shared read locks."""
    seed(db, b"x", 1)
    seed(db, b"y", 1)
    t1 = db.begin()
    t2 = db.begin()
    assert t1.read("T", b"y") == 1
    assert t2.read("T", b"x") == 1
    t1.put("T", b"x", 0)
    t2.put("T", b"y", 0)
    committed = 0
    for txn in (t1, t2):
        try:
            txn.commit()
            committed += 1
        except Aborted:
            pass
    assert committed <= 1  # at least one contender aborted
    # the invariant x + y >= 1 survives
    ts = 10**12
    assert db.snapshot_read("T", b"x", ts) + db.snapshot_read("T", b"y", ts) >= 1


def test_no_dirty_reads(db):
    """Buffered writes of an uncommitted transaction are invisible.

    Write locks are taken at commit (buffered-write design), so a
    concurrent reader simply sees the last committed value — never the
    buffer.
    """
    seed(db, b"k", "committed")
    writer = db.begin()
    writer.put("T", b"k", "uncommitted")
    assert db.snapshot_read("T", b"k", db.current_timestamp()) == "committed"
    reader = db.begin()
    assert reader.read("T", b"k") == "committed"
    # and now the writer cannot commit over the reader's shared lock
    with pytest.raises(Aborted):
        writer.commit()
    reader.rollback()


def test_no_non_repeatable_reads(db):
    """A row read under shared lock cannot change before commit."""
    seed(db, b"k", 1)
    reader = db.begin()
    assert reader.read("T", b"k") == 1
    writer = db.begin()
    writer.put("T", b"k", 2)
    with pytest.raises(Aborted):
        writer.commit()  # blocked by the reader's shared lock
    assert reader.read("T", b"k") == 1  # still the same value
    reader.rollback()


def test_snapshot_reads_are_repeatable_without_locks(db):
    """Timestamp reads give a stable view with zero locking."""
    seed(db, b"k", "v1")
    ts = db.current_timestamp()
    seed(db, b"k", "v2")
    for _ in range(3):
        assert db.snapshot_read("T", b"k", ts) == "v1"
    assert db.locks.active_lock_count() == 0


def test_phantom_protection_via_index_row_locks(db):
    """At the Firestore layer, phantoms are excluded because every write
    also locks its index rows, colliding with a transaction that scanned
    the index range."""
    from repro.core.backend import set_op
    from repro.core.firestore import FirestoreService

    service = FirestoreService()
    fdb = service.create_database("phantom")
    fdb.commit([set_op("r/a", {"city": "SF"})])

    spanner_txn = fdb.layout.spanner.begin()
    result = fdb.backend.run_query(
        fdb.query("r").where("city", "==", "SF"), txn=spanner_txn
    )
    assert len(result.documents) == 1
    # a concurrent insert of a matching doc must touch the scanned index
    # range and abort against our read locks
    with pytest.raises(Aborted):
        fdb.commit([set_op("r/b", {"city": "SF"})])
    spanner_txn.rollback()
