import pytest

from repro.errors import Aborted, CommitOutcomeUnknown, InternalError
from repro.sim.clock import SimClock
from repro.spanner.database import SpannerDatabase
from repro.spanner.transaction import (
    inject_definitive_failure,
    inject_unknown_outcome,
)


@pytest.fixture
def db():
    database = SpannerDatabase(clock=SimClock(1_000_000))
    database.create_table("Entities")
    database.create_table("IndexEntries")
    return database


def commit_row(db, table, key, value):
    txn = db.begin()
    txn.put(table, key, value)
    return txn.commit()


def test_simple_commit_and_snapshot_read(db):
    result = commit_row(db, "Entities", b"doc1", {"x": 1})
    assert result.commit_ts > 0
    assert db.snapshot_read("Entities", b"doc1", result.commit_ts) == {"x": 1}
    assert db.snapshot_read("Entities", b"doc1", result.commit_ts - 1) is None
    assert db.commits == 1


def test_read_your_own_writes(db):
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    assert txn.read("Entities", b"k") == "v"
    txn.delete("Entities", b"k")
    assert txn.read("Entities", b"k") is None


def test_read_absent_row(db):
    txn = db.begin()
    assert txn.read("Entities", b"nothing") is None
    txn.rollback()


def test_delete_visible_after_commit(db):
    commit_row(db, "Entities", b"k", "v")
    txn = db.begin()
    txn.delete("Entities", b"k")
    result = txn.commit()
    assert db.snapshot_read("Entities", b"k", result.commit_ts) is None


def test_commit_timestamps_strictly_increase(db):
    first = commit_row(db, "Entities", b"a", 1)
    second = commit_row(db, "Entities", b"b", 2)
    assert second.commit_ts > first.commit_ts


def test_write_write_conflict_aborts(db):
    txn1 = db.begin()
    txn2 = db.begin()
    txn1.read("Entities", b"k", for_update=True)
    with pytest.raises(Aborted):
        txn2.read("Entities", b"k", for_update=True)
    assert not txn2.is_active
    # txn1 can proceed
    txn1.put("Entities", b"k", "v")
    txn1.commit()
    assert db.aborts == 1


def test_commit_lock_conflict_with_reader(db):
    reader = db.begin()
    reader.read("Entities", b"k")  # shared lock
    writer = db.begin()
    writer.put("Entities", b"k", "v")
    with pytest.raises(Aborted):
        writer.commit()
    reader.rollback()
    # after the reader goes away, a fresh writer succeeds
    commit_row(db, "Entities", b"k", "v2")


def test_locks_released_after_commit(db):
    commit_row(db, "Entities", b"k", "v")
    assert db.locks.active_lock_count() == 0


def test_locks_released_after_rollback(db):
    txn = db.begin()
    txn.read("Entities", b"k", for_update=True)
    txn.rollback()
    assert db.locks.active_lock_count() == 0


def test_operations_on_finished_txn_fail(db):
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    txn.commit()
    with pytest.raises(InternalError):
        txn.put("Entities", b"j", "w")
    with pytest.raises(InternalError):
        txn.commit()


def test_min_commit_timestamp_respected(db):
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    result = txn.commit(min_commit_ts=99_000_000)
    assert result.commit_ts >= 99_000_000


def test_unsatisfiable_max_timestamp_aborts(db):
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    with pytest.raises(Aborted):
        txn.commit(max_commit_ts=1)  # far in the past
    assert db.snapshot_read("Entities", b"k", 10_000_000_000) is None


def test_multi_table_commit_is_atomic(db):
    txn = db.begin()
    txn.put("Entities", b"doc", "payload")
    txn.put("IndexEntries", b"idx1", b"")
    txn.put("IndexEntries", b"idx2", b"")
    result = txn.commit()
    assert result.mutation_count == 3
    ts = result.commit_ts
    assert db.snapshot_read("Entities", b"doc", ts) == "payload"
    assert db.snapshot_read("IndexEntries", b"idx1", ts) == b""


def test_participants_reported(db):
    txn = db.begin()
    txn.put("Entities", b"doc", "x")
    txn.put("IndexEntries", b"idx", b"")
    result = txn.commit()
    # Entities and IndexEntries rows may land in the same initial tablet,
    # but after a split they must not.
    assert result.participants >= 1


def test_rollback_discards_writes(db):
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    txn.rollback()
    assert db.snapshot_read("Entities", b"k", 10_000_000_000) is None


def test_none_values_rejected(db):
    txn = db.begin()
    with pytest.raises(InternalError):
        txn.put("Entities", b"k", None)


def test_injected_definitive_failure(db):
    db.commit_fault_injector = lambda txn_id: inject_definitive_failure()
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    with pytest.raises(Aborted):
        txn.commit()
    db.commit_fault_injector = None
    assert db.snapshot_read("Entities", b"k", 10_000_000_000) is None


@pytest.mark.parametrize("applied", [True, False])
def test_injected_unknown_outcome(db, applied):
    db.commit_fault_injector = lambda txn_id: inject_unknown_outcome(applied)
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    with pytest.raises(CommitOutcomeUnknown):
        txn.commit()
    db.commit_fault_injector = None
    visible = db.snapshot_read("Entities", b"k", 10_000_000_000)
    assert (visible == "v") is applied
    assert db.locks.active_lock_count() == 0 or applied
    # even when applied, the txn is not reusable
    with pytest.raises(InternalError):
        txn.commit()


def test_fault_injector_is_one_shot(db):
    fired = []

    def injector(txn_id):
        fired.append(txn_id)
        inject_definitive_failure()

    db.commit_fault_injector = injector
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    with pytest.raises(Aborted):
        txn.commit()
    # the injector cleared itself before firing — no manual reset needed
    assert db.commit_fault_injector is None
    assert len(fired) == 1

    result = commit_row(db, "Entities", b"k", "v2")
    assert len(fired) == 1
    assert db.snapshot_read("Entities", b"k", result.commit_ts) == "v2"


def test_fault_injector_clears_even_for_unknown_outcome(db):
    db.commit_fault_injector = lambda txn_id: inject_unknown_outcome(True)
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    with pytest.raises(CommitOutcomeUnknown):
        txn.commit()
    assert db.commit_fault_injector is None
    # a retry of the same logical write goes through untouched
    result = commit_row(db, "Entities", b"k", "v-retry")
    assert db.snapshot_read("Entities", b"k", result.commit_ts) == "v-retry"


def test_transactional_messages_only_on_commit(db):
    txn = db.begin()
    txn.put("Entities", b"k", "v")
    txn.enqueue_message("triggers", {"doc": "k"})
    assert db.message_queue.pending("triggers") == 0
    result = txn.commit()
    assert db.message_queue.pending("triggers") == 1
    message = db.message_queue.poll("triggers")[0]
    assert message.commit_ts == result.commit_ts
    assert message.payload == {"doc": "k"}


def test_messages_discarded_on_abort(db):
    txn = db.begin()
    txn.enqueue_message("triggers", "payload")
    txn.rollback()
    assert db.message_queue.pending() == 0


def test_txn_scan_merges_buffered_writes(db):
    commit_row(db, "Entities", b"b", "committed-b")
    commit_row(db, "Entities", b"d", "committed-d")
    txn = db.begin()
    txn.put("Entities", b"a", "own-a")
    txn.put("Entities", b"c", "own-c")
    txn.delete("Entities", b"d")
    txn.put("Entities", b"b", "own-b")  # overwrite committed
    rows = list(txn.scan("Entities", None, None))
    assert rows == [(b"a", "own-a"), (b"b", "own-b"), (b"c", "own-c")]
    txn.rollback()


def test_txn_scan_takes_shared_locks(db):
    commit_row(db, "Entities", b"k", "v")
    txn = db.begin()
    list(txn.scan("Entities", None, None))
    writer = db.begin()
    writer.put("Entities", b"k", "new")
    with pytest.raises(Aborted):
        writer.commit()
    txn.rollback()


def test_txn_scan_range_and_limit(db):
    for i in range(10):
        commit_row(db, "Entities", bytes([i]), i)
    txn = db.begin()
    rows = list(txn.scan("Entities", bytes([2]), bytes([8]), limit=3))
    assert [k for k, _ in rows] == [bytes([2]), bytes([3]), bytes([4])]
    txn.rollback()


def test_txn_scan_reverse(db):
    for i in range(5):
        commit_row(db, "Entities", bytes([i]), i)
    txn = db.begin()
    txn.put("Entities", bytes([9]), 9)
    rows = list(txn.scan("Entities", None, None, reverse=True))
    assert [k for k, _ in rows] == [bytes([9]), bytes([4]), bytes([3]), bytes([2]), bytes([1]), bytes([0])]
    txn.rollback()
