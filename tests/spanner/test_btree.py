import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spanner.btree import BTreeMap


def make_tree(items, order=8):
    tree = BTreeMap(order=order)
    for key, value in items:
        tree.put(key, value)
    return tree


def test_empty_tree():
    tree = BTreeMap()
    assert len(tree) == 0
    assert tree.get(b"x") is None
    assert list(tree.items()) == []
    assert tree.first_key() is None
    assert tree.last_key() is None


def test_put_get_single():
    tree = BTreeMap()
    assert tree.put(b"a", 1) is True
    assert tree.get(b"a") == 1
    assert b"a" in tree
    assert len(tree) == 1


def test_put_replaces():
    tree = BTreeMap()
    tree.put(b"a", 1)
    assert tree.put(b"a", 2) is False
    assert tree.get(b"a") == 2
    assert len(tree) == 1


def test_rejects_non_bytes_keys():
    with pytest.raises(TypeError):
        BTreeMap().put("str", 1)


def test_getitem_and_keyerror():
    tree = make_tree([(b"a", 1)])
    assert tree[b"a"] == 1
    with pytest.raises(KeyError):
        tree[b"missing"]


def test_delitem():
    tree = make_tree([(b"a", 1)])
    del tree[b"a"]
    assert len(tree) == 0
    with pytest.raises(KeyError):
        del tree[b"a"]


def test_many_inserts_stay_sorted():
    keys = [f"k{i:05d}".encode() for i in range(1000)]
    import random

    shuffled = keys[:]
    random.Random(0).shuffle(shuffled)
    tree = make_tree([(k, k) for k in shuffled], order=8)
    assert len(tree) == 1000
    assert [k for k, _ in tree.items()] == keys


def test_range_scan_default_half_open():
    tree = make_tree([(bytes([i]), i) for i in range(10)])
    got = [k for k, _ in tree.items(start=bytes([3]), end=bytes([7]))]
    assert got == [bytes([3]), bytes([4]), bytes([5]), bytes([6])]


def test_range_scan_inclusive_end():
    tree = make_tree([(bytes([i]), i) for i in range(10)])
    got = [k for k, _ in tree.items(start=bytes([3]), end=bytes([7]), end_inclusive=True)]
    assert got[-1] == bytes([7])


def test_range_scan_exclusive_start():
    tree = make_tree([(bytes([i]), i) for i in range(10)])
    got = [k for k, _ in tree.items(start=bytes([3]), start_inclusive=False)]
    assert got[0] == bytes([4])


def test_reverse_scan():
    tree = make_tree([(bytes([i]), i) for i in range(10)])
    got = [k for k, _ in tree.items(start=bytes([3]), end=bytes([7]), reverse=True)]
    assert got == [bytes([6]), bytes([5]), bytes([4]), bytes([3])]


def test_reverse_scan_unbounded():
    tree = make_tree([(bytes([i]), i) for i in range(5)])
    got = [k for k, _ in tree.items(reverse=True)]
    assert got == [bytes([4]), bytes([3]), bytes([2]), bytes([1]), bytes([0])]


def test_scan_with_missing_bounds_keys():
    """Bounds need not be present in the tree."""
    tree = make_tree([(bytes([i]), i) for i in (2, 4, 6, 8)])
    got = [k for k, _ in tree.items(start=bytes([3]), end=bytes([7]))]
    assert got == [bytes([4]), bytes([6])]


def test_delete_then_scan():
    tree = make_tree([(f"{i:03d}".encode(), i) for i in range(100)], order=4)
    for i in range(0, 100, 2):
        assert tree.delete(f"{i:03d}".encode()) is True
    assert len(tree) == 50
    remaining = [k for k, _ in tree.items()]
    assert remaining == [f"{i:03d}".encode() for i in range(1, 100, 2)]


def test_delete_missing_returns_false():
    tree = make_tree([(b"a", 1)])
    assert tree.delete(b"zz") is False


def test_delete_everything_then_reuse():
    keys = [f"{i:04d}".encode() for i in range(200)]
    tree = make_tree([(k, 1) for k in keys], order=4)
    for k in keys:
        assert tree.delete(k)
    assert len(tree) == 0
    assert list(tree.items()) == []
    tree.put(b"new", 5)
    assert tree.get(b"new") == 5


def test_first_and_last_key():
    tree = make_tree([(b"m", 1), (b"a", 2), (b"z", 3)])
    assert tree.first_key() == b"a"
    assert tree.last_key() == b"z"


def test_key_at_fraction():
    tree = make_tree([(bytes([i]), i) for i in range(100)], order=8)
    mid = tree.key_at_fraction(0.5)
    assert mid is not None
    assert bytes([40]) <= mid <= bytes([60])
    assert tree.key_at_fraction(0.0) == bytes([0])


def test_key_at_fraction_empty():
    assert BTreeMap().key_at_fraction(0.5) is None


def test_order_validation():
    with pytest.raises(ValueError):
        BTreeMap(order=2)


@settings(max_examples=200, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["put", "delete", "get"]),
            st.binary(min_size=0, max_size=6),
            st.integers(),
        ),
        max_size=200,
    )
)
def test_property_matches_dict_model(ops):
    """The B+tree behaves exactly like a dict + sorted() reference model."""
    tree = BTreeMap(order=4)
    model: dict[bytes, int] = {}
    for op, key, value in ops:
        if op == "put":
            tree.put(key, value)
            model[key] = value
        elif op == "delete":
            assert tree.delete(key) == (key in model)
            model.pop(key, None)
        else:
            assert tree.get(key) == model.get(key)
    assert len(tree) == len(model)
    assert list(tree.items()) == sorted(model.items())
    assert list(tree.items(reverse=True)) == sorted(model.items(), reverse=True)


@settings(max_examples=100, deadline=None)
@given(
    keys=st.sets(st.binary(min_size=1, max_size=5), max_size=60),
    start=st.binary(max_size=5),
    end=st.binary(max_size=5),
)
def test_property_range_scans_match_model(keys, start, end):
    tree = BTreeMap(order=4)
    for key in keys:
        tree.put(key, None)
    expected = sorted(k for k in keys if start <= k < end)
    assert [k for k, _ in tree.items(start=start, end=end)] == expected
    assert [k for k, _ in tree.items(start=start, end=end, reverse=True)] == list(
        reversed(expected)
    )
