import pytest

from repro.spanner.mvcc import TOMBSTONE, VersionChain, is_deleted


def test_empty_chain_reads_as_deleted():
    chain = VersionChain()
    assert chain.read_at(100) is TOMBSTONE
    assert is_deleted(chain.read_at(100))
    assert chain.latest() == (0, TOMBSTONE)
    assert chain.is_empty()


def test_read_at_picks_newest_at_or_before():
    chain = VersionChain()
    chain.write(10, "v10")
    chain.write(20, "v20")
    chain.write(30, "v30")
    assert chain.read_at(5) is TOMBSTONE
    assert chain.read_at(10) == "v10"
    assert chain.read_at(15) == "v10"
    assert chain.read_at(20) == "v20"
    assert chain.read_at(1000) == "v30"


def test_write_rejects_non_monotonic_timestamps():
    chain = VersionChain()
    chain.write(10, "a")
    with pytest.raises(ValueError):
        chain.write(10, "b")
    with pytest.raises(ValueError):
        chain.write(5, "c")


def test_tombstone_versions():
    chain = VersionChain()
    chain.write(10, "alive")
    chain.write(20, TOMBSTONE)
    chain.write(30, "reborn")
    assert chain.read_at(15) == "alive"
    assert is_deleted(chain.read_at(25))
    assert chain.read_at(35) == "reborn"


def test_latest():
    chain = VersionChain()
    chain.write(10, "a")
    chain.write(20, "b")
    assert chain.latest() == (20, "b")


def test_versions_newest_first():
    chain = VersionChain()
    chain.write(10, "a")
    chain.write(20, "b")
    assert list(chain.versions()) == [(20, "b"), (10, "a")]


def test_gc_keeps_version_readable_at_horizon():
    chain = VersionChain()
    chain.write(10, "a")
    chain.write(20, "b")
    chain.write(30, "c")
    dropped = chain.gc(horizon_ts=25)
    assert dropped == 1  # only v10 superseded before the horizon
    assert chain.read_at(25) == "b"
    assert chain.read_at(30) == "c"


def test_gc_noop_when_single_version():
    chain = VersionChain()
    chain.write(10, "a")
    assert chain.gc(horizon_ts=100) == 0
    assert chain.read_at(100) == "a"


def test_gc_drops_lone_old_tombstone():
    chain = VersionChain()
    chain.write(10, "a")
    chain.write(20, TOMBSTONE)
    dropped = chain.gc(horizon_ts=50)
    assert dropped == 2
    assert chain.is_empty()


def test_gc_keeps_recent_tombstone():
    chain = VersionChain()
    chain.write(10, "a")
    chain.write(20, TOMBSTONE)
    chain.gc(horizon_ts=15)
    assert is_deleted(chain.read_at(25))


def test_len_counts_versions():
    chain = VersionChain()
    chain.write(1, "a")
    chain.write(2, "b")
    assert len(chain) == 2
