import pytest

from repro.errors import LockConflict
from repro.spanner.locks import LockMode, LockTable


@pytest.fixture
def table():
    return LockTable()


def test_shared_locks_coexist(table):
    table.acquire(1, b"k", LockMode.SHARED)
    table.acquire(2, b"k", LockMode.SHARED)
    shared, exclusive = table.holders(b"k")
    assert shared == {1, 2}
    assert exclusive is None


def test_exclusive_blocks_shared(table):
    table.acquire(1, b"k", LockMode.EXCLUSIVE)
    with pytest.raises(LockConflict):
        table.acquire(2, b"k", LockMode.SHARED)
    assert table.conflicts == 1


def test_shared_blocks_exclusive(table):
    table.acquire(1, b"k", LockMode.SHARED)
    with pytest.raises(LockConflict):
        table.acquire(2, b"k", LockMode.EXCLUSIVE)


def test_exclusive_blocks_exclusive(table):
    table.acquire(1, b"k", LockMode.EXCLUSIVE)
    with pytest.raises(LockConflict):
        table.acquire(2, b"k", LockMode.EXCLUSIVE)


def test_reentrant_for_same_txn(table):
    table.acquire(1, b"k", LockMode.SHARED)
    table.acquire(1, b"k", LockMode.SHARED)
    table.acquire(1, b"k", LockMode.EXCLUSIVE)  # upgrade, sole holder
    table.acquire(1, b"k", LockMode.EXCLUSIVE)
    table.acquire(1, b"k", LockMode.SHARED)  # already exclusive, fine
    shared, exclusive = table.holders(b"k")
    assert exclusive == 1


def test_upgrade_denied_with_other_shared_holder(table):
    table.acquire(1, b"k", LockMode.SHARED)
    table.acquire(2, b"k", LockMode.SHARED)
    with pytest.raises(LockConflict):
        table.acquire(1, b"k", LockMode.EXCLUSIVE)


def test_release_all_frees_locks(table):
    table.acquire(1, b"a", LockMode.SHARED)
    table.acquire(1, b"b", LockMode.EXCLUSIVE)
    assert table.release_all(1) == 2
    assert table.active_lock_count() == 0
    # others can now acquire
    table.acquire(2, b"b", LockMode.EXCLUSIVE)


def test_release_keeps_other_holders(table):
    table.acquire(1, b"k", LockMode.SHARED)
    table.acquire(2, b"k", LockMode.SHARED)
    table.release_all(1)
    shared, _ = table.holders(b"k")
    assert shared == {2}


def test_release_all_for_unknown_txn(table):
    assert table.release_all(99) == 0


def test_held_keys(table):
    table.acquire(1, b"a", LockMode.SHARED)
    table.acquire(1, b"b", LockMode.EXCLUSIVE)
    assert table.held_keys(1) == {b"a", b"b"}
    assert table.held_keys(2) == set()


def test_conflict_error_carries_details(table):
    table.acquire(1, b"key", LockMode.EXCLUSIVE)
    with pytest.raises(LockConflict) as excinfo:
        table.acquire(2, b"key", LockMode.EXCLUSIVE)
    assert excinfo.value.holder == 1
    assert excinfo.value.requester == 2
    assert excinfo.value.key == b"key"
