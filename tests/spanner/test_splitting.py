import pytest

from repro.sim.clock import SimClock
from repro.spanner.database import SpannerDatabase
from repro.spanner.splitting import LoadBasedSplitter, SplitPolicy


@pytest.fixture
def db():
    database = SpannerDatabase(clock=SimClock(1_000_000))
    database.create_table("Entities")
    return database


def fill(db, n):
    for i in range(n):
        txn = db.begin()
        txn.put("Entities", f"{i:06d}".encode(), i)
        txn.commit()


def test_oversized_tablet_splits(db):
    policy = SplitPolicy(max_rows=100, hot_load=1e12)
    splitter = LoadBasedSplitter(db, policy)
    fill(db, 500)
    changes = splitter.run_once()
    assert changes > 0
    assert len(db.tablets) > 1
    assert all(len(t.rows) <= 300 for t in db.tablets)


def test_hot_tablet_splits(db):
    policy = SplitPolicy(hot_load=10.0, max_rows=10**9, cold_load=0.0)
    splitter = LoadBasedSplitter(db, policy)
    fill(db, 50)  # 50 writes -> load 100 > 10
    assert splitter.run_once() > 0


def test_tablet_ranges_stay_contiguous(db):
    splitter = LoadBasedSplitter(db, SplitPolicy(max_rows=50, hot_load=1e12))
    fill(db, 400)
    splitter.run_once()
    tablets = db.tablets
    assert tablets[0].start_key == b""
    assert tablets[-1].end_key is None
    for left, right in zip(tablets, tablets[1:]):
        assert left.end_key == right.start_key


def test_data_preserved_across_splits(db):
    splitter = LoadBasedSplitter(db, SplitPolicy(max_rows=50, hot_load=1e12))
    fill(db, 300)
    splitter.run_once()
    ts = 10_000_000_000
    rows = list(db.snapshot_scan("Entities", None, None, ts))
    assert len(rows) == 300
    assert [k for k, _ in rows] == sorted(k for k, _ in rows)


def test_cold_small_tablets_merge(db):
    splitter = LoadBasedSplitter(
        db, SplitPolicy(max_rows=50, hot_load=1e12, cold_load=10.0, merge_max_rows=10_000)
    )
    fill(db, 300)
    splitter.run_once()
    split_count = len(db.tablets)
    assert split_count > 1
    # let the load decay to cold
    db.clock.advance(3_600_000_000)
    splitter.run_once()
    assert len(db.tablets) < split_count


def test_pre_split_at_boundaries(db):
    fill(db, 100)
    splitter = LoadBasedSplitter(db)
    tag = db.table("Entities").tag
    boundaries = [bytes([tag]) + f"{i:06d}".encode() for i in (25, 50, 75)]
    done = splitter.pre_split(boundaries)
    assert done == 3
    assert len(db.tablets) == 4
    ts = 10_000_000_000
    assert len(list(db.snapshot_scan("Entities", None, None, ts))) == 100


def test_pre_split_idempotent(db):
    fill(db, 100)
    splitter = LoadBasedSplitter(db)
    tag = db.table("Entities").tag
    boundary = [bytes([tag]) + b"000050"]
    assert splitter.pre_split(boundary) == 1
    assert splitter.pre_split(boundary) == 0
    assert len(db.tablets) == 2


def test_max_tablets_guard(db):
    splitter = LoadBasedSplitter(db, SplitPolicy(max_rows=2, hot_load=1e12, max_tablets=5))
    fill(db, 100)
    splitter.run_once()
    assert len(db.tablets) <= 5


def test_split_counters(db):
    splitter = LoadBasedSplitter(db, SplitPolicy(max_rows=50, hot_load=1e12))
    fill(db, 200)
    splitter.run_once()
    # net tablet count reflects splits minus any merges of the same pass
    assert splitter.splits - splitter.merges == len(db.tablets) - 1
    assert splitter.splits > 0


def test_writes_after_split_land_in_right_tablet(db):
    fill(db, 100)
    splitter = LoadBasedSplitter(db)
    tag = db.table("Entities").tag
    splitter.pre_split([bytes([tag]) + b"000050"])
    txn = db.begin()
    txn.put("Entities", b"000049", "left")
    txn.put("Entities", b"000051", "right")
    result = txn.commit()
    assert result.participants == 2  # true 2PC across both tablets
