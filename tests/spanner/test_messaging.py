from repro.spanner.messaging import TransactionalMessageQueue


def test_commit_messages_assigns_ids_and_ts():
    queue = TransactionalMessageQueue()
    messages = queue.commit_messages([("t", "a"), ("t", "b")], commit_ts=42)
    assert [m.payload for m in messages] == ["a", "b"]
    assert all(m.commit_ts == 42 for m in messages)
    assert messages[0].message_id != messages[1].message_id


def test_poll_is_fifo_and_removes():
    queue = TransactionalMessageQueue()
    queue.commit_messages([("t", i) for i in range(5)], commit_ts=1)
    first = queue.poll("t", max_messages=2)
    assert [m.payload for m in first] == [0, 1]
    assert queue.pending("t") == 3
    rest = queue.poll("t", max_messages=10)
    assert [m.payload for m in rest] == [2, 3, 4]
    assert queue.pending() == 0


def test_poll_empty_topic():
    assert TransactionalMessageQueue().poll("nope") == []


def test_subscribe_and_deliver_all():
    queue = TransactionalMessageQueue()
    received = []
    queue.subscribe("triggers", received.append)
    queue.commit_messages([("triggers", "x"), ("other", "y")], commit_ts=1)
    delivered = queue.deliver_all()
    assert delivered == 1
    assert [m.payload for m in received] == ["x"]
    # unsubscribed topic retains its message
    assert queue.pending("other") == 1


def test_multiple_subscribers_all_called():
    queue = TransactionalMessageQueue()
    a, b = [], []
    queue.subscribe("t", a.append)
    queue.subscribe("t", b.append)
    queue.commit_messages([("t", 1)], commit_ts=1)
    queue.deliver_all()
    assert len(a) == len(b) == 1


def test_delivered_counter():
    queue = TransactionalMessageQueue()
    queue.subscribe("t", lambda m: None)
    queue.commit_messages([("t", 1), ("t", 2)], commit_ts=1)
    queue.deliver_all()
    assert queue.delivered == 2
