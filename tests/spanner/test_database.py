import pytest

from repro.errors import InternalError
from repro.sim.clock import SimClock
from repro.spanner.database import SpannerDatabase


@pytest.fixture
def db():
    database = SpannerDatabase(clock=SimClock(1_000_000))
    database.create_table("Entities")
    database.create_table("IndexEntries")
    return database


def put(db, table, key, value):
    txn = db.begin()
    txn.put(table, key, value)
    return txn.commit().commit_ts


def test_tables_have_distinct_tags(db):
    assert db.table("Entities").tag != db.table("IndexEntries").tag


def test_duplicate_table_rejected(db):
    with pytest.raises(InternalError):
        db.create_table("Entities")


def test_unknown_table_rejected(db):
    with pytest.raises(InternalError):
        db.table("Nope")


def test_tables_are_isolated_keyspaces(db):
    put(db, "Entities", b"k", "entity")
    put(db, "IndexEntries", b"k", "index")
    ts = 10_000_000_000
    assert db.snapshot_read("Entities", b"k", ts) == "entity"
    assert db.snapshot_read("IndexEntries", b"k", ts) == "index"


def test_snapshot_scan_is_per_table(db):
    put(db, "Entities", b"a", 1)
    put(db, "IndexEntries", b"b", 2)
    ts = 10_000_000_000
    assert list(db.snapshot_scan("Entities", None, None, ts)) == [(b"a", 1)]
    assert list(db.snapshot_scan("IndexEntries", None, None, ts)) == [(b"b", 2)]


def test_snapshot_scan_range_and_limit(db):
    for i in range(10):
        put(db, "Entities", bytes([i]), i)
    ts = 10_000_000_000
    rows = list(db.snapshot_scan("Entities", bytes([2]), bytes([6]), ts))
    assert [k for k, _ in rows] == [bytes([2]), bytes([3]), bytes([4]), bytes([5])]
    rows = list(db.snapshot_scan("Entities", None, None, ts, limit=3))
    assert len(rows) == 3
    rows = list(db.snapshot_scan("Entities", None, None, ts, reverse=True, limit=2))
    assert [k for k, _ in rows] == [bytes([9]), bytes([8])]


def test_snapshot_scan_across_tablets(db):
    from repro.spanner.splitting import LoadBasedSplitter

    for i in range(20):
        put(db, "Entities", bytes([i]), i)
    splitter = LoadBasedSplitter(db)
    tag = db.table("Entities").tag
    splitter.pre_split([bytes([tag, 5]), bytes([tag, 10]), bytes([tag, 15])])
    assert len(db.tablets) >= 4
    ts = 10_000_000_000
    rows = list(db.snapshot_scan("Entities", None, None, ts))
    assert [k for k, _ in rows] == [bytes([i]) for i in range(20)]
    rows = list(db.snapshot_scan("Entities", None, None, ts, reverse=True))
    assert [k for k, _ in rows] == [bytes([i]) for i in reversed(range(20))]


def test_snapshot_reads_are_stable_over_history(db):
    ts1 = put(db, "Entities", b"k", "v1")
    ts2 = put(db, "Entities", b"k", "v2")
    assert db.snapshot_read("Entities", b"k", ts1) == "v1"
    assert db.snapshot_read("Entities", b"k", ts2) == "v2"
    assert db.snapshot_read("Entities", b"k", ts1 - 1) is None


def test_snapshot_read_does_not_block_on_locks(db):
    ts = put(db, "Entities", b"k", "v1")
    txn = db.begin()
    txn.read("Entities", b"k", for_update=True)
    # lock-free timestamp read proceeds happily
    assert db.snapshot_read("Entities", b"k", ts) == "v1"
    txn.rollback()


def test_directories(db):
    db.create_directory(b"\x00\x01")
    assert b"\x00\x01" in db.directories


def test_tablet_for_covers_whole_keyspace(db):
    assert db.tablet_for(b"").tablet_id
    assert db.tablet_for(b"\xff" * 8).tablet_id


def test_gc_reclaims_old_versions(db):
    db.gc_horizon_us = 1000
    put(db, "Entities", b"k", "v1")
    put(db, "Entities", b"k", "v2")
    db.clock.advance(10_000_000)
    dropped = db.gc()
    assert dropped >= 1
    assert db.snapshot_read("Entities", b"k", db.clock.now_us) == "v2"


def test_current_timestamp_reflects_commits(db):
    ts = put(db, "Entities", b"k", "v")
    assert db.current_timestamp() >= ts


def test_total_rows(db):
    put(db, "Entities", b"a", 1)
    put(db, "IndexEntries", b"b", 2)
    assert db.total_rows() == 2
