from repro.spanner.mvcc import TOMBSTONE, VersionChain
from repro.spanner.tablet import LoadStats, Tablet


def make_tablet(rows, start=b"", end=None):
    tablet = Tablet(start, end)
    for key, ts, value in rows:
        tablet.chain(key, create=True).write(ts, value)
    return tablet


def test_covers():
    tablet = Tablet(b"b", b"m")
    assert not tablet.covers(b"a")
    assert tablet.covers(b"b")
    assert tablet.covers(b"l")
    assert not tablet.covers(b"m")


def test_unbounded_tablet_covers_everything():
    tablet = Tablet(b"", None)
    assert tablet.covers(b"")
    assert tablet.covers(b"\xff\xff")


def test_read_at():
    tablet = make_tablet([(b"k", 10, "v")])
    assert tablet.read_at(b"k", 10) == "v"
    assert tablet.read_at(b"k", 5) is TOMBSTONE
    assert tablet.read_at(b"missing", 10) is TOMBSTONE


def test_scan_at_respects_timestamps_and_tombstones():
    tablet = make_tablet(
        [(b"a", 10, "a1"), (b"b", 20, "b1"), (b"c", 10, "c1")]
    )
    tablet.chain(b"c").write(30, TOMBSTONE)
    assert dict(tablet.scan_at(None, None, 15)) == {b"a": "a1", b"c": "c1"}
    assert dict(tablet.scan_at(None, None, 30)) == {b"a": "a1", b"b": "b1"}


def test_scan_intersects_with_tablet_bounds():
    tablet = make_tablet(
        [(b"c", 10, 1), (b"f", 10, 2), (b"j", 10, 3)], start=b"c", end=b"k"
    )
    got = [k for k, _ in tablet.scan_at(b"a", b"z", 100)]
    assert got == [b"c", b"f", b"j"]
    got = [k for k, _ in tablet.scan_at(b"d", b"g", 100)]
    assert got == [b"f"]


def test_reverse_scan():
    tablet = make_tablet([(bytes([i]), 10, i) for i in range(5)])
    got = [k for k, _ in tablet.scan_at(None, None, 100, reverse=True)]
    assert got == [bytes([4]), bytes([3]), bytes([2]), bytes([1]), bytes([0])]


def test_live_row_count_and_versions():
    tablet = make_tablet([(b"a", 10, 1), (b"b", 10, 2)])
    tablet.chain(b"a").write(20, TOMBSTONE)
    assert tablet.live_row_count(30) == 1
    assert tablet.version_count() == 3


def test_gc_drops_emptied_chains():
    tablet = make_tablet([(b"a", 10, 1)])
    tablet.chain(b"a").write(20, TOMBSTONE)
    tablet.gc(horizon_ts=100)
    assert len(tablet.rows) == 0


def test_split_key_roughly_median():
    tablet = make_tablet([(bytes([i]), 10, i) for i in range(100)])
    key = tablet.split_key()
    assert key is not None
    assert bytes([30]) < key < bytes([70])


def test_split_key_needs_two_rows():
    assert make_tablet([(b"a", 10, 1)]).split_key() is None
    assert Tablet(b"", None).split_key() is None


def test_load_stats_decay():
    stats = LoadStats(half_life_us=1000)
    stats.record_read(0, count=100)
    assert stats.load(0) == 100.0
    assert abs(stats.load(1000) - 50.0) < 1e-6
    assert stats.load(3000) < 15.0


def test_load_stats_writes_weighted():
    stats = LoadStats()
    stats.record_write(0, count=10)
    assert stats.load(0) == 20.0


def test_tablet_ids_unique():
    a, b = Tablet(b"", None), Tablet(b"", None)
    assert a.tablet_id != b.tablet_id
