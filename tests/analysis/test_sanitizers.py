"""Dynamic sanitizers: each checker trips on a deliberately broken fake.

Every test seeds a specific invariant violation — a transaction grabbing
locks after release, a corrupted MVCC chain, a TrueTime that travels
backwards — and asserts the sanitizer converts it into a structured
:class:`SanitizerViolation` plus a metrics counter increment. A final
group proves clean traffic through a sanitized database raises nothing.
"""

import pytest

from repro.analysis.sanitizers import (
    StackSanitizer,
    install,
    maybe_install,
    sanitizers_enabled,
    set_enabled,
)
from repro.analysis.sanitizers.locks import SanitizedLockTable
from repro.analysis.sanitizers.truetime import SanitizedTrueTime
from repro.errors import Aborted, SanitizerViolation
from repro.obs.metrics import MetricsRegistry
from repro.sim.clock import SimClock
from repro.sim.truetime import TrueTime, TTInterval
from repro.spanner.database import SpannerDatabase
from repro.spanner.locks import LockMode
from repro.spanner.mvcc import VersionChain


@pytest.fixture
def db():
    database = SpannerDatabase(name="san-db")
    install(database)
    database.metrics = MetricsRegistry()
    database.create_table("t")
    return database


def violation_count(db, check):
    metric = db.metrics.get("sanitizer.violations", check=check, database="san-db")
    return 0 if metric is None else metric.value


# -- enablement ---------------------------------------------------------------


def test_env_gate(monkeypatch):
    set_enabled(None)
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    assert not sanitizers_enabled()
    assert SpannerDatabase().sanitizer is None
    monkeypatch.setenv("REPRO_SANITIZE", "1")
    assert sanitizers_enabled()
    sanitized = SpannerDatabase()
    assert isinstance(sanitized.sanitizer, StackSanitizer)
    assert isinstance(sanitized.locks, SanitizedLockTable)
    assert isinstance(sanitized.truetime, SanitizedTrueTime)
    monkeypatch.setenv("REPRO_SANITIZE", "0")
    assert not sanitizers_enabled()


def test_set_enabled_overrides_env(monkeypatch):
    monkeypatch.delenv("REPRO_SANITIZE", raising=False)
    set_enabled(True)
    try:
        assert sanitizers_enabled()
        assert SpannerDatabase().sanitizer is not None
    finally:
        set_enabled(None)


def test_maybe_install_is_idempotent(db):
    assert maybe_install(db) is None  # already installed


# -- 2PL lock discipline ------------------------------------------------------


def test_acquire_after_release_trips(db):
    txn = db.begin()
    txn.put("t", b"k", {"v": 1})
    txn.commit()
    with pytest.raises(SanitizerViolation, match="lock-acquire-after-release"):
        db.locks.acquire(txn.txn_id, b"\x01k", LockMode.SHARED)
    assert violation_count(db, "lock-acquire-after-release") == 1


def test_acquire_after_abort_trips(db):
    txn = db.begin()
    txn.put("t", b"k", {"v": 1})
    txn.rollback()
    with pytest.raises(SanitizerViolation, match="2PL"):
        db.locks.acquire_range(txn.txn_id, b"\x01", b"\x02")


def test_lock_leak_at_commit_trips(db):
    txn = db.begin()
    db.locks.acquire(txn.txn_id, b"\x01leak", LockMode.EXCLUSIVE)
    # a broken commit path that "finishes" without releasing anything
    with pytest.raises(SanitizerViolation, match="lock-leak"):
        db.sanitizer.on_txn_finished(txn.txn_id, "committed")
    assert violation_count(db, "lock-leak") == 1


def test_scan_without_range_lock_trips(db):
    txn = db.begin()
    # a broken scan that streams rows without phantom protection
    with pytest.raises(SanitizerViolation, match="scan-without-range-lock"):
        db.sanitizer.on_transactional_scan(txn.txn_id, b"\x01a", b"\x01z")
    assert violation_count(db, "scan-without-range-lock") == 1


def test_partial_range_lock_does_not_cover(db):
    txn = db.begin()
    db.locks.acquire_range(txn.txn_id, b"\x01m", b"\x01z")
    with pytest.raises(SanitizerViolation, match="covering"):
        db.sanitizer.on_transactional_scan(txn.txn_id, b"\x01a", b"\x01z")


def test_real_scan_passes_the_discipline(db):
    writer = db.begin()
    writer.put("t", b"a", {"v": 1})
    writer.put("t", b"b", {"v": 2})
    writer.commit()
    reader = db.begin()
    assert [k for k, _ in reader.scan("t", None, None)] == [b"a", b"b"]
    reader.rollback()


# -- MVCC history -------------------------------------------------------------


def test_mvcc_chain_order_trips(db):
    chain = VersionChain()
    chain.write(100, {"v": 1})
    chain.write(200, {"v": 2})
    chain._ts[0], chain._ts[1] = chain._ts[1], chain._ts[0]  # corrupt it
    with pytest.raises(SanitizerViolation, match="mvcc-chain-order"):
        db.sanitizer.on_snapshot_read(b"k", chain, 300, chain.read_versioned_at(300))
    assert violation_count(db, "mvcc-chain-order") == 1


def test_mvcc_stale_read_trips(db):
    chain = VersionChain()
    chain.write(100, {"v": 1})
    chain.write(200, {"v": 2})
    # a buggy read path returning the older version at read_ts=250
    with pytest.raises(SanitizerViolation, match="mvcc-stale-read"):
        db.sanitizer.on_snapshot_read(b"k", chain, 250, (100, {"v": 1}))
    assert violation_count(db, "mvcc-stale-read") == 1


def test_mvcc_commit_ts_regression_trips(db):
    db.sanitizer.on_commit_applied([b"k1"], 500)
    with pytest.raises(SanitizerViolation, match="mvcc-commit-ts-monotonic"):
        db.sanitizer.on_commit_applied([b"k2"], 400)
    assert violation_count(db, "mvcc-commit-ts-monotonic") == 1


def test_mvcc_per_key_regression_trips(db):
    db.sanitizer.on_commit_applied([b"k"], 500)
    checker = db.sanitizer.mvcc_checker
    checker._last_global_ts = 0  # isolate the per-key check
    with pytest.raises(SanitizerViolation, match="rewritten"):
        db.sanitizer.on_commit_applied([b"k"], 300)


def test_clean_reads_pass(db):
    txn = db.begin()
    txn.put("t", b"k", {"v": 1})
    first = txn.commit().commit_ts
    txn2 = db.begin()
    txn2.put("t", b"k", {"v": 2})
    second = txn2.commit().commit_ts
    assert db.snapshot_read("t", b"k", first) == {"v": 1}
    assert db.snapshot_read("t", b"k", second) == {"v": 2}
    assert db.snapshot_read("t", b"k", first - 1) is None


# -- TrueTime -----------------------------------------------------------------


class _BrokenTrueTime:
    """A TrueTime double whose behaviour the tests script per-call."""

    def __init__(self):
        self.intervals = []
        self.issues = []
        self.last_issued = 0

    def now(self):
        return self.intervals.pop(0)

    def issue_commit_timestamp(self, min_allowed_us=0, max_allowed_us=None):
        return self.issues.pop(0)


def _sanitizer_for(fake):
    db = SpannerDatabase(name="san-db")
    sanitizer = install(db)
    db.metrics = MetricsRegistry()
    return db, SanitizedTrueTime(fake, sanitizer)


def test_truetime_interval_regression_trips():
    fake = _BrokenTrueTime()
    fake.intervals = [TTInterval(1000, 2000), TTInterval(500, 1500)]
    _, tt = _sanitizer_for(fake)
    assert tt.now() == TTInterval(1000, 2000)
    with pytest.raises(SanitizerViolation, match="truetime-regress"):
        tt.now()


def test_truetime_nonmonotonic_issue_trips():
    fake = _BrokenTrueTime()
    fake.issues = [1000, 1000]
    fake.intervals = [TTInterval(0, 100), TTInterval(0, 100)]
    _, tt = _sanitizer_for(fake)
    assert tt.issue_commit_timestamp() == 1000
    with pytest.raises(SanitizerViolation, match="truetime-issue-monotonic"):
        tt.issue_commit_timestamp()


def test_truetime_backdated_issue_trips():
    fake = _BrokenTrueTime()
    fake.issues = [50]
    fake.intervals = [TTInterval(1000, 2000)]
    _, tt = _sanitizer_for(fake)
    with pytest.raises(SanitizerViolation, match="truetime-commit-wait"):
        tt.issue_commit_timestamp()


def test_truetime_window_violation_trips():
    fake = _BrokenTrueTime()
    fake.issues = [5000]
    fake.intervals = [TTInterval(0, 5000)]
    _, tt = _sanitizer_for(fake)
    with pytest.raises(SanitizerViolation, match="truetime-window"):
        tt.issue_commit_timestamp(0, 4000)


def test_truetime_ack_outside_window_trips(db):
    with pytest.raises(SanitizerViolation, match="truetime-window"):
        db.truetime.on_commit_ack(7, commit_ts=9000, min_ts=0, max_ts=100)
    assert violation_count(db, "truetime-window") == 1


def test_real_truetime_passes(db):
    db.clock.advance(10_000)
    first = db.truetime.issue_commit_timestamp()
    db.clock.advance(1)
    second = db.truetime.issue_commit_timestamp()
    assert second > first
    interval = db.truetime.now()
    assert interval.earliest <= db.clock.now_us <= interval.latest


# -- commit window sanitization through the real stack ------------------------


def test_unsatisfiable_window_still_aborts_cleanly(db):
    txn = db.begin()
    txn.put("t", b"k", {"v": 1})
    db.clock.advance(1_000_000)
    with pytest.raises(Aborted):
        txn.commit(max_commit_ts=10)  # window is in the past
    assert db.aborts == 1


# -- metrics wiring (satellite: LockTable.conflicts is no longer orphan) ------


def test_lock_conflicts_feed_the_registry(db):
    t1 = db.begin()
    t2 = db.begin()
    t1.put("t", b"k", {"v": 1})
    t1.commit()
    # t2 saw nothing yet; make an actual conflict
    t3 = db.begin()
    t4 = db.begin()
    t3.read("t", b"k", for_update=True)
    with pytest.raises(Aborted):
        t4.read("t", b"k", for_update=True)
    assert db.locks.conflicts == 1
    counter = db.metrics.get("spanner.lock_conflicts", database="san-db")
    assert counter is not None and counter.value == 1
    t2.rollback()
    t3.rollback()


def test_lock_conflicts_counter_without_sanitizer():
    # the lock-conflict counter must work even with sanitizers off,
    # so force them off regardless of REPRO_SANITIZE / --sanitize
    set_enabled(False)
    try:
        plain = SpannerDatabase(name="plain-db")
    finally:
        set_enabled(None)
    assert plain.sanitizer is None
    plain.metrics = MetricsRegistry()
    plain.create_table("t")
    t1 = plain.begin()
    t1.put("t", b"k", {"v": 1})
    t1.commit()
    t2 = plain.begin()
    t3 = plain.begin()
    t2.read("t", b"k", for_update=True)
    with pytest.raises(Aborted):
        t3.read("t", b"k", for_update=True)
    counter = plain.metrics.get("spanner.lock_conflicts", database="plain-db")
    assert counter is not None and counter.value == 1
    assert plain.locks.conflicts == 1


def test_sanitized_wrappers_stay_transparent(db):
    # attribute reads and writes pass through to the real objects
    assert db.locks.active_lock_count() == 0
    db.locks.owner = "renamed"
    assert db.locks._inner.owner == "renamed"
    assert db.truetime.epsilon_us == TrueTime.DEFAULT_EPSILON_US
    assert db.truetime.clock is db.clock
    assert isinstance(db.truetime.now(), TTInterval)
