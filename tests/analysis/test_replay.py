"""Same-seed replay: determinism is asserted, not assumed.

The harness replays a scenario from identical inputs and demands
byte-identical artifacts — including the Chrome-trace export, which is
the observability subsystem's headline determinism claim. The negative
tests feed it deliberately impure scenarios and check the divergence
report is precise enough to bisect from.
"""

import dataclasses

import pytest

from repro.analysis.replay import ReplayReport, fingerprint, run_replay
from repro.core.firestore import FirestoreService
from repro.errors import SanitizerViolation
from repro.obs import MetricsRegistry, Tracer, trace_full_commit
from repro.sim.clock import SimClock
from repro.sim.rand import SimRandom
from repro.workloads.ycsb import YcsbConfig, YcsbRunner


def traced_commit(seed=11, doc="rooms/r1"):
    clock = SimClock()
    tracer = Tracer(clock, SimRandom(seed).fork("tracer"))
    metrics = MetricsRegistry()
    service = FirestoreService(clock=clock, tracer=tracer, metrics=metrics)
    db = service.create_database("traced")
    delivered = trace_full_commit(db, doc, {"topic": "replay"})
    events = [d.documents for d in delivered]
    return {"tracer": tracer, "metrics": metrics, "events": events}


def test_traced_commit_is_deterministic():
    report = run_replay(traced_commit, runs=3)
    assert report.deterministic
    assert report.trace_hash is not None
    # the claim is byte-identical exports, not merely equal hashes
    first = report.runs[0]
    for other in report.runs[1:]:
        assert other.trace_json == first.trace_json
        assert other.metrics_json == first.metrics_json
    assert first.span_count > 0


def test_different_seeds_produce_different_traces():
    a = fingerprint(traced_commit(seed=11))
    b = fingerprint(traced_commit(seed=12))
    # the sampling decision and span ids derive from the seed
    assert a.digest() != b.digest()


def test_impure_scenario_raises_with_byte_offset():
    calls = []

    def impure():
        calls.append(None)
        result = traced_commit(doc=f"rooms/r{len(calls)}")
        return result

    with pytest.raises(SanitizerViolation) as exc:
        run_replay(impure)
    message = str(exc.value)
    assert "replay-divergence" in message
    assert "chrome-trace export" in message
    assert "first divergence at byte" in message


def test_metrics_only_divergence_is_named():
    registry = MetricsRegistry()

    def drifting_metrics():
        registry.counter("drift").inc()
        clock = SimClock()
        tracer = Tracer(clock, SimRandom(1).fork("tracer"))
        return {"tracer": tracer, "metrics": registry}

    with pytest.raises(SanitizerViolation, match="metrics snapshot"):
        run_replay(drifting_metrics)


def test_extra_artifact_divergence_is_named():
    values = iter([1, 2])

    def drifting_extra():
        return {"extra": {"p99": next(values)}}

    with pytest.raises(SanitizerViolation, match="extra artifact"):
        run_replay(drifting_extra)


def test_check_false_returns_report_instead_of_raising():
    values = iter([1, 2])
    report = run_replay(
        lambda: {"extra": next(values)}, check=False
    )
    assert isinstance(report, ReplayReport)
    assert not report.deterministic


def test_fingerprint_accepts_tuple_and_bare_tracer():
    parts = traced_commit()
    as_tuple = fingerprint((parts["tracer"], parts["metrics"]))
    as_dict = fingerprint({"tracer": parts["tracer"], "metrics": parts["metrics"]})
    assert as_tuple.digest() == as_dict.digest()
    bare = fingerprint(parts["tracer"])
    assert bare.trace_hash == as_tuple.trace_hash
    assert bare.metrics_hash is None


def test_replay_needs_two_runs():
    with pytest.raises(ValueError):
        run_replay(traced_commit, runs=1)


def test_traced_ycsb_run_is_deterministic():
    """A whole traced workload replays byte-identically, numbers included."""

    def scenario():
        runner = YcsbRunner(
            YcsbConfig(
                target_qps=50,
                duration_s=4,
                measure_last_s=2,
                record_count=100,
                trace=True,
            )
        )
        result = runner.run()
        return {
            "tracer": runner.tracer,
            "metrics": runner.metrics,
            "extra": dataclasses.asdict(result),
        }

    report = run_replay(scenario)
    assert report.deterministic
    assert report.runs[0].trace_json == report.runs[1].trace_json
