"""reprolint: every check catches its bad fixture and passes the good one.

The fixtures under ``fixtures/badpkg`` and ``fixtures/goodpkg`` are mini
package trees whose directory names reuse the real subsystem names, so
the path-sensitive checks (layering, determinism allowlist, start_span
allowlist) exercise exactly the logic they apply to ``src/repro``.
"""

from pathlib import Path

import pytest

from repro.analysis.reprolint import lint_tree, main

FIXTURES = Path(__file__).parent / "fixtures"
BAD = FIXTURES / "badpkg"
GOOD = FIXTURES / "goodpkg"


@pytest.fixture(scope="module")
def bad_diagnostics():
    return lint_tree(root=BAD)


def by_check(diagnostics, check):
    return [d for d in diagnostics if d.check == check]


def test_bad_tree_fails_and_good_tree_passes():
    assert lint_tree(root=BAD)
    assert lint_tree(root=GOOD) == []


def test_wallclock_catches_every_flavour(bad_diagnostics):
    found = by_check(bad_diagnostics, "wallclock")
    assert {d.path for d in found} == {"core/uses_wallclock.py"}
    rendered = "\n".join(d.message for d in found)
    for banned in (
        "time.time",
        "time.monotonic",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
        "os.urandom",
        "uuid.uuid4",
        "secrets.token_hex",
    ):
        assert banned in rendered, banned


def test_banned_import_catches_random(bad_diagnostics):
    found = by_check(bad_diagnostics, "banned-import")
    paths = {d.path for d in found}
    assert "core/bad_imports.py" in paths
    # time imported inside a function body is still an import
    assert "core/uses_wallclock.py" in paths
    # the pragma without a reason does NOT suppress
    assert "core/bad_pragma.py" in paths


def test_set_iteration_catches_three_shapes(bad_diagnostics):
    found = by_check(bad_diagnostics, "set-iteration")
    assert [d.path for d in found] == ["spanner/bad_sets.py"] * 3
    lines = sorted(d.line for d in found)
    assert len(lines) == 3  # literal, set() comprehension, local binding


def test_layering_catches_realtime_to_client(bad_diagnostics):
    found = by_check(bad_diagnostics, "layering")
    messages = "\n".join(d.message for d in found)
    assert "'realtime' may not import 'repro.client'" in messages
    assert "'realtime' may not import 'repro.service'" in messages


def test_error_boundary_and_bare_except(bad_diagnostics):
    boundary = by_check(bad_diagnostics, "error-boundary")
    messages = "\n".join(d.message for d in boundary)
    assert "HomegrownError" in messages
    assert "not Exception" in messages
    assert "another subsystem's exception" in messages
    bare = by_check(bad_diagnostics, "bare-except")
    assert [d.path for d in bare] == ["core/bad_errors.py"]


def test_history_tap_catches_dropped_and_missing_taps(bad_diagnostics):
    found = by_check(bad_diagnostics, "history-tap")
    assert {d.path for d in found} == {"spanner/transaction.py"}
    messages = "\n".join(d.message for d in found)
    # the fault-injection path kept its name but lost its recorder tap
    assert "ReadWriteTransaction._inject_commit_faults" in messages
    # _abort disappeared entirely
    assert "ReadWriteTransaction._abort" in messages
    # the still-tapped methods are not flagged
    assert "read_versioned" not in messages
    assert "txn_begin" not in messages


def test_perf_attribution_catches_untagged_and_missing(bad_diagnostics):
    found = by_check(bad_diagnostics, "perf-attribution")
    assert {d.path for d in found} == {
        "spanner/transaction.py",
        "service/pool.py",
        "client/client.py",
    }
    messages = "\n".join(d.message for d in found)
    # commit kept its name but lost its profiler tag
    assert "ReadWriteTransaction.commit" in messages
    # the dispatch loop burns service time without accounting it
    assert "TaskPool._dispatch" in messages
    # flush was renamed away entirely — the missing-method arm
    assert "MobileClient.flush" in messages
    assert "was not found" in messages


def test_wait_tap_catches_untapped_and_missing(bad_diagnostics):
    found = by_check(bad_diagnostics, "wait-tap")
    messages = "\n".join(d.message for d in found)
    # read_versioned / commit exist but never annotate a wait cause
    assert "ReadWriteTransaction.read_versioned" in messages
    assert "ReadWriteTransaction.commit" in messages
    assert "unattributed" in messages
    # _lock_abort disappeared entirely — the missing-path arm
    assert "_lock_abort" in messages
    assert "was not found" in messages


def test_trace_span_context(bad_diagnostics):
    found = by_check(bad_diagnostics, "trace-span-context")
    assert {d.path for d in found} == {"core/bad_trace.py"}
    messages = "\n".join(d.message for d in found)
    assert "context manager" in messages
    assert "start_span" in messages


def test_fault_seeded_catches_unseeded_plan_and_stream(bad_diagnostics):
    found = by_check(bad_diagnostics, "fault-seeded")
    assert {d.path for d in found} == {"faults/bad_seed.py"}
    assert len(found) == 2  # the unseeded FaultPlan and the bare SimRandom
    messages = "\n".join(d.message for d in found)
    assert "explicit seed" in messages
    assert "SimRandom()" in messages


def test_pragma_requires_reason_and_known_check(bad_diagnostics):
    found = by_check(bad_diagnostics, "pragma")
    messages = "\n".join(d.message for d in found)
    assert "requires a reason" in messages
    assert "unknown check" in messages


def test_diagnostics_have_positions_and_render(bad_diagnostics):
    for diag in bad_diagnostics:
        assert diag.line >= 1
        assert ":" in diag.render()
        assert diag.render().startswith(diag.path)


def test_cli_exit_codes(capsys):
    assert main(["--root", str(BAD)]) == 1
    out = capsys.readouterr()
    assert "core/uses_wallclock.py" in out.out
    assert "violation(s)" in out.err
    assert main(["--root", str(GOOD)]) == 0
    assert main(["--list-checks"]) == 0
    assert main(["--root", str(BAD), "--check", "no-such"]) == 2


def test_cli_single_check_filter():
    assert main(["--root", str(BAD), "--check", "bare-except"]) == 1
    assert main(["--root", str(GOOD), "--check", "bare-except"]) == 0


def test_cli_explicit_paths():
    target = BAD / "core" / "bad_imports.py"
    assert main(["--root", str(BAD), str(target)]) == 1


def test_self_clean():
    """The acceptance criterion: the real tree lints clean."""
    assert main([]) == 0
