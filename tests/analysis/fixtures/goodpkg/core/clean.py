"""Good fixture: deterministic, layered, context-managed, justified."""

from repro.errors import InternalError
from repro.spanner.database import SpannerDatabase  # core -> spanner is sanctioned


class _PrivateFailure(Exception):
    """Module-private exceptions never cross the boundary."""


class PolishedError(InternalError):
    """Public exceptions must derive from repro.errors."""


def traced_work(tracer, keys):
    with tracer.span("core.work") as span:
        for key in sorted(set(keys)):
            span.add_event("key", {"key": key})
    try:
        return SpannerDatabase()
    except InternalError:
        raise


def justified():
    # the pragma carries its reason, so the suppression is accepted
    import time  # reprolint: disable=banned-import -- fixture proving a justified pragma suppresses

    return time
