"""Seeded fault machinery — nothing here may be flagged."""


def build(seed):
    plan = FaultPlan(seed)
    keyed = FaultPlan(seed=seed, rates={})
    stream = SimRandom(seed).fork("fault-plan")
    return plan, keyed, stream
