"""Good fixture: the sim core is the sanctioned randomness/time boundary."""

import random
import time


def bridge(seed):
    rng = random.Random(seed)
    _ = time.time()  # the one place wall clocks may be read
    return rng.random()
