"""Good fixture: explicit span lifetimes are sanctioned inside service/."""


def handle_rpc(tracer, envelope):
    span = tracer.start_span("service.rpc", parent=envelope.trace_ctx)
    envelope.on_done(span.end)
    return span
