"""A TaskPool dispatch loop that keeps its profiler tag — lints clean."""


class TaskPool:
    def __init__(self, kernel, profiler=None):
        self.kernel = kernel
        self.profiler = profiler
        self.busy_us_total = 0

    def _dispatch(self):
        service_us = 10
        self.busy_us_total += service_us
        if self.profiler:
            self.profiler.account("service", "pool.dispatch", service_us)

    def _make_completion(self, span, queued_from):
        # keeps the structured wait tap the critical-path engine needs
        if span is not None:
            span.wait("storage_read", start_us=queued_from)
