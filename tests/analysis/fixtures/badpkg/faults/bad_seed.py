"""Fault machinery built on ambient randomness — both must be flagged."""


def build():
    plan = FaultPlan()  # missing the explicit seed
    stream = SimRandom()  # bare default seed inside faults/
    return plan, stream
