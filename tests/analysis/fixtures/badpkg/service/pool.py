"""A TaskPool whose dispatch loop lost its profiler tag.

``_dispatch`` burns simulated service time but never accounts it, so
the profiler's busy-time coverage guarantee silently breaks — exactly
what the perf-attribution check must flag.
"""


class TaskPool:
    def __init__(self, kernel):
        self.kernel = kernel
        self.busy_us_total = 0

    def _dispatch(self):
        # service time accrues, but nothing feeds profiler.account(...)
        service_us = 10
        self.busy_us_total += service_us
