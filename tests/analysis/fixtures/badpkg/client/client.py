"""A MobileClient refactor that renamed ``flush`` away entirely.

The profiler-tagged entry point vanished, so perf-attribution must
raise its missing-method diagnostic for ``MobileClient.flush``.
"""


class MobileClient:
    def __init__(self, database):
        self.database = database
        self._pending = []

    def push(self):
        # flush was renamed; the REQUIRED_PERF_TAPS map was not updated
        count = len(self._pending)
        self._pending.clear()
        return count
