"""A ReadWriteTransaction refactor that dropped its history taps.

``_inject_commit_faults`` lost its recorder reference, and ``_abort``
was renamed away entirely — both must be history-tap diagnostics. The
other required methods keep their taps and must NOT be flagged.
``commit`` exists but lost its profiler tag — a perf-attribution
diagnostic.
"""


class ReadWriteTransaction:
    def __init__(self, db, txn_id):
        self.txn_id = txn_id
        recorder = db.recorder
        if recorder is not None:
            recorder.txn_begin(txn_id, 0)

    def read_versioned(self, table, row_key, for_update=False):
        recorder = self._db.recorder
        if recorder is not None:
            recorder.txn_read(self.txn_id, b"", -1, for_update)

    def scan(self, table, start, end):
        recorder = self._db.recorder
        if recorder is not None:
            recorder.txn_scan(self.txn_id, b"", None)

    def commit(self):
        # the rewrite forgot the profiler.measure("spanner", "commit") tag
        self._apply(0)

    def _inject_commit_faults(self, min_commit_ts, max_commit_ts):
        # the refactor forgot to re-plumb the unknown-outcome tap here
        self._state = "unknown"

    def _apply(self, commit_ts):
        recorder = self._db.recorder
        if recorder is not None:
            recorder.txn_commit(self.txn_id, commit_ts, [], 0, None, 0, 0)
