"""Bad fixture: order-nondeterministic set iteration, three ways."""


def literal():
    out = []
    for name in {"b", "a", "c"}:
        out.append(name)
    return out


def constructed(keys):
    return [k for k in set(keys)]


def local_binding(keys):
    pending = set(keys)
    total = 0
    for key in pending:
        total += len(key)
    return total
