"""Bad fixture: the Real-time Cache layer reaching up into the client."""

from repro.client.client import FirestoreClient  # noqa: F401
from repro.service.pool import TaskPool  # noqa: F401


def peek(client):
    return client
