"""Bad fixture: every flavour of nondeterministic time/entropy call."""

import os
import uuid
import secrets
import datetime as dt
from datetime import datetime


def stamp():
    import time

    a = time.time()
    b = time.monotonic()
    c = dt.datetime.now()
    d = datetime.utcnow()
    e = dt.date.today()
    return a, b, c, d, e


def entropy():
    return os.urandom(8), uuid.uuid4(), secrets.token_hex(4)
