"""Bad fixture: stdlib randomness imported outside the sim core."""

import random
from random import choice


def pick(items):
    random.shuffle(items)
    return choice(items)
