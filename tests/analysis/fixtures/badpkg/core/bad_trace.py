"""Bad fixture: spans opened outside a context manager."""


def leaky(tracer):
    span = tracer.span("backend.work")
    span.set_attribute("leaked", True)
    return span


def explicit(tracer):
    return tracer.start_span("backend.work")
