"""Bad fixture: exception-boundary violations plus a bare except."""

from repro.spanner.transaction import inject_definitive_failure


class HomegrownError(Exception):
    """Public exception defined outside repro.errors."""


def fail():
    raise Exception("too generic to act on")


def cross_boundary():
    raise inject_definitive_failure


def swallow():
    try:
        fail()
    except:  # noqa: E722
        pass
