"""Bad fixture: suppression pragmas that don't meet the bar."""

import random  # reprolint: disable=banned-import

x = 1  # reprolint: disable=no-such-check -- the check id does not exist
