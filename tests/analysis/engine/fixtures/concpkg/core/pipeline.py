"""Backend 7-step protocol and commit-wait fixtures."""


class Pipeline:
    def __init__(self, backend, spanner, realtime, locks, truetime, txn_id):
        self.backend = backend
        self.spanner = spanner
        self.realtime = realtime
        self.locks = locks
        self.truetime = truetime
        self.txn_id = txn_id

    def good_apply(self, writes):
        self.backend.begin(self.txn_id)
        self.backend.stage_writes(writes)
        self.spanner.prepare(self.txn_id)
        self.spanner.commit(self.txn_id)
        self.realtime.accept(self.txn_id)

    def bad_stage_after_prepare(self, writes):
        self.backend.begin(self.txn_id)
        self.spanner.prepare(self.txn_id)
        self.backend.stage_writes(writes)
        self.spanner.commit(self.txn_id)
        self.realtime.accept(self.txn_id)

    def bad_commit_without_accept(self, writes, ok):
        self.backend.begin(self.txn_id)
        self.backend.stage_writes(writes)
        self.spanner.prepare(self.txn_id)
        self.spanner.commit(self.txn_id)
        if ok:
            self.realtime.accept(self.txn_id)

    def bad_release_before_wait(self):
        self.locks.release_all(self.txn_id)
        return self.truetime.issue_commit_timestamp()

    def good_wait_then_release(self):
        ts = self.truetime.issue_commit_timestamp()
        self.locks.release_all(self.txn_id)
        return ts
