"""Atomicity-across-yield fixtures: bad/good twins."""


class Mover:
    """Read-modify-write against the MVCC store, sometimes yielding."""

    def __init__(self, kernel, locks, store, txn_id):
        self.kernel = kernel
        self.locks = locks
        self.store = store
        self.txn_id = txn_id

    def bad_shift(self, key):
        value = self.store.read_latest(key)
        self.kernel.run_until(self.kernel.now_us + 1_000)
        self.store.store_version(key, (value or 0) + 1)

    def good_shift_locked(self, key):
        self.locks.acquire(self.txn_id, key, "X")
        value = self.store.read_latest(key)
        self.kernel.run_until(self.kernel.now_us + 1_000)
        self.store.store_version(key, (value or 0) + 1)
        self.locks.release_all(self.txn_id)

    def good_shift_straight(self, key):
        value = self.store.read_latest(key)
        self.store.store_version(key, (value or 0) + 1)
