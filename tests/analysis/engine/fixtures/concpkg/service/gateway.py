"""Cross-package error-boundary fixtures."""

from repro.spanner.store import SnapshotGone, load_sanctioned, load_snapshot


def bad_fetch(store, version):
    return load_snapshot(store, version)


def good_fetch_guarded(store, version):
    try:
        return load_snapshot(store, version)
    except SnapshotGone:
        return None


def good_fetch_sanctioned(store, version):
    return load_sanctioned(store, version)
