"""Effect-inference fixtures: call cycles and duck-typing boundaries."""


def spin_feed(ctx, n):
    if n > 0:
        spin_drain(ctx, n - 1)


def spin_drain(ctx, n):
    ctx.store.store_version(n, n)
    ctx.kernel.run_until(n)
    if n > 0:
        spin_feed(ctx, n - 1)


class PlanReader:
    """A chance name collision: ``exists`` here acquires locks; a
    caller doing ``path.exists()`` must not inherit that."""

    def __init__(self, locks, txn_id):
        self.locks = locks
        self.txn_id = txn_id

    def exists(self, key):
        self.locks.acquire(self.txn_id, key, "S")
        return True


def probe_path(path):
    return path.exists()


class FaultPlan:
    """Duck-typed hook surface; ``get`` is stoplisted."""

    def __init__(self, locks, txn_id):
        self.locks = locks
        self.txn_id = txn_id

    def get(self, key):
        self.locks.acquire(self.txn_id, key, "S")
        return None

    def fault_plan(self, key):
        self.locks.acquire(self.txn_id, key, "S")
        return None


def consult(plan):
    plan.get("spanner.commit_fail")
    return plan.fault_plan("spanner.commit_fail")
