"""Lock-discipline fixtures: leak, re-acquire, order, phantom gap."""


class Discipline:
    def __init__(self, locks, store, sessions, txn_id):
        self.row_locks = locks
        self.index_locks = locks
        self.locks = locks
        self.store = store
        self.sessions = sessions
        self.txn_id = txn_id

    def bad_leaky_commit(self, ok):
        self.locks.acquire(self.txn_id, b"k", "X")
        if not ok:
            return None
        self.locks.release_all(self.txn_id)
        return True

    def good_commit(self, ok):
        self.locks.acquire(self.txn_id, b"k", "X")
        if not ok:
            self.locks.release_all(self.txn_id)
            return None
        self.locks.release_all(self.txn_id)
        return True

    def bad_retry(self):
        self.locks.release_all(self.txn_id)
        self.locks.acquire(self.txn_id, b"k", "X")
        self.locks.release_all(self.txn_id)

    def good_retry(self):
        self.locks.release_all(self.txn_id)
        self.txn_id = self.sessions.begin()
        self.locks.acquire(self.txn_id, b"k", "X")
        self.locks.release_all(self.txn_id)

    def bad_order_ab(self):
        self.row_locks.acquire(self.txn_id, b"a", "X")
        self.index_locks.acquire(self.txn_id, b"i", "X")

    def bad_order_ba(self):
        self.index_locks.acquire(self.txn_id, b"i", "X")
        self.row_locks.acquire(self.txn_id, b"a", "X")

    def bad_scan_rows(self, keys):
        out = []
        for key in keys:
            self.locks.acquire(self.txn_id, key, "S")
            out.append(self.store.read_latest(key))
        return out

    def good_scan_rows(self, keys):
        self.locks.acquire_range(self.txn_id, keys[0], keys[-1])
        out = []
        for key in keys:
            self.locks.acquire(self.txn_id, key, "S")
            out.append(self.store.read_latest(key))
        return out
