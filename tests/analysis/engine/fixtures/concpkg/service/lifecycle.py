"""Transaction-lifecycle fixtures for the typestate check."""


def bad_read_after_commit(db):
    txn = db.begin()
    txn.put(b"k", 1)
    txn.commit()
    return txn.read(b"k")


def bad_write_after_rollback(db):
    txn = db.begin()
    txn.rollback()
    txn.put(b"k", 2)


def bad_double_commit(db):
    txn = db.begin()
    txn.put(b"k", 3)
    txn.commit()
    txn.commit()


def bad_conditional_use(db, retry):
    txn = db.begin()
    if retry:
        txn.commit()
    return txn.read(b"k")


def good_reborn(db):
    txn = db.begin()
    txn.put(b"k", 4)
    txn.commit()
    txn = db.begin()
    return txn.read(b"k")
