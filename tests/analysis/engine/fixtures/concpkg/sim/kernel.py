"""Minimal event-kernel stub: the seed of yield/schedule effects.

Effect inference seeds ``may_yield``/``may_schedule`` on sim/ class
methods by name, so this stub gets the same treatment as the real
kernel without importing it.
"""


class EventKernel:
    def __init__(self):
        self.now_us = 0
        self.queue = []

    def at(self, when_us, fn, label=""):
        self.queue.append((when_us, label, fn))

    def after(self, delay_us, fn, label=""):
        self.at(self.now_us + delay_us, fn, label)

    def run_until(self, deadline_us):
        while self.queue and self.queue[0][0] <= deadline_us:
            when, _, fn = self.queue.pop(0)
            self.now_us = when
            fn()
        self.now_us = deadline_us
