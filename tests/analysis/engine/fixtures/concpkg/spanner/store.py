"""MVCC store singleton plus spanner-private exceptions (fixture)."""

from repro.errors import FirestoreError


class SnapshotGone(Exception):
    """Spanner-private: must not cross the package boundary raw."""


class StoreUnavailable(FirestoreError):
    """Sanctioned: subclasses the shared error hierarchy."""


class MVCCStore:
    def __init__(self):
        self._values = {}

    def read_latest(self, key):
        versions = self._values.get(key, ())
        return versions[-1] if versions else None

    def store_version(self, key, value):
        chain = self._values.setdefault(key, [])
        chain.append(value)


def load_snapshot(store, version):
    if version < 0:
        raise SnapshotGone(version)
    return store.read_latest(version)


def load_sanctioned(store, version):
    if version < 0:
        raise StoreUnavailable("snapshot gc'd")
    return store.read_latest(version)
