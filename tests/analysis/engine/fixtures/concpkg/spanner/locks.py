"""Two-phase lock table singleton (fixture twin of spanner.locks)."""


class LockTable:
    def __init__(self):
        self._held_by_txn = {}
        self._ranges = []

    def acquire(self, txn_id, key, mode):
        owners = self._held_by_txn.setdefault(txn_id, [])
        owners.append((key, mode))

    def acquire_range(self, txn_id, start, end):
        self._ranges.append((txn_id, start, end))
        owners = self._held_by_txn.setdefault(txn_id, [])
        owners.append((start, "range"))

    def release_all(self, txn_id):
        self._held_by_txn.pop(txn_id, None)
        self._ranges = [r for r in self._ranges if r[0] != txn_id]
