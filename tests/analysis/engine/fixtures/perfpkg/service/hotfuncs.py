"""One bad/good function pair per perflint check.

Every function here is marked hot by the fixture ledger; the tests
assert each ``bad_*`` body is flagged by exactly its check and no
``good_*`` body is flagged by anything.
"""


class Plain:
    def __init__(self, key):
        self.key = key


class Thing:
    __slots__ = ("name", "weight")

    def __init__(self, name, weight):
        self.name = name
        self.weight = weight


def bad_slots(items):
    out = 0
    for key in items:
        out += Plain(key).key
    return out


def good_slots(items):
    out = 0
    for key in items:
        out += Thing(key, 1).weight
    return out


def bad_alloc(items):
    total = 0
    for item in items:
        pair = [item, total]
        total += len(pair)
    return total


def good_alloc(items):
    total = 0
    for item in items:
        total += item
    return total


def bad_attr(things):
    out = []
    for thing in things:
        if thing.name:
            out.append(thing.name)
        out.append(thing.name)
    return out


def good_attr(things):
    out = []
    for thing in things:
        name = thing.name
        if name:
            out.append(name)
        out.append(name)
    return out


def bad_dispatch(handlers, ops):
    done = 0
    for op in ops:
        if hasattr(handlers, op.kind.name.lower()):
            done += 1
    return done


def good_dispatch(table, ops):
    done = 0
    for op in ops:
        done += table[op.kind]
    return done


def bad_try(items):
    total = 0
    for item in items:
        try:
            total += item
        except TypeError:
            total += 0
    return total


def good_try(items):
    total = 0
    try:
        for item in items:
            total += item
    except TypeError:
        total = -1
    return total


def bad_interned(stats, name, value):
    stats["latency." + name] = value
    return stats


def good_interned(stats, key, value):
    stats[key] = value
    return stats
