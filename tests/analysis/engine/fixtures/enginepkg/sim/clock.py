"""The sanctioned wall-clock boundary of the fixture package.

``sim/`` is on the determinism allowlist: banned calls here neither
trip the per-file wallclock check nor seed the interprocedural taint.
"""

import time


def wall_ns():
    return time.perf_counter_ns()


def tick(n):
    return n + 1
