"""A duck-typed hook: callers hold ``plan.fault_plan(op)`` with no
static type, so resolution must survive (and find) this method."""


class ChaosPlan:
    __slots__ = ()

    def fault_plan(self, op):
        return None
