class Record:
    def __init__(self, key):
        self.key = key


class Slotted:
    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key


class Tagged(Record):
    # ``super().__init__`` must NOT duck-resolve: dunder receivers would
    # wire every __init__ in the package together
    def __init__(self, key, tag):
        super().__init__(key)
        self.tag = tag
