from repro.service.record import Record, Slotted
from repro.sim.clock import wall_ns


def spin_a(n):
    if n:
        return spin_b(n - 1)
    return 0


def spin_b(n):
    return spin_a(n)


def dispatch(plan, items):
    total = 0
    for op in items:
        plan.fault_plan(op)
        rec = Record(op)
        srec = Slotted(op)
        total += spin_a(3) + rec.key + srec.key
    return total


def sample():
    return wall_ns()
