"""Taint fixture: a direct banned call plus two indirection hops.

``raw_now`` is the seed (flagged by the per-file wallclock check);
``now_ms`` and ``read_now`` are only reachable through the call graph —
the engine's ``wallclock-indirect`` pass must flag both callers.
"""

import time


def raw_now():
    return time.time()


def now_ms():
    return raw_now() * 1000.0


def read_now():
    return now_ms()
