"""Whole-program exception flow and the error-escape boundary check."""

from pathlib import Path

import pytest

from repro.analysis.engine.callgraph import CallGraph
from repro.analysis.engine.excflow import ExceptionFlow
from repro.analysis.engine.symbols import SymbolTable
from repro.analysis.reprolint import _iter_sources, _parse

FIXTURES = Path(__file__).parent / "fixtures"
CONCPKG = FIXTURES / "concpkg"

LOAD_SNAPSHOT = "spanner/store.py::load_snapshot"
LOAD_SANCTIONED = "spanner/store.py::load_sanctioned"
BAD_FETCH = "service/gateway.py::bad_fetch"
GUARDED = "service/gateway.py::good_fetch_guarded"


@pytest.fixture(scope="module")
def flow():
    modules = [_parse(p, CONCPKG) for p in _iter_sources(CONCPKG)]
    table = SymbolTable.build(modules)
    graph = CallGraph.build(table)
    return ExceptionFlow(table, graph)


def test_direct_raise_escapes(flow):
    assert "SnapshotGone" in flow.escapes[LOAD_SNAPSHOT]
    assert "StoreUnavailable" in flow.escapes[LOAD_SANCTIONED]


def test_escape_propagates_through_the_call_chain(flow):
    assert "SnapshotGone" in flow.escapes[BAD_FETCH]


def test_handler_stops_propagation(flow):
    assert "SnapshotGone" not in flow.escapes[GUARDED]


def test_offending_classes_exclude_sanctioned_hierarchy(flow):
    offending = flow._offending_classes()
    assert "SnapshotGone" in offending
    # subclasses of repro.errors may cross subsystems freely
    assert "StoreUnavailable" not in offending


def test_error_escape_flags_only_the_unguarded_cross_package_call(flow):
    diags = flow.check_error_escape()
    assert len(diags) == 1
    diag = diags[0]
    assert diag.check == "error-escape"
    assert diag.path == "service/gateway.py"
    assert "SnapshotGone" in diag.message
    assert "spanner→service" in diag.message
