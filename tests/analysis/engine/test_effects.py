"""Effect inference over the concpkg fixture tree.

Covers the fixpoint on call-graph cycles, yield/schedule seeding from
the fixture's own ``sim/`` stub, shared-singleton cell extraction, and
the two duck-typing boundaries: the stoplist (no edge at all) and the
duck-only effect filter (edge exists, effects do not cross).
"""

from pathlib import Path

import pytest

from repro.analysis.engine.callgraph import CallGraph
from repro.analysis.engine.effects import EffectAnalysis, duck_edge_ok
from repro.analysis.engine.symbols import SymbolTable
from repro.analysis.reprolint import _iter_sources, _parse

FIXTURES = Path(__file__).parent / "fixtures"
CONCPKG = FIXTURES / "concpkg"

RUN_UNTIL = "sim/kernel.py::EventKernel.run_until"
AFTER = "sim/kernel.py::EventKernel.after"
STORE_WRITE = "spanner/store.py::MVCCStore.store_version"
STORE_READ = "spanner/store.py::MVCCStore.read_latest"
LOCK_ACQUIRE = "spanner/locks.py::LockTable.acquire"
BAD_SHIFT = "service/races.py::Mover.bad_shift"
SPIN_FEED = "service/cycle.py::spin_feed"
SPIN_DRAIN = "service/cycle.py::spin_drain"
PROBE_PATH = "service/cycle.py::probe_path"
CONSULT = "service/cycle.py::consult"
PLAN_GET = "service/cycle.py::FaultPlan.get"
PLAN_HOOK = "service/cycle.py::FaultPlan.fault_plan"
READER_EXISTS = "service/cycle.py::PlanReader.exists"


@pytest.fixture(scope="module")
def table():
    modules = [_parse(p, CONCPKG) for p in _iter_sources(CONCPKG)]
    return SymbolTable.build(modules)


@pytest.fixture(scope="module")
def graph(table):
    return CallGraph.build(table)


@pytest.fixture(scope="module")
def analysis(table, graph):
    return EffectAnalysis(table, graph)


def test_singleton_cells_extracted_directly(analysis):
    assert "mvcc._values" in analysis.direct[STORE_WRITE].writes
    assert "mvcc._values" in analysis.direct[STORE_READ].reads
    assert "mvcc._values" not in analysis.direct[STORE_READ].writes
    assert "locks._held_by_txn" in analysis.direct[LOCK_ACQUIRE].writes


def test_sim_seeds(analysis):
    assert analysis.of(RUN_UNTIL).may_yield
    assert analysis.of(AFTER).may_schedule
    assert not analysis.of(AFTER).may_yield


def test_transitive_closure_through_duck_singleton_calls(analysis):
    eff = analysis.of(BAD_SHIFT)
    assert eff.may_yield
    assert "mvcc._values" in eff.reads
    assert "mvcc._values" in eff.writes


def test_fixpoint_converges_on_call_cycle(analysis, graph):
    # spin_feed <-> spin_drain is a cycle; the mvcc write and the yield
    # originate in spin_drain and must come all the way around.
    assert SPIN_DRAIN in graph.callees[SPIN_FEED]
    assert SPIN_FEED in graph.callees[SPIN_DRAIN]
    eff = analysis.of(SPIN_FEED)
    assert eff.may_yield
    assert "mvcc._values" in eff.writes


def test_stoplisted_get_has_no_edge_at_all(graph):
    # ``plan.get(...)`` must not resolve to FaultPlan.get: the stoplist
    # kills the edge before effects are even considered.
    assert PLAN_GET not in graph.callees[CONSULT]


def test_duck_only_hook_edge_exists_but_effects_do_not_cross(
    table, graph, analysis
):
    # ``plan.fault_plan(...)`` keeps its duck edge (hot-path marking
    # wants it) but the hook's lock effects must not leak into consult.
    assert PLAN_HOOK in graph.callees[CONSULT]
    assert PLAN_HOOK in graph.duck_only[CONSULT]
    assert analysis.of(PLAN_HOOK).acquires
    assert not analysis.of(CONSULT).acquires


def test_chance_name_collision_is_filtered(table, graph, analysis):
    # ``path.exists()`` duck-resolves to PlanReader.exists, which
    # acquires locks; probe_path must stay effect-free.
    assert READER_EXISTS in graph.callees[PROBE_PATH]
    assert READER_EXISTS in graph.duck_only[PROBE_PATH]
    assert not analysis.of(PROBE_PATH).acquires


def test_duck_edge_filter_is_singleton_and_sim_scoped(table):
    assert duck_edge_ok(table, STORE_WRITE)  # shared singleton
    assert duck_edge_ok(table, RUN_UNTIL)  # sim kernel
    assert not duck_edge_ok(table, READER_EXISTS)  # plain service code
    assert not duck_edge_ok(table, "no/such.py::fn")


def test_statement_near_sets_are_one_level(table, graph, analysis):
    # the read statement of bad_shift near-reads the mvcc cell (it
    # calls a singleton method directly), but its yield statement must
    # not: run_until touches nothing of the store.
    info = table.functions[BAD_SHIFT]
    effs = [
        analysis.statement_effects(info, stmt) for stmt in info.node.body
    ]
    assert "mvcc._values" in effs[0].near_reads
    assert effs[1].may_yield and not effs[1].near_reads
    assert "mvcc._values" in effs[2].near_writes
