"""Each perflint check against its good/bad fixture pair.

Every function in ``perfpkg/service/hotfuncs.py`` is marked hot by the
fixture ledger, so the only difference between a flagged ``bad_*`` body
and its clean ``good_*`` twin is the pattern under test.
"""

from pathlib import Path

import pytest

from repro.analysis.engine.perflint import Engine
from repro.analysis.reprolint import _iter_sources, _parse

FIXTURES = Path(__file__).parent / "fixtures"
PERFPKG = FIXTURES / "perfpkg"
LEDGER = FIXTURES / "perfpkg_ledger.json"


@pytest.fixture(scope="module")
def diags():
    modules = [_parse(p, PERFPKG) for p in _iter_sources(PERFPKG)]
    engine = Engine.build(modules, ledger_path=LEDGER)
    return engine.run_perflint()


def by_check(diags, check):
    return [d for d in diags if d.check == check]


def test_good_twins_are_never_flagged(diags):
    assert diags, "the bad fixtures must produce findings"
    assert not any("good_" in d.message for d in diags)


def test_exact_finding_counts(diags):
    counts = {}
    for diag in diags:
        counts[diag.check] = counts.get(diag.check, 0) + 1
    assert counts == {
        "missing-slots": 1,
        "hot-loop-alloc": 1,
        "repeated-attr-lookup": 1,
        "dict-dispatch-miss": 2,
        "try-in-hot-loop": 1,
        "interned-key-miss": 1,
    }


def test_missing_slots_names_class_and_hot_caller(diags):
    (diag,) = by_check(diags, "missing-slots")
    assert "'Plain'" in diag.message
    assert "bad_slots" in diag.message
    assert "Thing" not in diag.message


def test_hot_loop_alloc_carries_ledger_evidence(diags):
    (diag,) = by_check(diags, "hot-loop-alloc")
    assert "bad_alloc" in diag.message
    assert "list literal" in diag.message
    assert "% self time on perf_fixture" in diag.message


def test_repeated_attr_lookup(diags):
    (diag,) = by_check(diags, "repeated-attr-lookup")
    assert "bad_attr" in diag.message
    assert "'thing.name'" in diag.message
    assert "3x" in diag.message


def test_dict_dispatch_flags_hasattr_and_enum_synthesis(diags):
    found = by_check(diags, "dict-dispatch-miss")
    messages = " | ".join(d.message for d in found)
    assert all("bad_dispatch" in d.message for d in found)
    assert "hasattr()" in messages
    assert ".name.lower()" in messages


def test_try_in_hot_loop(diags):
    (diag,) = by_check(diags, "try-in-hot-loop")
    assert "bad_try" in diag.message


def test_interned_key_miss(diags):
    (diag,) = by_check(diags, "interned-key-miss")
    assert "bad_interned" in diag.message
