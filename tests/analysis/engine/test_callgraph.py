"""Call-graph resolution over the enginepkg fixture tree.

The fixture package has a call cycle (``spin_a`` <-> ``spin_b``), a
duck-typed ``fault_plan`` hook with no static receiver type, precise
constructor edges, and a ``super().__init__`` call that must NOT be
duck-resolved.
"""

from pathlib import Path

import pytest

from repro.analysis.engine.callgraph import CallGraph
from repro.analysis.engine.hotpath import HotPaths
from repro.analysis.engine.symbols import SymbolTable
from repro.analysis.reprolint import _iter_sources, _parse

FIXTURES = Path(__file__).parent / "fixtures"
ENGINEPKG = FIXTURES / "enginepkg"
LEDGER = FIXTURES / "enginepkg_ledger.json"

DISPATCH = "service/loop.py::dispatch"
SPIN_A = "service/loop.py::spin_a"
SPIN_B = "service/loop.py::spin_b"
FAULT_PLAN = "faults/plan.py::ChaosPlan.fault_plan"
RECORD_INIT = "service/record.py::Record.__init__"
SLOTTED_INIT = "service/record.py::Slotted.__init__"


@pytest.fixture(scope="module")
def table():
    modules = [_parse(p, ENGINEPKG) for p in _iter_sources(ENGINEPKG)]
    return SymbolTable.build(modules)


@pytest.fixture(scope="module")
def graph(table):
    # this also exercises "duck-typed hooks must not crash resolution"
    return CallGraph.build(table)


def test_cycle_edges_are_symmetric(graph):
    assert SPIN_B in graph.callees[SPIN_A]
    assert SPIN_A in graph.callees[SPIN_B]
    assert SPIN_A in graph.callers[SPIN_B]
    assert SPIN_B in graph.callers[SPIN_A]


def test_duck_typed_hook_resolves(graph):
    assert FAULT_PLAN in graph.callees[DISPATCH]
    assert DISPATCH in graph.callers[FAULT_PLAN]


def test_instantiation_resolves_class_and_init(graph):
    assert graph.instantiates[DISPATCH] == (
        "service/record.py::Record",
        "service/record.py::Slotted",
    )
    assert RECORD_INIT in graph.callees[DISPATCH]
    assert SLOTTED_INIT in graph.callees[DISPATCH]


def test_super_init_is_not_duck_resolved(graph):
    # Tagged.__init__ calls super().__init__; were dunders duck-typed,
    # Record.__init__ would gain a caller edge from Tagged.__init__
    assert graph.callers[RECORD_INIT] == (DISPATCH,)
    tagged = "service/record.py::Tagged.__init__"
    assert graph.callees[tagged] == ()


def test_banned_calls_recorded_as_external(graph):
    assert "time.time" in graph.external_calls["core/clockuser.py::raw_now"]
    assert (
        "time.perf_counter_ns"
        in graph.external_calls["sim/clock.py::wall_ns"]
    )


def test_call_lines_point_at_first_call_site(graph):
    line = graph.call_lines[DISPATCH][FAULT_PLAN]
    source = (ENGINEPKG / "service" / "loop.py").read_text().splitlines()
    assert "plan.fault_plan(op)" in source[line - 1]


def test_hot_closure_is_exact(table, graph):
    hot = HotPaths.from_ledger(LEDGER, table, graph)
    assert set(hot.evidence) == {
        DISPATCH,
        SPIN_A,
        SPIN_B,
        FAULT_PLAN,
        RECORD_INIT,
        SLOTTED_INIT,
    }
    # the seed carries ledger evidence; closure members carry the chain
    assert "42.0% self time on fixture_speed" in hot.why(DISPATCH)
    assert hot.why(FAULT_PLAN) == f"called from hot {DISPATCH}"
    # sample sits below the 1% self-time threshold: not a seed, and
    # nothing hot calls it
    assert "service/loop.py::sample" not in hot
    assert hot.source.endswith("enginepkg_ledger.json")


def test_missing_ledger_yields_empty_hot_set(table, graph):
    hot = HotPaths.from_ledger(None, table, graph)
    assert len(hot) == 0
    missing = FIXTURES / "no_such_ledger.json"
    assert len(HotPaths.from_ledger(missing, table, graph)) == 0
    assert HotPaths.from_ledger(missing, table, graph).source == "no ledger"
