"""CFG construction and the dataflow fixpoints on hand-written bodies."""

import ast
import textwrap

import pytest

from repro.analysis.engine.cfg import build_cfg
from repro.analysis.engine.dataflow import liveness, reaching_definitions


def _fn(source):
    tree = ast.parse(textwrap.dedent(source))
    node = tree.body[0]
    assert isinstance(node, ast.FunctionDef)
    return node


def _block_with(cfg, node_type):
    matches = [
        block
        for block in cfg.blocks
        if any(isinstance(s, node_type) for s in block.stmts)
    ]
    assert len(matches) == 1, f"expected one block holding {node_type}"
    return matches[0]


def test_build_cfg_rejects_non_functions():
    with pytest.raises(TypeError):
        build_cfg(ast.parse("x = 1").body[0])


def test_entry_and_synthetic_exit():
    cfg = build_cfg(_fn("def f():\n    return 1\n"))
    assert cfg.blocks[0].index == 0
    exit_block = cfg.blocks[cfg.exit_index]
    assert exit_block.stmts == []
    assert exit_block.succs == []
    # the return edges straight to the exit
    assert cfg.exit_index in cfg.blocks[0].succs


def test_if_join_sees_both_definitions():
    cfg = build_cfg(
        _fn(
            """
            def f(flag):
                if flag:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
    )
    rd = reaching_definitions(cfg)
    join = _block_with(cfg, ast.Return)
    defs = rd.reaching(join.index, "x")
    assert len(defs) == 2
    values = sorted(d.value.value for d in defs)
    assert values == [1, 2]


def test_redefinition_kills_earlier_def():
    cfg = build_cfg(
        _fn(
            """
            def g(flag):
                x = 1
                x = 2
                if flag:
                    y = x
                return x
            """
        )
    )
    rd = reaching_definitions(cfg)
    ret = _block_with(cfg, ast.Return)
    defs = rd.reaching(ret.index, "x")
    assert len(defs) == 1
    assert defs[0].value.value == 2
    # within the defining block itself the kill already happened
    x_out = [d for k, d in rd.reach_out[0].items() if k[0] == "x"]
    assert len(x_out) == 1 and x_out[0].value.value == 2


def test_loop_back_edge_carries_body_definition():
    cfg = build_cfg(
        _fn(
            """
            def h(items):
                out = 0
                for i in items:
                    out = out + 1
                return out
            """
        )
    )
    rd = reaching_definitions(cfg)
    head = _block_with(cfg, ast.For)
    # both the initial def and the loop-body def reach the head: the
    # back edge is in the graph
    assert len(rd.reaching(head.index, "out")) == 2
    ret = _block_with(cfg, ast.Return)
    assert len(rd.reaching(ret.index, "out")) == 2
    # the for target's definition has no statically evident value
    i_defs = [d for d in rd.all_defs if d.name == "i"]
    assert len(i_defs) == 1 and i_defs[0].value is None


def test_augassign_definition_has_no_value():
    cfg = build_cfg(_fn("def f(x):\n    x += 1\n    return x\n"))
    rd = reaching_definitions(cfg)
    defs = [d for d in rd.all_defs if d.name == "x"]
    assert len(defs) == 1 and defs[0].value is None


def test_try_body_edges_into_handler():
    cfg = build_cfg(
        _fn(
            """
            def f(d):
                try:
                    v = d.pop()
                except KeyError:
                    v = None
                return v
            """
        )
    )
    rd = reaching_definitions(cfg)
    ret = _block_with(cfg, ast.Return)
    # either arm's definition of v may reach the return
    assert len(rd.reaching(ret.index, "v")) == 2


def test_liveness_params_in_locals_out():
    cfg = build_cfg(
        _fn(
            """
            def k(a, b):
                c = a + b
                return c
            """
        )
    )
    live_in, live_out = liveness(cfg)
    assert live_in[0] == ["a", "b"]
    assert "c" not in live_in[0]
    assert live_out[cfg.exit_index] == []


def test_liveness_across_loop():
    cfg = build_cfg(
        _fn(
            """
            def m(items):
                total = 0
                for item in items:
                    total = total + item
                return total
            """
        )
    )
    live_in, live_out = liveness(cfg)
    # ``items`` is live into the entry block (consumed by the loop);
    # ``total`` is not, because the entry defines it before any use
    assert "items" in live_in[0]
    assert "total" not in live_in[0]
    body = next(
        b
        for b in cfg.blocks
        if any(isinstance(s, ast.Assign) for s in b.stmts)
        and b.index != 0
    )
    assert "total" in live_out[body.index]


def test_reaching_is_deterministic_across_builds():
    source = """
        def f(flag, items):
            x = 0
            for i in items:
                if flag:
                    x = x + i
                else:
                    x = 0
            return x
        """

    def snapshot():
        rd = reaching_definitions(build_cfg(_fn(source)))
        return [(d.name, d.def_id, d.lineno) for d in rd.all_defs]

    assert snapshot() == snapshot()
