"""Driver-level tests for the v3 engine: report formats, the ledger
staleness guard, pragma handling and cross-seed determinism."""

import io
import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.engine import driver
from repro.analysis.engine.driver import _staleness_warnings, run_engine
from repro.analysis.engine.perflint import Engine
from repro.analysis.reprolint import _iter_sources, _parse

FIXTURES = Path(__file__).parent / "fixtures"
CONCPKG = FIXTURES / "concpkg"
REPO_ROOT = Path(__file__).resolve().parents[3]

V3_CHECKS = {
    "atomicity-across-yield",
    "lock-discipline",
    "typestate",
    "error-escape",
}

GENEROUS_BUDGET = (
    '["service/"]\nmax = 99\n'
    '["core/"]\nmax = 99\n'
    '["spanner/"]\nmax = 99\n'
    '["sim/"]\nmax = 99\n'
)


def _run(tmp_path, report_format="text", out_path=None):
    budget = tmp_path / "budget.toml"
    budget.write_text(GENEROUS_BUDGET)
    out = io.StringIO()
    rc = run_engine(
        root=CONCPKG,
        budget_path=budget,
        ledger_path=tmp_path / "missing_ledger.json",
        out=out,
        report_format=report_format,
        out_path=out_path,
    )
    return rc, out.getvalue()


# -- report formats ----------------------------------------------------------


def test_text_report_carries_all_four_checks(tmp_path):
    rc, text = _run(tmp_path)
    assert rc == 1
    for check in sorted(V3_CHECKS):
        assert f": {check}: " in text


def test_json_report(tmp_path):
    rc, text = _run(tmp_path, report_format="json")
    assert rc == 1
    payload = json.loads(text)
    assert payload["exit_code"] == 1
    assert V3_CHECKS <= {f["check"] for f in payload["findings"]}
    for finding in payload["findings"]:
        assert set(finding) == {"path", "line", "col", "check", "message"}
    assert {b["prefix"] for b in payload["budget"]} == {
        "service/", "core/", "spanner/", "sim/"
    }
    assert isinstance(payload["warnings"], list)


def test_json_report_writes_artifact_file(tmp_path):
    report = tmp_path / "engine-report.json"
    rc, text = _run(tmp_path, report_format="json", out_path=report)
    assert rc == 1
    assert text == ""  # everything went to the file
    payload = json.loads(report.read_text())
    assert payload["exit_code"] == 1


def test_github_format_emits_workflow_commands(tmp_path):
    rc, text = _run(tmp_path, report_format="github")
    assert rc == 1
    error_lines = [l for l in text.splitlines() if l.startswith("::error ")]
    assert error_lines
    assert all(",line=" in l and ",col=" in l for l in error_lines)
    assert any("title=typestate" in l for l in error_lines)


def test_reports_are_byte_identical_across_hash_seeds(tmp_path):
    outs = []
    for seed in ("0", "1"):
        budget = tmp_path / "budget.toml"
        budget.write_text(GENEROUS_BUDGET)
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [
                sys.executable, "-m", "repro.analysis", "--engine",
                "--root", str(CONCPKG),
                "--budget", str(budget),
                "--ledger", str(tmp_path / "missing_ledger.json"),
                "--format", "json",
            ],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT,
        )
        assert proc.returncode == 1
        outs.append(proc.stdout)
    assert outs[0] == outs[1]


# -- pragmas -----------------------------------------------------------------


def test_v3_findings_are_suppressible_by_pragma(tmp_path):
    root = tmp_path / "pkg"
    (root / "service").mkdir(parents=True)
    (root / "service" / "mod.py").write_text(
        "def bad(db):\n"
        "    txn = db.begin()\n"
        "    txn.commit()\n"
        "    # reprolint: disable=typestate -- fixture: exercising pragma flow\n"
        "    txn.commit()\n"
    )
    budget = tmp_path / "budget.toml"
    budget.write_text('["service/"]\nmax = 0\n')
    out = io.StringIO()
    rc = run_engine(
        root=root,
        budget_path=budget,
        ledger_path=tmp_path / "missing_ledger.json",
        out=out,
    )
    assert rc == 0, out.getvalue()
    assert "engine: 0 findings" in out.getvalue()


# -- staleness guard ---------------------------------------------------------


@pytest.fixture()
def engine():
    modules = [_parse(p, CONCPKG) for p in _iter_sources(CONCPKG)]
    return Engine.build(modules, ledger_path=None)


def _ledger(tmp_path, functions, run_note="fixture run over 10 sim-s"):
    path = tmp_path / "speed_ledger.json"
    path.write_text(
        json.dumps({"run": run_note, "functions": functions})
    )
    return path


def _baseline(tmp_path, ratio):
    path = tmp_path / "BENCH_gate_speed.json"
    path.write_text(
        json.dumps(
            {"metrics": {"wall_us_per_sim_us": {"value": ratio}}}
        )
    )
    return path


RESOLVING = [
    {"file": "service/races.py", "function": "bad_shift", "line": 13,
     "self_s": 0.5},
    {"file": "spanner/locks.py", "function": "acquire", "line": 9,
     "self_s": 0.5},
]


def test_unresolvable_ledger_warns_stale(engine, tmp_path, monkeypatch):
    monkeypatch.setattr(
        driver, "DEFAULT_BASELINE", tmp_path / "absent.json"
    )
    ledger = _ledger(
        tmp_path,
        [
            {"file": "gone/old.py", "function": "vanished", "line": 1,
             "self_s": 1.0},
            {"file": "gone/old.py", "function": "renamed", "line": 9,
             "self_s": 1.0},
        ],
    )
    warnings = _staleness_warnings(engine, ledger)
    assert len(warnings) == 1
    assert "stale" in warnings[0] and "0/2" in warnings[0]


def test_ledger_ratio_outside_band_warns(engine, tmp_path, monkeypatch):
    monkeypatch.setattr(
        driver, "DEFAULT_BASELINE", _baseline(tmp_path, 0.01)
    )
    # 1.0 self-s over 10 sim-s = 0.1; 10x the 0.01 baseline > 4.0 band
    ledger = _ledger(tmp_path, RESOLVING)
    warnings = _staleness_warnings(engine, ledger)
    assert len(warnings) == 1
    assert "disagrees" in warnings[0]
    assert "10.00x" in warnings[0]


def test_healthy_ledger_stays_quiet(engine, tmp_path, monkeypatch):
    # same ratio as the ledger (0.1) -> rel 1.0x, inside the band
    monkeypatch.setattr(
        driver, "DEFAULT_BASELINE", _baseline(tmp_path, 0.1)
    )
    ledger = _ledger(tmp_path, RESOLVING)
    assert _staleness_warnings(engine, ledger) == []


def test_missing_ledger_is_not_stale(engine, tmp_path):
    assert _staleness_warnings(engine, tmp_path / "nope.json") == []
