"""Atomicity-across-yield and lock-discipline over concpkg.

Every bad fixture fires exactly once under its tag; every good twin
stays silent.
"""

from pathlib import Path

import pytest

from repro.analysis.engine.callgraph import CallGraph
from repro.analysis.engine.concurrency import (
    FunctionFlow,
    check_atomicity,
    check_lock_discipline,
)
from repro.analysis.engine.effects import EffectAnalysis
from repro.analysis.engine.symbols import SymbolTable
from repro.analysis.reprolint import _iter_sources, _parse

FIXTURES = Path(__file__).parent / "fixtures"
CONCPKG = FIXTURES / "concpkg"


@pytest.fixture(scope="module")
def flows():
    modules = [_parse(p, CONCPKG) for p in _iter_sources(CONCPKG)]
    table = SymbolTable.build(modules)
    graph = CallGraph.build(table)
    analysis = EffectAnalysis(table, graph)
    return {
        qual: FunctionFlow(info, analysis)
        for qual, info in sorted(table.functions.items())
    }


@pytest.fixture(scope="module")
def atomicity(flows):
    return check_atomicity(flows)


@pytest.fixture(scope="module")
def discipline(flows):
    return check_lock_discipline(flows)


def _with_tag(diags, tag):
    return [d for d in diags if f"[{tag}]" in d.message]


def test_unprotected_read_yield_write_is_flagged(atomicity):
    assert len(atomicity) == 1
    diag = atomicity[0]
    assert diag.path == "service/races.py"
    assert diag.check == "atomicity-across-yield"
    assert "bad_shift" in diag.message
    assert "mvcc._values" in diag.message
    assert "run_until" in diag.message


def test_lock_held_across_yield_is_not_a_race(atomicity):
    assert not any("good_shift_locked" in d.message for d in atomicity)


def test_no_yield_no_race(atomicity):
    assert not any("good_shift_straight" in d.message for d in atomicity)


def test_static_lock_leak(discipline):
    leaks = _with_tag(discipline, "static-lock-leak")
    assert len(leaks) == 1
    assert "bad_leaky_commit" in leaks[0].message
    assert not any("good_commit" in d.message for d in discipline)


def test_static_acquire_after_release(discipline):
    hits = _with_tag(discipline, "static-acquire-after-release")
    assert len(hits) == 1
    assert "bad_retry" in hits[0].message
    # a fresh begin() resets the discipline
    assert not any("good_retry" in d.message for d in discipline)


def test_static_lock_order(discipline):
    hits = _with_tag(discipline, "static-lock-order")
    assert len(hits) == 1
    assert "bad_order_ba" in hits[0].message
    assert "bad_order_ab" in hits[0].message  # cites the other site


def test_static_scan_range_gap(discipline):
    hits = _with_tag(discipline, "static-scan-range-gap")
    assert len(hits) == 1
    assert "bad_scan_rows" in hits[0].message
    assert not any("good_scan_rows" in d.message for d in discipline)


def test_pure_2pl_readers_are_out_of_scope(flows):
    # functions that only acquire (locks outlive the return, 2PL-style)
    # must not be treated as lock-lifetime owners
    diags = check_lock_discipline(
        {q: f for q, f in flows.items() if q.endswith("bad_order_ab")}
    )
    assert not _with_tag(diags, "static-lock-leak")
