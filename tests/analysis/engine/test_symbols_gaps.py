"""Symbol-table/CFG regression tests for lambdas, comprehension
scopes and nested functions.

Named lambdas are lifted into their own symbol-table functions (their
calls must not be attributed to the enclosing scope); comprehensions
are *not* separate functions (their calls belong to the enclosing
one); nested defs are their own graph nodes.
"""

from pathlib import Path

import pytest

from repro.analysis.engine.callgraph import CallGraph
from repro.analysis.engine.cfg import build_cfg
from repro.analysis.engine.effects import EffectAnalysis
from repro.analysis.engine.symbols import SymbolTable
from repro.analysis.reprolint import _iter_sources, _parse

SRC = '''\
def comp_helper(x):
    return x

def lam_helper(x):
    return x

def inner_helper(x):
    return x

def outer(items):
    def inner(x):
        return inner_helper(x)
    key_fn = lambda item: lam_helper(item)
    squares = {k: comp_helper(v) for k, v in items}
    totals = [lam for lam in squares if comp_helper(lam)]
    return inner, key_fn, totals

named = lambda x: lam_helper(x)
'''

OUTER = "service/mod.py::outer"
INNER = "service/mod.py::outer.inner"
KEY_FN = "service/mod.py::outer.key_fn"
NAMED = "service/mod.py::named"
LAM_HELPER = "service/mod.py::lam_helper"
INNER_HELPER = "service/mod.py::inner_helper"
COMP_HELPER = "service/mod.py::comp_helper"


@pytest.fixture(scope="module")
def built(tmp_path_factory):
    root = tmp_path_factory.mktemp("lambdapkg")
    mod = root / "service" / "mod.py"
    mod.parent.mkdir()
    mod.write_text(SRC)
    modules = [_parse(p, root) for p in _iter_sources(root)]
    table = SymbolTable.build(modules)
    return table, CallGraph.build(table)


def test_named_lambdas_are_lifted(built):
    table, _ = built
    assert KEY_FN in table.functions
    assert table.functions[KEY_FN].is_lambda
    assert NAMED in table.functions
    assert table.functions[NAMED].is_lambda


def test_lambda_calls_attribute_to_the_lambda_not_the_enclosure(built):
    _, graph = built
    assert LAM_HELPER in graph.callees[KEY_FN]
    assert LAM_HELPER in graph.callees[NAMED]
    assert LAM_HELPER not in graph.callees[OUTER]


def test_nested_function_is_its_own_node(built):
    table, graph = built
    assert INNER in table.functions
    assert INNER_HELPER in graph.callees[INNER]
    assert INNER_HELPER not in graph.callees[OUTER]


def test_comprehension_calls_belong_to_the_enclosing_function(built):
    _, graph = built
    assert COMP_HELPER in graph.callees[OUTER]


def test_cfg_and_effects_handle_lifted_bodies(built):
    table, graph = built
    # neither pass may crash on the synthetic lambda FunctionDefs, and
    # statement effects of the enclosing function must not pull the
    # lambda body in twice
    analysis = EffectAnalysis(table, graph)
    info = table.functions[OUTER]
    cfg = build_cfg(info.node)
    assert cfg.blocks
    for stmt in info.node.body:
        analysis.statement_effects(info, stmt)
    assert analysis.of(KEY_FN) is not None
