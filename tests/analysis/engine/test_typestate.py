"""Typestate checks over concpkg: lifecycle, commit-wait, protocol."""

from pathlib import Path

import pytest

from repro.analysis.engine.callgraph import CallGraph
from repro.analysis.engine.concurrency import (
    FunctionFlow,
    check_atomicity,
    check_lock_discipline,
)
from repro.analysis.engine.effects import EffectAnalysis
from repro.analysis.engine.excflow import check_error_escape
from repro.analysis.engine.symbols import SymbolTable
from repro.analysis.engine.typestate import (
    STATIC_COUNTERPARTS,
    check_typestate,
)
from repro.analysis.reprolint import _iter_sources, _parse

FIXTURES = Path(__file__).parent / "fixtures"
CONCPKG = FIXTURES / "concpkg"


@pytest.fixture(scope="module")
def built():
    modules = [_parse(p, CONCPKG) for p in _iter_sources(CONCPKG)]
    table = SymbolTable.build(modules)
    graph = CallGraph.build(table)
    analysis = EffectAnalysis(table, graph)
    flows = {
        qual: FunctionFlow(info, analysis)
        for qual, info in sorted(table.functions.items())
    }
    return table, graph, flows


@pytest.fixture(scope="module")
def typestate(built):
    _, _, flows = built
    return check_typestate(flows)


def _with_tag(diags, tag):
    return [d for d in diags if f"[{tag}]" in d.message]


def test_read_after_commit(typestate):
    hits = _with_tag(typestate, "txn-read-after-commit")
    assert {d.message.split(":")[0] for d in hits} == {
        "bad_read_after_commit",
        "bad_conditional_use",  # terminal on one path is enough
    }


def test_write_after_rollback(typestate):
    hits = _with_tag(typestate, "txn-write-after-commit")
    assert len(hits) == 1
    assert "bad_write_after_rollback" in hits[0].message
    assert "rolled back" in hits[0].message


def test_double_commit(typestate):
    hits = _with_tag(typestate, "txn-double-commit")
    assert len(hits) == 1
    assert "bad_double_commit" in hits[0].message


def test_rebegin_resets_the_lifecycle(typestate):
    assert not any("good_reborn" in d.message for d in typestate)


def test_commit_wait_order(typestate):
    hits = _with_tag(typestate, "static-commit-wait")
    assert len(hits) == 1
    assert "bad_release_before_wait" in hits[0].message
    assert not any(
        "good_wait_then_release" in d.message for d in typestate
    )


def test_backend_step_order(typestate):
    hits = _with_tag(typestate, "backend-step-order")
    assert len(hits) == 1
    assert "bad_stage_after_prepare" in hits[0].message
    assert "step 2" in hits[0].message and "step 5" in hits[0].message


def test_backend_missing_accept(typestate):
    hits = _with_tag(typestate, "backend-missing-accept")
    assert len(hits) == 1
    assert "bad_commit_without_accept" in hits[0].message
    assert not any("good_apply" in d.message for d in typestate)


# -- dynamic/static coverage -------------------------------------------------


def test_every_dynamic_sanitizer_class_has_a_static_counterpart():
    # the dynamic 2PL sanitizer ids, verbatim from sanitizers/locks.py
    # and sanitizers/truetime.py
    assert {
        "lock-acquire-after-release",
        "lock-leak",
        "scan-without-range-lock",
        "truetime-commit-wait",
    } <= set(STATIC_COUNTERPARTS)


def test_every_counterpart_tag_is_exercised_by_a_fixture(built):
    table, graph, flows = built
    diags = []
    diags.extend(check_atomicity(flows))
    diags.extend(check_lock_discipline(flows))
    diags.extend(check_typestate(flows))
    diags.extend(check_error_escape(table, graph))
    messages = "\n".join(d.message for d in diags)
    for tag in sorted(STATIC_COUNTERPARTS.values()):
        assert f"[{tag}]" in messages, f"no fixture exercises [{tag}]"
