"""Interprocedural wallclock taint over the enginepkg fixture.

``core/clockuser.py`` wraps ``time.time()`` behind two helper hops;
``wallclock-indirect`` must flag each *caller* at its call site, with
the full chain in the message, while the sanctioned ``sim/`` boundary
stays untainted.
"""

from pathlib import Path

import pytest

from repro.analysis.engine.perflint import Engine
from repro.analysis.reprolint import _iter_sources, _parse

FIXTURES = Path(__file__).parent / "fixtures"
ENGINEPKG = FIXTURES / "enginepkg"


@pytest.fixture(scope="module")
def diags():
    modules = [_parse(p, ENGINEPKG) for p in _iter_sources(ENGINEPKG)]
    engine = Engine.build(modules, ledger_path=None)
    return engine.check_wallclock_indirect()


def test_both_indirection_hops_flagged_at_caller(diags):
    assert len(diags) == 2
    assert all(d.path == "core/clockuser.py" for d in diags)
    assert all(d.check == "wallclock-indirect" for d in diags)
    chains = " | ".join(sorted(d.message for d in diags))
    assert "(now_ms -> raw_now -> time.time)" in chains
    assert "(read_now -> now_ms -> raw_now -> time.time)" in chains


def test_findings_anchor_on_the_call_site(diags):
    source = (ENGINEPKG / "core" / "clockuser.py").read_text().splitlines()
    flagged = sorted(source[d.line - 1] for d in diags)
    assert flagged == ["    return now_ms()", "    return raw_now() * 1000.0"]


def test_seed_itself_is_not_flagged_indirect(diags):
    # raw_now makes the banned call itself: that is the per-file
    # wallclock check's finding, not an indirect one
    source = (ENGINEPKG / "core" / "clockuser.py").read_text().splitlines()
    time_line = next(
        i for i, line in enumerate(source, 1) if "time.time()" in line
    )
    assert all(d.line != time_line for d in diags)


def test_sim_boundary_never_taints(diags):
    # sample() calls sim's wall_ns(), which calls time.perf_counter_ns —
    # the sim/ allowlist stops the taint at the sanctioned boundary
    messages = " | ".join(d.message for d in diags)
    assert "wall_ns" not in messages
    assert "sample" not in messages
