"""Engine driver: the speed budget, pragma handling, and determinism.

The byte-identical test runs the CLI twice under different
``PYTHONHASHSEED`` values: sorted worklists and dict-as-ordered-set
bookkeeping mean the full report must not move by a single byte.
"""

import io
import os
import subprocess
import sys
from pathlib import Path

from repro.analysis.engine.driver import (
    _budget_key,
    _parse_budget_text,
    load_budget,
    run_engine,
)
from repro.analysis.reprolint import ParsedModule, _run_checks

FIXTURES = Path(__file__).parent / "fixtures"
ENGINEPKG = FIXTURES / "enginepkg"
ENGINE_LEDGER = FIXTURES / "enginepkg_ledger.json"
PERFPKG = FIXTURES / "perfpkg"
PERF_LEDGER = FIXTURES / "perfpkg_ledger.json"
REPO_ROOT = Path(__file__).resolve().parents[3]

BUDGET_TEXT = (
    "# ratchet fixture\n"
    '["service/"]\n'
    "max = 1 # one reviewed finding\n"
    "\n"
    '["service/hot.py"]\n'
    "max = 0\n"
    "\n"
    '["core/"]\n'
    "max = 2\n"
)


# -- budget parsing ----------------------------------------------------------


def test_load_budget_and_text_fallback_agree(tmp_path):
    budget_file = tmp_path / "budget.toml"
    budget_file.write_text(BUDGET_TEXT)
    expected = {"service/": 1, "service/hot.py": 0, "core/": 2}
    assert load_budget(budget_file) == expected
    assert _parse_budget_text(BUDGET_TEXT) == expected


def test_budget_key_longest_prefix_wins():
    budget = {"service/": 1, "service/hot.py": 0, "core/": 2}
    assert _budget_key("service/hot.py", budget) == "service/hot.py"
    assert _budget_key("service/other.py", budget) == "service/"
    assert _budget_key("core/doc.py", budget) == "core/"
    assert _budget_key("rules/match.py", budget) == ""


# -- budget metering ---------------------------------------------------------


def _write_budget(tmp_path, text):
    budget_file = tmp_path / "budget.toml"
    budget_file.write_text(text)
    return budget_file


def test_budget_allows_exactly_the_reviewed_count(tmp_path):
    # perfpkg produces exactly 7 budgeted findings and zero hard ones
    budget = _write_budget(tmp_path, '["service/"]\nmax = 7\n')
    out = io.StringIO()
    rc = run_engine(
        root=PERFPKG, budget_path=budget, ledger_path=PERF_LEDGER, out=out
    )
    assert rc == 0
    text = out.getvalue()
    assert "engine: 0 findings" in text
    assert "service/".ljust(24) + " 7/7 ok" in text


def test_budget_ratchet_fails_one_below(tmp_path):
    budget = _write_budget(tmp_path, '["service/"]\nmax = 6\n')
    out = io.StringIO()
    rc = run_engine(
        root=PERFPKG, budget_path=budget, ledger_path=PERF_LEDGER, out=out
    )
    assert rc == 1
    text = out.getvalue()
    assert "service/".ljust(24) + " 7/6 OVER" in text
    assert "violation(s)" in text


def test_uncovered_path_has_zero_allowance(tmp_path):
    budget = _write_budget(tmp_path, '["realtime/"]\nmax = 5\n')
    out = io.StringIO()
    rc = run_engine(
        root=PERFPKG, budget_path=budget, ledger_path=PERF_LEDGER, out=out
    )
    assert rc == 1
    assert "no speed-budget entry covers this path" in out.getvalue()


# -- pragmas -----------------------------------------------------------------

HOT_LOOP = (
    "def hot_loop(items):\n"
    "    out = 0\n"
    "    for item in items:\n"
    "{pragma}"
    "        pair = [item, out]\n"
    "        out += len(pair)\n"
    "    return out\n"
)
PRAGMA = (
    "        # reprolint: disable=hot-loop-alloc"
    " -- fixture: suppression under test\n"
)


def _mini_tree(tmp_path, pragma):
    root = tmp_path / "pkg"
    (root / "service").mkdir(parents=True)
    (root / "service" / "x.py").write_text(
        HOT_LOOP.format(pragma=pragma)
    )
    ledger = tmp_path / "ledger.json"
    ledger.write_text(
        '{"run": "t", "functions": [{"file": "service/x.py",'
        ' "function": "hot_loop", "line": 1, "self_fraction": 0.5}]}'
    )
    budget = _write_budget(tmp_path, '["service/"]\nmax = 0\n')
    return root, ledger, budget


def test_reasoned_pragma_suppresses_engine_finding(tmp_path):
    root, ledger, budget = _mini_tree(tmp_path, PRAGMA)
    out = io.StringIO()
    rc = run_engine(root=root, budget_path=budget, ledger_path=ledger, out=out)
    assert rc == 0
    assert "engine: 0 findings" in out.getvalue()


def test_without_pragma_the_finding_lands(tmp_path):
    root, ledger, budget = _mini_tree(tmp_path, "")
    out = io.StringIO()
    rc = run_engine(root=root, budget_path=budget, ledger_path=ledger, out=out)
    assert rc == 1
    assert "hot-loop-alloc" in out.getvalue()


def _module(source):
    return ParsedModule(Path("/fixture/service/m.py"), "service/m.py", source)


def test_engine_check_ids_are_pragma_recognizable():
    diags = _run_checks(
        [
            _module(
                "def f():\n"
                "    pass\n"
                "# reprolint: disable=hot-loop-alloc,wallclock-indirect"
                " -- engine ids are known to the pragma layer\n"
            )
        ]
    )
    assert diags == []


def test_unknown_check_in_pragma_is_reported():
    diags = _run_checks(
        [_module("# reprolint: disable=flux-capacitor -- not a check\n")]
    )
    assert len(diags) == 1
    assert diags[0].check == "pragma"
    assert "unknown check 'flux-capacitor'" in diags[0].message
    assert "wallclock-indirect" in diags[0].message


def test_pragma_without_reason_is_rejected():
    diags = _run_checks(
        [_module("# reprolint: disable=hot-loop-alloc\n")]
    )
    assert len(diags) == 1
    assert diags[0].check == "pragma"
    assert "requires a reason" in diags[0].message


# -- byte-identical determinism ----------------------------------------------


def _run_cli(hashseed, budget):
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = hashseed
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.analysis",
            "--engine",
            "--root",
            str(ENGINEPKG),
            "--ledger",
            str(ENGINE_LEDGER),
            "--budget",
            str(budget),
        ],
        capture_output=True,
        env=env,
        cwd=str(REPO_ROOT),
    )


def test_report_is_byte_identical_across_hash_seeds(tmp_path):
    budget = _write_budget(
        tmp_path, '["service/"]\nmax = 1\n\n["core/"]\nmax = 0\n'
    )
    first = _run_cli("0", budget)
    second = _run_cli("1", budget)
    assert first.returncode == second.returncode == 1
    assert first.stdout == second.stdout
    assert first.stderr == second.stderr
    text = first.stdout.decode()
    # the full pipeline surfaced in one deterministic report: taint
    # chain, per-file findings, budget table
    assert "read_now -> now_ms -> raw_now -> time.time" in text
    assert "banned-import" in text
    assert "speed budget (used/allowed):" in text
    assert "service/".ljust(24) + " 1/1 ok" in text
