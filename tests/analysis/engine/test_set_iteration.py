"""set-iteration v2: dataflow origin resolution and its FP regressions.

The per-file check flagged any ``for x in name`` where ``name`` was
*ever* bound to a set in the scope — including iterations whose result
is consumed order-insensitively. These are the regression cases the
engine version must get right.
"""

import ast
from pathlib import Path

from repro.analysis.engine.perflint import Engine
from repro.analysis.reprolint import ParsedModule


def findings(source, rel_path="service/mod.py"):
    module = ParsedModule(Path("/fixture") / rel_path, rel_path, source)
    engine = Engine.build([module], ledger_path=None)
    return engine.check_set_iteration_v2()


# -- true positives ----------------------------------------------------------


def test_for_over_local_set_is_flagged():
    diags = findings(
        "def f(sink):\n"
        "    seen = {1, 2}\n"
        "    for x in seen:\n"
        "        sink(x)\n"
    )
    assert [d.check for d in diags] == ["set-iteration"]
    assert diags[0].line == 3


def test_for_over_module_level_frozenset_is_flagged():
    diags = findings(
        "KINDS = frozenset({'a', 'b'})\n"
        "OUT = []\n"
        "for k in KINDS:\n"
        "    OUT.append(k)\n"
    )
    assert len(diags) == 1 and diags[0].line == 3


def test_listcomp_over_set_origin_is_flagged():
    diags = findings(
        "def f():\n"
        "    seen = {1, 2}\n"
        "    return [x for x in seen]\n"
    )
    assert len(diags) == 1


# -- the false-positive regressions ------------------------------------------


def test_comprehension_over_sorted_set_not_flagged():
    # iterating sorted(seen) iterates a list: the set-typed name is an
    # argument, not the iterable
    diags = findings(
        "def f():\n"
        "    seen = {1, 2}\n"
        "    return [x for x in sorted(seen)]\n"
    )
    assert diags == []


def test_genexp_consumed_by_sorted_not_flagged():
    diags = findings(
        "def f():\n"
        "    seen = {1, 2}\n"
        "    return sorted(x for x in seen)\n"
    )
    assert diags == []


def test_frozenset_constant_into_sorted_not_flagged():
    diags = findings(
        "KINDS = frozenset({'a', 'b'})\n"
        "ORDERED = sorted(k for k in KINDS)\n"
    )
    assert diags == []


def test_set_comprehension_result_is_order_free():
    diags = findings(
        "def f():\n"
        "    seen = {1, 2}\n"
        "    return {x + 1 for x in seen}\n"
    )
    assert diags == []


def test_other_order_insensitive_consumers():
    for consumer in ("sum", "min", "max", "len", "any", "all", "set"):
        diags = findings(
            "def f():\n"
            "    seen = {1, 2}\n"
            f"    return {consumer}(x for x in seen)\n"
        )
        assert diags == [], consumer


# -- origin resolution conservatism ------------------------------------------


def test_parameter_origin_is_unknown():
    diags = findings(
        "def f(vals, sink):\n"
        "    for v in vals:\n"
        "        sink(v)\n"
    )
    assert diags == []


def test_mixed_origins_not_flagged():
    # one reaching definition is a list: iteration order may be stable
    diags = findings(
        "def f(flag, sink):\n"
        "    vals = {1, 2}\n"
        "    if flag:\n"
        "        vals = [1, 2]\n"
        "    for v in vals:\n"
        "        sink(v)\n"
    )
    assert diags == []


def test_all_set_origins_across_branches_flagged():
    diags = findings(
        "def f(flag, sink):\n"
        "    vals = {1, 2}\n"
        "    if flag:\n"
        "        vals = {3}\n"
        "    for v in vals:\n"
        "        sink(v)\n"
    )
    assert len(diags) == 1


def test_set_union_expression_is_a_set_origin():
    diags = findings(
        "def f(sink):\n"
        "    vals = {1} | {2}\n"
        "    for v in vals:\n"
        "        sink(v)\n"
    )
    assert len(diags) == 1
