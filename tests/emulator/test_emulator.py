"""Emulator tests: the REST wire format over the in-memory database."""

import math

import pytest
from hypothesis import given, settings

from repro.core.values import GeoPoint, Reference, Timestamp
from repro.emulator import FirestoreEmulator, decode_value, encode_value
from repro.emulator.values_json import decode_fields, encode_fields

from tests.core.test_values import firestore_values

BASE = "/v1/projects/demo/databases/(default)/documents"


@pytest.fixture
def emulator():
    return FirestoreEmulator()


class TestValueCodec:
    def test_scalar_encodings(self):
        assert encode_value(None) == {"nullValue": None}
        assert encode_value(True) == {"booleanValue": True}
        assert encode_value(42) == {"integerValue": "42"}  # int64 as string
        assert encode_value(2.5) == {"doubleValue": 2.5}
        assert encode_value("x") == {"stringValue": "x"}
        assert encode_value(b"\x01") == {"bytesValue": "AQ=="}

    def test_complex_encodings(self):
        wire = encode_value({"tags": ["a", 1]})
        assert wire == {
            "mapValue": {
                "fields": {
                    "tags": {
                        "arrayValue": {
                            "values": [{"stringValue": "a"}, {"integerValue": "1"}]
                        }
                    }
                }
            }
        }
        geo = encode_value(GeoPoint(1.5, -2.5))
        assert geo == {"geoPointValue": {"latitude": 1.5, "longitude": -2.5}}
        ref = encode_value(Reference("restaurants/one"))
        assert ref == {"referenceValue": "restaurants/one"}

    def test_timestamp_rfc3339_roundtrip(self):
        ts = Timestamp(1_700_000_000_123_456)
        wire = encode_value(ts)
        assert wire["timestampValue"].endswith("Z")
        assert decode_value(wire) == ts

    def test_malformed_value_rejected(self):
        from repro.errors import InvalidArgument

        with pytest.raises(InvalidArgument):
            decode_value({"a": 1, "b": 2})
        with pytest.raises(InvalidArgument):
            decode_value({"mysteryValue": 1})

    @settings(max_examples=200, deadline=None)
    @given(value=firestore_values())
    def test_property_roundtrip(self, value):
        from repro.core.values import values_equal

        decoded = decode_value(encode_value(value))
        assert values_equal(decoded, value) or decoded == value


class TestDocumentCrud:
    def test_patch_then_get(self, emulator):
        response = emulator.handle(
            "PATCH",
            f"{BASE}/restaurants/one",
            {"fields": encode_fields({"name": "BP", "rating": 4.5})},
        )
        assert response.ok
        assert response.body["name"].endswith("documents/restaurants/one")
        got = emulator.handle("GET", f"{BASE}/restaurants/one")
        assert got.ok
        assert decode_fields(got.body["fields"]) == {"name": "BP", "rating": 4.5}
        assert "createTime" in got.body and "updateTime" in got.body

    def test_get_missing_404(self, emulator):
        response = emulator.handle("GET", f"{BASE}/restaurants/ghost")
        assert response.status == 404
        assert response.body["error"]["status"] == "NOT_FOUND"

    def test_patch_with_update_mask_merges(self, emulator):
        emulator.handle(
            "PATCH", f"{BASE}/r/a", {"fields": encode_fields({"x": 1, "y": 2})}
        )
        emulator.handle(
            "PATCH",
            f"{BASE}/r/a?updateMask.fieldPaths=x&updateMask.fieldPaths=gone",
            {"fields": encode_fields({"x": 10})},
        )
        got = emulator.handle("GET", f"{BASE}/r/a")
        assert decode_fields(got.body["fields"]) == {"x": 10, "y": 2}

    def test_post_creates_with_auto_id(self, emulator):
        response = emulator.handle(
            "POST", f"{BASE}/notes", {"fields": encode_fields({"t": "hi"})}
        )
        assert response.ok
        name = response.body["name"]
        assert "/documents/notes/auto" in name

    def test_post_with_explicit_id_conflicts(self, emulator):
        emulator.handle(
            "POST", f"{BASE}/notes?documentId=n1", {"fields": {}}
        )
        duplicate = emulator.handle(
            "POST", f"{BASE}/notes?documentId=n1", {"fields": {}}
        )
        assert duplicate.status == 409

    def test_delete(self, emulator):
        emulator.handle("PATCH", f"{BASE}/r/a", {"fields": {}})
        assert emulator.handle("DELETE", f"{BASE}/r/a").ok
        assert emulator.handle("GET", f"{BASE}/r/a").status == 404

    def test_databases_auto_created_and_isolated(self, emulator):
        other = "/v1/projects/other/databases/(default)/documents"
        emulator.handle("PATCH", f"{BASE}/r/a", {"fields": {}})
        assert emulator.handle("GET", f"{other}/r/a").status == 404


class TestCommit:
    def test_atomic_multi_write(self, emulator):
        prefix = "projects/demo/databases/(default)/documents"
        response = emulator.handle(
            "POST",
            f"{BASE}:commit",
            {
                "writes": [
                    {"update": {"name": f"{prefix}/r/a",
                                "fields": encode_fields({"n": 1})}},
                    {"update": {"name": f"{prefix}/r/b",
                                "fields": encode_fields({"n": 2})}},
                ]
            },
        )
        assert response.ok
        assert len(response.body["writeResults"]) == 2
        assert emulator.handle("GET", f"{BASE}/r/b").ok

    def test_commit_with_update_mask(self, emulator):
        prefix = "projects/demo/databases/(default)/documents"
        emulator.handle(
            "PATCH", f"{BASE}/r/a", {"fields": encode_fields({"x": 1, "y": 2})}
        )
        emulator.handle(
            "POST",
            f"{BASE}:commit",
            {
                "writes": [
                    {
                        "update": {"name": f"{prefix}/r/a",
                                   "fields": encode_fields({"x": 9})},
                        "updateMask": {"fieldPaths": ["x"]},
                    }
                ]
            },
        )
        got = emulator.handle("GET", f"{BASE}/r/a")
        assert decode_fields(got.body["fields"]) == {"x": 9, "y": 2}

    def test_commit_delete(self, emulator):
        prefix = "projects/demo/databases/(default)/documents"
        emulator.handle("PATCH", f"{BASE}/r/a", {"fields": {}})
        emulator.handle(
            "POST", f"{BASE}:commit", {"writes": [{"delete": f"{prefix}/r/a"}]}
        )
        assert emulator.handle("GET", f"{BASE}/r/a").status == 404


class TestRunQuery:
    @pytest.fixture
    def seeded(self, emulator):
        rows = [
            ("one", {"city": "SF", "rating": 4.5}),
            ("two", {"city": "SF", "rating": 4.8}),
            ("three", {"city": "NY", "rating": 3.9}),
        ]
        for doc_id, data in rows:
            emulator.handle(
                "PATCH", f"{BASE}/restaurants/{doc_id}",
                {"fields": encode_fields(data)},
            )
        return emulator

    def _query(self, seeded, structured):
        return seeded.handle(
            "POST",
            f"{BASE}:runQuery",
            {
                "parent": "projects/demo/databases/(default)/documents",
                "structuredQuery": structured,
            },
        )

    def test_filtered_query(self, seeded):
        response = self._query(
            seeded,
            {
                "from": [{"collectionId": "restaurants"}],
                "where": {
                    "fieldFilter": {
                        "field": {"fieldPath": "city"},
                        "op": "EQUAL",
                        "value": {"stringValue": "SF"},
                    }
                },
            },
        )
        assert response.ok
        names = [r["document"]["name"].rsplit("/", 1)[1] for r in response.body]
        assert names == ["one", "two"]

    def test_composite_and_order(self, seeded):
        response = self._query(
            seeded,
            {
                "from": [{"collectionId": "restaurants"}],
                "where": {
                    "compositeFilter": {
                        "op": "AND",
                        "filters": [
                            {
                                "fieldFilter": {
                                    "field": {"fieldPath": "rating"},
                                    "op": "GREATER_THAN",
                                    "value": {"doubleValue": 4.0},
                                }
                            }
                        ],
                    }
                },
                "orderBy": [
                    {"field": {"fieldPath": "rating"}, "direction": "DESCENDING"}
                ],
                "limit": 1,
            },
        )
        names = [r["document"]["name"].rsplit("/", 1)[1] for r in response.body]
        assert names == ["two"]

    def test_empty_result_still_reports_read_time(self, seeded):
        response = self._query(
            seeded,
            {
                "from": [{"collectionId": "restaurants"}],
                "where": {
                    "fieldFilter": {
                        "field": {"fieldPath": "city"},
                        "op": "EQUAL",
                        "value": {"stringValue": "Tokyo"},
                    }
                },
            },
        )
        assert response.ok
        assert response.body == [{"readTime": response.body[0]["readTime"]}]

    def test_aggregation_count(self, seeded):
        response = seeded.handle(
            "POST",
            f"{BASE}:runAggregationQuery",
            {
                "parent": "projects/demo/databases/(default)/documents",
                "structuredAggregationQuery": {
                    "structuredQuery": {"from": [{"collectionId": "restaurants"}]}
                },
            },
        )
        assert response.ok
        count = response.body[0]["result"]["aggregateFields"]["count"]["integerValue"]
        assert count == "3"


class TestHttpServer:
    def test_real_http_roundtrip(self):
        import json
        import threading
        import urllib.request

        from repro.emulator import serve

        server = serve(port=0)  # ephemeral port
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            url = f"http://127.0.0.1:{port}{BASE}/notes/n1"
            request = urllib.request.Request(
                url,
                data=json.dumps(
                    {"fields": {"text": {"stringValue": "hello"}}}
                ).encode(),
                method="PATCH",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request) as response:
                body = json.loads(response.read())
            assert body["fields"]["text"] == {"stringValue": "hello"}
            with urllib.request.urlopen(url) as response:
                fetched = json.loads(response.read())
            assert fetched["fields"]["text"]["stringValue"] == "hello"
        finally:
            server.shutdown()
            server.server_close()
