"""Emulator error mapping and malformed-request handling."""

import pytest

from repro.emulator import FirestoreEmulator
from repro.emulator.values_json import encode_fields

BASE = "/v1/projects/demo/databases/(default)/documents"


@pytest.fixture
def emulator():
    return FirestoreEmulator()


def test_bad_resource_path_400(emulator):
    response = emulator.handle("GET", "/v1/not/a/resource")
    assert response.status == 400
    assert response.body["error"]["status"] == "INVALID_ARGUMENT"


def test_unsupported_method_400(emulator):
    response = emulator.handle("PUT", f"{BASE}/r/a", {})
    assert response.status == 400


def test_missing_document_path_400(emulator):
    response = emulator.handle("GET", f"{BASE}/")
    assert response.status == 400


def test_oversized_document_400(emulator):
    response = emulator.handle(
        "PATCH", f"{BASE}/r/big", {"fields": encode_fields({"b": "x" * (1 << 20)})}
    )
    assert response.status == 400


def test_empty_commit_400(emulator):
    response = emulator.handle("POST", f"{BASE}:commit", {"writes": []})
    assert response.status == 400


def test_unsupported_write_shape_400(emulator):
    response = emulator.handle(
        "POST", f"{BASE}:commit", {"writes": [{"transform": {}}]}
    )
    assert response.status == 400


def test_run_query_requires_structured_query(emulator):
    response = emulator.handle("POST", f"{BASE}:runQuery", {})
    assert response.status == 400


def test_run_query_rejects_or_composites(emulator):
    response = emulator.handle(
        "POST",
        f"{BASE}:runQuery",
        {
            "parent": "projects/demo/databases/(default)/documents",
            "structuredQuery": {
                "from": [{"collectionId": "r"}],
                "where": {"compositeFilter": {"op": "OR", "filters": []}},
            },
        },
    )
    assert response.status == 400


def test_needs_index_maps_to_400(emulator):
    emulator.handle("PATCH", f"{BASE}/r/a", {"fields": encode_fields({"a": 1, "b": 2})})
    response = emulator.handle(
        "POST",
        f"{BASE}:runQuery",
        {
            "parent": "projects/demo/databases/(default)/documents",
            "structuredQuery": {
                "from": [{"collectionId": "r"}],
                "where": {
                    "fieldFilter": {
                        "field": {"fieldPath": "a"},
                        "op": "EQUAL",
                        "value": {"integerValue": "1"},
                    }
                },
                "orderBy": [{"field": {"fieldPath": "b"}}],
            },
        },
    )
    assert response.status == 400
    assert response.body["error"]["status"] == "FAILED_PRECONDITION"
    assert "index" in response.body["error"]["message"]


def test_error_body_shape(emulator):
    response = emulator.handle("GET", f"{BASE}/r/missing")
    error = response.body["error"]
    assert set(error) == {"code", "status", "message"}
    assert error["code"] == 404
