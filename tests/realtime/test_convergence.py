"""Property tests: after arbitrary write sequences and a pump, every
real-time listener's accumulated state equals a fresh strong query —
the fundamental correctness contract of the snapshot pipeline."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.backend import delete_op, set_op, update_op
from repro.core.firestore import FirestoreService
from repro.errors import NotFound

DOC_IDS = [f"d{i}" for i in range(6)]

OPS = st.lists(
    st.tuples(
        st.sampled_from(["set", "update", "delete"]),
        st.sampled_from(DOC_IDS),
        st.integers(min_value=0, max_value=9),
        st.booleans(),
    ),
    min_size=1,
    max_size=25,
)

QUERIES = st.sampled_from(
    [
        lambda db: db.query("docs"),
        lambda db: db.query("docs").where("live", "==", True),
        lambda db: db.query("docs").where("n", ">", 4),
        lambda db: db.query("docs").order_by("n", "desc"),
        lambda db: db.query("docs").where("live", "==", True).order_by("n"),
    ]
)


def apply_op(db, op, doc_id, n, live):
    path = f"docs/{doc_id}"
    try:
        if op == "set":
            db.commit([set_op(path, {"n": n, "live": live})])
        elif op == "update":
            db.commit([update_op(path, {"n": n})])
        else:
            db.commit([delete_op(path)])
    except NotFound:
        pass  # update of a missing doc: fine, nothing happened


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=OPS, make_query=QUERIES, pump_every=st.integers(1, 10))
def test_property_listener_converges_to_fresh_query(ops, make_query, pump_every):
    service = FirestoreService()
    db = service.create_database("conv")
    db.create_index("docs", [("live", "asc"), ("n", "asc")])
    query = make_query(db)
    snaps = []
    db.connect().listen(query, snaps.append)

    for index, (op, doc_id, n, live) in enumerate(ops):
        apply_op(db, op, doc_id, n, live)
        if index % pump_every == 0:
            service.clock.advance(50_000)
            db.pump_realtime()
    service.clock.advance(50_000)
    db.pump_realtime()

    fresh = db.run_query(query)
    expected = [(str(d.path), d.data) for d in fresh.documents]
    listener = [(str(d.path), d.data) for d in snaps[-1].documents]
    assert listener == expected


@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(ops=OPS)
def test_property_deltas_replay_to_final_state(ops):
    """Applying each snapshot's added/modified/removed to a dict always
    reproduces the snapshot's own full document list."""
    service = FirestoreService()
    db = service.create_database("replay")
    snaps = []
    db.connect().listen(db.query("docs"), snaps.append)
    state: dict = {}

    def apply_delta(delta):
        for path in delta.removed:
            state.pop(str(path), None)
        for doc in delta.added + delta.modified:
            state[str(doc.path)] = doc.data
        assert state == {str(d.path): d.data for d in delta.documents}

    consumed = 0
    for index, (op, doc_id, n, live) in enumerate(ops):
        apply_op(db, op, doc_id, n, live)
        if index % 3 == 0:
            service.clock.advance(50_000)
            db.pump_realtime()
            for delta in snaps[consumed:]:
                apply_delta(delta)
            consumed = len(snaps)
    service.clock.advance(50_000)
    db.pump_realtime()
    for delta in snaps[consumed:]:
        apply_delta(delta)


@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    docs=st.lists(
        st.tuples(
            st.sampled_from(["a", "b"]),  # city
            st.sampled_from(["x", "y"]),  # type
            st.integers(0, 5),
        ),
        min_size=0,
        max_size=20,
    )
)
def test_property_zigzag_join_on_random_data(docs):
    """The zig-zag join agrees with brute force on random datasets."""
    service = FirestoreService()
    db = service.create_database("zz")
    for i, (city, kind, n) in enumerate(docs):
        db.commit([set_op(f"r/d{i:03d}", {"city": city, "type": kind, "n": n})])
    for city in ("a", "b"):
        for kind in ("x", "y"):
            query = (
                db.query("r").where("city", "==", city).where("type", "==", kind)
            )
            plan = db.backend.planner.plan(query.normalize())
            got = sorted(p.id for p in db.run_query(query).paths)
            expected = sorted(
                f"d{i:03d}"
                for i, (c, k, _) in enumerate(docs)
                if c == city and k == kind
            )
            assert got == expected, plan.describe()
