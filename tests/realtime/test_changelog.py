import pytest

from repro.sim.clock import SimClock
from repro.core.path import Path
from repro.realtime.changelog import ACCEPT_TIMEOUT_MARGIN_US, Changelog
from repro.realtime.protocol import DocumentChange, WriteOutcome
from repro.realtime.ranges import RangeOwnership


@pytest.fixture
def clock():
    return SimClock(1_000_000)


@pytest.fixture
def ownership():
    return RangeOwnership()


@pytest.fixture
def changelog(ownership, clock):
    return Changelog(ownership, clock)


def change(path="docs/a", commit_ts=0):
    return DocumentChange(Path.parse(path), None, {"v": 1}, commit_ts)


def whole_range(ownership):
    return ownership.ranges[0]


class TestPrepareAccept:
    def test_min_ts_above_watermark(self, changelog, ownership, clock):
        handle = changelog.prepare([whole_range(ownership)], clock.now_us + 10_000)
        assert handle.min_commit_ts > changelog.watermark_of(whole_range(ownership)) - 1

    def test_committed_changes_flow_in_order(self, changelog, ownership, clock):
        delivered = []
        changelog.on_change = lambda r, c: delivered.append(c.commit_ts)
        r = whole_range(ownership)
        h1 = changelog.prepare([r], clock.now_us + 50_000)
        h2 = changelog.prepare([r], clock.now_us + 50_000)
        ts2 = clock.now_us + 20  # h2 commits first at a later ts
        ts1 = clock.now_us + 10
        changelog.accept([r], h2, WriteOutcome.COMMITTED, ts2, [change(commit_ts=ts2)])
        assert delivered == []  # h1 still outstanding: prefix incomplete
        changelog.accept([r], h1, WriteOutcome.COMMITTED, ts1, [change(commit_ts=ts1)])
        assert delivered == [ts1, ts2]  # flushed in timestamp order

    def test_watermark_advances_after_accepts(self, changelog, ownership, clock):
        r = whole_range(ownership)
        handle = changelog.prepare([r], clock.now_us + 50_000)
        ts = clock.now_us + 10
        changelog.accept([r], handle, WriteOutcome.COMMITTED, ts, [change(commit_ts=ts)])
        assert changelog.watermark_of(r) >= ts

    def test_failed_write_drops_changes(self, changelog, ownership, clock):
        delivered = []
        changelog.on_change = lambda r, c: delivered.append(c)
        r = whole_range(ownership)
        handle = changelog.prepare([r], clock.now_us + 50_000)
        changelog.accept([r], handle, WriteOutcome.FAILED, 0, [])
        assert delivered == []
        assert not changelog.is_out_of_sync(r)

    def test_unknown_outcome_marks_out_of_sync(self, changelog, ownership, clock):
        resets = []
        changelog.on_out_of_sync = resets.append
        r = whole_range(ownership)
        handle = changelog.prepare([r], clock.now_us + 50_000)
        changelog.accept([r], handle, WriteOutcome.UNKNOWN, 0, [])
        assert changelog.is_out_of_sync(r)
        assert resets == [r]

    def test_out_of_sync_discards_buffered_mutations(self, changelog, ownership, clock):
        delivered = []
        changelog.on_change = lambda r, c: delivered.append(c)
        r = whole_range(ownership)
        h1 = changelog.prepare([r], clock.now_us + 50_000)
        h2 = changelog.prepare([r], clock.now_us + 50_000)
        ts = clock.now_us + 20
        changelog.accept([r], h2, WriteOutcome.COMMITTED, ts, [change(commit_ts=ts)])
        changelog.accept([r], h1, WriteOutcome.UNKNOWN, 0, [])
        assert delivered == []  # buffered change discarded, never delivered


class TestHeartbeats:
    def test_idle_range_heartbeats_advance_watermark(self, changelog, ownership, clock):
        beats = []
        changelog.on_heartbeat = lambda r, ts: beats.append(ts)
        # ranges materialize lazily; touch one via a prepare+accept
        r = whole_range(ownership)
        h = changelog.prepare([r], clock.now_us + 1000)
        changelog.accept([r], h, WriteOutcome.FAILED, 0, [])
        clock.advance(5_000)
        changelog.pump()
        assert beats and beats[-1] == clock.now_us

    def test_heartbeat_blocked_by_outstanding_prepare(self, changelog, ownership, clock):
        r = whole_range(ownership)
        handle = changelog.prepare([r], clock.now_us + 100_000)
        clock.advance(50_000)
        changelog.pump()
        assert changelog.watermark_of(r) < handle.min_commit_ts

    def test_expired_prepare_times_out_to_out_of_sync(self, changelog, ownership, clock):
        r = whole_range(ownership)
        changelog.prepare([r], clock.now_us + 10_000)
        clock.advance(10_000 + ACCEPT_TIMEOUT_MARGIN_US + 1)
        changelog.pump()
        assert changelog.is_out_of_sync(r)
        assert changelog.timeouts == 1


class TestResync:
    def test_resync_restores_flow(self, changelog, ownership, clock):
        delivered = []
        changelog.on_change = lambda r, c: delivered.append(c.commit_ts)
        r = whole_range(ownership)
        handle = changelog.prepare([r], clock.now_us + 50_000)
        changelog.accept([r], handle, WriteOutcome.UNKNOWN, 0, [])
        changelog.resync(r)
        assert not changelog.is_out_of_sync(r)
        clock.advance(10_000)
        h2 = changelog.prepare([r], clock.now_us + 50_000)
        ts = clock.now_us + 10
        changelog.accept([r], h2, WriteOutcome.COMMITTED, ts, [change(commit_ts=ts)])
        assert delivered == [ts]

    def test_commits_while_out_of_sync_dropped(self, changelog, ownership, clock):
        delivered = []
        changelog.on_change = lambda r, c: delivered.append(c)
        r = whole_range(ownership)
        bad = changelog.prepare([r], clock.now_us + 50_000)
        good = changelog.prepare([r], clock.now_us + 50_000)
        changelog.accept([r], bad, WriteOutcome.UNKNOWN, 0, [])
        ts = clock.now_us + 10
        changelog.accept([r], good, WriteOutcome.COMMITTED, ts, [change(commit_ts=ts)])
        assert delivered == []  # dropped: listeners will re-query
