"""End-to-end real-time query tests: write -> Changelog -> Matcher ->
Frontend -> consistent incremental snapshots (paper section IV-D4)."""

import pytest

from repro.core.backend import delete_op, set_op, update_op
from repro.core.firestore import FirestoreService
from repro.errors import DeadlineExceeded
from repro.spanner.transaction import inject_unknown_outcome


@pytest.fixture
def service():
    return FirestoreService()


@pytest.fixture
def db(service):
    return service.create_database("realtime-tests")


def pump(db, times=1, advance_us=100_000):
    for _ in range(times):
        db.service.clock.advance(advance_us)
        db.pump_realtime()


class TestBasicFlow:
    def test_initial_snapshot_immediate(self, db):
        db.commit([set_op("scores/g1", {"pts": 1})])
        snaps = []
        db.connect().listen(db.query("scores"), snaps.append)
        assert len(snaps) == 1
        assert snaps[0].is_initial
        assert [d.path.id for d in snaps[0].documents] == ["g1"]

    def test_update_produces_modified_delta(self, db):
        db.commit([set_op("scores/g1", {"pts": 1})])
        snaps = []
        db.connect().listen(db.query("scores"), snaps.append)
        db.commit([update_op("scores/g1", {"pts": 2})])
        pump(db)
        assert len(snaps) == 2
        delta = snaps[-1]
        assert [d.data["pts"] for d in delta.modified] == [2]
        assert delta.added == () and delta.removed == ()
        assert delta.read_ts > snaps[0].read_ts

    def test_create_and_delete_deltas(self, db):
        snaps = []
        db.connect().listen(db.query("scores"), snaps.append)
        db.commit([set_op("scores/g1", {"pts": 1})])
        pump(db)
        assert [d.path.id for d in snaps[-1].added] == ["g1"]
        db.commit([delete_op("scores/g1")])
        pump(db)
        assert [p.id for p in snaps[-1].removed] == ["g1"]
        assert snaps[-1].documents == ()

    def test_filtered_query_only_relevant_changes(self, db):
        snaps = []
        db.connect().listen(db.query("scores").where("live", "==", True), snaps.append)
        db.commit([set_op("scores/live1", {"live": True})])
        db.commit([set_op("scores/done1", {"live": False})])
        pump(db)
        assert len(snaps) == 2  # the non-matching write produced nothing
        assert [d.path.id for d in snaps[-1].documents] == ["live1"]

    def test_doc_leaving_result_set(self, db):
        db.commit([set_op("scores/g1", {"live": True})])
        snaps = []
        db.connect().listen(db.query("scores").where("live", "==", True), snaps.append)
        db.commit([update_op("scores/g1", {"live": False})])
        pump(db)
        assert [p.id for p in snaps[-1].removed] == ["g1"]

    def test_ordered_query_snapshots_sorted(self, db):
        snaps = []
        db.connect().listen(
            db.query("scores").order_by("pts", "desc"), snaps.append
        )
        db.commit([set_op("scores/a", {"pts": 5})])
        db.commit([set_op("scores/b", {"pts": 9})])
        db.commit([set_op("scores/c", {"pts": 7})])
        pump(db)
        assert [d.path.id for d in snaps[-1].documents] == ["b", "c", "a"]

    def test_no_snapshot_for_unrelated_collection(self, db):
        snaps = []
        db.connect().listen(db.query("scores"), snaps.append)
        db.commit([set_op("other/x", {"v": 1})])
        pump(db, times=3)
        assert len(snaps) == 1  # initial only

    def test_snapshots_skippable_under_rapid_writes(self, db):
        """Multiple commits between pumps coalesce into one snapshot —
        the paper: 'Firestore does not guarantee reporting every
        snapshot'."""
        snaps = []
        db.connect().listen(db.query("scores"), snaps.append)
        for pts in range(5):
            db.commit([set_op("scores/g1", {"pts": pts})])
        pump(db)
        assert len(snaps) == 2
        assert snaps[-1].documents[0].data["pts"] == 4  # latest state only


class TestLimitsAndUnlisten:
    def test_limit_query_eviction(self, db):
        for i, pts in enumerate([10, 20]):
            db.commit([set_op(f"scores/s{i}", {"pts": pts})])
        snaps = []
        db.connect().listen(
            db.query("scores").order_by("pts", "desc").limit_to(2), snaps.append
        )
        db.commit([set_op("scores/new", {"pts": 30})])
        pump(db)
        last = snaps[-1]
        assert [d.data["pts"] for d in last.documents] == [30, 20]
        assert [p.id for p in last.removed] == ["s0"]

    def test_limit_query_removal_triggers_requery(self, db):
        for i, pts in enumerate([10, 20, 30]):
            db.commit([set_op(f"scores/s{i}", {"pts": pts})])
        snaps = []
        db.connect().listen(
            db.query("scores").order_by("pts", "desc").limit_to(2), snaps.append
        )
        assert [d.data["pts"] for d in snaps[-1].documents] == [30, 20]
        db.commit([delete_op("scores/s2")])  # evict the top element
        pump(db, times=2)
        assert [d.data["pts"] for d in snaps[-1].documents] == [20, 10]

    def test_unlisten_stops_updates(self, db):
        snaps = []
        connection = db.connect()
        tag = connection.listen(db.query("scores"), snaps.append)
        connection.unlisten(tag)
        db.commit([set_op("scores/g1", {"pts": 1})])
        pump(db)
        assert len(snaps) == 1
        assert db.realtime.active_queries == 0

    def test_connection_close_cleans_up(self, db):
        connection = db.connect()
        connection.listen(db.query("scores"), lambda s: None)
        connection.listen(db.query("other"), lambda s: None)
        connection.close()
        assert db.realtime.active_queries == 0
        assert db.frontend.connection_count == 0


class TestMultiQueryConsistency:
    def test_queries_on_one_connection_update_together(self, db):
        db.commit([set_op("a/1", {"v": 1}), set_op("b/1", {"v": 1})])
        seen = {}
        connection = db.connect()
        connection.listen(db.query("a"), lambda s: seen.setdefault("a", []).append(s), tag="qa")
        connection.listen(db.query("b"), lambda s: seen.setdefault("b", []).append(s), tag="qb")
        # one transaction touches both collections
        db.commit([update_op("a/1", {"v": 2}), update_op("b/1", {"v": 2})])
        pump(db)
        # both queries advanced to the same consistent timestamp
        assert seen["a"][-1].read_ts == seen["b"][-1].read_ts
        assert seen["a"][-1].documents[0].data["v"] == 2
        assert seen["b"][-1].documents[0].data["v"] == 2


class TestFailureRecovery:
    def test_unknown_outcome_resets_query_transparently(self, db):
        db.commit([set_op("scores/g1", {"pts": 1})])
        snaps = []
        db.connect().listen(db.query("scores"), snaps.append)
        db.layout.spanner.commit_fault_injector = (
            lambda txn_id: inject_unknown_outcome(applied=True)
        )
        with pytest.raises(DeadlineExceeded):
            db.commit([set_op("scores/g2", {"pts": 2})])
        db.layout.spanner.commit_fault_injector = None
        pump(db, times=2)
        # the reset re-queried and delivered the committed-but-unacked doc
        assert db.frontend.resets >= 1
        assert {d.path.id for d in snaps[-1].documents} == {"g1", "g2"}

    def test_lost_accept_times_out_and_recovers(self, db):
        db.commit([set_op("scores/g1", {"pts": 1})])
        snaps = []
        db.connect().listen(db.query("scores"), snaps.append)
        db.realtime.drop_accepts = True
        db.commit([set_op("scores/g2", {"pts": 2})])
        db.realtime.drop_accepts = False
        # wait past the accept deadline so the changelog declares the
        # range out-of-sync, then recover
        pump(db, times=3, advance_us=4_000_000)
        pump(db, times=2)
        assert db.realtime.changelog.timeouts >= 1
        assert {d.path.id for d in snaps[-1].documents} == {"g1", "g2"}

    def test_ownership_resharding_resets_listeners(self, db):
        db.commit([set_op("scores/g1", {"pts": 1})])
        snaps = []
        db.connect().listen(db.query("scores"), snaps.append)
        from repro.core.path import Path

        db.realtime.ownership.split(Path.parse("scores/m"))
        pump(db)
        assert db.frontend.resets >= 1
        # listener still works across the new ranges
        db.commit([set_op("scores/z9", {"pts": 9})])
        pump(db, times=2)
        assert {d.path.id for d in snaps[-1].documents} == {"g1", "z9"}
