from repro.core.path import Path
from repro.realtime.ranges import NameRange, RangeOwnership


def test_initial_single_range_covers_everything():
    ownership = RangeOwnership()
    assert len(ownership.ranges) == 1
    assert ownership.owner_of(Path.parse("a/b")).range_id
    assert ownership.owner_of(Path.parse("zzz/999")).range_id


def test_split_partitions_ownership():
    ownership = RangeOwnership()
    ownership.split(Path.parse("m/doc"))
    assert len(ownership.ranges) == 2
    low = ownership.owner_of(Path.parse("a/a"))
    high = ownership.owner_of(Path.parse("z/z"))
    assert low.range_id != high.range_id
    # the split point itself belongs to the right half
    assert ownership.owner_of(Path.parse("m/doc")).range_id == high.range_id


def test_split_notifies_reassignment():
    ownership = RangeOwnership()
    events = []
    ownership.on_reassign = lambda old, new: events.append((old, new))
    ownership.split(Path.parse("m/doc"))
    assert len(events) == 1
    old, new = events[0]
    assert len(new) == 2
    assert new[0].start == old.start
    assert new[1].end == old.end


def test_ranges_for_paths_deduplicates():
    ownership = RangeOwnership()
    ownership.split(Path.parse("m/doc"))
    ranges = ownership.ranges_for_paths(
        [Path.parse("a/1"), Path.parse("a/2"), Path.parse("z/1")]
    )
    assert len(ranges) == 2


def test_collection_span_contains_only_collection_docs():
    start, end = RangeOwnership.collection_span(Path.parse("restaurants"))
    inside = RangeOwnership.key_for(Path.parse("restaurants/one"))
    nested = RangeOwnership.key_for(Path.parse("restaurants/one/ratings/2"))
    outside = RangeOwnership.key_for(Path.parse("zoo/one"))
    assert start <= inside < end
    assert start <= nested < end  # descendants share the span
    assert not (start <= outside < end)


def test_ranges_for_collection_after_splits():
    ownership = RangeOwnership()
    ownership.split(Path.parse("restaurants/m"))
    ownership.split(Path.parse("zoo/a"))
    covering = ownership.ranges_for_collection(Path.parse("restaurants"))
    assert len(covering) == 2  # restaurant docs straddle the first split
    keys = [RangeOwnership.key_for(Path.parse(f"restaurants/{c}")) for c in "az"]
    for key in keys:
        assert any(r.covers(key) for r in covering)


def test_name_range_covers():
    name_range = NameRange(1, b"b", b"m")
    assert not name_range.covers(b"a")
    assert name_range.covers(b"b")
    assert not name_range.covers(b"m")
    unbounded = NameRange(2, b"", None)
    assert unbounded.covers(b"\xff\xff")


def test_name_range_overlaps():
    name_range = NameRange(1, b"b", b"m")
    assert name_range.overlaps(b"a", b"c")
    assert name_range.overlaps(b"l", None)
    assert not name_range.overlaps(b"m", None)
    assert not name_range.overlaps(b"", b"b")
