"""Load-based tablet splitting and merging.

"Spanner's automatic load-based splitting and merging of rows into tablets
... allows Firestore to scale to arbitrary read and write loads" (paper
section IV-D1). Firestore's conforming-traffic rule (grow at most 50%
every 5 minutes from a 500 QPS base) exists precisely to give this
machinery time to react; the serving simulation uses the same policy knobs
to reproduce the p99 ramp-up effects in Figures 7/8.

The splitter is invoked periodically (or explicitly by tests). A tablet
splits when it is hot or oversized; two adjacent tablets merge when both
are cold and small.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.spanner.database import SpannerDatabase
from repro.spanner.tablet import Tablet


@dataclass(slots=True)
class SplitPolicy:
    """Thresholds for splitting and merging."""

    #: decayed load units (reads + 2*writes) above which a tablet is hot
    hot_load: float = 1500.0
    #: row count above which a tablet splits regardless of load
    max_rows: int = 50_000
    #: both-neighbours load below which a merge is considered
    cold_load: float = 50.0
    #: merged tablet must stay under this many rows
    merge_max_rows: int = 10_000
    #: never exceed this many tablets (simulation guard)
    max_tablets: int = 4096


class LoadBasedSplitter:
    """Applies a :class:`SplitPolicy` to a database's tablets."""

    __slots__ = ("db", "policy", "metrics", "splits", "merges")

    def __init__(
        self,
        db: SpannerDatabase,
        policy: SplitPolicy | None = None,
        metrics=None,
    ):
        self.db = db
        self.policy = policy if policy is not None else SplitPolicy()
        self.metrics = metrics
        self.splits = 0
        self.merges = 0

    def run_once(self) -> int:
        """One maintenance pass; returns number of topology changes."""
        changes = self._split_pass()
        changes += self._merge_pass()
        if self.metrics is not None:
            self.metrics.gauge("tablets", spanner=self.db.name).set(
                len(self.db.tablets)
            )
        return changes

    # -- splitting -----------------------------------------------------------

    def _split_pass(self) -> int:
        now = self.db.clock.now_us
        changes = 0
        index = 0
        while index < len(self.db.tablets):
            if len(self.db.tablets) >= self.policy.max_tablets:
                break
            tablet = self.db.tablets[index]
            if self._should_split(tablet, now) and self.split_tablet(tablet):
                changes += 1
                # re-examine the left half in case it is still oversized
                continue
            index += 1
        return changes

    def _should_split(self, tablet: Tablet, now_us: int) -> bool:
        if len(tablet.rows) >= self.policy.max_rows:
            return True
        return (
            tablet.stats.load(now_us) >= self.policy.hot_load
            and len(tablet.rows) >= 2
        )

    def split_tablet(self, tablet: Tablet, at_key: bytes | None = None) -> bool:
        """Split ``tablet`` at ``at_key`` (or its median). Returns success."""
        split_key = at_key if at_key is not None else tablet.split_key()
        if split_key is None:
            return False
        if not (tablet.covers(split_key) and split_key > tablet.start_key):
            return False
        right = Tablet(split_key, tablet.end_key)
        move = [
            (key, chain)
            for key, chain in tablet.rows.items(start=split_key)
        ]
        for key, chain in move:
            right.rows.put(key, chain)
            tablet.rows.delete(key)
        tablet.end_key = split_key
        # split the measured load between the halves
        tablet.stats.reads /= 2
        tablet.stats.writes /= 2
        right.stats.reads = tablet.stats.reads
        right.stats.writes = tablet.stats.writes
        position = self.db.tablets.index(tablet)
        self.db.tablets.insert(position + 1, right)
        self.splits += 1
        if self.metrics is not None:
            self.metrics.counter("tablet_splits", spanner=self.db.name).inc()
        return True

    def pre_split(self, boundaries: list[bytes]) -> int:
        """Split at explicit boundaries (benchmark warm-up: the paper's
        data-shape experiment pre-initializes the database 'to ensure that
        commits spanned multiple tablets')."""
        done = 0
        for boundary in sorted(boundaries):
            tablet = self.db.tablet_for(boundary)
            if boundary == tablet.start_key:
                continue
            if self.split_tablet(tablet, at_key=boundary):
                done += 1
        return done

    # -- merging -------------------------------------------------------------

    def _merge_pass(self) -> int:
        now = self.db.clock.now_us
        changes = 0
        index = 0
        while index < len(self.db.tablets) - 1:
            left = self.db.tablets[index]
            right = self.db.tablets[index + 1]
            if self._should_merge(left, right, now):
                self._merge(left, right)
                changes += 1
            else:
                index += 1
        return changes

    def _should_merge(self, left: Tablet, right: Tablet, now_us: int) -> bool:
        if len(left.rows) + len(right.rows) > self.policy.merge_max_rows:
            return False
        return (
            left.stats.load(now_us) < self.policy.cold_load
            and right.stats.load(now_us) < self.policy.cold_load
        )

    def _merge(self, left: Tablet, right: Tablet) -> None:
        for key, chain in right.rows.items():
            left.rows.put(key, chain)
        left.end_key = right.end_key
        left.stats.reads += right.stats.reads
        left.stats.writes += right.stats.writes
        self.db.tablets.remove(right)
        self.merges += 1
        if self.metrics is not None:
            self.metrics.counter("tablet_merges", spanner=self.db.name).inc()
