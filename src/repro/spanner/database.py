"""The simulated Spanner database: tables, directories, tablets, snapshots.

Key layout. Every row lives in the *composite keyspace*::

    composite_key = table_tag (1 byte) || row_key

Row keys themselves are produced by the Firestore layout layer and begin
with the database's directory prefix, so all rows of one Firestore database
within one table are contiguous — the paper's "specific directory within a
small number of pre-initialized Spanner databases" (section IV-D1).

Tablets partition the composite keyspace into consecutive ranges, so a
transaction touching Entities and IndexEntries rows typically spans
multiple tablets and commits with two-phase commit, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional

from repro.errors import InternalError
from repro.sim.clock import SimClock
from repro.sim.truetime import TrueTime
from repro.spanner.locks import LockTable
from repro.spanner.mvcc import TOMBSTONE
from repro.spanner.tablet import Tablet
from repro.spanner.messaging import TransactionalMessageQueue


@dataclass(frozen=True)
class TableSchema:
    """A fixed-schema table. The simulation stores opaque row payloads;
    the schema records intent and assigns the key-space tag."""

    name: str
    tag: int  # single byte prefixed to row keys

    def prefix(self) -> bytes:
        """The table's one-byte key-space tag."""
        return bytes([self.tag])

    def composite_key(self, row_key: bytes) -> bytes:
        """tag || row_key: the key in the shared keyspace."""
        return bytes([self.tag]) + row_key


class SpannerDatabase:
    """One pre-initialized Spanner database shared by many Firestore DBs."""

    def __init__(
        self,
        name: str = "spanner-db",
        clock: Optional[SimClock] = None,
        truetime: Optional[TrueTime] = None,
        gc_horizon_us: int = 3_600_000_000,  # 1 hour of versions
    ):
        self.name = name
        self.clock = clock if clock is not None else SimClock()
        self.truetime = truetime if truetime is not None else TrueTime(self.clock)
        self.gc_horizon_us = gc_horizon_us
        self.tables: dict[str, TableSchema] = {}
        self._next_tag = 1
        self.tablets: list[Tablet] = [Tablet(b"", None)]
        self.locks = LockTable()
        self.message_queue = TransactionalMessageQueue(clock=self.clock)
        self._next_txn_id = 1
        self._directories: set[bytes] = set()
        # test hook: called before applying a commit; may raise to inject
        # failures (unknown outcomes, definitive aborts). One-shot: the
        # injector is cleared before it fires, so a stale injector cannot
        # leak into subsequent commits.
        self.commit_fault_injector: Optional[Callable[[int], None]] = None
        # deterministic fault plane (repro.faults.FaultPlan): duck-typed
        # like sanitizer/recorder so this layer needs no import — None
        # means every injection hook is inert
        self.fault_plan = None
        # geo-replica group (repro.replication.ReplicaGroup): duck-typed
        # like fault_plan; None means single-replica semantics (commits
        # skip the quorum machinery, bounded reads serve locally)
        self.replication = None
        # observability
        from repro.obs.tracer import NULL_TRACER

        self.tracer = NULL_TRACER
        self._metrics = None
        # sim-time profiler (repro.obs.perf.Profiler): duck-typed like
        # fault_plan/recorder; the falsy default keeps the hot paths to a
        # single truthiness check
        self.profiler = None
        self.commits = 0
        self.aborts = 0
        # dynamic sanitizers (repro.analysis): installed when
        # REPRO_SANITIZE=1 / pytest --sanitize; wraps locks+truetime with
        # checking proxies and receives on_* hooks from the hot paths
        self.sanitizer = None
        from repro.analysis.sanitizers import maybe_install

        maybe_install(self)
        # execution-history recorder (repro.check): installed when
        # REPRO_CHECK=1 / pytest --check; the transaction, write-protocol
        # and realtime-delivery paths feed it the events the offline
        # consistency checker judges
        self.recorder = None
        from repro.check.history import maybe_install as maybe_record

        maybe_record(self)

    @property
    def metrics(self):
        """The optional repro.obs MetricsRegistry this database reports to."""
        return self._metrics

    @metrics.setter
    def metrics(self, registry) -> None:
        self._metrics = registry
        self.locks.metrics = registry
        self.locks.owner = self.name

    # -- schema and directories ---------------------------------------------

    def create_table(self, name: str) -> TableSchema:
        """Register a fixed-schema table with a fresh tag."""
        if name in self.tables:
            raise InternalError(f"table {name!r} already exists")
        if self._next_tag > 0xFE:
            raise InternalError("table tag space exhausted")
        schema = TableSchema(name, self._next_tag)
        self._next_tag += 1
        self.tables[name] = schema
        return schema

    def table(self, name: str) -> TableSchema:
        """Look up a table's schema by name."""
        schema = self.tables.get(name)
        if schema is None:
            raise InternalError(f"no such table: {name!r}")
        return schema

    def create_directory(self, prefix: bytes) -> bytes:
        """Register a directory (a row-key prefix guiding placement)."""
        self._directories.add(prefix)
        return prefix

    @property
    def directories(self) -> set[bytes]:
        """Registered directory prefixes."""
        return set(self._directories)

    # -- tablet lookup -------------------------------------------------------

    def tablet_for(self, composite_key: bytes) -> Tablet:
        """The tablet whose range covers a composite key."""
        lo, hi = 0, len(self.tablets) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            tablet = self.tablets[mid]
            if composite_key < tablet.start_key:
                hi = mid - 1
            elif tablet.end_key is not None and composite_key >= tablet.end_key:
                lo = mid + 1
            else:
                return tablet
        raise InternalError(f"no tablet covers key {composite_key!r}")

    def tablets_for_range(
        self, start: bytes, end: Optional[bytes]
    ) -> list[Tablet]:
        """Tablets intersecting [start, end), in key order."""
        result = []
        for tablet in self.tablets:
            if tablet.end_key is not None and tablet.end_key <= start:
                continue
            if end is not None and tablet.start_key >= end:
                break
            result.append(tablet)
        return result

    # -- snapshot (lock-free) reads -------------------------------------------

    def snapshot_read(self, table: str, row_key: bytes, read_ts: int) -> Any:
        """Timestamped read; returns None if the row is absent/deleted."""
        value = self.snapshot_read_versioned(table, row_key, read_ts)
        return None if value is None else value[1]

    def snapshot_read_versioned(
        self, table: str, row_key: bytes, read_ts: int
    ) -> Optional[tuple[int, Any]]:
        """Like :meth:`snapshot_read` but returns (commit_ts, value).

        Emulates Spanner's commit-timestamp columns: the version's commit
        timestamp is the row's last-update time.
        """
        schema = self.table(table)
        ckey = schema.composite_key(row_key)
        tablet = self.tablet_for(ckey)
        tablet.stats.record_read(self.clock.now_us)
        chain = tablet.rows.get(ckey)
        recorder = self.recorder
        if chain is None:
            if recorder is not None:
                recorder.snapshot_read(ckey, read_ts, -1)
            return None
        version = chain.read_versioned_at(read_ts)
        if self.sanitizer is not None:
            self.sanitizer.on_snapshot_read(ckey, chain, read_ts, version)
        if version is None or version[1] is TOMBSTONE:
            if recorder is not None:
                recorder.snapshot_read(ckey, read_ts, -1)
            return None
        if recorder is not None:
            recorder.snapshot_read(ckey, read_ts, version[0])
        return version

    def snapshot_scan(
        self,
        table: str,
        start: Optional[bytes],
        end: Optional[bytes],
        read_ts: int,
        reverse: bool = False,
        limit: Optional[int] = None,
    ) -> Iterator[tuple[bytes, Any]]:
        """Ordered range scan at ``read_ts`` over row keys [start, end).

        Yields (row_key, value) with the table tag stripped. The scan
        chains across tablets in key order (reverse order if requested),
        mirroring Spanner's efficient in-order linear scans.
        """
        schema = self.table(table)
        cstart = schema.composite_key(start if start is not None else b"")
        if end is not None:
            cend = schema.composite_key(end)
        else:
            cend = bytes([schema.tag + 1])  # first key of the next table
        tablets = self.tablets_for_range(cstart, cend)
        if reverse:
            tablets = list(reversed(tablets))
        now = self.clock.now_us
        yielded = 0
        for tablet in tablets:
            tablet.stats.record_read(now)
            for ckey, value in tablet.scan_at(cstart, cend, read_ts, reverse=reverse):
                yield ckey[1:], value
                yielded += 1
                if limit is not None and yielded >= limit:
                    return

    def bounded_staleness_read(
        self,
        table: str,
        row_key: bytes,
        staleness_bound_us: int,
        client_region: str = "",
    ) -> tuple[str, int, Any]:
        """A bounded-staleness read, served by the nearest caught-up replica.

        The read timestamp is ``now - staleness_bound_us``, so the result
        is never staler than the bound. With a replica group installed the
        group routes to the closest replica whose safe time covers the
        read timestamp (leader fallback); without one the single replica
        serves it. Returns ``(serving_region, read_ts, value)``.
        """
        group = self.replication
        if group is not None:
            region, read_ts = group.route_read(
                client_region or group.leader_region, staleness_bound_us
            )
        else:
            region = ""
            read_ts = max(0, self.clock.now_us - staleness_bound_us)
        return region, read_ts, self.snapshot_read(table, row_key, read_ts)

    def current_timestamp(self) -> int:
        """A safe timestamp for strong reads: every commit <= it is visible."""
        return self.truetime.last_issued or self.clock.now_us

    # -- transactions ----------------------------------------------------------

    def begin(self) -> "ReadWriteTransaction":
        """Start a lock-based read-write transaction."""
        from repro.spanner.transaction import ReadWriteTransaction

        txn_id = self._next_txn_id
        self._next_txn_id += 1
        return ReadWriteTransaction(self, txn_id)

    # -- maintenance -------------------------------------------------------------

    def gc(self) -> int:
        """Garbage-collect versions older than the horizon, all tablets."""
        horizon = max(0, self.clock.now_us - self.gc_horizon_us)
        return sum(tablet.gc(horizon) for tablet in self.tablets)

    def total_rows(self) -> int:
        """Row count across every tablet (including tombstoned chains)."""
        return sum(len(t.rows) for t in self.tablets)

    def __repr__(self) -> str:
        return (
            f"SpannerDatabase({self.name!r}, tables={list(self.tables)}, "
            f"tablets={len(self.tablets)}, rows={self.total_rows()})"
        )
