"""Multi-version storage cells.

Spanner stores every write at its commit timestamp and serves reads at any
timestamp without locks (multi-version concurrency control, paper section
IV-D1: "the serializability guarantee on timestamps allows Firestore to
perform lock-free consistent (timestamp-based) reads across a database
without blocking writes").

A :class:`VersionChain` is the version history of one row: a list of
``(commit_ts, value)`` pairs in descending timestamp order, where a value
of :data:`TOMBSTONE` marks a deletion. Old versions are garbage-collected
past a configurable horizon.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator


class _Tombstone:
    __slots__ = ()

    def __repr__(self) -> str:
        return "<tombstone>"


#: Sentinel marking a deleted version.
TOMBSTONE = _Tombstone()


class VersionChain:
    """The timestamped version history of a single row."""

    __slots__ = ("_ts", "_values")

    def __init__(self) -> None:
        # ascending commit timestamps; _values[i] pairs with _ts[i]
        self._ts: list[int] = []
        self._values: list[Any] = []

    def __len__(self) -> int:
        return len(self._ts)

    def write(self, commit_ts: int, value: Any) -> None:
        """Record ``value`` at ``commit_ts``.

        Timestamps must strictly increase (TrueTime guarantees a total
        order of commits); an equal or older timestamp is an invariant
        violation.
        """
        if self._ts and commit_ts <= self._ts[-1]:
            raise ValueError(
                f"non-monotonic MVCC write: {commit_ts} <= {self._ts[-1]}"
            )
        self._ts.append(commit_ts)
        self._values.append(value)

    def read_at(self, read_ts: int) -> Any:
        """Newest value with commit_ts <= read_ts, or TOMBSTONE if none.

        A row that has never been written reads as deleted, which lets the
        caller treat missing rows and deleted rows uniformly.
        """
        idx = bisect.bisect_right(self._ts, read_ts) - 1
        if idx < 0:
            return TOMBSTONE
        return self._values[idx]

    def read_versioned_at(self, read_ts: int) -> tuple[int, Any] | None:
        """Newest (commit_ts, value) with commit_ts <= read_ts, or None."""
        idx = bisect.bisect_right(self._ts, read_ts) - 1
        if idx < 0:
            return None
        return (self._ts[idx], self._values[idx])

    def latest(self) -> tuple[int, Any]:
        """The newest (commit_ts, value) pair."""
        if not self._ts:
            return (0, TOMBSTONE)
        return (self._ts[-1], self._values[-1])

    def versions(self) -> Iterator[tuple[int, Any]]:
        """All versions, newest first."""
        for i in range(len(self._ts) - 1, -1, -1):
            yield self._ts[i], self._values[i]

    def gc(self, horizon_ts: int) -> int:
        """Drop versions superseded before ``horizon_ts``.

        Keeps the newest version at or before the horizon (it is still
        readable by horizon-time reads) and everything after. Returns the
        number of versions dropped. A chain whose only surviving version
        is a tombstone older than the horizon empties completely.
        """
        keep_from = bisect.bisect_right(self._ts, horizon_ts) - 1
        if keep_from <= 0:
            return 0
        dropped = keep_from
        self._ts = self._ts[keep_from:]
        self._values = self._values[keep_from:]
        if (
            len(self._ts) == 1
            and self._values[0] is TOMBSTONE
            and self._ts[0] <= horizon_ts
        ):
            dropped += 1
            self._ts.clear()
            self._values.clear()
        return dropped

    def is_empty(self) -> bool:
        """True when no versions remain."""
        return not self._ts


def is_deleted(value: Any) -> bool:
    """True if an MVCC read produced a tombstone (or never-written row)."""
    return value is TOMBSTONE
