"""A simulated Spanner: the storage substrate under Firestore.

This package reproduces the Spanner properties Firestore depends on
(paper section IV-D1):

- ordered key-value tables with efficient in-order range scans,
- multi-version concurrency control with TrueTime commit timestamps,
- lock-based read-write transactions with two-phase commit across tablets,
- lock-free consistent snapshot (timestamp) reads,
- load-based splitting of consecutive key ranges into tablets,
- directories that guide placement (one Firestore database per directory),
- a transactional messaging system (used for write triggers).

It is an in-process simulation: "tablets" are shards of one Python
process, and replication shows up only through the latency model — the
*interfaces and guarantees* are the ones the paper describes.
"""

from repro.spanner.btree import BTreeMap
from repro.spanner.database import SpannerDatabase, TableSchema
from repro.spanner.transaction import ReadWriteTransaction, CommitResult
from repro.spanner.locks import LockMode, LockTable
from repro.spanner.tablet import Tablet
from repro.spanner.messaging import TransactionalMessageQueue, Message
from repro.spanner.splitting import LoadBasedSplitter, SplitPolicy

__all__ = [
    "LoadBasedSplitter",
    "SplitPolicy",
    "BTreeMap",
    "SpannerDatabase",
    "TableSchema",
    "ReadWriteTransaction",
    "CommitResult",
    "LockMode",
    "LockTable",
    "Tablet",
    "TransactionalMessageQueue",
    "Message",
]
