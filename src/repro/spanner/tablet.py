"""Tablets: consecutive-key-range shards of a Spanner database.

"Spanner's automatic load-based splitting and merging of rows into tablets
... that hold data for a consecutive key-range allows Firestore to scale to
arbitrary read and write loads" (paper section IV-D1). A tablet here is a
B+tree of MVCC version chains covering ``[start_key, end_key)`` of the
database's composite keyspace, plus the load statistics the splitter uses.
"""

from __future__ import annotations

from typing import Any, Iterator, Optional

from repro.spanner.btree import BTreeMap
from repro.spanner.mvcc import TOMBSTONE, VersionChain


class LoadStats:
    """Exponentially-decayed read/write rates for split decisions."""

    __slots__ = ("reads", "writes", "_last_decay_us", "half_life_us")

    def __init__(self, half_life_us: int = 60_000_000):
        self.reads = 0.0
        self.writes = 0.0
        self.half_life_us = half_life_us
        self._last_decay_us = 0

    def _decay(self, now_us: int) -> None:
        if now_us <= self._last_decay_us:
            return
        elapsed = now_us - self._last_decay_us
        factor = 0.5 ** (elapsed / self.half_life_us)
        self.reads *= factor
        self.writes *= factor
        self._last_decay_us = now_us

    def record_read(self, now_us: int, count: int = 1) -> None:
        """Account reads at the given time."""
        self._decay(now_us)
        self.reads += count

    def record_write(self, now_us: int, count: int = 1) -> None:
        """Account writes at the given time."""
        self._decay(now_us)
        self.writes += count

    def load(self, now_us: int) -> float:
        """Decayed load units (reads + 2*writes) as of now."""
        self._decay(now_us)
        return self.reads + 2.0 * self.writes  # writes cost more


class Tablet:
    """One shard: MVCC rows for a consecutive composite-key range."""

    __slots__ = ("tablet_id", "start_key", "end_key", "rows", "stats")

    _next_id = 0

    def __init__(self, start_key: bytes, end_key: Optional[bytes]):
        """``end_key`` of None means unbounded above."""
        Tablet._next_id += 1
        self.tablet_id = Tablet._next_id
        self.start_key = start_key
        self.end_key = end_key
        self.rows = BTreeMap()
        self.stats = LoadStats()

    def covers(self, key: bytes) -> bool:
        """Whether a composite key falls in this tablet's range."""
        if key < self.start_key:
            return False
        return self.end_key is None or key < self.end_key

    def chain(self, key: bytes, create: bool = False) -> Optional[VersionChain]:
        """The version chain for a key (optionally created)."""
        chain = self.rows.get(key)
        if chain is None and create:
            chain = VersionChain()
            self.rows.put(key, chain)
        return chain

    def read_at(self, key: bytes, read_ts: int) -> Any:
        """Snapshot read; returns TOMBSTONE for absent/deleted rows."""
        chain = self.rows.get(key)
        if chain is None:
            return TOMBSTONE
        return chain.read_at(read_ts)

    def read_latest(self, key: bytes) -> tuple[int, Any]:
        """The newest (commit_ts, value), TOMBSTONE if absent."""
        chain = self.rows.get(key)
        if chain is None:
            return (0, TOMBSTONE)
        return chain.latest()

    def scan_at(
        self,
        start: Optional[bytes],
        end: Optional[bytes],
        read_ts: int,
        reverse: bool = False,
    ) -> Iterator[tuple[bytes, Any]]:
        """Yield live (key, value) pairs at ``read_ts`` within the range.

        The scan range is intersected with the tablet's own bounds so
        callers can pass the full logical range.
        """
        lo = start if start is not None and start > self.start_key else self.start_key
        hi = end
        if self.end_key is not None and (hi is None or hi > self.end_key):
            hi = self.end_key
        for key, chain in self.rows.items(start=lo, end=hi, reverse=reverse):
            value = chain.read_at(read_ts)
            if value is not TOMBSTONE:
                yield key, value

    def live_row_count(self, read_ts: int) -> int:
        """Non-deleted rows visible at a timestamp."""
        return sum(1 for _ in self.scan_at(None, None, read_ts))

    def version_count(self) -> int:
        """Total stored versions across all chains."""
        return sum(len(chain) for chain in self.rows.values())

    def gc(self, horizon_ts: int) -> int:
        """Garbage-collect old versions; drops emptied chains."""
        dropped = 0
        empty_keys = []
        for key, chain in self.rows.items():
            dropped += chain.gc(horizon_ts)
            if chain.is_empty():
                empty_keys.append(key)
        for key in empty_keys:
            self.rows.delete(key)
        return dropped

    def split_key(self) -> Optional[bytes]:
        """A key that divides this tablet roughly in half, or None."""
        if len(self.rows) < 2:
            return None
        key = self.rows.key_at_fraction(0.5)
        if key is None or key == self.start_key:
            # ensure the left half is non-empty
            keys = list(self.rows.keys())
            if len(keys) < 2:
                return None
            key = keys[len(keys) // 2]
            if key == self.start_key:
                return None
        return key

    def __repr__(self) -> str:
        end = self.end_key.hex() if self.end_key is not None else "+inf"
        return (
            f"Tablet(id={self.tablet_id}, range=[{self.start_key.hex()},{end}), "
            f"rows={len(self.rows)})"
        )
