"""Lock-based read-write transactions with two-phase commit across tablets.

Mirrors the Spanner behaviour Firestore builds on (paper section IV-D1/2):

- reads inside the transaction take row locks (shared by default,
  exclusive when the caller will write the row, as the Backend does for
  documents in step 2 of the write protocol),
- writes are buffered and their exclusive locks are acquired at commit
  (step 6: "Spanner acquires additional exclusive locks on the specific
  IndexEntries rows"),
- the commit timestamp is constrained to a ``[min, max]`` window so the
  Real-time Cache's Prepare/Accept protocol can bound what it must wait
  for,
- a conflict aborts the transaction (callers retry with backoff).

Fault injection: the database's ``fault_plan`` (a ``repro.faults``
FaultPlan, duck-typed) drives the failure matrix — definitive commit
failure, unknown-outcome commits, lock-acquisition timeouts, unreachable
or slow tablets, and splits racing the commit. The older one-shot
``commit_fault_injector`` hook remains as a thin compat shim feeding the
same code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Optional

from repro.errors import (
    Aborted,
    CommitOutcomeUnknown,
    InternalError,
    LockConflict,
    Unavailable,
)
from repro.obs.perf import NULL_PROFILER
from repro.spanner.locks import LockMode
from repro.spanner.mvcc import TOMBSTONE


@dataclass(frozen=True, slots=True)
class CommitResult:
    """Outcome of a successful commit."""

    commit_ts: int
    participant_tablets: tuple[int, ...]
    mutation_count: int

    @property
    def participants(self) -> int:
        """How many tablets the two-phase commit spanned."""
        return len(self.participant_tablets)


def _lock_abort(exc: LockConflict) -> Aborted:
    """Convert a lock conflict into the Aborted the caller retries on.

    The error carries ``wait_cause="lock_wait"`` so critical-path
    attribution can blame the retry backoff on lock contention rather
    than generic ``retry_backoff`` (see ``repro.obs.tracer.WAIT_CAUSES``).
    """
    error = Aborted(str(exc))
    error.wait_cause = "lock_wait"
    return error


class _DefinitiveCommitFailure(Exception):
    """Raised by fault injectors to force a known-failed commit."""


class _UnknownOutcomeFailure(Exception):
    """Raised by fault injectors to force an unknown-outcome commit.

    ``applied`` says whether the injector wants the mutations applied
    anyway (commit actually succeeded but the ack was lost)."""

    def __init__(self, applied: bool):
        self.applied = applied


class ReadWriteTransaction:
    """One Spanner read-write transaction."""

    __slots__ = (
        "_db",
        "txn_id",
        "start_ts",
        "_writes",
        "_pending_messages",
        "_state",
    )

    def __init__(self, db, txn_id: int):
        self._db = db
        self.txn_id = txn_id
        self.start_ts = db.clock.now_us
        # composite_key -> (value | TOMBSTONE)
        self._writes: dict[bytes, Any] = {}
        self._pending_messages: list[tuple[str, Any]] = []
        self._state = "active"
        recorder = db.recorder
        if recorder is not None:
            recorder.txn_begin(txn_id, self.start_ts)

    # -- lifecycle helpers ----------------------------------------------------

    @property
    def is_active(self) -> bool:
        """Whether the transaction can still read/write/commit."""
        return self._state == "active"

    def _check_active(self) -> None:
        if self._state != "active":
            raise InternalError(
                f"transaction {self.txn_id} is {self._state}, not active"
            )

    def _abort(self) -> None:
        self._db.locks.release_all(self.txn_id)
        self._state = "aborted"
        self._db.aborts += 1
        if self._db.sanitizer is not None:
            self._db.sanitizer.on_txn_finished(self.txn_id, "aborted")
        recorder = self._db.recorder
        if recorder is not None:
            recorder.txn_abort(self.txn_id)

    def rollback(self) -> None:
        """Abort the transaction and release its locks."""
        if self._state == "active":
            self._abort()

    # -- reads ------------------------------------------------------------------

    def read(
        self,
        table: str,
        row_key: bytes,
        for_update: bool = False,
    ) -> Any:
        """Read the latest committed value of a row, under lock.

        Returns None for absent/deleted rows. ``for_update=True`` takes an
        exclusive lock immediately (used by the Backend for document rows
        it will modify). Own buffered writes are visible.
        """
        self._check_active()
        schema = self._db.table(table)
        ckey = schema.composite_key(row_key)
        if ckey in self._writes:
            value = self._writes[ckey]
            return None if value is TOMBSTONE else value
        version = self.read_versioned(table, row_key, for_update=for_update)
        return None if version is None else version[1]

    def read_versioned(
        self,
        table: str,
        row_key: bytes,
        for_update: bool = False,
    ) -> Any:
        """Like :meth:`read` but returns (commit_ts, value) or None.

        Buffered writes of this transaction read back with a commit_ts of
        0 (their timestamp is not assigned until commit).
        """
        self._check_active()
        schema = self._db.table(table)
        ckey = schema.composite_key(row_key)
        if ckey in self._writes:
            value = self._writes[ckey]
            return None if value is TOMBSTONE else (0, value)
        mode = LockMode.EXCLUSIVE if for_update else LockMode.SHARED
        plan = self._db.fault_plan
        if plan is not None and plan.decide("spanner.lock_timeout") is not None:
            self._abort()
            raise Aborted(
                f"lock acquisition timed out on {ckey!r} (injected)"
            )
        try:
            # reprolint: disable=lock-discipline -- 2PL: read locks are held past return until commit/rollback releases them; only the abort path releases here
            self._db.locks.acquire(self.txn_id, ckey, mode)
        except LockConflict as exc:
            self._abort()
            raise _lock_abort(exc) from exc
        if plan is not None:
            if plan.decide("spanner.tablet_unavailable") is not None:
                self._abort()
                raise Unavailable(
                    f"tablet server for {ckey!r} unreachable (injected)"
                )
            slow = plan.decide("spanner.tablet_slow")
            if slow is not None:
                delay_us = slow.get("delay_us")
                if delay_us is None:
                    delay_us = plan.rand("spanner.tablet_slow").randint(
                        1_000, 20_000
                    )
                self._db.clock.advance(delay_us)
                if self._db.profiler:
                    # the stall is tablet time the transaction sat on
                    self._db.profiler.account(
                        "spanner", "read.tablet_slow", delay_us
                    )
                tracer = self._db.tracer
                if tracer:
                    span = tracer.current_span()
                    if span is not None:
                        # the stall elapsed on the clock inside whatever
                        # span is open — an interval storage wait
                        span.wait(
                            "storage_read",
                            start_us=self._db.clock.now_us - delay_us,
                            end_us=self._db.clock.now_us,
                            detail="tablet_slow",
                        )
        tablet = self._db.tablet_for(ckey)
        tablet.stats.record_read(self._db.clock.now_us)
        ts, value = tablet.read_latest(ckey)
        recorder = self._db.recorder
        if recorder is not None:
            # record the version's identity, not its liveness: a read of
            # a committed tombstone reads-from the deleting transaction
            # (ts stays its commit_ts); -1 means no version ever existed
            recorder.txn_read(
                self.txn_id,
                ckey,
                -1 if value is TOMBSTONE and ts == 0 else ts,
                for_update,
            )
        return None if value is TOMBSTONE else (ts, value)

    def scan(
        self,
        table: str,
        start: Optional[bytes],
        end: Optional[bytes],
        reverse: bool = False,
        limit: Optional[int] = None,
    ) -> Iterator[tuple[bytes, Any]]:
        """Range scan under a shared range lock plus per-row locks.

        Buffered writes of this transaction are merged into the result.
        The range lock covers the scanned interval, so a concurrent
        insert of a *new* key inside it conflicts — phantom protection,
        like Spanner's scanned-range locking.
        """
        self._check_active()
        schema = self._db.table(table)
        range_start = schema.composite_key(start if start is not None else b"")
        if end is not None:
            range_end: bytes | None = schema.composite_key(end)
        elif schema.tag < 0xFF:
            range_end = bytes([schema.tag + 1])
        else:  # pragma: no cover - tag space is capped below 0xFF
            range_end = None
        try:
            # reprolint: disable=lock-discipline -- 2PL: the scan's range lock is held until commit/rollback releases it; only the abort path releases here
            self._db.locks.acquire_range(self.txn_id, range_start, range_end)
        except LockConflict as exc:
            self._abort()
            raise _lock_abort(exc) from exc
        if self._db.sanitizer is not None:
            self._db.sanitizer.on_transactional_scan(
                self.txn_id, range_start, range_end
            )
        recorder = self._db.recorder
        if recorder is not None:
            recorder.txn_scan(self.txn_id, range_start, range_end)
        merged = self._merged_scan(table, start, end, reverse)
        count = 0
        for row_key, value in merged:
            schema = self._db.table(table)
            ckey = schema.composite_key(row_key)
            try:
                # reprolint: disable=lock-discipline -- 2PL: row locks taken by a reader are held until commit/rollback releases them; only the abort path releases here
                self._db.locks.acquire(self.txn_id, ckey, LockMode.SHARED)
            except LockConflict as exc:
                self._abort()
                raise _lock_abort(exc) from exc
            yield row_key, value
            count += 1
            if limit is not None and count >= limit:
                return

    def _merged_scan(
        self,
        table: str,
        start: Optional[bytes],
        end: Optional[bytes],
        reverse: bool,
    ) -> Iterator[tuple[bytes, Any]]:
        schema = self._db.table(table)
        tag = schema.tag

        def in_range(row_key: bytes) -> bool:
            if start is not None and row_key < start:
                return False
            if end is not None and row_key >= end:
                return False
            return True

        own: dict[bytes, Any] = {
            ckey[1:]: value
            for ckey, value in self._writes.items()
            if ckey[0] == tag and in_range(ckey[1:])
        }
        # Latest committed data (no read_ts: RW txns read latest under lock).
        latest_ts = self._db.truetime.last_issued or self._db.clock.now_us
        committed = self._db.snapshot_scan(
            table, start, end, read_ts=latest_ts, reverse=reverse
        )
        own_keys = sorted(own, reverse=reverse)
        own_idx = 0

        def own_ahead(committed_key: bytes) -> bool:
            key = own_keys[own_idx]
            return key < committed_key if not reverse else key > committed_key

        for row_key, value in committed:
            while own_idx < len(own_keys) and own_ahead(row_key):
                okey = own_keys[own_idx]
                own_idx += 1
                if own[okey] is not TOMBSTONE:
                    yield okey, own[okey]
            if own_idx < len(own_keys) and own_keys[own_idx] == row_key:
                okey = own_keys[own_idx]
                own_idx += 1
                if own[okey] is not TOMBSTONE:
                    yield okey, own[okey]
                continue
            yield row_key, value
        while own_idx < len(own_keys):
            okey = own_keys[own_idx]
            own_idx += 1
            if own[okey] is not TOMBSTONE:
                yield okey, own[okey]

    # -- writes ------------------------------------------------------------------

    def put(self, table: str, row_key: bytes, value: Any) -> None:
        """Buffer an insert-or-update of a row."""
        self._check_active()
        if value is None:
            raise InternalError("row values may not be None; use delete()")
        schema = self._db.table(table)
        self._writes[schema.composite_key(row_key)] = value

    def delete(self, table: str, row_key: bytes) -> None:
        """Buffer a deletion of a row."""
        self._check_active()
        schema = self._db.table(table)
        self._writes[schema.composite_key(row_key)] = TOMBSTONE

    def enqueue_message(self, topic: str, payload: Any) -> None:
        """Buffer a transactional message, durable iff the commit succeeds."""
        self._check_active()
        self._pending_messages.append((topic, payload))

    @property
    def pending_writes(self) -> int:
        """Buffered mutations awaiting commit."""
        return len(self._writes)

    # -- commit ------------------------------------------------------------------

    def commit(
        self,
        min_commit_ts: int = 0,
        max_commit_ts: Optional[int] = None,
    ) -> CommitResult:
        """Two-phase commit across every participant tablet.

        Raises :class:`Aborted` on lock conflict or an unsatisfiable
        timestamp window (definitive failures) and
        :class:`CommitOutcomeUnknown` when a fault injector simulates a
        lost acknowledgement.
        """
        self._check_active()
        tracer = self._db.tracer
        # duck-typed like recorder/fault_plan: the sim-time the commit
        # spends (fault delays advance the clock) lands in the profiler
        # ledger under spanner/commit, even on the abort paths
        profiler = self._db.profiler or NULL_PROFILER

        with profiler.measure("spanner", "commit", self._db.clock):
            # Phase 0: the replica group admits the commit — the leader
            # must be reachable with a live lease and a quorum up, else
            # Unavailable (clients retry with backoff, which advances the
            # clock toward lease expiry and failover)
            replication = self._db.replication
            if replication is not None:
                try:
                    replication.precommit()
                except Unavailable:
                    self._abort()
                    raise

            # Phase 1 (prepare): exclusive-lock every written row.
            with tracer.span(
                "spanner.locks",
                component="spanner",
                attributes={"phase": "prepare", "rows": len(self._writes)},
            ):
                for ckey in self._writes:
                    try:
                        self._db.locks.acquire(
                            self.txn_id, ckey, LockMode.EXCLUSIVE
                        )
                    except LockConflict as exc:
                        self._abort()
                        raise _lock_abort(exc) from exc

            self._inject_commit_faults(min_commit_ts, max_commit_ts)

            with tracer.span(
                "spanner.2pc", component="spanner", attributes={"phase": "commit"}
            ) as span:
                commit_ts = self._apply(min_commit_ts, max_commit_ts)
                participants = tuple(
                    sorted(
                        {
                            self._db.tablet_for(ckey).tablet_id
                            for ckey in self._writes
                        }
                    )
                )
                span.set_attribute("participants", len(participants))
                span.set_attribute("commit_ts", commit_ts)
                if tracer:
                    # TrueTime commit-wait: the committer must sit out the
                    # clock uncertainty before acking. The functional stack
                    # prices it without elapsing it — a *modeled* wait for
                    # critical-path attribution.
                    span.wait(
                        "commit_wait",
                        duration_us=self._db.truetime.commit_wait_us(commit_ts),
                    )
                result = CommitResult(commit_ts, participants, len(self._writes))
                self._db.locks.release_all(self.txn_id)
                self._state = "committed"
                self._db.commits += 1
                if self._db.sanitizer is not None:
                    self._db.sanitizer.on_txn_finished(
                        self.txn_id,
                        "committed",
                        commit_ts=commit_ts,
                        min_ts=min_commit_ts,
                        max_ts=max_commit_ts,
                    )
                return result

    def _inject_commit_faults(
        self, min_commit_ts: int, max_commit_ts: Optional[int]
    ) -> None:
        """Fire any injected commit fault, from either source.

        The legacy one-shot ``commit_fault_injector`` is consulted first
        (and stays a supported compat shim); otherwise the database's
        fault plan decides. Raises :class:`Aborted` for definitive
        failures and :class:`CommitOutcomeUnknown` for lost
        acknowledgements; returns normally when no fault fires.
        """
        db = self._db
        cause: Optional[BaseException] = None
        outcome: Optional[tuple[str, bool]] = None
        injector = db.commit_fault_injector
        if injector is not None:
            # one-shot: clear before firing so a failure path cannot leave
            # the injector armed for an unrelated later commit
            db.commit_fault_injector = None
            try:
                injector(self.txn_id)
            except _DefinitiveCommitFailure as exc:
                outcome, cause = ("fail", False), exc
            except _UnknownOutcomeFailure as exc:
                outcome, cause = ("unknown", exc.applied), exc
        plan = db.fault_plan
        if outcome is None and plan is not None:
            if plan.decide("spanner.split_during_commit") is not None:
                # a topology change mid-commit: the 2PC must tolerate the
                # tablet holding its writes splitting under it
                self._split_written_tablet()
            if plan.decide("spanner.commit_fail") is not None:
                outcome = ("fail", False)
            else:
                detail = plan.decide("spanner.commit_unknown")
                if detail is not None:
                    applied = detail.get("applied")
                    if applied is None:
                        applied = plan.rand("spanner.commit_unknown").bernoulli(
                            0.5
                        )
                    outcome = ("unknown", bool(applied))
        if outcome is None:
            return
        kind, applied = outcome
        if kind == "fail":
            self._abort()
            raise Aborted("commit failed definitively (injected)") from cause
        # "unknown" is a *client-side* state: the server either committed
        # or aborted, and in both cases it releases the transaction's
        # locks — only the acknowledgement was lost
        if applied:
            self._apply(min_commit_ts, max_commit_ts)
            db.locks.release_all(self.txn_id)
            db.commits += 1
            if db.sanitizer is not None:
                db.sanitizer.on_txn_finished(self.txn_id, "unknown-applied")
        else:
            self._abort()
        self._state = "unknown"
        recorder = db.recorder
        if recorder is not None:
            recorder.txn_unknown(self.txn_id, applied)
        raise CommitOutcomeUnknown(
            "commit outcome unknown (injected)"
        ) from cause

    def _split_written_tablet(self) -> None:
        """Split the tablet holding the first buffered write at that key."""
        if not self._writes:
            return
        from repro.spanner.splitting import LoadBasedSplitter

        ckey = next(iter(self._writes))
        tablet = self._db.tablet_for(ckey)
        if ckey > tablet.start_key:
            LoadBasedSplitter(self._db).split_tablet(tablet, at_key=ckey)

    def _apply(self, min_commit_ts: int, max_commit_ts: Optional[int]) -> int:
        replication = self._db.replication
        if replication is not None:
            # a post-failover leader must timestamp above the recovered
            # log tail (external consistency across failover); TrueTime's
            # global monotonicity already guarantees this, so the floor is
            # belt-and-braces the offline checker can see enforced
            min_commit_ts = max(min_commit_ts, replication.min_next_commit_ts)
        try:
            commit_ts = self._db.truetime.issue_commit_timestamp(
                min_commit_ts, max_commit_ts
            )
        except ValueError as exc:
            self._abort()
            raise Aborted(str(exc)) from exc
        now = self._db.clock.now_us
        for ckey, value in self._writes.items():
            tablet = self._db.tablet_for(ckey)
            chain = tablet.chain(ckey, create=True)
            chain.write(commit_ts, value)
            tablet.stats.record_write(now)
        if self._pending_messages:
            self._db.message_queue.commit_messages(self._pending_messages, commit_ts)
        if replication is not None:
            # quorum round: append to the replicated log and ship toward
            # followers (pure bookkeeping on the sim clock — the latency
            # model prices the commit's end-to-end time)
            replication.commit(commit_ts, len(self._writes))
        if self._db.sanitizer is not None:
            self._db.sanitizer.on_commit_applied(list(self._writes), commit_ts)
        recorder = self._db.recorder
        if recorder is not None:
            tt = self._db.truetime.now()
            recorder.txn_commit(
                self.txn_id,
                commit_ts,
                [
                    (ckey, "d" if value is TOMBSTONE else "w")
                    for ckey, value in self._writes.items()
                ],
                min_commit_ts,
                max_commit_ts,
                tt.earliest,
                tt.latest,
            )
        return commit_ts


def inject_definitive_failure() -> None:
    """Helper for tests: raise inside a commit_fault_injector."""
    raise _DefinitiveCommitFailure()


def inject_unknown_outcome(applied: bool) -> None:
    """Helper for tests: raise inside a commit_fault_injector."""
    raise _UnknownOutcomeFailure(applied)
