"""Spanner's transactional messaging system (simulated).

"Spanner also has a transactional messaging system that allows its user to
persist information that can be used to perform asynchronous work. This
system is used by the Firestore Backend to implement write triggers"
(paper section IV-D2). Messages enqueued inside a read-write transaction
become visible atomically with the commit, and are later removed and
delivered asynchronously.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional


@dataclass(frozen=True, slots=True)
class Message:
    """A durably-enqueued message."""

    message_id: int
    topic: str
    payload: Any
    commit_ts: int
    #: absolute sim-clock expiry; an expired message is dropped at
    #: poll/deliver time instead of doing asynchronous work the producer
    #: no longer wants (None = never expires)
    deadline_us: Optional[int] = None


class TransactionalMessageQueue:
    """Per-topic FIFO queues populated atomically at transaction commit."""

    def __init__(self, clock=None) -> None:
        self._queues: dict[str, list[Message]] = {}
        self._ids = itertools.count(1)
        self._subscribers: dict[str, list[Callable[[Message], None]]] = {}
        self.delivered = 0
        self.expired = 0
        #: optional sim clock; without one, message deadlines never expire
        self.clock = clock

    def commit_messages(
        self,
        pending: list[tuple[str, Any]],
        commit_ts: int,
        deadline_us: Optional[int] = None,
    ) -> list[Message]:
        """Make a transaction's buffered messages durable (called by the
        transaction commit path, atomically with the data mutations)."""
        out = []
        for topic, payload in pending:
            message = Message(
                next(self._ids), topic, payload, commit_ts, deadline_us
            )
            self._queues.setdefault(topic, []).append(message)
            out.append(message)
        return out

    def _unexpired(self, messages: list[Message]) -> list[Message]:
        if self.clock is None:
            return messages
        now = self.clock.now_us
        live = [
            m
            for m in messages
            if m.deadline_us is None or now < m.deadline_us
        ]
        self.expired += len(messages) - len(live)
        return live

    def subscribe(self, topic: str, handler: Callable[[Message], None]) -> None:
        """Register an async delivery handler for ``topic``."""
        self._subscribers.setdefault(topic, []).append(handler)

    def pending(self, topic: Optional[str] = None) -> int:
        """Queued messages, optionally for one topic."""
        if topic is not None:
            return len(self._queues.get(topic, []))
        return sum(len(q) for q in self._queues.values())

    def poll(self, topic: str, max_messages: int = 100) -> list[Message]:
        """Remove and return up to ``max_messages`` live messages from
        ``topic``; messages past their deadline are silently expired."""
        queue = self._unexpired(self._queues.get(topic, []))
        taken, self._queues[topic] = queue[:max_messages], queue[max_messages:]
        return taken

    def deliver_all(self) -> int:
        """Drain every topic to its subscribers; returns messages delivered.

        Topics without subscribers retain their messages (they stay
        persisted until someone polls), matching the at-least-once,
        eventually-delivered contract of the real system.
        """
        count = 0
        for topic in list(self._queues):
            handlers = self._subscribers.get(topic)
            if not handlers:
                continue
            for message in self.poll(topic, max_messages=len(self._queues[topic])):
                for handler in handlers:
                    handler(message)
                count += 1
                self.delivered += 1
        return count
