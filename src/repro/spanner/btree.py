"""An order-preserving B+tree map from byte-string keys to values.

Spanner tables, like Bigtable, "support efficient, in-order linear scans by
key" (paper section IV-D1); this is the data structure that provides them
in our simulation. Leaves are linked for fast range iteration; interior
nodes hold separator keys.

The implementation favours clarity over micro-optimization but keeps the
right asymptotics: O(log n) point operations, O(log n + k) range scans.
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, Optional


class _Leaf:
    __slots__ = ("keys", "values", "next", "prev")

    def __init__(self) -> None:
        self.keys: list[bytes] = []
        self.values: list[Any] = []
        self.next: Optional[_Leaf] = None
        self.prev: Optional[_Leaf] = None


class _Interior:
    __slots__ = ("keys", "children")

    def __init__(self) -> None:
        # children[i] covers keys < keys[i]; children[-1] covers the rest
        self.keys: list[bytes] = []
        self.children: list[Any] = []


class BTreeMap:
    """Sorted map over ``bytes`` keys with linked-leaf range scans."""

    __slots__ = ("_order", "_root", "_size")

    def __init__(self, order: int = 64):
        if order < 4:
            raise ValueError("B+tree order must be at least 4")
        self._order = order
        self._root: Any = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self.get(key, _MISSING) is not _MISSING

    def __getitem__(self, key: bytes) -> Any:
        value = self.get(key, _MISSING)
        if value is _MISSING:
            raise KeyError(key)
        return value

    def __setitem__(self, key: bytes, value: Any) -> None:
        self.put(key, value)

    def __delitem__(self, key: bytes) -> None:
        if not self.delete(key):
            raise KeyError(key)

    def __iter__(self) -> Iterator[bytes]:
        for key, _ in self.items():
            yield key

    # -- point operations ---------------------------------------------------

    def _find_leaf(self, key: bytes) -> _Leaf:
        node = self._root
        while isinstance(node, _Interior):
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def get(self, key: bytes, default: Any = None) -> Any:
        """The value for a key, or the default."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return leaf.values[idx]
        return default

    def put(self, key: bytes, value: Any) -> bool:
        """Insert or replace. Returns True if the key was newly inserted."""
        if not isinstance(key, bytes):
            raise TypeError(f"keys must be bytes, got {type(key).__name__}")
        # parallel node/index stacks: one list append per level instead of
        # a (node, idx) tuple allocation on the hot descent loop
        path_nodes: list[_Interior] = []
        path_idx: list[int] = []
        node = self._root
        while isinstance(node, _Interior):
            idx = bisect.bisect_right(node.keys, key)
            path_nodes.append(node)
            path_idx.append(idx)
            node = node.children[idx]

        idx = bisect.bisect_left(node.keys, key)
        if idx < len(node.keys) and node.keys[idx] == key:
            node.values[idx] = value
            return False
        node.keys.insert(idx, key)
        node.values.insert(idx, value)
        self._size += 1

        if len(node.keys) > self._order:
            self._split_leaf(node, path_nodes, path_idx)
        return True

    def _split_leaf(
        self, leaf: _Leaf, path_nodes: list[_Interior], path_idx: list[int]
    ) -> None:
        mid = len(leaf.keys) // 2
        right = _Leaf()
        right.keys = leaf.keys[mid:]
        right.values = leaf.values[mid:]
        leaf.keys = leaf.keys[:mid]
        leaf.values = leaf.values[:mid]
        right.next = leaf.next
        if right.next is not None:
            right.next.prev = right
        right.prev = leaf
        leaf.next = right
        self._insert_into_parent(leaf, right.keys[0], right, path_nodes, path_idx)

    def _insert_into_parent(
        self,
        left: Any,
        separator: bytes,
        right: Any,
        path_nodes: list[_Interior],
        path_idx: list[int],
    ) -> None:
        if not path_nodes:
            new_root = _Interior()
            new_root.keys = [separator]
            new_root.children = [left, right]
            self._root = new_root
            return
        parent = path_nodes.pop()
        idx = path_idx.pop()
        parent.keys.insert(idx, separator)
        parent.children.insert(idx + 1, right)
        if len(parent.children) > self._order:
            self._split_interior(parent, path_nodes, path_idx)

    def _split_interior(
        self, node: _Interior, path_nodes: list[_Interior], path_idx: list[int]
    ) -> None:
        mid = len(node.keys) // 2
        separator = node.keys[mid]
        right = _Interior()
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        self._insert_into_parent(node, separator, right, path_nodes, path_idx)

    def delete(self, key: bytes) -> bool:
        """Remove ``key``. Returns True if it was present.

        Uses lazy deletion structure-wise: underfull leaves are tolerated
        and empty leaves are unlinked. This keeps scans correct and point
        ops O(log n); tablets in this simulation are rebuilt on split, so
        aggressive rebalancing buys nothing.
        """
        path_nodes: list[_Interior] = []
        path_idx: list[int] = []
        node = self._root
        while isinstance(node, _Interior):
            idx = bisect.bisect_right(node.keys, key)
            path_nodes.append(node)
            path_idx.append(idx)
            node = node.children[idx]
        idx = bisect.bisect_left(node.keys, key)
        if idx >= len(node.keys) or node.keys[idx] != key:
            return False
        node.keys.pop(idx)
        node.values.pop(idx)
        self._size -= 1
        if not node.keys and path_nodes:
            self._unlink_empty_leaf(node, path_nodes, path_idx)
        return True

    def _unlink_empty_leaf(
        self, leaf: _Leaf, path_nodes: list[_Interior], path_idx: list[int]
    ) -> None:
        if leaf.prev is not None:
            leaf.prev.next = leaf.next
        if leaf.next is not None:
            leaf.next.prev = leaf.prev
        parent = path_nodes[-1]
        idx = path_idx[-1]
        parent.children.pop(idx)
        if idx > 0:
            parent.keys.pop(idx - 1)
        elif parent.keys:
            parent.keys.pop(0)
        # collapse chains of single-child interiors up the path
        node: Any = parent
        for level in range(len(path_nodes) - 2, -1, -1):
            if len(node.children) == 0:
                ancestor = path_nodes[level]
                akeys = ancestor.keys
                ancestor.children.pop(path_idx[level])
                if path_idx[level] > 0:
                    akeys.pop(path_idx[level] - 1)
                elif akeys:
                    akeys.pop(0)
                node = ancestor
            else:
                break
        root = self._root
        while isinstance(root, _Interior) and len(root.children) == 1:
            root = root.children[0]
        if isinstance(root, _Interior) and len(root.children) == 0:
            root = _Leaf()
        self._root = root

    # -- range operations ----------------------------------------------------

    def items(
        self,
        start: Optional[bytes] = None,
        end: Optional[bytes] = None,
        reverse: bool = False,
        start_inclusive: bool = True,
        end_inclusive: bool = False,
    ) -> Iterator[tuple[bytes, Any]]:
        """Iterate (key, value) pairs over ``[start, end)`` by default.

        Bounds of ``None`` mean unbounded on that side. ``reverse=True``
        yields in descending key order over the same range.
        """
        if reverse:
            yield from self._items_reverse(start, end, start_inclusive, end_inclusive)
            return
        if start is None:
            leaf = self._leftmost_leaf()
            idx = 0
        else:
            leaf = self._find_leaf(start)
            idx = (
                bisect.bisect_left(leaf.keys, start)
                if start_inclusive
                else bisect.bisect_right(leaf.keys, start)
            )
        while leaf is not None:
            while idx < len(leaf.keys):
                key = leaf.keys[idx]
                if end is not None:
                    if end_inclusive:
                        if key > end:
                            return
                    elif key >= end:
                        return
                yield key, leaf.values[idx]
                idx += 1
            leaf = leaf.next
            idx = 0

    def _items_reverse(
        self,
        start: Optional[bytes],
        end: Optional[bytes],
        start_inclusive: bool,
        end_inclusive: bool,
    ) -> Iterator[tuple[bytes, Any]]:
        if end is None:
            leaf = self._rightmost_leaf()
            idx = len(leaf.keys) - 1
        else:
            leaf = self._find_leaf(end)
            if end_inclusive:
                idx = bisect.bisect_right(leaf.keys, end) - 1
            else:
                idx = bisect.bisect_left(leaf.keys, end) - 1
            if idx < 0:
                leaf = leaf.prev
                idx = len(leaf.keys) - 1 if leaf is not None else -1
        while leaf is not None:
            while idx >= 0:
                key = leaf.keys[idx]
                if start is not None:
                    if start_inclusive:
                        if key < start:
                            return
                    elif key <= start:
                        return
                yield key, leaf.values[idx]
                idx -= 1
            leaf = leaf.prev
            idx = len(leaf.keys) - 1 if leaf is not None else -1

    def keys(self, **kwargs) -> Iterator[bytes]:
        """Keys over an optional range, in order."""
        for key, _ in self.items(**kwargs):
            yield key

    def values(self, **kwargs) -> Iterator[Any]:
        """Values over an optional range, in key order."""
        for _, value in self.items(**kwargs):
            yield value

    def first_key(self) -> Optional[bytes]:
        """The smallest key, or None when empty."""
        leaf = self._leftmost_leaf()
        while leaf is not None and not leaf.keys:
            leaf = leaf.next
        return leaf.keys[0] if leaf is not None and leaf.keys else None

    def last_key(self) -> Optional[bytes]:
        """The largest key, or None when empty."""
        leaf = self._rightmost_leaf()
        while leaf is not None and not leaf.keys:
            leaf = leaf.prev
        return leaf.keys[-1] if leaf is not None and leaf.keys else None

    def _leftmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Interior):
            node = node.children[0]
        return node

    def _rightmost_leaf(self) -> _Leaf:
        node = self._root
        while isinstance(node, _Interior):
            node = node.children[-1]
        return node

    def key_at_fraction(self, fraction: float) -> Optional[bytes]:
        """Approximate key at the given fraction of the keyspace by rank.

        Used by load-based splitting to find a midpoint. O(n) worst case
        but only invoked on (rare) split decisions.
        """
        if self._size == 0:
            return None
        target = min(self._size - 1, max(0, int(self._size * fraction)))
        for i, key in enumerate(self):
            if i == target:
                return key
        return None


class _Missing:
    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return "<missing>"


_MISSING = _Missing()
