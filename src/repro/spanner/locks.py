"""Row-granular lock table for read-write transactions.

Spanner read-write transactions are lock-based (paper section IV-D1);
Firestore documents map to single rows, so "sub-document granular locking
is not supported" and document-level locks suffice.

Because this simulation is single-threaded, a conflicting request cannot
block; it raises :class:`LockConflict` and the caller aborts and retries,
exactly the remediation the paper describes for contention ("long-lived or
large transactions may lead to lock contention and deadlocks that are
resolved by failing and retrying such transactions"). This also makes
deadlock impossible by construction while preserving the observable
behaviour (aborted transactions under contention).
"""

from __future__ import annotations

import enum

from repro.errors import LockConflict


class LockMode(enum.Enum):
    """Shared (read) vs exclusive (write) lock modes."""
    SHARED = "shared"
    EXCLUSIVE = "exclusive"


class _LockState:
    __slots__ = ("shared_holders", "exclusive_holder")

    def __init__(self) -> None:
        self.shared_holders: set[int] = set()
        self.exclusive_holder: int | None = None

    def is_free(self) -> bool:
        return not self.shared_holders and self.exclusive_holder is None


class LockTable:
    """Tracks shared/exclusive row locks per transaction id.

    Also supports *shared range locks* covering a key interval: a
    transactional scan locks the range it read, so a concurrent insert of
    a new key inside that range conflicts — the range lock is what
    excludes phantoms (Spanner locks scanned ranges, not just rows).
    """

    __slots__ = (
        "_locks",
        "_held_by_txn",
        "_ranges",
        "conflicts",
        "metrics",
        "owner",
    )

    def __init__(self) -> None:
        self._locks: dict[bytes, _LockState] = {}
        self._held_by_txn: dict[int, set[bytes]] = {}
        # txn_id -> list of (start, end_or_None) shared ranges
        self._ranges: dict[int, list[tuple[bytes, bytes | None]]] = {}
        self.conflicts = 0  # observability: count of refused acquisitions
        # optional repro.obs wiring (set by the owning SpannerDatabase):
        # every refused acquisition also increments a labeled counter
        self.metrics = None
        self.owner = ""

    def _record_conflict(self) -> None:
        self.conflicts += 1
        if self.metrics is not None:
            self.metrics.counter(
                "spanner.lock_conflicts", database=self.owner
            ).inc()

    def acquire(self, txn_id: int, key: bytes, mode: LockMode) -> None:
        """Grant the lock or raise :class:`LockConflict`.

        Re-entrant for the same transaction; a shared holder may upgrade
        to exclusive iff it is the only holder.
        """
        state = self._locks.get(key)
        if state is None:
            state = _LockState()
            self._locks[key] = state

        if mode is LockMode.SHARED:
            if state.exclusive_holder is not None and state.exclusive_holder != txn_id:
                self._record_conflict()
                raise LockConflict(key, state.exclusive_holder, txn_id)
            state.shared_holders.add(txn_id)
        else:
            if state.exclusive_holder is not None and state.exclusive_holder != txn_id:
                self._record_conflict()
                raise LockConflict(key, state.exclusive_holder, txn_id)
            others = state.shared_holders - {txn_id}
            if others:
                self._record_conflict()
                raise LockConflict(key, next(iter(others)), txn_id)
            blocker = self._range_holder(key, exclude=txn_id)
            if blocker is not None:
                self._record_conflict()
                raise LockConflict(key, blocker, txn_id)
            state.exclusive_holder = txn_id
            state.shared_holders.discard(txn_id)

        self._held_by_txn.setdefault(txn_id, set()).add(key)

    def acquire_range(
        self, txn_id: int, start: bytes, end: bytes | None
    ) -> None:
        """Take a shared lock over [start, end) — phantom protection.

        Conflicts with any *other* transaction already holding an
        exclusive row lock inside the range.
        """
        for key, state in self._locks.items():
            if state.exclusive_holder is None or state.exclusive_holder == txn_id:
                continue
            if key >= start and (end is None or key < end):
                self._record_conflict()
                raise LockConflict(key, state.exclusive_holder, txn_id)
        self._ranges.setdefault(txn_id, []).append((start, end))

    def _range_holder(self, key: bytes, exclude: int) -> int | None:
        for holder, ranges in self._ranges.items():
            if holder == exclude:
                continue
            for start, end in ranges:
                if key >= start and (end is None or key < end):
                    return holder
        return None

    def release_all(self, txn_id: int) -> int:
        """Release every lock held by ``txn_id``; returns count released."""
        self._ranges.pop(txn_id, None)
        keys = self._held_by_txn.pop(txn_id, set())
        # sorted: set order depends on hash randomization, and release
        # order must not (determinism across processes)
        for key in sorted(keys):
            state = self._locks.get(key)
            if state is None:
                continue
            state.shared_holders.discard(txn_id)
            if state.exclusive_holder == txn_id:
                state.exclusive_holder = None
            if state.is_free():
                del self._locks[key]
        return len(keys)

    def holders(self, key: bytes) -> tuple[set[int], int | None]:
        """(shared holders, exclusive holder) for ``key`` — for tests."""
        state = self._locks.get(key)
        if state is None:
            return (set(), None)
        return (set(state.shared_holders), state.exclusive_holder)

    def held_keys(self, txn_id: int) -> set[bytes]:
        """Keys a transaction currently holds locks on."""
        return set(self._held_by_txn.get(txn_id, set()))

    def held_ranges(self, txn_id: int) -> list[tuple[bytes, bytes | None]]:
        """Range locks a transaction currently holds (start, end) pairs."""
        return list(self._ranges.get(txn_id, ()))

    def active_lock_count(self) -> int:
        """Row locks currently held by anyone."""
        return len(self._locks)
