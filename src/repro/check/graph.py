"""The transaction dependency graph (Adya/Elle-style).

Builds the direct-serialization graph over the committed transactions of
a recorded history: one node per committed transaction, one edge per
observed dependency —

- **wr** (read-from): T1 committed a version of a key that T2's
  transactional read observed,
- **ww** (write-follows): T1 and T2 are consecutive committed writers of
  the same key in commit-timestamp order,
- **rw** (anti-dependency): T1 read a version of a key that T2 later
  overwrote (T1 read *past* T2's write).

A serializable execution admits a topological order of this graph; any
cycle is a serializability violation. :func:`cycles` finds the strongly
connected components with more than one node (Tarjan), which the checker
classifies into the classic anomalies (lost update, write skew) or
reports as generic cycles.

Versions that predate the recording (a read observing a commit timestamp
no recorded transaction produced, including ``-1`` = absent) contribute
rw edges to the *first* recorded overwriter but no wr edge — the writer
is outside the history, exactly like Elle's treatment of the initial
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Txn:
    """One committed transaction reconstructed from the history."""

    txn_id: int
    begin_index: int = -1
    commit_index: int = -1
    commit_ts: int = -1
    min_ts: int = 0
    max_ts: int | None = None
    tt_earliest: int = 0
    tt_latest: int = 0
    #: (event index, key hex, observed version commit_ts) per read
    reads: list[tuple[int, str, int]] = field(default_factory=list)
    #: key hex -> "w" | "d"
    writes: dict[str, str] = field(default_factory=dict)
    unknown: bool = False


@dataclass(frozen=True)
class Edge:
    """One dependency edge between committed transactions."""

    src: int  # txn_id
    dst: int  # txn_id
    kind: str  # "wr" | "ww" | "rw"
    key: str  # key hex


def committed_txns(events: list[dict]) -> dict[int, Txn]:
    """Reconstruct the committed (applied) transactions of a history.

    A transaction counts as committed iff a ``commit`` event recorded its
    application — which includes unknown-outcome commits whose mutations
    were applied (the ack was lost but the data is durable).
    """
    txns: dict[int, Txn] = {}

    def txn_for(txn_id: int) -> Txn:
        txn = txns.get(txn_id)
        if txn is None:
            txn = Txn(txn_id)
            txns[txn_id] = txn
        return txn

    for index, event in enumerate(events):
        kind = event.get("k")
        if kind == "begin":
            txn_for(event["txn"]).begin_index = index
        elif kind == "read":
            txn_for(event["txn"]).reads.append(
                (index, event["key"], event["ts"])
            )
        elif kind == "commit":
            txn = txn_for(event["txn"])
            txn.commit_index = index
            txn.commit_ts = event["ts"]
            txn.min_ts = event.get("min", 0)
            txn.max_ts = event.get("max")
            txn.tt_earliest = event.get("tt_e", 0)
            txn.tt_latest = event.get("tt_l", 0)
            for key, write_kind in event.get("writes", []):
                txn.writes[key] = write_kind
        elif kind == "unknown":
            txn_for(event["txn"]).unknown = True
    return {
        txn_id: txn
        for txn_id, txn in txns.items()
        if txn.commit_index >= 0
    }


def dependency_edges(txns: dict[int, Txn]) -> list[Edge]:
    """The wr/ww/rw edges over the committed transactions."""
    # key -> committed writers sorted by commit_ts
    writers: dict[str, list[Txn]] = {}
    for txn in txns.values():
        for key in txn.writes:
            writers.setdefault(key, []).append(txn)
    for key_writers in writers.values():
        key_writers.sort(key=lambda t: t.commit_ts)
    # commit_ts of a key's recorded versions, for read-from resolution
    version_writer: dict[tuple[str, int], Txn] = {
        (key, txn.commit_ts): txn
        for key, key_writers in writers.items()
        for txn in key_writers
    }

    edges: list[Edge] = []
    seen: set[tuple[int, int, str, str]] = set()

    def add(src: int, dst: int, kind: str, key: str) -> None:
        if src == dst:
            return
        signature = (src, dst, kind, key)
        if signature not in seen:
            seen.add(signature)
            edges.append(Edge(src, dst, kind, key))

    # ww: consecutive writers of each key
    for key, key_writers in writers.items():
        for earlier, later in zip(key_writers, key_writers[1:]):
            add(earlier.txn_id, later.txn_id, "ww", key)

    for reader in txns.values():
        for _, key, version_ts in reader.reads:
            writer = version_writer.get((key, version_ts))
            if writer is not None:
                add(writer.txn_id, reader.txn_id, "wr", key)
            # rw: the first recorded writer that overwrote what was read
            for overwriter in writers.get(key, []):
                if overwriter.commit_ts > version_ts:
                    add(reader.txn_id, overwriter.txn_id, "rw", key)
                    break
    return edges


def cycles(txns: dict[int, Txn], edges: list[Edge]) -> list[list[int]]:
    """Strongly connected components with >1 transaction (Tarjan).

    Each returned component is a list of txn_ids; its presence proves the
    history is not serializable.
    """
    adjacency: dict[int, list[int]] = {txn_id: [] for txn_id in txns}
    for edge in edges:
        adjacency[edge.src].append(edge.dst)

    index_of: dict[int, int] = {}
    low: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    counter = [0]
    components: list[list[int]] = []

    def strongconnect(root: int) -> None:
        # iterative Tarjan: (node, iterator position) work stack
        work = [(root, 0)]
        while work:
            node, child_pos = work.pop()
            if child_pos == 0:
                index_of[node] = low[node] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(node)
            recursed = False
            children = adjacency[node]
            for position in range(child_pos, len(children)):
                child = children[position]
                if child not in index_of:
                    work.append((node, position + 1))
                    work.append((child, 0))
                    recursed = True
                    break
                if child in on_stack:
                    low[node] = min(low[node], index_of[child])
            if recursed:
                continue
            if low[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])

    for txn_id in txns:
        if txn_id not in index_of:
            strongconnect(txn_id)
    return components
