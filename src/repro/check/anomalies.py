"""Seeded-anomaly fixtures: histories the checker MUST flag.

Each function here is a *deliberately broken* toy store registered as an
``anomaly-*`` scenario: it fabricates an execution history straight into
a :class:`repro.check.history.HistoryRecorder`, skipping the real
stack's locking / TrueTime / watermark machinery — exactly the bugs the
checker exists to catch:

- :func:`lost_update` — unlocked read-modify-write: overlapping
  transactions both read the same version of a key and both overwrite
  it (:class:`repro.check.checker.LostUpdate`).
- :func:`write_skew` — snapshot-isolation-style transactions read two
  keys and write one each, mutually overwriting what the other read
  (:class:`repro.check.checker.WriteSkew`).
- :func:`stale_notification` — a Changelog that drops or reorders
  committed changes while still advancing its watermark
  (:class:`repro.check.checker.NotificationLoss` /
  :class:`~repro.check.checker.NotificationOrderViolation`).
- :func:`non_monotonic_ts` — per-node clock skew instead of TrueTime:
  commit timestamps regress in real-time order
  (:class:`repro.check.checker.NonMonotonicCommit`).

All randomness is a deterministic function of the seed (mode biases the
distributions), so the schedule explorer's sweep finds violating seeds
and shrinks them to minimal ``(seed, mode, ops)`` reproducers just as it
would for a real bug.
"""

from __future__ import annotations

from types import SimpleNamespace

from repro.check.history import HistoryRecorder, install
from repro.sim.rand import SimRandom


def _recorder(name: str) -> HistoryRecorder:
    """A recorder registered for collection by the active recording()."""
    return install(SimpleNamespace(clock=None, name=name, recorder=None))


def _overlap_bias(mode: str) -> int:
    """``delay`` stretches the toy stores' conflict windows."""
    return 2 if mode == "delay" else 1


def lost_update(seed: int, mode: str, ops: int) -> None:
    """Unlocked read-modify-write transactions over one counter key."""
    rand = SimRandom(seed).fork("anomaly-lost-update")
    recorder = _recorder("anomaly-lost-update")
    key = b"counter"
    hold = 1_600 * _overlap_bias(mode)
    schedule: list[tuple[int, str, int]] = []  # (time, action, txn)
    for txn_id in range(1, ops + 1):
        read_at = txn_id * 1_000 + rand.randint(0, 800)
        commit_at = read_at + rand.randint(100, hold)
        schedule.append((read_at, "read", txn_id))
        schedule.append((commit_at, "commit", txn_id))
    schedule.sort()
    committed_ts = -1  # latest version of the key; -1 = absent
    observed: dict[int, int] = {}
    last_ts = 0
    for at, action, txn_id in schedule:
        if action == "read":
            recorder.txn_begin(txn_id, at)
            recorder.txn_read(txn_id, key, committed_ts, False)
            observed[txn_id] = committed_ts
        else:
            last_ts = max(last_ts + 1, at)
            recorder.txn_commit(
                txn_id, last_ts, [(key, "w")], 0, None, last_ts - 2, last_ts + 2
            )
            committed_ts = last_ts


def write_skew(seed: int, mode: str, ops: int) -> None:
    """Transactions read both keys but only lock-and-write their own."""
    rand = SimRandom(seed).fork("anomaly-write-skew")
    recorder = _recorder("anomaly-write-skew")
    keys = (b"on-call-a", b"on-call-b")
    hold = 1_600 * _overlap_bias(mode)
    schedule: list[tuple[int, str, int]] = []
    for txn_id in range(1, ops + 1):
        read_at = txn_id * 1_000 + rand.randint(0, 800)
        commit_at = read_at + rand.randint(100, hold)
        schedule.append((read_at, "read", txn_id))
        schedule.append((commit_at, "commit", txn_id))
    schedule.sort()
    latest = {keys[0]: -1, keys[1]: -1}
    last_ts = 0
    for at, action, txn_id in schedule:
        # each transaction writes one key (alternating) but reads both
        written = keys[txn_id % 2]
        if action == "read":
            recorder.txn_begin(txn_id, at)
            for key in keys:
                recorder.txn_read(txn_id, key, latest[key], False)
        else:
            last_ts = max(last_ts + 1, at)
            recorder.txn_commit(
                txn_id,
                last_ts,
                [(written, "w")],
                0,
                None,
                last_ts - 2,
                last_ts + 2,
            )
            latest[written] = last_ts


def stale_notification(seed: int, mode: str, ops: int) -> None:
    """A Changelog that loses/reorders changes yet advances anyway."""
    rand = SimRandom(seed).fork("anomaly-stale-notification")
    recorder = _recorder("anomaly-stale-notification")
    range_id = 1
    swap_bias = 0.4 if mode == "flip" else 0.2
    accepted: list[tuple[int, str]] = []
    for op in range(ops):
        ts = (op + 1) * 1_000
        path = f"docs/d{op}"
        recorder.changelog_accept(
            range_id, op + 1, "committed", ts, [path]
        )
        accepted.append((ts, path))
    # the broken flush: sometimes drop a change, sometimes swap a pair
    deliveries = list(accepted)
    for position in range(len(deliveries) - 1):
        if rand.bernoulli(swap_bias):
            deliveries[position], deliveries[position + 1] = (
                deliveries[position + 1],
                deliveries[position],
            )
    deliveries = [item for item in deliveries if not rand.bernoulli(0.3)]
    for ts, path in deliveries:
        recorder.changelog_deliver(range_id, ts, path)
    # ...while still claiming the whole prefix is complete
    recorder.changelog_watermark(range_id, accepted[-1][0] + 100)


def non_monotonic_ts(seed: int, mode: str, ops: int) -> None:
    """Two commit nodes trusting their own skewed clocks, no TrueTime."""
    rand = SimRandom(seed).fork("anomaly-non-monotonic-ts")
    recorder = _recorder("anomaly-non-monotonic-ts")
    skews = (0, rand.randint(-3_000, 3_000) * _overlap_bias(mode))
    now = 10_000
    for txn_id in range(1, ops + 1):
        now += rand.randint(200, 1_200)
        node = txn_id % 2
        ts = max(1, now + skews[node])
        recorder.txn_begin(txn_id, now)
        recorder.txn_commit(
            txn_id,
            ts,
            [(b"doc-%d" % txn_id, "w")],
            0,
            None,
            ts - 2,
            ts + 2,
        )
