"""The deterministic schedule explorer.

Reruns a scenario (:mod:`repro.check.scenarios`) across a seed sweep and
a set of *perturbation modes* — targeted, biased reorderings of the
event queue via the :class:`repro.sim.events.SchedulePerturber` hook —
checking every recorded history. Because every source of nondeterminism
is seeded, a violating ``(scenario, seed, mode, ops)`` tuple is a
perfect reproducer: rerunning it replays the exact same schedule and the
exact same violation.

When a violation is found the explorer *shrinks* it: it halves the
scenario's operation count while the violation persists, and tries
dropping the perturbation, producing the minimal reproducer it can find
(Elle/QuickCheck style). The result carries a ready-to-paste
``python -m repro.check`` command line.

Perturbation modes:

``none``
    the natural schedule (requested time, insertion order).
``delay``
    seeded extra latency on targeted events — commit, Real-time Cache
    pump, and transaction-step events get up to a few milliseconds of
    jitter, stretching the windows in which transactions overlap.
``flip``
    seeded tie-break priorities — events scheduled for the same instant
    run in a seeded order instead of insertion order, exercising
    alternative-but-legal interleavings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.sim.rand import SimRandom

#: the perturbation modes the explorer understands
MODES = ("none", "delay", "flip")

#: labels the perturbers target: transaction steps, 2pc commits,
#: realtime pumps and notification deliveries
TARGET_PREFIXES = ("txn", "commit", "2pc", "rtc", "pump", "notify")

#: maximum injected delay (microseconds) in ``delay`` mode
MAX_DELAY_US = 4_000


def _targeted(label: str) -> bool:
    return label.startswith(TARGET_PREFIXES)


class DelayPerturber:
    """Seeded extra latency on targeted events (same-seed deterministic)."""

    def __init__(self, seed: int):
        self._rand = SimRandom(seed).fork("perturb-delay")

    def perturb(self, time_us: int, label: str, now_us: int) -> tuple[int, int]:
        if _targeted(label):
            time_us += self._rand.randint(0, MAX_DELAY_US)
        return time_us, 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "DelayPerturber()"


class FlipPerturber:
    """Seeded tie-break priorities: same-instant events run in a seeded
    order instead of insertion order."""

    def __init__(self, seed: int):
        self._rand = SimRandom(seed).fork("perturb-flip")

    def perturb(self, time_us: int, label: str, now_us: int) -> tuple[int, int]:
        priority = self._rand.randint(-8, 8) if _targeted(label) else 0
        return time_us, priority

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "FlipPerturber()"


def make_perturber(mode: str, seed: int):
    """The SchedulePerturber for one (mode, seed), or None for ``none``."""
    if mode == "none":
        return None
    if mode == "delay":
        return DelayPerturber(seed)
    if mode == "flip":
        return FlipPerturber(seed)
    raise ValueError(f"unknown perturbation mode {mode!r}; pick from {MODES}")


@dataclass(frozen=True)
class Reproducer:
    """A minimal violating run: rerun it to replay the violation."""

    scenario: str
    seed: int
    mode: str
    ops: int
    #: check ids of the violations the run produced
    violations: tuple[str, ...]

    def command(self) -> str:
        """The ready-to-paste rerun command."""
        return (
            f"python -m repro.check --scenario {self.scenario} "
            f"--seed {self.seed} --mode {self.mode} --ops {self.ops}"
        )


@dataclass
class ExplorationReport:
    """What a sweep found."""

    scenario: str
    runs: int = 0
    clean: int = 0
    reproducers: list[Reproducer] = field(default_factory=list)

    @property
    def found_violation(self) -> bool:
        """Whether any (seed, mode) produced a violation."""
        return bool(self.reproducers)


def _violation_checks(result) -> tuple[str, ...]:
    return tuple(violation.check for violation in result.violations)


def shrink(scenario: str, seed: int, mode: str, ops: int) -> Reproducer:
    """Minimize a violating run: halve ops, then try dropping the mode.

    Every candidate rerun is itself deterministic, so the returned
    reproducer is guaranteed to still violate.
    """
    from repro.check.scenarios import run_scenario

    best = run_scenario(scenario, seed, mode, ops)
    assert best.violations, "shrink() requires a violating run"
    best_ops, best_mode = ops, mode
    # halve the operation count while the violation persists
    candidate_ops = ops // 2
    while candidate_ops >= 1:
        result = run_scenario(scenario, seed, mode, candidate_ops)
        if not result.violations:
            break
        best, best_ops = result, candidate_ops
        candidate_ops //= 2
    # a reproducer that needs no perturbation is simpler still
    if best_mode != "none":
        result = run_scenario(scenario, seed, "none", best_ops)
        if result.violations:
            best, best_mode = result, "none"
    return Reproducer(
        scenario, seed, best_mode, best_ops, _violation_checks(best)
    )


def explore(
    scenario: str,
    seeds: Sequence[int],
    modes: Sequence[str] = MODES,
    ops: Optional[int] = None,
    stop_at: Optional[int] = None,
) -> ExplorationReport:
    """Sweep (seed, mode) pairs, shrinking every violating run found.

    ``stop_at`` caps how many reproducers to collect before returning
    early (None = sweep everything).
    """
    from repro.check.scenarios import run_scenario, default_ops

    if ops is None:
        ops = default_ops(scenario)
    report = ExplorationReport(scenario)
    for mode in modes:
        for seed in seeds:
            result = run_scenario(scenario, seed, mode, ops)
            report.runs += 1
            if result.violations:
                report.reproducers.append(shrink(scenario, seed, mode, ops))
                if stop_at is not None and len(report.reproducers) >= stop_at:
                    return report
            else:
                report.clean += 1
    return report
