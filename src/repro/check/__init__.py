"""repro.check — transactional history checker + schedule explorer.

The paper's core claims are *consistency guarantees*: serializable
transactions (section IV-D1), externally consistent TrueTime commit
timestamps, and Real-time Cache notifications delivered complete and in
commit order (section IV-D4). This package verifies them over whole
executions, Elle-style, instead of trusting the implementation:

- :mod:`repro.check.history` — a **history recorder** hooked into the
  Spanner transaction path, the Firestore seven-step write protocol, and
  the Real-time Cache delivery path. Enabled via ``REPRO_CHECK=1`` (or
  ``pytest --check``), it emits a compact JSONL log of reads (with the
  versions they observed), writes, commit timestamps with their TrueTime
  windows, and notification deliveries.
- :mod:`repro.check.graph` / :mod:`repro.check.checker` — an offline
  **checker** (``python -m repro.check``) that builds the wr/ww/rw
  dependency graph over the recorded transactions, detects
  serializability cycles, and verifies external consistency, snapshot
  reads, index/document atomicity, and notification order/completeness.
- :mod:`repro.check.explorer` — a **schedule explorer** that reruns a
  scenario across seed sweeps and biased event-queue perturbations
  (``repro.sim.events`` priorities + the one-shot
  ``commit_fault_injector``), shrinking any violating run to a minimal
  ``(seed, perturbation, ops)`` reproducer.
- :mod:`repro.check.anomalies` — deliberately broken toy stores (lost
  update, write skew, stale notification, non-monotonic commit
  timestamps) proving the checker can actually fail.

Violations surface through :class:`repro.errors.CheckerViolation`, the
same :class:`repro.errors.VerificationError` family the dynamic
sanitizers raise, and bump ``checker.violations`` metrics counters when
a registry is attached.
"""

from repro.check.checker import (
    CommitWindowViolation,
    ExternalConsistencyViolation,
    IndexInconsistency,
    LostUpdate,
    NonMonotonicCommit,
    NotificationLoss,
    NotificationOrderViolation,
    SerializabilityCycle,
    StaleSnapshotRead,
    Violation,
    WriteSkew,
    assert_clean,
    check_history,
)
from repro.check.history import (
    HistoryRecorder,
    checking_enabled,
    drain_recorders,
    install,
    maybe_install,
    recording,
    set_enabled,
)

__all__ = [
    "CommitWindowViolation",
    "ExternalConsistencyViolation",
    "HistoryRecorder",
    "IndexInconsistency",
    "LostUpdate",
    "NonMonotonicCommit",
    "NotificationLoss",
    "NotificationOrderViolation",
    "SerializabilityCycle",
    "StaleSnapshotRead",
    "Violation",
    "WriteSkew",
    "assert_clean",
    "check_history",
    "checking_enabled",
    "drain_recorders",
    "install",
    "maybe_install",
    "recording",
    "set_enabled",
]
