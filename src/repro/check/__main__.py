"""``python -m repro.check`` — run / check / explore recorded histories.

Default (no arguments): run the ``ycsb`` acceptance scenario with
recording on and check the resulting history — exit 0 iff it is clean.

Modes:

- ``--check-log FILE``: check an existing history JSONL log offline.
- ``--scenario NAME [--seed N --mode M --ops K]``: one recorded,
  checked run; ``--log-out FILE`` writes its history log.
- ``--explore --scenario NAME --seeds N --modes none,delay``: sweep
  seeds × perturbation modes, shrinking every violation found to a
  minimal reproducer.

Exit status: 0 = clean, 1 = violations found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import sys

from repro.check.checker import Violation, check_history
from repro.check.explorer import MODES, explore
from repro.check.history import HistoryRecorder
from repro.check.scenarios import SCENARIOS, run_scenario


def _print_violations(violations: list[Violation]) -> None:
    for violation in violations:
        line = str(violation)
        if violation.events:
            line += f"  (events {list(violation.events)})"
        if violation.spans:
            line += f"  (spans {[hex(span) for span in violation.spans]})"
        print(line)


def _cmd_check_log(path: str) -> int:
    with open(path, "r", encoding="utf-8") as handle:
        events = HistoryRecorder.parse_jsonl(handle.read())
    violations = check_history(events)
    print(f"{path}: {len(events)} events, {len(violations)} violation(s)")
    _print_violations(violations)
    return 1 if violations else 0


def _cmd_run(args) -> int:
    result = run_scenario(args.scenario, args.seed, args.mode, args.ops)
    print(
        f"scenario {result.scenario!r} seed={result.seed} "
        f"mode={result.mode} ops={result.ops}: "
        f"{len(result.histories)} history(ies), "
        f"{result.event_count} events, "
        f"{len(result.violations)} violation(s)"
    )
    _print_violations(result.violations)
    if args.log_out:
        import json

        with open(args.log_out, "w", encoding="utf-8") as handle:
            for history in result.histories:
                for event in history:
                    handle.write(
                        json.dumps(
                            event, sort_keys=True, separators=(",", ":")
                        )
                        + "\n"
                    )
        print(f"history log written to {args.log_out}")
    return 1 if result.violations else 0


def _cmd_explore(args) -> int:
    modes = [mode.strip() for mode in args.modes.split(",") if mode.strip()]
    for mode in modes:
        if mode not in MODES:
            print(
                f"unknown mode {mode!r}; pick from {MODES}", file=sys.stderr
            )
            return 2
    report = explore(
        args.scenario, range(args.seeds), modes, ops=args.ops
    )
    print(
        f"explored {report.runs} runs of {args.scenario!r} "
        f"({args.seeds} seeds x {modes}): {report.clean} clean, "
        f"{len(report.reproducers)} violating"
    )
    for reproducer in report.reproducers:
        checks = ", ".join(sorted(set(reproducer.violations)))
        print(f"  {checks}: {reproducer.command()}")
    if report.reproducers and args.log_out:
        first = report.reproducers[0]
        rerun = run_scenario(first.scenario, first.seed, first.mode, first.ops)
        import json

        with open(args.log_out, "w", encoding="utf-8") as handle:
            for history in rerun.histories:
                for event in history:
                    handle.write(
                        json.dumps(
                            event, sort_keys=True, separators=(",", ":")
                        )
                        + "\n"
                    )
        print(f"first reproducer's history written to {args.log_out}")
    return 1 if report.found_violation else 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="transactional history checker + schedule explorer",
    )
    parser.add_argument(
        "--scenario",
        default="ycsb",
        choices=sorted(SCENARIOS),
        help="scenario to run (default: the ycsb acceptance run)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--mode",
        default="none",
        choices=MODES,
        help="schedule perturbation for a single run",
    )
    parser.add_argument(
        "--ops", type=int, default=None, help="scenario operation count"
    )
    parser.add_argument(
        "--explore",
        action="store_true",
        help="sweep seeds x modes instead of a single run",
    )
    parser.add_argument(
        "--seeds", type=int, default=20, help="how many seeds to sweep"
    )
    parser.add_argument(
        "--modes",
        default="none,flip",
        help="comma-separated perturbation modes for --explore",
    )
    parser.add_argument(
        "--log-out",
        default=None,
        help="write the (first violating) history log here",
    )
    parser.add_argument(
        "--check-log",
        default=None,
        metavar="FILE",
        help="check an existing history JSONL log and exit",
    )
    args = parser.parse_args(argv)
    if args.check_log:
        return _cmd_check_log(args.check_log)
    if args.explore:
        return _cmd_explore(args)
    return _cmd_run(args)


if __name__ == "__main__":
    sys.exit(main())
