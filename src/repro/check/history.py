"""The execution-history recorder.

A :class:`HistoryRecorder` receives hook calls from the instrumented hot
paths — the Spanner transaction (begin/read/commit/abort), the Backend's
seven-step write protocol (Prepare/Accept, query results), and the
Real-time Cache delivery pipeline (Changelog accept/flush/watermark,
Frontend snapshot notifications) — and appends one compact,
JSON-serializable event per call. The log is the checker's only input:
``python -m repro.check`` replays nothing, it judges the history.

Like the dynamic sanitizers, recording is opt-in (``REPRO_CHECK=1`` in
the environment, ``pytest --check``, or the :func:`recording` context
manager) and purely observational: a recorded run takes exactly the same
code path as an unrecorded one, so same-seed runs produce byte-identical
history logs (asserted by the replay harness).

Event encoding. Every event is a dict with ``k`` (kind), ``t`` (the sim
clock at record time), an optional ``span`` (current trace span id, the
link back into the Chrome-trace export), and kind-specific fields. Row
keys are hex-encoded composite keys; document paths are their string
form. Kinds:

====================  ====================================================
``begin``             transaction started (``txn``, ``start``)
``read``              transactional point read (``txn``, ``key``, ``ts``
                      = observed version commit_ts — a committed
                      tombstone keeps its commit_ts, -1 means no
                      version ever existed; ``fu`` = for_update)
``scan``              transactional range scan (``txn``, ``lo``, ``hi``)
``commit``            commit applied (``txn``, ``ts``, ``writes`` =
                      [[key, "w"|"d"], ...], ``min``/``max`` window,
                      ``tt_e``/``tt_l`` TrueTime interval at issuance)
``abort``             transaction aborted (``txn``)
``unknown``           commit outcome lost (``txn``, ``applied``)
``snap_read``         lock-free snapshot read (``key``, ``read_ts``,
                      ``ts`` = observed version, -1 for absent)
``query``             query result (``db``, ``read_ts``, ``rows`` =
                      [[entity key, update_ts], ...])
``prepare``           write-protocol step 5 (``db``, ``pid``, ``min``,
                      ``max``, ``paths``)
``accept``            write-protocol step 7 (``db``, ``pid``,
                      ``outcome``, ``ts``, ``paths``)
``cl_accept``         Changelog buffered an accepted commit for a range
                      (``range``, ``pid``, ``outcome``, ``ts``,
                      ``paths``; dropped buffers record outcome
                      ``dropped``)
``cl_deliver``        Changelog flushed one change downstream
                      (``range``, ``ts``, ``path``)
``cl_watermark``      a range's complete-prefix watermark advanced
                      (``range``, ``wm``)
``cl_oos``            range entered the out-of-sync fail-safe
                      (``range``)
``cl_resync``         range recovered (``range``)
``notify``            Frontend delivered a snapshot to a listener
                      (``tag``, ``read_ts``, ``initial``, ``paths``)
``repl_commit``       a replica group quorum-committed a log entry
                      (``grp``, ``term``, ``leader``, ``ts``, ``acks``)
``repl_apply``        a follower applied a shipped entry (``grp``,
                      ``region``, ``ts`` — the per-replica watermark)
``repl_elect``        leader failover (``grp``, ``term``, ``leader`` =
                      the new leader, ``min_ts`` = floor on later
                      commit timestamps)
``repl_read``         bounded-staleness read routed to a replica
                      (``grp``, ``region``, ``read_ts``, ``safe``,
                      ``bound``)
====================  ====================================================
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Iterable, Optional

#: process-wide override (None = follow the environment)
_FORCED: Optional[bool] = None

#: recorders installed while checking was enabled, for collection by the
#: CLI / pytest --check teardown (drained, never implicitly cleared)
_LIVE: list["HistoryRecorder"] = []


def checking_enabled() -> bool:
    """Whether new SpannerDatabases should install a history recorder."""
    if _FORCED is not None:
        return _FORCED
    return os.environ.get("REPRO_CHECK", "").lower() not in (
        "",
        "0",
        "false",
        "no",
    )


def set_enabled(on: Optional[bool]) -> None:
    """Force recording on/off for this process (None = follow the env)."""
    global _FORCED
    _FORCED = on


class HistoryRecorder:
    """Append-only execution history for one Spanner database's world."""

    def __init__(
        self,
        clock=None,
        tracer_provider: Optional[Callable[[], Any]] = None,
        name: str = "",
    ):
        self.clock = clock
        self.name = name
        self._tracer_provider = tracer_provider
        self.events: list[dict] = []

    # -- event plumbing ----------------------------------------------------

    def _record(self, kind: str, **fields) -> None:
        event: dict[str, Any] = {"k": kind}
        if self.clock is not None:
            event["t"] = self.clock.now_us
        tracer = self._tracer_provider() if self._tracer_provider else None
        if tracer:
            context = tracer.current_context()
            if context is not None:
                event["span"] = context.span_id
        event.update(fields)
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    # -- Spanner transaction taps ------------------------------------------

    def txn_begin(self, txn_id: int, start_ts: int) -> None:
        """A read-write transaction started."""
        self._record("begin", txn=txn_id, start=start_ts)

    def txn_read(
        self, txn_id: int, key: bytes, version_ts: int, for_update: bool
    ) -> None:
        """A transactional point read observed the version committed at
        ``version_ts`` (tombstones included; -1 = no version existed)."""
        self._record(
            "read", txn=txn_id, key=key.hex(), ts=version_ts, fu=for_update
        )

    def txn_scan(
        self, txn_id: int, start: bytes, end: Optional[bytes]
    ) -> None:
        """A transactional range scan opened over [start, end)."""
        self._record(
            "scan",
            txn=txn_id,
            lo=start.hex(),
            hi=end.hex() if end is not None else None,
        )

    def txn_commit(
        self,
        txn_id: int,
        commit_ts: int,
        writes: Iterable[tuple[bytes, str]],
        min_ts: int,
        max_ts: Optional[int],
        tt_earliest: int,
        tt_latest: int,
    ) -> None:
        """A commit applied its mutations at ``commit_ts``."""
        self._record(
            "commit",
            txn=txn_id,
            ts=commit_ts,
            writes=[[key.hex(), kind] for key, kind in writes],
            min=min_ts,
            max=max_ts,
            tt_e=tt_earliest,
            tt_l=tt_latest,
        )

    def txn_abort(self, txn_id: int) -> None:
        """A transaction aborted and released its locks."""
        self._record("abort", txn=txn_id)

    def txn_unknown(self, txn_id: int, applied: bool) -> None:
        """A commit acknowledgement was lost (outcome unknown)."""
        self._record("unknown", txn=txn_id, applied=applied)

    def snapshot_read(self, key: bytes, read_ts: int, version_ts: int) -> None:
        """A lock-free snapshot read observed ``version_ts`` (-1 absent)."""
        self._record("snap_read", key=key.hex(), read_ts=read_ts, ts=version_ts)

    # -- Backend write-protocol taps ---------------------------------------

    def backend_prepare(
        self,
        database_id: str,
        prepare_id: int,
        min_ts: int,
        max_ts: int,
        paths: Iterable[str],
    ) -> None:
        """Step 5: the Backend reserved a commit window."""
        self._record(
            "prepare",
            db=database_id,
            pid=prepare_id,
            min=min_ts,
            max=max_ts,
            paths=list(paths),
        )

    def backend_accept(
        self,
        database_id: str,
        prepare_id: int,
        outcome: str,
        commit_ts: int,
        paths: Iterable[str],
    ) -> None:
        """Step 7: the Backend reported the commit outcome."""
        self._record(
            "accept",
            db=database_id,
            pid=prepare_id,
            outcome=outcome,
            ts=commit_ts,
            paths=list(paths),
        )

    def query_result(
        self,
        database_id: str,
        read_ts: int,
        rows: Iterable[tuple[str, int]],
    ) -> None:
        """A query returned ``rows`` = (entity key hex, update_ts) pairs."""
        self._record(
            "query",
            db=database_id,
            read_ts=read_ts,
            rows=[[key, ts] for key, ts in rows],
        )

    # -- Real-time Cache delivery taps -------------------------------------

    def changelog_accept(
        self,
        range_id: int,
        prepare_id: int,
        outcome: str,
        commit_ts: int,
        paths: Iterable[str],
    ) -> None:
        """The Changelog resolved a prepare on one range."""
        self._record(
            "cl_accept",
            range=range_id,
            pid=prepare_id,
            outcome=outcome,
            ts=commit_ts,
            paths=list(paths),
        )

    def changelog_deliver(self, range_id: int, commit_ts: int, path: str) -> None:
        """The Changelog flushed one buffered change downstream."""
        self._record("cl_deliver", range=range_id, ts=commit_ts, path=path)

    def changelog_watermark(self, range_id: int, watermark: int) -> None:
        """A range's complete-prefix watermark advanced."""
        self._record("cl_watermark", range=range_id, wm=watermark)

    def changelog_out_of_sync(self, range_id: int) -> None:
        """A range entered the out-of-sync fail-safe."""
        self._record("cl_oos", range=range_id)

    def changelog_resync(self, range_id: int) -> None:
        """A range recovered from out-of-sync."""
        self._record("cl_resync", range=range_id)

    def notify(
        self,
        tag: Any,
        read_ts: int,
        initial: bool,
        paths: Iterable[str],
    ) -> None:
        """A Frontend delivered one consistent snapshot to a listener."""
        self._record(
            "notify",
            tag=str(tag),
            read_ts=read_ts,
            initial=initial,
            paths=list(paths),
        )

    # -- replication taps --------------------------------------------------

    def repl_commit(
        self, group: str, term: int, leader: str, commit_ts: int, acks: int
    ) -> None:
        """A replica group quorum-committed one log entry."""
        self._record(
            "repl_commit", grp=group, term=term, leader=leader, ts=commit_ts,
            acks=acks,
        )

    def repl_apply(self, group: str, region: str, commit_ts: int) -> None:
        """A follower applied a shipped entry (its watermark advanced)."""
        self._record("repl_apply", grp=group, region=region, ts=commit_ts)

    def repl_elect(
        self, group: str, term: int, leader: str, min_next_commit_ts: int
    ) -> None:
        """A leader failover completed."""
        self._record(
            "repl_elect", grp=group, term=term, leader=leader,
            min_ts=min_next_commit_ts,
        )

    def follower_read(
        self,
        group: str,
        region: str,
        read_ts: int,
        safe_ts: int,
        bound_us: int,
    ) -> None:
        """A bounded-staleness read was routed to a replica."""
        self._record(
            "repl_read", grp=group, region=region, read_ts=read_ts,
            safe=safe_ts, bound=bound_us,
        )

    # -- serialization -----------------------------------------------------

    def to_jsonl(self) -> str:
        """The compact, line-per-event log (byte-identical across same-
        seed runs — the replay harness asserts this)."""
        return "\n".join(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
            for event in self.events
        )

    @staticmethod
    def parse_jsonl(text: str) -> list[dict]:
        """Parse a history log back into its event list."""
        return [json.loads(line) for line in text.splitlines() if line.strip()]


# -- installation ----------------------------------------------------------


def install(db) -> HistoryRecorder:
    """Install a history recorder onto a SpannerDatabase instance."""
    recorder = HistoryRecorder(
        clock=db.clock,
        tracer_provider=lambda: getattr(db, "tracer", None),
        name=db.name,
    )
    db.recorder = recorder
    _LIVE.append(recorder)
    return recorder


def maybe_install(db) -> Optional[HistoryRecorder]:
    """Install a recorder iff checking is enabled and none is present."""
    if checking_enabled() and getattr(db, "recorder", None) is None:
        return install(db)
    return None


def drain_recorders() -> list[HistoryRecorder]:
    """Collect (and forget) every recorder installed since the last drain."""
    drained = list(_LIVE)
    _LIVE.clear()
    return drained


class recording:
    """Context manager: force recording on, collect the recorders.

    ::

        with recording() as recorders:
            run_scenario()
        for recorder in recorders:
            assert_clean(check_history(recorder.events))
    """

    def __init__(self) -> None:
        self.recorders: list[HistoryRecorder] = []

    def __enter__(self) -> list[HistoryRecorder]:
        self._previous = _FORCED
        drain_recorders()
        set_enabled(True)
        return self.recorders

    def __exit__(self, exc_type, exc, tb) -> None:
        self.recorders.extend(drain_recorders())
        set_enabled(self._previous)
