"""Checkable scenarios: recorded runs the explorer can sweep.

A scenario is a seeded, deterministic function ``build(seed, mode, ops)``
that exercises some slice of the stack with history recording forced on.
:func:`run_scenario` wraps the build in a :class:`repro.check.history.recording`
context, collects every recorder that was installed, and runs the full
checker over each history.

Three scenarios cover the real system (these must check clean — any
violation is a bug):

``commit``
    ``ops`` sequential commits against one database with a live
    listener, pumping the Real-time Cache after each — the minimal
    end-to-end seven-step + delivery loop.
``ycsb``
    a short traced YCSB run (:class:`repro.workloads.ycsb.YcsbRunner`
    with ``trace=True``): the serving simulation carries the load while
    the sampled :func:`repro.obs.trace_full_commit` drives the real
    functional write + notification path. This is the acceptance
    scenario: ``python -m repro.check`` runs it by default.
``isolation``
    a transactional analogue of the paper's Fig. 11 isolation setup: a
    *culprit* issuing contended two-step read-modify-write transfers
    and *bystander* blind writes against the same documents, over an
    :class:`repro.sim.events.EventKernel` whose schedule the explorer
    perturbs (``delay``/``flip`` modes), with a seeded
    ``commit_fault_injector`` arming unknown-outcome commits to push
    the Changelog through its out-of-sync fail-safe. (The original
    Fig. 11 workload is a pure queueing simulation with no functional
    transactions, so this scenario recreates its contention shape on
    the functional stack.)

The four ``anomaly-*`` scenarios (:mod:`repro.check.anomalies`) are
deliberately broken toy stores that the checker must flag — they prove
the checks have teeth.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Optional

from repro.check.checker import Violation, check_history
from repro.check.history import recording
from repro.sim.rand import SimRandom


@dataclass
class ScenarioRun:
    """One checked scenario execution."""

    scenario: str
    seed: int
    mode: str
    ops: int
    #: one event list per recorder the run installed
    histories: list[list[dict]] = dataclass_field(default_factory=list)
    violations: list[Violation] = dataclass_field(default_factory=list)

    @property
    def event_count(self) -> int:
        """Total events recorded across all histories."""
        return sum(len(history) for history in self.histories)


# -- real-system scenarios ---------------------------------------------------


def _commit_scenario(seed: int, mode: str, ops: int) -> None:
    from repro.core.backend import set_op
    from repro.core.firestore import FirestoreService

    rand = SimRandom(seed).fork("commit-scenario")
    service = FirestoreService(multi_region=False)
    database = service.create_database("checked")
    deltas: list = []
    connection = database.connect()
    connection.listen(database.query("docs"), deltas.append)
    for op in range(ops):
        service.clock.advance(rand.randint(1_000, 10_000))
        database.commit(
            [set_op(f"docs/d{rand.randint(0, 2)}", {"v": op})]
        )
        service.clock.advance(rand.randint(1_000, 10_000))
        database.pump_realtime()
    service.clock.advance(20_000)
    database.pump_realtime()
    connection.close()


def _ycsb_scenario(seed: int, mode: str, ops: int) -> None:
    from repro.check.explorer import make_perturber
    from repro.workloads.ycsb import YcsbConfig, YcsbRunner

    config = YcsbConfig(
        workload="A",
        target_qps=max(10, ops),
        duration_s=6,
        measure_last_s=3,
        record_count=200,
        seed=seed,
        trace=True,
    )
    runner = YcsbRunner(config)
    runner.cluster.kernel.perturber = make_perturber(mode, seed)
    runner.run()


def _isolation_scenario(seed: int, mode: str, ops: int) -> None:
    from repro.check.explorer import make_perturber
    from repro.core.backend import set_op
    from repro.core.firestore import FirestoreService
    from repro.core.transaction import TransactionContext
    from repro.errors import FirestoreError
    from repro.sim.events import EventKernel
    from repro.spanner.transaction import inject_unknown_outcome

    kernel = EventKernel(perturber=make_perturber(mode, seed))
    service = FirestoreService(
        multi_region=False, clock=kernel.clock
    )
    database = service.create_database("iso")
    spanner = database.layout.spanner
    rand = SimRandom(seed).fork("isolation-scenario")
    accounts = 3
    for account in range(accounts):
        database.commit(
            [set_op(f"accounts/a{account}", {"balance": 100})]
        )
    deltas: list = []
    connection = database.connect()
    connection.listen(database.query("accounts"), deltas.append)

    horizon_us = kernel.now_us + max(1, ops) * 8_000 + 50_000

    def pump() -> None:
        database.pump_realtime()

    for tick in range(kernel.now_us + 3_000, horizon_us, 3_000):
        kernel.at(tick, pump, label="pump")

    def start_transfer(op: int) -> None:
        src = rand.randint(0, accounts - 1)
        dst = (src + 1 + rand.randint(0, accounts - 2)) % accounts
        ctx = TransactionContext(database.backend)
        try:
            source = ctx.get(f"accounts/a{src}")
            target = ctx.get(f"accounts/a{dst}")
        except FirestoreError:
            return
        amount = rand.randint(1, 10)

        def finish() -> None:
            if not ctx._txn.is_active:
                return
            ctx.set(
                f"accounts/a{src}",
                {"balance": (source.data or {}).get("balance", 0) - amount},
            )
            ctx.set(
                f"accounts/a{dst}",
                {"balance": (target.data or {}).get("balance", 0) + amount},
            )
            if rand.bernoulli(0.15):
                # compose with the fault injector: an unknown-outcome
                # commit drives the Changelog out-of-sync fail-safe
                applied = rand.bernoulli(0.5)
                spanner.commit_fault_injector = (
                    # reprolint: disable=error-escape -- the injector lambda runs inside spanner's commit, which catches _UnknownOutcomeFailure itself
                    lambda _txn: inject_unknown_outcome(applied)
                )
            try:
                ctx._commit()
            except FirestoreError:
                ctx._rollback()

        kernel.after(rand.randint(200, 4_000), finish, label="txn-finish")

    def bystander(op: int) -> None:
        account = rand.randint(0, accounts - 1)
        try:
            database.commit(
                [set_op(f"accounts/a{account}", {"balance": 100 + op})]
            )
        except FirestoreError:
            pass

    base = kernel.now_us
    for op in range(ops):
        at_us = base + op * 6_000 + rand.randint(0, 4_000)
        kernel.at(at_us, lambda op=op: start_transfer(op), label="txn-start")
        kernel.at(
            at_us + rand.randint(500, 5_000),
            lambda op=op: bystander(op),
            label="commit-bystander",
        )
    kernel.run_until(horizon_us)
    kernel.drain()
    database.pump_realtime()
    connection.close()


#: scenario name -> (builder, default ops)
SCENARIOS: dict[str, tuple[Callable[[int, str, int], None], int]] = {
    "commit": (_commit_scenario, 4),
    "ycsb": (_ycsb_scenario, 50),
    "isolation": (_isolation_scenario, 12),
}


def _register_anomalies() -> None:
    from repro.check import anomalies

    SCENARIOS.update(
        {
            "anomaly-lost-update": (anomalies.lost_update, 6),
            "anomaly-write-skew": (anomalies.write_skew, 6),
            "anomaly-stale-notification": (anomalies.stale_notification, 6),
            "anomaly-non-monotonic-ts": (anomalies.non_monotonic_ts, 8),
        }
    )


_register_anomalies()


def default_ops(scenario: str) -> int:
    """The scenario's default operation count."""
    return _lookup(scenario)[1]


def _lookup(scenario: str):
    entry = SCENARIOS.get(scenario)
    if entry is None:
        raise ValueError(
            f"unknown scenario {scenario!r}; pick from {sorted(SCENARIOS)}"
        )
    return entry


def run_scenario(
    scenario: str,
    seed: int,
    mode: str = "none",
    ops: Optional[int] = None,
) -> ScenarioRun:
    """Run one scenario with recording forced on and check its histories."""
    builder, dflt = _lookup(scenario)
    if ops is None:
        ops = dflt
    with recording() as recorders:
        builder(seed, mode, ops)
    run = ScenarioRun(scenario, seed, mode, ops)
    for recorder in recorders:
        history = list(recorder.events)
        if not history:
            continue
        run.histories.append(history)
        run.violations.extend(check_history(history))
    return run
