"""The offline history checker.

:func:`check_history` takes a recorded execution history (the event list
of a :class:`repro.check.history.HistoryRecorder`, or a parsed JSONL
log) and returns every consistency violation it can prove from the
events alone. It verifies the paper's headline guarantees:

- **Serializability** (section IV-D1): the wr/ww/rw dependency graph of
  the committed transactions must be acyclic. Two-transaction cycles are
  classified as the classic anomalies — :class:`LostUpdate` (both read
  then overwrote the same key) and :class:`WriteSkew` (mutual rw on
  disjoint write sets) — anything else is a
  :class:`SerializabilityCycle`.
- **External consistency** (TrueTime): commit timestamps are strictly
  monotone in real (record) time, stay within the negotiated
  ``[min, max]`` window, and a transaction that begins after another's
  commit applied must receive a larger timestamp.
- **Snapshot reads**: a lock-free read at ``read_ts`` must observe
  exactly the latest recorded version at or below ``read_ts``.
- **Index/document atomicity** (section IV-D2): query results must agree
  with the entity table at the query's snapshot — no deleted documents,
  no stale ``update_time``.
- **Notification order and completeness** (section IV-D4): per range,
  Changelog deliveries and watermarks are monotone; every committed
  Accept's changes are delivered unless the range's out-of-sync
  fail-safe fired or the log ends before the flush was due; per
  listener, incremental snapshot timestamps strictly advance.
- **Replication** (section III): per replica group, log commit
  timestamps strictly advance and never dip below the floor a failover
  published (external consistency across leader changes); per-replica
  apply watermarks are monotone; election terms strictly increase; and
  a bounded-staleness read is served within its bound and within the
  serving replica's safe time.

Violations carry the indices of the implicated events (and their trace
span ids when the run was traced) so a failure links back into the
repro.obs timeline. :func:`assert_clean` raises
:class:`repro.errors.CheckerViolation` — the same
:class:`repro.errors.VerificationError` family the dynamic sanitizers
use — so one ``except`` clause covers both kinds of checking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Iterable, Optional

from repro.errors import CheckerViolation
from repro.check.graph import (
    Edge,
    Txn,
    committed_txns,
    cycles,
    dependency_edges,
)


@dataclass(frozen=True)
class Violation:
    """One proven consistency violation over a recorded history."""

    check: ClassVar[str] = "violation"

    message: str
    #: indices into the checked event list of the implicated events
    events: tuple[int, ...] = ()
    #: trace span ids of the implicated events, when the run was traced
    spans: tuple[int, ...] = ()

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


class SerializabilityCycle(Violation):
    """The dependency graph of committed transactions has a cycle."""

    check = "serializability-cycle"


class LostUpdate(SerializabilityCycle):
    """Two transactions both read then overwrote the same key."""

    check = "lost-update"


class WriteSkew(SerializabilityCycle):
    """Mutual read-overwrite on disjoint write sets (classic G2-item)."""

    check = "write-skew"


class NonMonotonicCommit(Violation):
    """A commit timestamp did not exceed every earlier one."""

    check = "non-monotonic-commit"


class CommitWindowViolation(Violation):
    """A commit timestamp landed outside its negotiated [min, max]."""

    check = "commit-window"


class ExternalConsistencyViolation(Violation):
    """A transaction that began after another's commit got a smaller ts."""

    check = "external-consistency"


class StaleSnapshotRead(Violation):
    """A snapshot read did not observe the latest version at its ts."""

    check = "stale-snapshot-read"


class IndexInconsistency(Violation):
    """A query result disagreed with the entity table at its snapshot."""

    check = "index-inconsistency"


class NotificationOrderViolation(Violation):
    """Changelog deliveries / watermarks / listener snapshots regressed."""

    check = "notification-order"


class NotificationLoss(Violation):
    """A committed, in-sync change was never delivered downstream."""

    check = "notification-loss"


class FollowerStalenessViolation(Violation):
    """A bounded-staleness read broke its bound or outran safe time."""

    check = "follower-staleness"


class ReplicaWatermarkViolation(Violation):
    """A replica's apply watermark regressed (or re-applied an entry)."""

    check = "replica-watermark"


class FailoverConsistencyViolation(Violation):
    """External consistency broke across a leader failover: a term or
    log timestamp regressed, or a commit undercut the published floor."""

    check = "failover-consistency"


def _spans_of(events: list[dict], indices: Iterable[int]) -> tuple[int, ...]:
    spans = []
    for index in indices:
        span = events[index].get("span")
        if span is not None:
            spans.append(span)
    return tuple(spans)


def _make(
    cls,
    events: list[dict],
    message: str,
    indices: Iterable[int],
) -> Violation:
    indices = tuple(indices)
    return cls(message, indices, _spans_of(events, indices))


# -- serializability ---------------------------------------------------------


def _classify_cycle(
    component: list[int],
    txns: dict[int, Txn],
    edges: list[Edge],
) -> type:
    if len(component) != 2:
        return SerializabilityCycle
    first, second = (txns[txn_id] for txn_id in component)
    read_keys_first = {key for _, key, _ in first.reads}
    read_keys_second = {key for _, key, _ in second.reads}
    both_wrote = set(first.writes) & set(second.writes)
    if both_wrote & read_keys_first & read_keys_second:
        return LostUpdate
    in_cycle = {
        (edge.src, edge.dst): edge.kind
        for edge in edges
        if edge.src in component and edge.dst in component
    }
    mutual_rw = (
        in_cycle.get((first.txn_id, second.txn_id)) == "rw"
        and in_cycle.get((second.txn_id, first.txn_id)) == "rw"
    )
    if mutual_rw and not both_wrote:
        return WriteSkew
    return SerializabilityCycle


def _check_serializability(events: list[dict]) -> list[Violation]:
    txns = committed_txns(events)
    edges = dependency_edges(txns)
    violations: list[Violation] = []
    for component in cycles(txns, edges):
        cls = _classify_cycle(component, txns, edges)
        involved = [
            f"{edge.kind}({edge.src}->{edge.dst} on {edge.key[:16]})"
            for edge in edges
            if edge.src in component and edge.dst in component
        ]
        indices = []
        for txn_id in component:
            txn = txns[txn_id]
            if txn.begin_index >= 0:
                indices.append(txn.begin_index)
            indices.append(txn.commit_index)
        violations.append(
            _make(
                cls,
                events,
                f"transactions {component} form a dependency cycle: "
                + "; ".join(involved),
                sorted(indices),
            )
        )
    return violations


# -- external consistency ----------------------------------------------------


def _check_external_consistency(events: list[dict]) -> list[Violation]:
    violations: list[Violation] = []
    last_commit: Optional[tuple[int, int, int]] = None  # (index, txn, ts)
    commits: list[tuple[int, int, int]] = []  # (index, txn, ts)
    for index, event in enumerate(events):
        if event.get("k") != "commit":
            continue
        ts = event["ts"]
        txn_id = event["txn"]
        if last_commit is not None and ts <= last_commit[2]:
            violations.append(
                _make(
                    NonMonotonicCommit,
                    events,
                    f"txn {txn_id} committed at {ts} after txn "
                    f"{last_commit[1]} committed at {last_commit[2]}",
                    (last_commit[0], index),
                )
            )
        min_ts = event.get("min", 0)
        max_ts = event.get("max")
        if ts < min_ts or (max_ts is not None and ts > max_ts):
            violations.append(
                _make(
                    CommitWindowViolation,
                    events,
                    f"txn {txn_id} committed at {ts} outside its window "
                    f"[{min_ts}, {max_ts}]",
                    (index,),
                )
            )
        last_commit = (index, txn_id, ts)
        commits.append(last_commit)
    # real-time order implies timestamp order: a transaction beginning
    # after a commit *applied* must commit strictly later
    commit_position = 0
    max_earlier_ts: Optional[tuple[int, int, int]] = None
    txns = committed_txns(events)
    begins = sorted(
        (txn.begin_index, txn)
        for txn in txns.values()
        if txn.begin_index >= 0
    )
    for begin_index, txn in begins:
        while (
            commit_position < len(commits)
            and commits[commit_position][0] < begin_index
        ):
            candidate = commits[commit_position]
            if max_earlier_ts is None or candidate[2] > max_earlier_ts[2]:
                max_earlier_ts = candidate
            commit_position += 1
        if max_earlier_ts is not None and txn.commit_ts <= max_earlier_ts[2]:
            violations.append(
                _make(
                    ExternalConsistencyViolation,
                    events,
                    f"txn {txn.txn_id} began after txn "
                    f"{max_earlier_ts[1]}'s commit at {max_earlier_ts[2]} "
                    f"applied but committed at {txn.commit_ts}",
                    (max_earlier_ts[0], begin_index, txn.commit_index),
                )
            )
    return violations


# -- snapshot reads and query results ----------------------------------------


class _VersionIndex:
    """Recorded versions per key, replayed in event order."""

    def __init__(self) -> None:
        #: key -> ascending [(commit_ts, "w"|"d")]
        self.versions: dict[str, list[tuple[int, str]]] = {}

    def apply_commit(self, event: dict) -> None:
        ts = event["ts"]
        for key, kind in event.get("writes", []):
            self.versions.setdefault(key, []).append((ts, kind))

    def latest_at(self, key: str, read_ts: int) -> Optional[tuple[int, str]]:
        """The latest recorded version of ``key`` at or below ``read_ts``."""
        best: Optional[tuple[int, str]] = None
        for ts, kind in self.versions.get(key, []):
            if ts <= read_ts:
                best = (ts, kind)
            else:
                break
        return best


def _check_reads(events: list[dict]) -> list[Violation]:
    violations: list[Violation] = []
    index_by_key = _VersionIndex()
    for index, event in enumerate(events):
        kind = event.get("k")
        if kind == "commit":
            index_by_key.apply_commit(event)
        elif kind == "snap_read":
            expected = index_by_key.latest_at(event["key"], event["read_ts"])
            if expected is None:
                continue  # pre-recording state: cannot judge
            expected_ts = -1 if expected[1] == "d" else expected[0]
            if event["ts"] != expected_ts:
                violations.append(
                    _make(
                        StaleSnapshotRead,
                        events,
                        f"snapshot read of {event['key'][:16]} at "
                        f"{event['read_ts']} observed version "
                        f"{event['ts']}, expected {expected_ts}",
                        (index,),
                    )
                )
        elif kind == "query":
            for row_key, update_ts in event.get("rows", []):
                expected = index_by_key.latest_at(row_key, event["read_ts"])
                if expected is None:
                    continue
                if expected[1] == "d":
                    violations.append(
                        _make(
                            IndexInconsistency,
                            events,
                            f"query at {event['read_ts']} returned "
                            f"{row_key[:16]} which was deleted at "
                            f"{expected[0]}",
                            (index,),
                        )
                    )
                elif update_ts != expected[0]:
                    violations.append(
                        _make(
                            IndexInconsistency,
                            events,
                            f"query at {event['read_ts']} returned "
                            f"{row_key[:16]} at version {update_ts}, "
                            f"entity table says {expected[0]}",
                            (index,),
                        )
                    )
    return violations


# -- notifications -----------------------------------------------------------


def _check_notifications(events: list[dict]) -> list[Violation]:
    violations: list[Violation] = []
    last_delivery: dict[int, tuple[int, int]] = {}  # range -> (index, ts)
    last_watermark: dict[int, tuple[int, int]] = {}  # range -> (index, wm)
    #: committed accepts awaiting delivery:
    #: range -> {(ts, path) -> accept index}
    awaited: dict[int, dict[tuple[int, str], int]] = {}
    max_watermark: dict[int, int] = {}

    for index, event in enumerate(events):
        kind = event.get("k")
        if kind == "cl_accept":
            if event["outcome"] == "committed":
                pending = awaited.setdefault(event["range"], {})
                for path in event.get("paths", []):
                    pending[(event["ts"], path)] = index
        elif kind == "cl_deliver":
            range_id = event["range"]
            previous = last_delivery.get(range_id)
            if previous is not None and event["ts"] < previous[1]:
                violations.append(
                    _make(
                        NotificationOrderViolation,
                        events,
                        f"range {range_id} delivered {event['path']} at "
                        f"{event['ts']} after a delivery at {previous[1]}",
                        (previous[0], index),
                    )
                )
            last_delivery[range_id] = (index, event["ts"])
            awaited.get(range_id, {}).pop(
                (event["ts"], event["path"]), None
            )
        elif kind == "cl_watermark":
            range_id = event["range"]
            previous = last_watermark.get(range_id)
            if previous is not None and event["wm"] < previous[1]:
                violations.append(
                    _make(
                        NotificationOrderViolation,
                        events,
                        f"range {range_id} watermark regressed from "
                        f"{previous[1]} to {event['wm']}",
                        (previous[0], index),
                    )
                )
            last_watermark[range_id] = (index, event["wm"])
            max_watermark[range_id] = max(
                max_watermark.get(range_id, 0), event["wm"]
            )
        elif kind == "cl_oos":
            # the fail-safe: every listener resets, buffered and future
            # changes up to the resync are legitimately not delivered
            awaited.pop(event["range"], None)

    for range_id, pending in awaited.items():
        watermark = max_watermark.get(range_id, 0)
        for (ts, path), accept_index in sorted(
            pending.items(), key=lambda item: item[1]
        ):
            if ts > watermark:
                continue  # not yet due when the log ended
            violations.append(
                _make(
                    NotificationLoss,
                    events,
                    f"range {range_id} accepted {path} at {ts} but never "
                    f"delivered it (watermark reached {watermark})",
                    (accept_index,),
                )
            )

    # per-listener snapshot timestamps strictly advance between resets
    last_notify: dict[str, tuple[int, int]] = {}  # tag -> (index, read_ts)
    for index, event in enumerate(events):
        if event.get("k") != "notify":
            continue
        tag = event["tag"]
        previous = last_notify.get(tag)
        if (
            not event.get("initial")
            and previous is not None
            and event["read_ts"] <= previous[1]
        ):
            violations.append(
                _make(
                    NotificationOrderViolation,
                    events,
                    f"listener {tag} got a snapshot at {event['read_ts']} "
                    f"after one at {previous[1]}",
                    (previous[0], index),
                )
            )
        last_notify[tag] = (index, event["read_ts"])
    return violations


# -- replication -------------------------------------------------------------


def _check_replication(events: list[dict]) -> list[Violation]:
    violations: list[Violation] = []
    last_commit: dict[str, tuple[int, int]] = {}  # grp -> (index, ts)
    last_apply: dict[tuple[str, str], tuple[int, int]] = {}
    last_term: dict[str, tuple[int, int]] = {}  # grp -> (index, term)
    floor: dict[str, tuple[int, int]] = {}  # grp -> (elect index, min_ts)
    for index, event in enumerate(events):
        kind = event.get("k")
        if kind == "repl_commit":
            grp = event["grp"]
            previous = last_commit.get(grp)
            if previous is not None and event["ts"] <= previous[1]:
                violations.append(
                    _make(
                        FailoverConsistencyViolation,
                        events,
                        f"group {grp} quorum-committed at {event['ts']} "
                        f"after an entry at {previous[1]}",
                        (previous[0], index),
                    )
                )
            last_commit[grp] = (index, event["ts"])
            published = floor.get(grp)
            if published is not None and event["ts"] < published[1]:
                violations.append(
                    _make(
                        FailoverConsistencyViolation,
                        events,
                        f"group {grp} committed at {event['ts']} below the "
                        f"post-failover floor {published[1]}",
                        (published[0], index),
                    )
                )
        elif kind == "repl_apply":
            key = (event["grp"], event["region"])
            previous = last_apply.get(key)
            if previous is not None and event["ts"] <= previous[1]:
                violations.append(
                    _make(
                        ReplicaWatermarkViolation,
                        events,
                        f"replica {key[1]} of group {key[0]} applied "
                        f"{event['ts']} after {previous[1]}",
                        (previous[0], index),
                    )
                )
            last_apply[key] = (index, event["ts"])
        elif kind == "repl_elect":
            grp = event["grp"]
            previous = last_term.get(grp)
            if previous is not None and event["term"] <= previous[1]:
                violations.append(
                    _make(
                        FailoverConsistencyViolation,
                        events,
                        f"group {grp} elected term {event['term']} after "
                        f"term {previous[1]}",
                        (previous[0], index),
                    )
                )
            last_term[grp] = (index, event["term"])
            floor[grp] = (index, event["min_ts"])
        elif kind == "repl_read":
            now = event.get("t")
            if now is not None and event["read_ts"] < now - event["bound"]:
                violations.append(
                    _make(
                        FollowerStalenessViolation,
                        events,
                        f"group {event['grp']} served a bounded read from "
                        f"{event['region']} at {event['read_ts']}, older "
                        f"than the {event['bound']}us bound at {now}",
                        (index,),
                    )
                )
            if event["read_ts"] > event["safe"]:
                violations.append(
                    _make(
                        FollowerStalenessViolation,
                        events,
                        f"group {event['grp']} served a bounded read at "
                        f"{event['read_ts']} beyond replica "
                        f"{event['region']}'s safe time {event['safe']}",
                        (index,),
                    )
                )
    return violations


# -- entry points ------------------------------------------------------------


def check_history(
    events: list[dict],
    metrics=None,
    database: str = "",
) -> list[Violation]:
    """Run every check over a recorded history; returns the violations.

    ``metrics`` (a repro.obs MetricsRegistry) gets one
    ``checker.violations`` counter increment per violation, labelled by
    check id, so checked runs surface failures on dashboards too.
    """
    violations: list[Violation] = []
    violations.extend(_check_serializability(events))
    violations.extend(_check_external_consistency(events))
    violations.extend(_check_reads(events))
    violations.extend(_check_notifications(events))
    violations.extend(_check_replication(events))
    if metrics is not None:
        for violation in violations:
            metrics.counter(
                "checker.violations", check=violation.check
            ).inc()
    return violations


def assert_clean(
    violations: list[Violation], context: str = "history"
) -> None:
    """Raise :class:`CheckerViolation` unless the check came back clean."""
    if not violations:
        return
    first = violations[0]
    detail = first.message
    if len(violations) > 1:
        detail += f" (+{len(violations) - 1} more)"
    raise CheckerViolation(first.check, f"{context}: {detail}")
