"""Exception hierarchy for the Firestore reproduction.

The error taxonomy mirrors the gRPC canonical status codes that the real
Firestore API surfaces, plus a few internal conditions (lock conflicts,
tablet splits) that never escape the public API.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class FirestoreError(ReproError):
    """Base class for errors surfaced through the Firestore public API."""

    #: canonical gRPC-style status code name
    code = "UNKNOWN"

    #: server-driven backoff hint (microseconds), carried in the error
    #: envelope exactly like gRPC's RetryInfo: a shedding server that
    #: knows its queue sets this, and ``call_with_retry`` raises its
    #: pause to at least the server's ask. None = no hint.
    retry_after_us = None

    #: structured wait-cause hint (see ``repro.obs.tracer.WAIT_CAUSES``):
    #: the raising subsystem names what the caller will actually be
    #: waiting on during the retry backoff (e.g. replication sets
    #: ``quorum_rtt`` on Unavailable), so critical-path attribution can
    #: blame the backoff on its root cause rather than generic
    #: ``retry_backoff``. None = no hint.
    wait_cause = None


class InvalidArgument(FirestoreError):
    """The request is malformed (bad path, bad query, oversized document)."""

    code = "INVALID_ARGUMENT"


class FailedPrecondition(FirestoreError):
    """A precondition of the operation was violated.

    Raised e.g. for a query that has no satisfying index set; the message
    then includes the index definition that must be created, mimicking the
    Cloud Console link the production service returns.
    """

    code = "FAILED_PRECONDITION"


class NotFound(FirestoreError):
    """The referenced document or database does not exist."""

    code = "NOT_FOUND"


class AlreadyExists(FirestoreError):
    """A create targeted a document that already exists."""

    code = "ALREADY_EXISTS"


class PermissionDenied(FirestoreError):
    """Security rules denied the request."""

    code = "PERMISSION_DENIED"


class Unauthenticated(FirestoreError):
    """The request carries no (valid) authentication."""

    code = "UNAUTHENTICATED"


class Aborted(FirestoreError):
    """The transaction was aborted (lock conflict or stale OCC read).

    Clients are expected to retry with backoff; the server SDKs do this
    automatically (paper section III-D).
    """

    code = "ABORTED"


class DeadlineExceeded(FirestoreError):
    """The operation timed out; its outcome may be unknown."""

    code = "DEADLINE_EXCEEDED"


class ResourceExhausted(FirestoreError):
    """Admission control rejected the request (load shedding / quota)."""

    code = "RESOURCE_EXHAUSTED"


class Unavailable(FirestoreError):
    """A required component could not be reached (e.g. Real-time Cache)."""

    code = "UNAVAILABLE"


class InternalError(FirestoreError):
    """An invariant was violated inside the service."""

    code = "INTERNAL"


class CommitOutcomeUnknown(FirestoreError):
    """A commit's outcome could not be determined (paper section IV-D2).

    The write may or may not have been applied; the Real-time Cache is told
    to discard its in-memory mutation sequence for the affected ranges.
    """

    code = "UNKNOWN"


class VerificationError(ReproError):
    """Base class for correctness-verification failures.

    The common family for everything the guardrail subsystems raise: the
    dynamic sanitizers (``repro.analysis.sanitizers``), the same-seed
    replay harness, and the transactional history checker
    (``repro.check``). These are *bugs in the reproduction itself*, never
    user errors, so they deliberately do not subclass
    :class:`FirestoreError` — nothing should catch and retry them, and
    invariant tests can assert on this one family.
    """

    def __init__(self, check: str, message: str):
        self.check = check
        super().__init__(f"[{check}] {message}")


class SanitizerViolation(VerificationError):
    """A dynamic sanitizer (``repro.analysis.sanitizers``) caught an
    invariant violation: 2PL lock discipline, MVCC read/commit-timestamp
    consistency, TrueTime monotonicity, or same-seed replay divergence.
    """


class CheckerViolation(VerificationError):
    """The offline history checker (``repro.check``) found a consistency
    violation in a recorded execution history: a serializability cycle,
    an external-consistency (TrueTime order) breach, a stale snapshot
    read, an index/document mismatch, or a lost/misordered real-time
    notification. ``check`` names the violated property (kebab-case, the
    same id the named ``repro.check.checker`` violation classes carry).
    """


class RulesError(ReproError):
    """Base class for security-rules compilation errors."""


class RulesSyntaxError(RulesError):
    """The rules source failed to lex or parse."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class RulesEvaluationError(RulesError):
    """A rule expression failed at evaluation time.

    Per the production semantics, an evaluation error in an ``allow``
    condition denies that condition rather than failing the request; the
    evaluator catches this internally.
    """


class LockConflict(ReproError):
    """Internal: a lock request conflicted with another transaction.

    Never escapes the Spanner layer; it is converted to :class:`Aborted`
    so that callers retry, matching the paper's "failing and retrying such
    transactions" remediation for contention.
    """

    def __init__(self, key: bytes, holder: int, requester: int):
        self.key = key
        self.holder = holder
        self.requester = requester
        super().__init__(
            f"lock conflict on {key!r}: held by txn {holder}, "
            f"wanted by txn {requester}"
        )
