"""repro: a from-scratch reproduction of Firestore (ICDE 2023).

A schemaless, serverless NoSQL document database with strongly-consistent
real-time queries, built on a simulated Spanner substrate, with the
Firebase-style client SDK (disconnected operation included), security
rules, and the multi-tenant serving simulation used to regenerate the
paper's evaluation figures.

Quickstart::

    from repro import FirestoreService, set_op

    service = FirestoreService(region="nam5")
    db = service.create_database("my-app")
    db.commit([set_op("restaurants/one", {"name": "Burger Palace"})])
    snapshot = db.lookup("restaurants/one")
    assert snapshot.data["name"] == "Burger Palace"
"""

from repro.core import (
    SERVER_TIMESTAMP,
    array_remove,
    array_union,
    increment,
    parse_gql,
    AuthContext,
    Document,
    DocumentSnapshot,
    FirestoreDatabase,
    FirestoreService,
    GeoPoint,
    IndexField,
    Operator,
    Path,
    Precondition,
    Query,
    Reference,
    Timestamp,
    TransactionContext,
    TriggerEvent,
    WriteOp,
    create_op,
    delete_op,
    set_op,
    update_op,
)

__version__ = "1.0.0"

__all__ = [
    "SERVER_TIMESTAMP",
    "array_remove",
    "array_union",
    "increment",
    "parse_gql",
    "AuthContext",
    "Document",
    "DocumentSnapshot",
    "FirestoreDatabase",
    "FirestoreService",
    "GeoPoint",
    "IndexField",
    "Operator",
    "Path",
    "Precondition",
    "Query",
    "Reference",
    "Timestamp",
    "TransactionContext",
    "TriggerEvent",
    "WriteOp",
    "create_op",
    "delete_op",
    "set_op",
    "update_op",
    "__version__",
]
