"""The pending mutation queue and latency-compensation overlay.

Local writes are "acknowledged immediately after updating the local
cache; the updates are also flushed to the Firestore API asynchronously"
(paper section IV-E). Until flushed, every query view overlays the
pending mutations on top of the last server state, so the user sees their
own writes instantly. Blind writes use a "last update wins" model
(section III-E), which the flush preserves by replaying mutations in
order.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.core.document import deep_copy_data
from repro.core.path import Path
from repro.core.values import (
    SERVER_TIMESTAMP,
    FieldTransform,
    Timestamp,
    apply_transform,
    delete_field,
    get_field,
    set_field,
)


class MutationKind(enum.Enum):
    """The three blind write shapes the SDK queues."""
    SET = "set"
    UPDATE = "update"
    DELETE = "delete"


@dataclass(frozen=True, slots=True)
class Mutation:
    """One locally-buffered write."""

    mutation_id: int
    kind: MutationKind
    path: Path
    data: Optional[dict] = None
    delete_fields: tuple[str, ...] = ()


class MutationQueue:
    """Ordered pending mutations with overlay application."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._queue: list[Mutation] = []

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def is_empty(self) -> bool:
        """True when nothing is pending."""
        return not self._queue

    def enqueue(
        self,
        kind: MutationKind,
        path: Path,
        data: Optional[dict] = None,
        delete_fields: tuple[str, ...] = (),
    ) -> Mutation:
        """Append one mutation; returns it with its id assigned."""
        mutation = Mutation(next(self._ids), kind, path, data, delete_fields)
        self._queue.append(mutation)
        return mutation

    def drain(self) -> list[Mutation]:
        """Remove and return every pending mutation (flush)."""
        drained, self._queue = self._queue, []
        return drained

    def requeue_front(self, mutations: list[Mutation]) -> None:
        """Put back mutations whose flush failed, preserving order."""
        self._queue = mutations + self._queue

    def pending_paths(self) -> set[Path]:
        """The set of documents with pending mutations."""
        return {m.path for m in self._queue}

    def has_pending(self, path: Path) -> bool:
        """Whether this document has pending mutations."""
        return any(m.path == path for m in self._queue)

    def mutations(self) -> list[Mutation]:
        """A snapshot of the queue, in order."""
        return list(self._queue)

    # -- overlay -----------------------------------------------------------------

    def overlay(
        self,
        path: Path,
        server_data: Optional[dict],
        local_now_us: int,
    ) -> tuple[Optional[dict], bool]:
        """Apply pending mutations for ``path`` over the server state.

        Returns (effective_data, has_pending). SERVER_TIMESTAMP sentinels
        become a local time estimate until the server value arrives.
        """
        data = deep_copy_data(server_data) if server_data is not None else None
        pending = False
        for mutation in self._queue:
            if mutation.path != path:
                continue
            pending = True
            data = _apply_mutation(mutation, data, local_now_us)
        return data, pending


def _apply_mutation(
    mutation: Mutation, data: Optional[dict], local_now_us: int
) -> Optional[dict]:
    if mutation.kind is MutationKind.DELETE:
        return None
    if mutation.kind is MutationKind.SET:
        assert mutation.data is not None
        return _estimate_transforms(
            deep_copy_data(mutation.data), data, local_now_us
        )
    # UPDATE on a missing document is a no-op locally (the server would
    # reject it; last-update-wins keeps the local view consistent)
    if data is None:
        return None
    assert mutation.data is not None
    for dotted, value in _flatten(mutation.data):
        if isinstance(value, FieldTransform):
            _, base = get_field(data, dotted)
            value = apply_transform(value, base)
        elif value is SERVER_TIMESTAMP:
            value = Timestamp(local_now_us)
        set_field(data, dotted, value)
    for dotted in mutation.delete_fields:
        delete_field(data, dotted)
    return data


def _flatten(update_data: dict, prefix: str = ""):
    for key, value in update_data.items():
        dotted = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict) and value:
            yield from _flatten(value, dotted)
        else:
            yield dotted, value


def _estimate_transforms(data, old_data: Optional[dict], local_now_us: int):
    """Locally estimate transforms: SERVER_TIMESTAMP becomes the device's
    current time; increments/array ops resolve against the field's
    previous (effective) value — mirroring the Backend's semantics so the
    compensated view converges with the server result."""
    estimate = Timestamp(local_now_us)
    old = old_data if old_data is not None else {}

    def walk(node, dotted: str):
        if node is SERVER_TIMESTAMP:
            return estimate
        if isinstance(node, FieldTransform):
            _, base = get_field(old, dotted) if dotted else (False, None)
            return apply_transform(node, base)
        if isinstance(node, dict):
            return {
                key: walk(value, f"{dotted}.{key}" if dotted else key)
                for key, value in node.items()
            }
        if isinstance(node, list):
            return [walk(item, dotted) for item in node]
        return node

    return walk(data, "")
