"""The Mobile/Web client SDK: disconnected operation included.

"The Client (Mobile and Web) SDKs build a local cache of the documents
accessed by the client ... Mutations to documents by the client are
acknowledged immediately after updating the local cache; the updates are
also flushed to the Firestore API asynchronously. ... A disconnected
client can therefore continue to serve queries and updates using its
local cache, and reconcile its local cache when it eventually reconnects"
(paper section IV-E).
"""

from repro.client.local_cache import CachedDocument, LocalCache
from repro.client.mutations import Mutation, MutationKind, MutationQueue
from repro.client.view import ViewSnapshot
from repro.client.persistence import FilePersistence, InMemoryPersistence
from repro.client.client import MobileClient

__all__ = [
    "CachedDocument",
    "LocalCache",
    "Mutation",
    "MutationKind",
    "MutationQueue",
    "ViewSnapshot",
    "FilePersistence",
    "InMemoryPersistence",
    "MobileClient",
]
