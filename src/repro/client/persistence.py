"""Optional local-cache persistence.

"Based on their privacy preferences, an end user can choose to persist
their local cache. This choice affects the behavior after a device is
restarted; persistence provides a warm cache" (paper section IV-E).

State (cached documents + the pending mutation queue) serializes through
the same binary document format used for the Entities payload, so a
"restart" restores exactly what the device knew — including unflushed
offline writes.
"""

from __future__ import annotations

import struct
from pathlib import Path as FsPath
from typing import Optional

from repro.core.path import Path
from repro.core.serialization import deserialize_document, serialize_document
from repro.client.local_cache import LocalCache
from repro.client.mutations import MutationKind, MutationQueue

_MAGIC = b"FSRP\x01"


def serialize_state(cache: LocalCache, queue: MutationQueue) -> bytes:
    """Pack cache + mutation queue into one byte string."""
    out = bytearray(_MAGIC)
    docs = cache.all_documents()
    out += struct.pack(">I", len(docs))
    for doc in docs:
        _write_str(out, str(doc.path))
        out += struct.pack(">Q", doc.version_ts)
        if doc.data is None:
            out += struct.pack(">I", 0xFFFFFFFF)
        else:
            payload = serialize_document(doc.data)
            out += struct.pack(">I", len(payload))
            out += payload
    mutations = queue.mutations()
    out += struct.pack(">I", len(mutations))
    for mutation in mutations:
        _write_str(out, mutation.kind.value)
        _write_str(out, str(mutation.path))
        if mutation.data is None:
            out += struct.pack(">I", 0xFFFFFFFF)
        else:
            payload = serialize_document(mutation.data)
            out += struct.pack(">I", len(payload))
            out += payload
        out += struct.pack(">I", len(mutation.delete_fields))
        for dotted in mutation.delete_fields:
            _write_str(out, dotted)
    return bytes(out)


def deserialize_state(raw: bytes) -> tuple[LocalCache, MutationQueue]:
    """Inverse of :func:`serialize_state`."""
    if not raw.startswith(_MAGIC):
        raise ValueError("not a persisted client state")
    offset = len(_MAGIC)
    cache = LocalCache()
    (doc_count,) = struct.unpack_from(">I", raw, offset)
    offset += 4
    for _ in range(doc_count):
        path_str, offset = _read_str(raw, offset)
        (version_ts,) = struct.unpack_from(">Q", raw, offset)
        offset += 8
        (length,) = struct.unpack_from(">I", raw, offset)
        offset += 4
        if length == 0xFFFFFFFF:
            data = None
        else:
            data = deserialize_document(raw[offset : offset + length])
            offset += length
        cache.record_document(Path.parse(path_str), data, version_ts)
    queue = MutationQueue()
    (mutation_count,) = struct.unpack_from(">I", raw, offset)
    offset += 4
    for _ in range(mutation_count):
        kind_str, offset = _read_str(raw, offset)
        path_str, offset = _read_str(raw, offset)
        (length,) = struct.unpack_from(">I", raw, offset)
        offset += 4
        if length == 0xFFFFFFFF:
            data = None
        else:
            data = deserialize_document(raw[offset : offset + length])
            offset += length
        (field_count,) = struct.unpack_from(">I", raw, offset)
        offset += 4
        delete_fields = []
        for _ in range(field_count):
            dotted, offset = _read_str(raw, offset)
            delete_fields.append(dotted)
        queue.enqueue(
            MutationKind(kind_str),
            Path.parse(path_str),
            data,
            tuple(delete_fields),
        )
    return cache, queue


def _write_str(out: bytearray, text: str) -> None:
    raw = text.encode("utf-8")
    out += struct.pack(">I", len(raw))
    out += raw


def _read_str(raw: bytes, offset: int) -> tuple[str, int]:
    (length,) = struct.unpack_from(">I", raw, offset)
    offset += 4
    return raw[offset : offset + length].decode("utf-8"), offset + length


class InMemoryPersistence:
    """A fake 'disk' for tests and examples."""

    def __init__(self) -> None:
        self._blob: Optional[bytes] = None

    def save(self, blob: bytes) -> None:
        """Store the blob in memory."""
        self._blob = blob

    def load(self) -> Optional[bytes]:
        """The last saved blob, or None."""
        return self._blob


class FilePersistence:
    """Real on-disk persistence."""

    def __init__(self, file_path: str | FsPath):
        self.file_path = FsPath(file_path)

    def save(self, blob: bytes) -> None:
        """Write the blob to disk."""
        self.file_path.write_bytes(blob)

    def load(self) -> Optional[bytes]:
        """Read the blob from disk, or None if absent."""
        if not self.file_path.exists():
            return None
        return self.file_path.read_bytes()
