"""Query views: what a snapshot listener sees.

A view combines (a) the last server-confirmed result of the query with
(b) the pending-mutation overlay, producing the display state the paper
describes: "it displays the initial state ..., automatically updates the
display when some other user changes the state, ... automatically updates
the display when this end-user updates the state ..., behaves reasonably
when the end-user is disconnected (local updates are seen)" (section
III-E).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.path import Path
from repro.core.query import NormalizedQuery, Query
from repro.realtime.frontend import query_order_key
from repro.realtime.matcher import document_matches_query


@dataclass(frozen=True, slots=True)
class ViewDocument:
    """One document in a view snapshot."""

    path: Path
    data: dict
    has_pending_writes: bool


@dataclass(frozen=True, slots=True)
class ViewSnapshot:
    """What a snapshot listener receives."""

    query: Query
    documents: tuple[ViewDocument, ...]
    #: True when served from the local cache (offline or not yet synced)
    from_cache: bool
    #: True when any shown document reflects an unflushed local write
    has_pending_writes: bool
    added: tuple[Path, ...] = ()
    modified: tuple[Path, ...] = ()
    removed: tuple[Path, ...] = ()

    @property
    def paths(self) -> list[Path]:
        """The result documents' paths, in query order."""
        return [doc.path for doc in self.documents]

    def data_by_id(self) -> dict[str, dict]:
        """Map of document id to data, for assertions and display."""
        return {doc.path.id: doc.data for doc in self.documents}


class QueryView:
    """Maintains one listener's result set across server + local events."""

    def __init__(self, normalized: NormalizedQuery):
        self.normalized = normalized
        #: last server-confirmed contents: path -> data
        self.server_docs: dict[Path, dict] = {}
        self.synced = False  # has a server snapshot ever arrived?
        self._last_paths: Optional[dict[Path, dict]] = None

    def apply_server_snapshot(self, documents: list) -> None:
        """Replace server state from a (full) realtime snapshot."""
        self.server_docs = {doc.path: doc.data for doc in documents}
        self.synced = True

    def compute(
        self,
        mutation_queue,
        from_cache: bool,
        local_now_us: int,
        extra_docs: Optional[dict[Path, Optional[dict]]] = None,
    ) -> ViewSnapshot:
        """Build the visible snapshot: server state + local overlay.

        ``extra_docs``: locally-cached documents outside the server
        result set. They serve as overlay bases so offline mutations to
        them are visible, and may enter the result via pending mutations.
        """
        extra_docs = extra_docs or {}
        effective: dict[Path, tuple[dict, bool]] = {}
        # sorted: the union is a set, and ties under the query order key
        # must not depend on hash-randomized set iteration order
        candidates = sorted(
            set(self.server_docs) | mutation_queue.pending_paths() | set(extra_docs)
        )
        for path in candidates:
            server_data = self.server_docs.get(path)
            if server_data is None:
                server_data = extra_docs.get(path)
            data, pending = mutation_queue.overlay(path, server_data, local_now_us)
            if data is None:
                continue
            if not document_matches_query(self.normalized, path, data):
                continue
            effective[path] = (data, pending)

        key = query_order_key(self.normalized)
        ordered = sorted(
            ((path, data) for path, (data, _) in effective.items()), key=key
        )
        query = self.normalized.query
        if query.offset:
            ordered = ordered[query.offset :]
        if query.limit is not None:
            ordered = ordered[: query.limit]

        documents = tuple(
            ViewDocument(path, data, effective[path][1]) for path, data in ordered
        )
        added, modified, removed = self._delta({p: d for p, d in ordered})
        return ViewSnapshot(
            query=query,
            documents=documents,
            from_cache=from_cache,
            has_pending_writes=any(doc.has_pending_writes for doc in documents),
            added=added,
            modified=modified,
            removed=removed,
        )

    def _delta(self, current: dict[Path, dict]):
        previous = self._last_paths
        self._last_paths = current
        if previous is None:
            return tuple(current), (), ()
        added = tuple(path for path in current if path not in previous)
        removed = tuple(path for path in previous if path not in current)
        modified = tuple(
            path
            for path, data in current.items()
            if path in previous and previous[path] != data
        )
        return added, modified, removed
