"""The client-side document cache with local query support.

Caches every document the client has seen (from lookups and real-time
snapshots) together with "the necessary local indexes" — here, the cache
answers queries by filtering and sorting its contents with the same
comparison semantics the server's indexes encode, which is behaviourally
identical for the document counts a device holds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.path import Path
from repro.core.query import NormalizedQuery
from repro.realtime.frontend import query_order_key
from repro.realtime.matcher import document_matches_query


@dataclass(slots=True)
class CachedDocument:
    """One cached document (or a cached tombstone: data None)."""

    path: Path
    data: Optional[dict]
    #: server version this knowledge comes from (0 = purely local)
    version_ts: int

    @property
    def exists(self) -> bool:
        """Whether the cached knowledge says the document exists."""
        return self.data is not None


class LocalCache:
    """Documents known to this client, keyed by path."""

    def __init__(self) -> None:
        self._docs: dict[Path, CachedDocument] = {}
        #: collections for which the cache has seen a complete listen
        #: result (queries over them can be answered authoritatively)
        self._synced_queries: set[str] = set()

    def __len__(self) -> int:
        return sum(1 for doc in self._docs.values() if doc.exists)

    def get(self, path: Path) -> Optional[CachedDocument]:
        """The cached document (or tombstone), or None if unknown."""
        return self._docs.get(path)

    def record_document(self, path: Path, data: Optional[dict], version_ts: int) -> None:
        """Record server-provided knowledge about a document."""
        current = self._docs.get(path)
        if current is not None and current.version_ts > version_ts:
            return  # never regress to older knowledge
        self._docs[path] = CachedDocument(path, data, version_ts)

    def remove(self, path: Path) -> None:
        """Forget a document entirely."""
        self._docs.pop(path, None)

    def mark_query_synced(self, query_key: str) -> None:
        """Record that a listen covered this query completely."""
        self._synced_queries.add(query_key)

    def is_query_synced(self, query_key: str) -> bool:
        """Whether a listen has covered this query completely."""
        return query_key in self._synced_queries

    def run_query(self, normalized: NormalizedQuery) -> list[CachedDocument]:
        """Answer a query from cached documents, in query order."""
        matches = [
            doc
            for doc in self._docs.values()
            if doc.exists
            and document_matches_query(normalized, doc.path, doc.data)
        ]
        key = query_order_key(normalized)
        matches.sort(key=lambda doc: key((doc.path, doc.data)))
        query = normalized.query
        if query.offset:
            matches = matches[query.offset :]
        if query.limit is not None:
            matches = matches[: query.limit]
        return matches

    def all_documents(self) -> list[CachedDocument]:
        """Every cached document, including tombstones."""
        return list(self._docs.values())

    def clear(self) -> None:
        """Drop all cached documents and sync marks."""
        self._docs.clear()
        self._synced_queries.clear()
