"""The Mobile/Web SDK entry point: :class:`MobileClient`.

One instance models one end-user device: a local cache, a pending
mutation queue, snapshot listeners with latency compensation, an explicit
connect/disconnect switch for network state, OCC transactions, and
optional persistence across "restarts" (paper sections III-E and IV-E).
"""

from __future__ import annotations

import contextlib
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import (
    Aborted,
    FirestoreError,
    InvalidArgument,
    NotFound,
    ResourceExhausted,
    Unavailable,
)
from repro.core.backend import AuthContext, WriteOp, delete_op, set_op, update_op
from repro.core.firestore import FirestoreDatabase
from repro.faults.retry import (
    DEFAULT_POLICY,
    RetryBudget,
    RetryPolicy,
    call_with_retry,
    retry_stream,
)
from repro.core.path import Path, collection_path, document_path
from repro.core.query import Query
from repro.client.local_cache import LocalCache
from repro.client.mutations import MutationKind, MutationQueue
from repro.client.persistence import deserialize_state, serialize_state
from repro.client.view import QueryView, ViewSnapshot

OCC_MAX_ATTEMPTS = 5
_OCC_BACKOFF_US = 20_000


@dataclass
class ClientDocumentSnapshot:
    """What ``MobileClient.get`` returns."""

    path: Path
    data: Optional[dict]
    exists: bool
    from_cache: bool
    has_pending_writes: bool

    def get(self, dotted: str) -> Any:
        """The value at a dotted field path, or None."""
        from repro.core.values import get_field

        if self.data is None:
            return None
        _, value = get_field(self.data, dotted)
        return value


class _Listener:
    def __init__(self, tag: Any, query: Query, callback: Callable[[ViewSnapshot], None]):
        self.tag = tag
        self.query = query
        self.view = QueryView(query.normalize())
        self.callback = callback
        self.server_tag: Optional[Any] = None


class MobileClient:
    """One end-user device's SDK instance."""

    _tags = itertools.count(1)

    def __init__(
        self,
        database: FirestoreDatabase,
        auth: Optional[AuthContext] = None,
        persistence=None,
        start_online: bool = True,
        client_id: Optional[str] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_budget: Optional[RetryBudget] = None,
    ):
        self.database = database
        self.auth = auth
        self.persistence = persistence
        self.tracer = database.service.tracer
        #: stable device identity; prefixes flush idempotency tokens so a
        #: retried commit dedups server-side (pass one explicitly to model
        #: the same device reinstalling with persisted state)
        self.client_id = (
            client_id if client_id is not None else database.allocate_client_id()
        )
        self.cache = LocalCache()
        self.mutation_queue = MutationQueue()
        self._listeners: dict[Any, _Listener] = {}
        self._connection = None
        self._online = False
        #: errors from mutations the server rejected during a flush
        self.flush_errors: list[FirestoreError] = []
        # billing-relevant counters (cache hits are free, section IV-E)
        self.server_reads = 0
        self.cache_reads = 0
        # graceful degradation: admission-shed flushes park the queue
        # until this sim-clock time instead of failing user writes
        self._retry_rand = retry_stream(self.client_id)
        self._backoff_until_us = 0
        self._shed_streak = 0
        self.shed_requests = 0
        # per-client retry discipline: the backoff ladder starts at a
        # per-device offset (seeded from the client id, drawn from its own
        # stream so existing jitter sequences are unchanged) — a fleet of
        # devices shed at the same instant must not all come back at the
        # same instant. The budget bounds total retry amplification.
        base = retry_policy if retry_policy is not None else DEFAULT_POLICY
        spread = retry_stream(f"{self.client_id}:policy").uniform(0.75, 1.25)
        self.retry_policy = RetryPolicy(
            max_attempts=base.max_attempts,
            initial_backoff_us=max(1, int(base.initial_backoff_us * spread)),
            multiplier=base.multiplier,
            max_backoff_us=base.max_backoff_us,
            jitter=base.jitter,
        )
        self.retry_budget = (
            retry_budget if retry_budget is not None else RetryBudget()
        )

        if persistence is not None:
            blob = persistence.load()
            if blob is not None:
                self.cache, self.mutation_queue = deserialize_state(blob)
        if start_online:
            self.connect()

    # -- network state -----------------------------------------------------------

    @property
    def is_online(self) -> bool:
        """Whether the device currently has connectivity."""
        return self._online

    def connect(self) -> None:
        """Go online: flush pending writes, then re-establish listens.

        Flushing first means the subsequent initial snapshots already
        reflect this device's offline writes — the reconciliation the
        paper describes as automatic on reconnection.
        """
        if self._online:
            return
        self._online = True
        self._connection = self.database.connect()
        self.flush()
        for listener in self._listeners.values():
            self._register_listen(listener)

    def disconnect(self) -> None:
        """Go offline: listeners keep serving from the local cache."""
        if not self._online:
            return
        self._online = False
        if self._connection is not None:
            self._connection.close()
            self._connection = None
        for listener in self._listeners.values():
            listener.server_tag = None
        self.persist()

    def _now_us(self) -> int:
        return self.database.service.clock.now_us

    # -- document reads -----------------------------------------------------------------

    def get(self, path: str | Path, source: str = "default") -> ClientDocumentSnapshot:
        """Read one document: from the server online, the cache offline.

        ``source`` mirrors the SDK option: "default" (server when online,
        else cache), "server" (fail offline), "cache" (never hit the
        network — and never billed, section IV-E).
        """
        if source not in ("default", "server", "cache"):
            raise InvalidArgument(f"unknown source {source!r}")
        doc_path = document_path(path if isinstance(path, Path) else Path.parse(path))
        if source == "server" and not self._online:
            raise Unavailable("source='server' requires connectivity")
        if self.tracer:
            return self._traced_get(doc_path, source)
        return self._get(doc_path, source)

    def _traced_get(self, doc_path: Path, source: str) -> ClientDocumentSnapshot:
        with self.tracer.span(
            "client.get",
            component="client",
            attributes={"path": str(doc_path), "source": source},
        ) as span:
            snapshot = self._get(doc_path, source)
            span.set_attribute("from_cache", snapshot.from_cache)
            return snapshot

    def _get(self, doc_path: Path, source: str) -> ClientDocumentSnapshot:
        if source == "cache":
            cached = self.cache.get(doc_path)
            if cached is None and not self.mutation_queue.has_pending(doc_path):
                raise Unavailable(f"{doc_path} is not in the local cache")
            self.cache_reads += 1
            data, pending = self.mutation_queue.overlay(
                doc_path, cached.data if cached else None, self._now_us()
            )
            return ClientDocumentSnapshot(
                path=doc_path,
                data=data,
                exists=data is not None,
                from_cache=True,
                has_pending_writes=pending,
            )
        if self._online:
            snapshot = self.database.lookup(doc_path, auth=self.auth)
            self.server_reads += 1
            version = (
                snapshot.document.update_time if snapshot.document is not None else snapshot.read_time
            )
            self.cache.record_document(doc_path, snapshot.data, version)
        else:
            cached = self.cache.get(doc_path)
            if cached is None and not self.mutation_queue.has_pending(doc_path):
                raise Unavailable(
                    f"offline and {doc_path} is not in the local cache"
                )
            self.cache_reads += 1
        base = self.cache.get(doc_path)
        server_data = base.data if base is not None else None
        data, pending = self.mutation_queue.overlay(
            doc_path, server_data, self._now_us()
        )
        return ClientDocumentSnapshot(
            path=doc_path,
            data=data,
            exists=data is not None,
            from_cache=not self._online,
            has_pending_writes=pending,
        )

    # -- queries -----------------------------------------------------------------------------

    def query(self, collection: str | Path) -> Query:
        """Start building a query over a collection."""
        parent = collection if isinstance(collection, Path) else Path.parse(collection)
        return Query(parent=collection_path(parent))

    def get_query(self, query: Query) -> ViewSnapshot:
        """One-shot query: server results online, cache offline — always
        with the pending-mutation overlay applied."""
        view = QueryView(query.normalize())
        if self._online:
            result = self.database.run_query(query, auth=self.auth)
            self.server_reads += len(result.documents)
            for doc in result.documents:
                self.cache.record_document(doc.path, doc.data, doc.update_time)
            view.apply_server_snapshot(result.documents)
        else:
            self.cache_reads += 1
            for cached in self.cache.run_query(view.normalized):
                view.server_docs[cached.path] = cached.data
            view.synced = False
        return view.compute(
            self.mutation_queue,
            from_cache=not self._online,
            local_now_us=self._now_us(),
            extra_docs={
                d.path: d.data for d in self.cache.all_documents() if d.exists
            },
        )

    # -- snapshot listeners -------------------------------------------------------------------

    def on_snapshot(
        self, query: Query, callback: Callable[[ViewSnapshot], None], tag: Any = None
    ) -> Any:
        """Register a real-time listener; fires immediately with the
        current state (server-backed online, cache-backed offline)."""
        if tag is None:
            tag = next(self._tags)
        listener = _Listener(tag, query, callback)
        self._listeners[tag] = listener
        if self._online:
            self._register_listen(listener)
        else:
            for cached in self.cache.run_query(listener.view.normalized):
                listener.view.server_docs[cached.path] = cached.data
            self._emit(listener)
        return tag

    def on_document_snapshot(
        self,
        path: str | Path,
        callback: Callable[[ClientDocumentSnapshot], None],
        tag: Any = None,
    ) -> Any:
        """Listen to a single document (the SDKs' doc-reference listener).

        Implemented as a listener on the parent collection narrowed to the
        one path — deletions arrive as a snapshot with ``exists=False``.
        """
        doc_path = document_path(path if isinstance(path, Path) else Path.parse(path))
        parent = doc_path.parent()
        assert parent is not None

        def narrowed(view: ViewSnapshot) -> None:
            match = next(
                (doc for doc in view.documents if doc.path == doc_path), None
            )
            callback(
                ClientDocumentSnapshot(
                    path=doc_path,
                    data=match.data if match else None,
                    exists=match is not None,
                    from_cache=view.from_cache,
                    has_pending_writes=(
                        match.has_pending_writes if match else False
                    ),
                )
            )

        return self.on_snapshot(
            Query(parent=parent), narrowed, tag=tag
        )

    def detach(self, tag: Any) -> None:
        """Remove a snapshot listener by its tag."""
        listener = self._listeners.pop(tag, None)
        if listener is None:
            return
        if listener.server_tag is not None and self._connection is not None:
            self._connection.unlisten(listener.server_tag)

    def _register_listen(self, listener: _Listener) -> None:
        assert self._connection is not None

        def on_delta(delta) -> None:
            for doc in delta.documents:
                self.cache.record_document(doc.path, doc.data, doc.update_time)
            for path in delta.removed:
                self.cache.record_document(path, None, delta.read_ts)
            listener.view.apply_server_snapshot(list(delta.documents))
            self._emit(listener)

        listener.server_tag = self._connection.listen(listener.query, on_delta)

    def _emit(self, listener: _Listener) -> None:
        snapshot = listener.view.compute(
            self.mutation_queue,
            from_cache=not self._online or not listener.view.synced,
            local_now_us=self._now_us(),
            extra_docs={
                d.path: d.data for d in self.cache.all_documents() if d.exists
            },
        )
        listener.callback(snapshot)

    # -- writes (latency compensated) ---------------------------------------------------------

    def set(self, path: str | Path, data: dict) -> None:
        """Blind set: acknowledged locally at once, flushed when online."""
        doc_path = document_path(path if isinstance(path, Path) else Path.parse(path))
        self.mutation_queue.enqueue(MutationKind.SET, doc_path, data)
        self._after_local_write()

    def update(
        self, path: str | Path, data: dict, delete_fields: tuple[str, ...] = ()
    ) -> None:
        """Blind update: merged locally at once, flushed when online."""
        doc_path = document_path(path if isinstance(path, Path) else Path.parse(path))
        self.mutation_queue.enqueue(MutationKind.UPDATE, doc_path, data, delete_fields)
        self._after_local_write()

    def delete(self, path: str | Path) -> None:
        """Blind delete: applied locally at once, flushed when online."""
        doc_path = document_path(path if isinstance(path, Path) else Path.parse(path))
        self.mutation_queue.enqueue(MutationKind.DELETE, doc_path)
        self._after_local_write()

    def _after_local_write(self) -> None:
        # latency compensation: listeners see the write immediately
        for listener in self._listeners.values():
            self._emit(listener)
        if self._online:
            self.flush()

    def flush(self) -> int:
        """Push pending mutations to the service (blind, last-update-wins).

        Each mutation is committed with an idempotency token
        (``<client_id>:<mutation_id>``) and retried with backoff on
        transient failures, so a lost acknowledgement never double-applies
        a write. Mutations the server rejects (rules, missing documents)
        are dropped and their errors recorded in ``flush_errors``; an
        unavailable or load-shedding service re-queues everything and the
        queue stays parked until the backoff window passes.
        """
        if not self._online:
            return 0
        if self._now_us() < self._backoff_until_us:
            return 0  # still backing off after a shed
        mutations = self.mutation_queue.drain()
        if not mutations:
            return 0
        service = self.database.service
        # duck-typed: the client layer may not import repro.obs, so the
        # profiler hook ships as an opaque context manager
        profiler = service.profiler
        measure = (
            profiler.measure(
                "client", "flush", service.clock, self.database.database_id
            )
            if profiler
            else contextlib.nullcontext()
        )
        with measure, self.tracer.span(
            "client.flush",
            component="client",
            attributes={"pending": len(mutations)},
        ) as span:
            flushed = self._flush_mutations(mutations)
            span.set_attribute("flushed", flushed)
        return flushed

    def _flush_mutations(self, mutations) -> int:
        flushed = 0
        for index, mutation in enumerate(mutations):
            op = self._to_write_op(mutation)
            token = f"{self.client_id}:{mutation.mutation_id}"
            try:
                outcome = call_with_retry(
                    lambda op=op, token=token: self.database.commit(
                        [op], auth=self.auth, idempotency_token=token
                    ),
                    policy=self.retry_policy,
                    clock=self.database.service.clock,
                    rand=self._retry_rand,
                    idempotent=True,
                    metrics=self.database.service.metrics,
                    budget=self.retry_budget,
                )
                flushed += 1
                self._shed_streak = 0
            except ResourceExhausted as exc:
                # the service shed us (admission control): requeue and
                # back off — degradation, not a user-visible failure
                self.mutation_queue.requeue_front(mutations[index:])
                self.shed_requests += 1
                pause = self.retry_policy.backoff_us(
                    self._shed_streak, self._retry_rand
                )
                hint = exc.retry_after_us
                if hint is not None and hint > pause:
                    # honor the server's backoff ask over our own schedule
                    pause = hint
                self._shed_streak += 1
                self._backoff_until_us = self._now_us() + pause
                metrics = self.database.service.metrics
                if metrics is not None:
                    metrics.counter(
                        "faults_shed_backoff", client=self.client_id
                    ).inc()
                break
            except Unavailable:
                self.mutation_queue.requeue_front(mutations[index:])
                break
            except FirestoreError as exc:
                if isinstance(exc, NotFound) and mutation.kind is MutationKind.UPDATE:
                    continue  # update of a deleted doc: silently lost (LWW)
                self.flush_errors.append(exc)
            else:
                # acknowledged: fold the result into the local cache so
                # reads work even before the listen stream catches up
                snapshot = self.database.lookup(mutation.path)
                version = (
                    snapshot.document.update_time
                    if snapshot.document is not None
                    else outcome.commit_ts
                )
                self.cache.record_document(mutation.path, snapshot.data, version)
        return flushed

    def _to_write_op(self, mutation) -> WriteOp:
        if mutation.kind is MutationKind.SET:
            return set_op(mutation.path, mutation.data)
        if mutation.kind is MutationKind.UPDATE:
            return update_op(mutation.path, mutation.data, mutation.delete_fields)
        return delete_op(mutation.path)

    # -- OCC transactions ------------------------------------------------------------------------

    def run_transaction(
        self, fn: Callable[["ClientTransaction"], Any], max_attempts: int = OCC_MAX_ATTEMPTS
    ) -> Any:
        """Optimistic-concurrency transaction (paper section III-E).

        Reads go to the server without locks; at commit "all data read by
        the transaction is revalidated for freshness"; a failed check
        retries the whole function. Requires connectivity.
        """
        if not self._online:
            raise Unavailable("transactions require connectivity")
        if self.mutation_queue.mutations():
            self.flush()
        clock = self.database.service.clock
        last: Optional[Aborted] = None
        with self.tracer.span(
            "client.transaction", component="client"
        ) as span:
            for attempt in range(max_attempts):
                txn = ClientTransaction(self)
                try:
                    result = fn(txn)
                    txn._commit()
                    span.set_attribute("attempts", attempt + 1)
                    return result
                except Aborted as exc:
                    last = exc
                    clock.advance(_OCC_BACKOFF_US)
            span.set_attribute("attempts", max_attempts)
            raise Aborted(
                f"transaction failed after {max_attempts} attempts: {last}"
            )

    # -- persistence --------------------------------------------------------------------------------

    def persist(self) -> None:
        """Save the cache + pending mutations (if persistence is enabled)."""
        if self.persistence is not None:
            self.persistence.save(serialize_state(self.cache, self.mutation_queue))

    @property
    def pending_writes(self) -> int:
        """Number of unflushed local mutations."""
        return len(self.mutation_queue)

    def wait_for_pending_writes(self) -> bool:
        """Flush everything outstanding; True when the queue drained.

        Mirrors the SDKs' ``waitForPendingWrites()``: resolves once every
        write issued so far has been acknowledged by the service — which
        can only happen while connected.
        """
        if not self._online:
            return self.mutation_queue.is_empty
        self.flush()
        return self.mutation_queue.is_empty


class ClientTransaction:
    """OCC transaction state: read set with versions + buffered writes."""

    def __init__(self, client: MobileClient):
        self._client = client
        #: path -> update_time observed (0 = did not exist)
        self._reads: dict[Path, int] = {}
        self._writes: list[WriteOp] = []

    def get(self, path: str | Path) -> ClientDocumentSnapshot:
        """Read a document, recording its version for OCC validation."""
        doc_path = document_path(path if isinstance(path, Path) else Path.parse(path))
        if self._writes:
            raise InvalidArgument("transactions require all reads before writes")
        snapshot = self._client.database.lookup(doc_path, auth=self._client.auth)
        self._client.server_reads += 1
        version = snapshot.document.update_time if snapshot.document else 0
        self._reads[doc_path] = version
        return ClientDocumentSnapshot(
            path=doc_path,
            data=snapshot.data,
            exists=snapshot.exists,
            from_cache=False,
            has_pending_writes=False,
        )

    def set(self, path: str | Path, data: dict) -> None:
        """Buffer a set within the transaction."""
        self._writes.append(set_op(_to_doc_path(path), data))

    def update(self, path: str | Path, data: dict) -> None:
        """Buffer an update within the transaction."""
        self._writes.append(update_op(_to_doc_path(path), data))

    def delete(self, path: str | Path) -> None:
        """Buffer a delete within the transaction."""
        self._writes.append(delete_op(_to_doc_path(path)))

    def _commit(self) -> None:
        if not self._writes and not self._reads:
            return
        backend = self._client.database.backend
        reads = dict(self._reads)
        writes = list(self._writes)
        auth = self._client.auth

        def validate_and_apply(server_txn) -> None:
            # freshness revalidation of the entire read set
            for path, seen_version in reads.items():
                snapshot = server_txn.get(path)
                current = (
                    snapshot.document.update_time if snapshot.document else 0
                )
                if current != seen_version:
                    raise Aborted(
                        f"optimistic check failed for {path}: "
                        f"read {seen_version}, now {current}"
                    )
            for op in writes:
                server_txn._writes.append(op)

        from repro.core.transaction import run_transaction

        # one server-side attempt: OCC retries happen client-side; rules
        # apply to the writes inside the backend commit path via auth
        run_transaction(backend, validate_and_apply, max_attempts=1, auth=auth)
        for path in reads:
            snapshot = self._client.database.lookup(path)
            version = (
                snapshot.document.update_time if snapshot.document else snapshot.read_time
            )
            self._client.cache.record_document(path, snapshot.data, version)


def _to_doc_path(path: str | Path) -> Path:
    return document_path(path if isinstance(path, Path) else Path.parse(path))
