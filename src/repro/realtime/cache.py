"""The Real-time Cache facade.

Wires range ownership, the In-memory Changelog, the Query Matcher, and the
Frontends together, and implements the Prepare/Accept interface the
Backend drives (paper Fig. 5). Failure injection knobs let tests exercise
the paper's full failure matrix:

- ``available = False``: Prepare RPCs fail -> the write fails.
- ``drop_accepts = True``: the Spanner commit succeeds but the Accept
  never arrives -> the Changelog times out, marks ranges out-of-sync, and
  every affected query resets.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import Unavailable
from repro.sim.clock import SimClock
from repro.core.path import Path
from repro.realtime.changelog import Changelog
from repro.realtime.frontend import Frontend
from repro.realtime.matcher import QueryMatcher
from repro.realtime.protocol import DocumentChange, PrepareHandle, WriteOutcome
from repro.realtime.ranges import NameRange, RangeOwnership

if TYPE_CHECKING:  # circular at runtime: the Backend drives this module
    from repro.core.backend import Backend


class RealtimeCache:
    """One database's Real-time Cache (Changelog + Query Matcher)."""

    def __init__(
        self,
        clock: SimClock,
        auto_resync: bool = True,
        tracer=None,
        metrics=None,
    ):
        self.clock = clock
        self.tracer = tracer
        self.metrics = metrics
        self.ownership = RangeOwnership()
        self.changelog = Changelog(
            self.ownership, clock, tracer=tracer, metrics=metrics
        )
        self.matcher = QueryMatcher(self.ownership, tracer=tracer, metrics=metrics)
        self.frontends: list[Frontend] = []
        self._handles: dict[int, list[NameRange]] = {}
        self.available = True
        self.drop_accepts = False
        self._auto_resync = auto_resync
        # deterministic fault plane (repro.faults.FaultPlan), duck-typed:
        # None keeps the per-accept / per-pump injection hooks inert
        self.fault_plan = None

        self.changelog.on_change = self.matcher.on_change
        self.changelog.on_heartbeat = self.matcher.on_heartbeat
        self.changelog.on_out_of_sync = self._handle_out_of_sync
        self.ownership.on_reassign = self.matcher.on_reassign

    # -- Backend-facing 2PC interface ---------------------------------------------

    def prepare(
        self, database_id: str, paths: list[Path], max_commit_ts: int
    ) -> PrepareHandle:
        """Step 5 of the write protocol: reserve a commit window."""
        if not self.available:
            raise Unavailable("Real-time Cache unreachable")
        ranges = self.ownership.ranges_for_paths(paths)
        handle = self.changelog.prepare(ranges, max_commit_ts)
        self._handles[handle.prepare_id] = ranges
        return handle

    def accept(
        self,
        database_id: str,
        handle: PrepareHandle,
        outcome: WriteOutcome,
        commit_ts: int,
        changes: list[DocumentChange],
    ) -> None:
        """Step 7: deliver the commit outcome and mutations."""
        ranges = self._handles.pop(handle.prepare_id, [])
        if self.drop_accepts:
            return  # the Changelog will time the prepare out
        plan = self.fault_plan
        if plan is not None and plan.decide("realtime.drop_accept") is not None:
            # a changelog gap: this Accept is lost, the prepare times out,
            # the range goes out-of-sync and recovers via resync
            return
        self.changelog.accept(ranges, handle, outcome, commit_ts, changes)

    # -- frontends --------------------------------------------------------------------

    def create_frontend(self, backend: Backend) -> Frontend:
        """Register a new Frontend task over this cache."""
        frontend = Frontend(backend, self.matcher, tracer=self.tracer)
        self.frontends.append(frontend)
        return frontend

    # -- driving ------------------------------------------------------------------------

    def pump(self) -> int:
        """One heartbeat tick: advance watermarks, deliver snapshots."""
        plan = self.fault_plan
        if plan is not None and plan.decide("realtime.frontend_loss") is not None:
            # a Frontend task died: its replacement redoes every query's
            # initial snapshot (listeners see a fresh consistent state)
            for frontend in self.frontends:
                frontend.crash()
        self.changelog.pump()
        return sum(frontend.pump() for frontend in self.frontends)

    def _handle_out_of_sync(self, name_range: NameRange) -> None:
        self.matcher.on_out_of_sync(name_range)
        if self._auto_resync:
            self.changelog.resync(name_range)

    # -- introspection ---------------------------------------------------------------------

    @property
    def active_queries(self) -> int:
        """Currently registered real-time queries."""
        return self.matcher.subscription_count()

    @property
    def total_resets(self) -> int:
        """Query resets performed across all frontends."""
        return sum(frontend.resets for frontend in self.frontends)
