"""The Backend <-> Real-time Cache two-phase-commit protocol.

Paper section IV-D2, steps 5 and 7: before committing to Spanner the
Backend sends Prepare RPCs (carrying a maximum commit timestamp M) to the
Changelog tasks owning the affected document-name ranges; each responds
with a minimum allowed commit timestamp m. After the Spanner commit the
Backend sends Accept RPCs with the outcome — committed (with the full
mutations), failed, or unknown.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Protocol

from repro.core.path import Path


class WriteOutcome(enum.Enum):
    """How a prepared commit resolved."""
    COMMITTED = "committed"
    FAILED = "failed"
    UNKNOWN = "unknown"


@dataclass(frozen=True, slots=True)
class DocumentChange:
    """One document mutation, as delivered to the Real-time Cache.

    Carries both the old and new contents — "a full copy of each modified
    document together with the exact changes" — so the Query Matcher can
    match a query against the state before *and* after (a document
    leaving a result set matters as much as one entering it).
    """

    path: Path
    old_data: Optional[dict]  # None: the document did not exist
    new_data: Optional[dict]  # None: the document was deleted
    commit_ts: int = 0        # filled in by the Accept

    def with_commit_ts(self, commit_ts: int) -> "DocumentChange":
        """A copy stamped with the commit timestamp."""
        return DocumentChange(self.path, self.old_data, self.new_data, commit_ts)

    @property
    def is_delete(self) -> bool:
        """The document was removed."""
        return self.new_data is None

    @property
    def is_create(self) -> bool:
        """The document is new."""
        return self.old_data is None and self.new_data is not None


@dataclass(slots=True)
class PrepareHandle:
    """The Backend's token for an in-flight two-phase commit."""

    prepare_id: int
    min_commit_ts: int
    max_commit_ts: int


class RealtimeCacheInterface(Protocol):
    """What the Backend needs from the Real-time Cache."""

    def prepare(
        self, database_id: str, paths: list[Path], max_commit_ts: int
    ) -> PrepareHandle:
        """Step 5: announce an impending commit; returns min/max window.

        Raises :class:`repro.errors.Unavailable` if the cache cannot be
        reached — the Backend then fails the write (paper: "the write
        fails and an error is returned to the user").
        """
        ...

    def accept(
        self,
        database_id: str,
        handle: PrepareHandle,
        outcome: WriteOutcome,
        commit_ts: int,
        changes: list[DocumentChange],
    ) -> None:
        """Step 7: deliver the commit outcome and mutations."""
        ...


class NullRealtimeCache:
    """A no-op cache for databases with no real-time listeners.

    Also handy in unit tests of the write path.
    """

    def __init__(self) -> None:
        self.prepares = 0
        self.accepts: list[WriteOutcome] = []

    def prepare(
        self, database_id: str, paths: list[Path], max_commit_ts: int
    ) -> PrepareHandle:
        """No-op prepare (counts calls for tests)."""
        self.prepares += 1
        return PrepareHandle(self.prepares, 0, max_commit_ts)

    def accept(
        self,
        database_id: str,
        handle: PrepareHandle,
        outcome: WriteOutcome,
        commit_ts: int,
        changes: list[DocumentChange],
    ) -> None:
        """No-op accept (records outcomes for tests)."""
        self.accepts.append(outcome)
