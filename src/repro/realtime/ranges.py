"""Document-name range ownership (the Slicer-like sharding).

"A separate mechanism establishes and shares consistent ownership of
document-name ranges to specific Changelog and Query Matcher tasks"
(paper section IV-D4); "Load-balancing is achieved by dynamically changing
the document-name range ownership ... by leveraging the Slicer
auto-sharding framework".

Keys here are order-preserving encodings of document names
(:func:`repro.core.encoding.encode_doc_name`), so a collection's possible
result documents occupy a contiguous key range.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.encoding import encode_doc_name, prefix_successor
from repro.core.path import Path


@dataclass(frozen=True)
class NameRange:
    """One owned range [start, end) of encoded document names."""

    range_id: int
    start: bytes
    end: Optional[bytes]  # None = unbounded

    def covers(self, key: bytes) -> bool:
        """Whether the key falls inside this range."""
        if key < self.start:
            return False
        return self.end is None or key < self.end

    def overlaps(self, start: bytes, end: Optional[bytes]) -> bool:
        """Whether [start, end) intersects this range."""
        if self.end is not None and self.end <= start:
            return False
        if end is not None and self.start >= end:
            return False
        return True


class RangeOwnership:
    """The authoritative range -> task assignment for one database."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._ranges: list[NameRange] = [NameRange(next(self._ids), b"", None)]
        #: called with (old_range, new_ranges) on every reassignment
        self.on_reassign: Optional[Callable[[NameRange, list[NameRange]], None]] = None

    @property
    def ranges(self) -> list[NameRange]:
        """The current ranges, in key order."""
        return list(self._ranges)

    @staticmethod
    def key_for(path: Path) -> bytes:
        """The encoded-name key of a document path."""
        return encode_doc_name(path.segments)

    @staticmethod
    def collection_span(parent: Path) -> tuple[bytes, Optional[bytes]]:
        """The encoded-name span containing every document in a collection
        (including sub-collection documents, which share the prefix)."""
        encoded = encode_doc_name(parent.segments)
        prefix = encoded[:-2]  # strip the low sentinel; children extend it
        return prefix, prefix_successor(prefix)

    def owner_of(self, path: Path) -> NameRange:
        """The range owning a document path."""
        return self._owner_of_key(self.key_for(path))

    def _owner_of_key(self, key: bytes) -> NameRange:
        lo, hi = 0, len(self._ranges) - 1
        while lo <= hi:
            mid = (lo + hi) // 2
            candidate = self._ranges[mid]
            if key < candidate.start:
                hi = mid - 1
            elif candidate.end is not None and key >= candidate.end:
                lo = mid + 1
            else:
                return candidate
        raise AssertionError("ownership must cover the whole keyspace")

    def ranges_for_paths(self, paths: list[Path]) -> list[NameRange]:
        """The distinct ranges owning the given paths."""
        seen: dict[int, NameRange] = {}
        for path in paths:
            owner = self.owner_of(path)
            seen[owner.range_id] = owner
        return list(seen.values())

    def ranges_for_collection(self, parent: Path) -> list[NameRange]:
        """Every range that may own a document of this collection."""
        start, end = self.collection_span(parent)
        return [r for r in self._ranges if r.overlaps(start, end)]

    def split(self, path: Path) -> list[NameRange]:
        """Re-shard: split the range owning ``path`` at that document.

        Returns the new ranges. Listeners on the old range are reset (the
        fail-safe recovery path), matching the paper's observation that
        ownership changes are handled by the generic reset machinery.
        """
        key = self.key_for(path)
        old = self._owner_of_key(key)
        if key == old.start:
            return [old]
        left = NameRange(next(self._ids), old.start, key)
        right = NameRange(next(self._ids), key, old.end)
        position = self._ranges.index(old)
        self._ranges[position : position + 1] = [left, right]
        if self.on_reassign is not None:
            self.on_reassign(old, [left, right])
        return [left, right]
