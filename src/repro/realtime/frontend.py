"""Frontend tasks: long-lived connections and consistent snapshots.

The Frontend (paper section IV-D4):

- serves each new real-time query's initial snapshot through the Backend,
- subscribes to the Query Matcher tasks owning the covering ranges,
- "is responsible for tracking when it has received all the updates
  necessary to reach a consistent timestamp" across those ranges, and
  only then ships the accumulated delta as an incremental snapshot,
- keeps the *multiple* queries multiplexed on one connection mutually
  consistent: "queries on the same connection are only updated to a
  timestamp t once all queries' max-commit-version has reached at least
  t",
- and on an out-of-sync signal "aborts all accumulated state for that
  query and redoes the steps starting with the initial query request".
"""

from __future__ import annotations

import functools
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Optional

from typing import TYPE_CHECKING

from repro.core.document import Document
from repro.core.path import Path
from repro.core.query import NormalizedQuery, Query
from repro.core.values import compare_values, get_field
from repro.realtime.matcher import QueryMatcher, Subscription, document_matches_query
from repro.realtime.protocol import DocumentChange

if TYPE_CHECKING:  # circular at runtime: the Backend drives this module
    from repro.core.backend import Backend


@dataclass(frozen=True)
class SnapshotDelta:
    """One incremental snapshot for one query."""

    query_tag: Any
    read_ts: int
    added: tuple[Document, ...]
    modified: tuple[Document, ...]
    removed: tuple[Path, ...]
    #: the full result, in query order, at read_ts
    documents: tuple[Document, ...]
    #: True for the first snapshot and after each reset
    is_initial: bool = False

    @property
    def is_empty(self) -> bool:
        """True when nothing changed in this snapshot."""
        return not (self.added or self.modified or self.removed)


def _delta_paths(delta: SnapshotDelta) -> list[str]:
    """Every document path a snapshot delta touched, for the history log."""
    return [
        str(doc.path) for doc in delta.added + delta.modified
    ] + [str(path) for path in delta.removed]


def query_order_key(normalized: NormalizedQuery):
    """A sort key over (path, data) pairs matching the query's order."""

    def cmp(a: tuple[Path, dict], b: tuple[Path, dict]) -> int:
        for order in normalized.core_orders:
            _, va = get_field(a[1], order.field_path)
            _, vb = get_field(b[1], order.field_path)
            result = compare_values(va, vb)
            if result:
                return result if order.direction == "asc" else -result
        if a[0] == b[0]:
            return 0
        result = -1 if a[0] < b[0] else 1
        return result if normalized.name_direction == "asc" else -result

    return functools.cmp_to_key(cmp)


class _QueryState:
    """Frontend-side state for one registered real-time query."""

    def __init__(self, tag: Any, query: Query, on_snapshot: Callable[[SnapshotDelta], None]):
        self.tag = tag
        #: run-deterministic listener identity for recorded histories
        #: ("<connection>.<tag>"); the API-visible tag is per-connection
        self.record_tag = str(tag)
        self.query = query
        self.normalized = query.normalize()
        self.on_snapshot = on_snapshot
        self.subscription: Optional[Subscription] = None
        #: current result contents: path -> (data, update_ts, create_ts)
        self.result: dict[Path, tuple[dict, int, int]] = {}
        self.max_commit_version = 0
        self.pending: list[tuple[int, DocumentChange]] = []
        self.range_watermarks: dict[int, int] = {}
        self.needs_reset = False

    def consistent_ts(self) -> int:
        if not self.range_watermarks:
            return self.max_commit_version
        return min(self.range_watermarks.values())


class RealtimeConnection:
    """One client's long-lived connection, multiplexing its queries."""

    def __init__(self, frontend: "Frontend", conn_id: int = 0):
        self._frontend = frontend
        self._conn_id = conn_id
        # per-connection, not process-global: auto-assigned tags must be
        # a function of this run alone so recorded histories replay
        # byte-identically from the same seed
        self._tags = itertools.count(1)
        self._states: dict[Any, _QueryState] = {}
        self._emitted_ts = 0
        self.closed = False

    # -- client API ----------------------------------------------------------------

    def listen(
        self,
        query: Query,
        on_snapshot: Callable[[SnapshotDelta], None],
        tag: Any = None,
    ) -> Any:
        """Register a real-time query; the initial snapshot is delivered
        synchronously, subsequent deltas on :meth:`Frontend.pump`."""
        if tag is None:
            tag = next(self._tags)
        state = _QueryState(tag, query, on_snapshot)
        # tags are only unique per connection; histories need a
        # run-deterministic identity unique per listener
        state.record_tag = f"{self._conn_id}.{tag}"
        self._states[tag] = state
        self._frontend._start_query(state, is_initial=True)
        return tag

    def unlisten(self, tag: Any) -> None:
        """Deregister one query from this connection."""
        state = self._states.pop(tag, None)
        if state is not None and state.subscription is not None:
            self._frontend.matcher.unsubscribe(state.subscription.subscription_id)

    def close(self) -> None:
        """Tear the connection down, dropping all queries."""
        for tag in list(self._states):
            self.unlisten(tag)
        self.closed = True
        self._frontend._connections.discard(self)

    @property
    def query_count(self) -> int:
        """Queries multiplexed on this connection."""
        return len(self._states)

    # -- consistency-tracked emission --------------------------------------------------

    def _pump(self) -> int:
        """Handle resets, then emit consistent snapshots. Returns count."""
        emitted = 0
        for state in list(self._states.values()):
            if state.needs_reset:
                self._frontend._reset_query(state)
                emitted += 1
        if not self._states:
            return emitted
        target = min(s.consistent_ts() for s in self._states.values())
        if target <= self._emitted_ts:
            return emitted
        self._emitted_ts = target
        tracer = self._frontend.tracer
        for state in self._states.values():
            if target > state.max_commit_version:
                delta = self._frontend._apply_pending(state, target)
                if delta is not None and not delta.is_empty:
                    with tracer.span(
                        "listener.notify",
                        component="frontend",
                        attributes={
                            "read_ts": delta.read_ts,
                            "added": len(delta.added),
                            "modified": len(delta.modified),
                            "removed": len(delta.removed),
                        }
                        if tracer
                        else None,
                    ):
                        state.on_snapshot(delta)
                    recorder = self._frontend.recorder
                    if recorder is not None:
                        recorder.notify(
                            state.record_tag,
                            delta.read_ts,
                            False,
                            _delta_paths(delta),
                        )
                    emitted += 1
        return emitted


class Frontend:
    """One Frontend task serving real-time connections for a database."""

    def __init__(self, backend: Backend, matcher: QueryMatcher, tracer=None):
        from repro.obs.tracer import NULL_TRACER

        self.backend = backend
        self.matcher = matcher
        self._connections: set[RealtimeConnection] = set()
        self._conn_ids = itertools.count(1)
        # observability
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.snapshots_sent = 0
        self.resets = 0

    @property
    def recorder(self):
        """The shared execution-history recorder (None when disabled)."""
        return self.backend.layout.spanner.recorder

    def connect(self) -> RealtimeConnection:
        """Open a new long-lived client connection."""
        connection = RealtimeConnection(self, next(self._conn_ids))
        self._connections.add(connection)
        return connection

    @property
    def connection_count(self) -> int:
        """Open connections on this task."""
        return len(self._connections)

    @property
    def active_queries(self) -> int:
        """Registered queries across all connections."""
        return sum(c.query_count for c in self._connections)

    def pump(self) -> int:
        """Deliver any snapshots that have become consistent."""
        emitted = 0
        with self.tracer.span("frontend.pump", component="frontend") as span:
            for connection in list(self._connections):
                emitted += connection._pump()
            span.set_attribute("snapshots", emitted)
        self.snapshots_sent += emitted
        return emitted

    def crash(self) -> int:
        """Simulate losing this Frontend task (fault injection).

        The task's in-memory query state — buffered pending changes and
        watermarks — is gone; the replacement task redoes every query
        from scratch on the next pump, the same fail-safe path an
        out-of-sync range takes. Listeners then receive one snapshot with
        the net difference, so nothing is missed or duplicated. Returns
        the number of queries marked for reset.
        """
        marked = 0
        for connection in self._connections:
            for state in connection._states.values():
                state.pending.clear()
                state.needs_reset = True
                marked += 1
        return marked

    # -- query lifecycle --------------------------------------------------------------

    def _start_query(self, state: _QueryState, is_initial: bool) -> None:
        """Steps 2-4: initial snapshot via the Backend, then Subscribe."""
        previous = dict(state.result)
        result = self.backend.run_query(state.query)
        state.result = {
            doc.path: (doc.data, doc.update_time, doc.create_time)
            for doc in result.documents
        }
        state.max_commit_version = result.read_ts
        state.pending.clear()
        state.needs_reset = False

        subscription = self.matcher.subscribe(
            state.normalized,
            resume_ts=result.read_ts,
            deliver=lambda _sid, change: state.pending.append(
                (change.commit_ts, change)
            ),
            notify_watermark=self._make_watermark_cb(state),
            notify_reset=lambda _sid: setattr(state, "needs_reset", True),
        )
        state.subscription = subscription
        state.range_watermarks = {
            range_id: result.read_ts for range_id in subscription.range_ids
        }
        delta = self._diff_snapshots(state, previous, result.read_ts, is_initial=True)
        with self.tracer.span(
            "listener.notify",
            component="frontend",
            attributes={"read_ts": delta.read_ts, "initial": True}
            if self.tracer
            else None,
        ):
            state.on_snapshot(delta)
        recorder = self.recorder
        if recorder is not None:
            recorder.notify(
                state.record_tag, delta.read_ts, True, _delta_paths(delta)
            )
        self.snapshots_sent += 1

    def _make_watermark_cb(self, state: _QueryState):
        def callback(_sid: int, range_id: int, watermark: int) -> None:
            current = state.range_watermarks.get(range_id, 0)
            if watermark > current:
                state.range_watermarks[range_id] = watermark

        return callback

    def _reset_query(self, state: _QueryState) -> None:
        """The fail-safe: abort accumulated state and redo from scratch.

        "This reset is fast, and is mostly transparent to the end-user"
        — the client receives one snapshot containing the net difference.
        """
        self.resets += 1
        if state.subscription is not None:
            self.matcher.unsubscribe(state.subscription.subscription_id)
        self._start_query(state, is_initial=False)

    # -- applying buffered changes --------------------------------------------------------

    def _apply_pending(self, state: _QueryState, target_ts: int) -> Optional[SnapshotDelta]:
        """Apply buffered changes with commit_ts <= target, build a delta."""
        ready = sorted(
            (item for item in state.pending if item[0] <= target_ts),
            key=lambda item: item[0],
        )
        state.pending = [item for item in state.pending if item[0] > target_ts]
        previous = dict(state.result)
        limit = state.normalized.query.limit
        at_capacity = limit is not None and len(state.result) >= limit

        for commit_ts, change in ready:
            matches_now = document_matches_query(
                state.normalized, change.path, change.new_data
            )
            if matches_now:
                create_ts = self._create_ts(state, change, commit_ts)
                state.result[change.path] = (change.new_data, commit_ts, create_ts)
            elif change.path in state.result:
                del state.result[change.path]
                if limit is not None and at_capacity:
                    # a member left a full limited result set: the next
                    # entrant is outside our view; re-run the query
                    state.needs_reset = True
                    self._reset_query(state)
                    return None

        if limit is not None:
            self._trim_to_limit(state, limit)
        state.max_commit_version = target_ts
        return self._diff_snapshots(state, previous, target_ts, is_initial=False)

    def _create_ts(self, state: _QueryState, change: DocumentChange, commit_ts: int) -> int:
        if change.is_create:
            return commit_ts
        existing = state.result.get(change.path)
        return existing[2] if existing is not None else commit_ts

    def _trim_to_limit(self, state: _QueryState, limit: int) -> None:
        if len(state.result) <= limit:
            return
        key = query_order_key(state.normalized)
        ordered = sorted(
            ((path, data) for path, (data, _, _) in state.result.items()), key=key
        )
        for path, _ in ordered[limit:]:
            del state.result[path]

    def _diff_snapshots(
        self,
        state: _QueryState,
        previous: dict[Path, tuple[dict, int, int]],
        read_ts: int,
        is_initial: bool,
    ) -> SnapshotDelta:
        key = query_order_key(state.normalized)
        ordered = sorted(
            ((path, data) for path, (data, _, _) in state.result.items()), key=key
        )
        documents = tuple(
            Document(path, data, state.result[path][2], state.result[path][1])
            for path, data in ordered
        )
        added = []
        modified = []
        for doc in documents:
            old = previous.get(doc.path)
            if old is None:
                added.append(doc)
            elif old[0] != doc.data:
                modified.append(doc)
        removed = tuple(path for path in previous if path not in state.result)
        return SnapshotDelta(
            query_tag=state.tag,
            read_ts=read_ts,
            added=tuple(added),
            modified=tuple(modified),
            removed=removed,
            documents=documents,
            is_initial=is_initial,
        )
