"""The Query Matcher.

"On receiving the document, the Query Matcher matches it with all the
queries registered for that key range and sends the matched documents to
the Frontend task" (paper section IV-D4, step 5). A subscription carries
the query and a ``max-commit-version``; only updates with later commit
timestamps are forwarded.

A change is relevant when the document matched the query *before or
after* the mutation — leaving a result set is as much an update as
entering it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.path import Path
from repro.core.query import NormalizedQuery, matches_filter
from repro.core.values import get_field
from repro.realtime.protocol import DocumentChange
from repro.realtime.ranges import NameRange, RangeOwnership


def document_matches_query(
    normalized: NormalizedQuery, path: Path, data: Optional[dict]
) -> bool:
    """Would a document with ``data`` appear in this query's results?

    Checks collection membership, every filter, and presence of every
    order-by field (documents missing an ordered field are absent from
    the index the query scans).
    """
    if data is None:
        return False
    parent = path.parent()
    if parent is None or parent != normalized.query.parent:
        return False
    for flt in normalized.query.filters:
        if not matches_filter(data, flt):
            return False
    for order in normalized.core_orders:
        present, _ = get_field(data, order.field_path)
        if not present:
            return False
    return True


@dataclass
class Subscription:
    """One real-time query registered with the Matcher."""

    subscription_id: int
    normalized: NormalizedQuery
    resume_ts: int  # forward only commits strictly after this
    deliver: Callable[[int, DocumentChange], None]  # (subscription_id, change)
    notify_watermark: Callable[[int, int, int], None]  # (sub_id, range_id, ts)
    notify_reset: Callable[[int], None]  # (sub_id)
    range_ids: set[int]


class QueryMatcher:
    """Matcher tasks for one database's ranges."""

    def __init__(self, ownership: RangeOwnership, tracer=None, metrics=None):
        from repro.obs.tracer import NULL_TRACER

        self.ownership = ownership
        self._ids = itertools.count(1)
        # range_id -> {subscription_id -> Subscription}
        self._by_range: dict[int, dict[int, Subscription]] = {}
        self._subs: dict[int, Subscription] = {}
        # observability
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.changes_examined = 0
        self.changes_forwarded = 0

    # -- subscription management ----------------------------------------------------

    def subscribe(
        self,
        normalized: NormalizedQuery,
        resume_ts: int,
        deliver: Callable[[int, DocumentChange], None],
        notify_watermark: Callable[[int, int, int], None],
        notify_reset: Callable[[int], None],
    ) -> Subscription:
        """Register a query over the ranges covering its collection."""
        ranges = self.ownership.ranges_for_collection(normalized.query.parent)
        subscription = Subscription(
            subscription_id=next(self._ids),
            normalized=normalized,
            resume_ts=resume_ts,
            deliver=deliver,
            notify_watermark=notify_watermark,
            notify_reset=notify_reset,
            range_ids={r.range_id for r in ranges},
        )
        self._subs[subscription.subscription_id] = subscription
        for name_range in ranges:
            self._by_range.setdefault(name_range.range_id, {})[
                subscription.subscription_id
            ] = subscription
        return subscription

    def unsubscribe(self, subscription_id: int) -> None:
        """Remove a subscription from every range."""
        subscription = self._subs.pop(subscription_id, None)
        if subscription is None:
            return
        for range_id in subscription.range_ids:
            self._by_range.get(range_id, {}).pop(subscription_id, None)

    def subscription_count(self) -> int:
        """Registered subscriptions."""
        return len(self._subs)

    # -- change / heartbeat / reset fan-in from the Changelog ---------------------------

    def on_change(self, name_range: NameRange, change: DocumentChange) -> None:
        """Changelog fan-in: match one mutation against subscribers."""
        examined = 0
        forwarded = 0
        attrs = (
            {"range_id": name_range.range_id, "path": str(change.path)}
            if self.tracer
            else None
        )
        with self.tracer.span(
            "matcher.match", component="realtime", attributes=attrs
        ) as span:
            for subscription in list(
                self._by_range.get(name_range.range_id, {}).values()
            ):
                examined += 1
                if change.commit_ts <= subscription.resume_ts:
                    continue
                relevant = document_matches_query(
                    subscription.normalized, change.path, change.old_data
                ) or document_matches_query(
                    subscription.normalized, change.path, change.new_data
                )
                if relevant:
                    forwarded += 1
                    subscription.deliver(subscription.subscription_id, change)
            span.set_attribute("examined", examined)
            span.set_attribute("forwarded", forwarded)
        self.changes_examined += examined
        self.changes_forwarded += forwarded
        if self.metrics is not None:
            self.metrics.counter("matcher_changes_examined").inc(examined)
            self.metrics.counter("matcher_changes_forwarded").inc(forwarded)

    def on_heartbeat(self, name_range: NameRange, watermark: int) -> None:
        """Changelog fan-in: forward a range watermark."""
        for subscription in list(self._by_range.get(name_range.range_id, {}).values()):
            subscription.notify_watermark(
                subscription.subscription_id, name_range.range_id, watermark
            )

    def on_out_of_sync(self, name_range: NameRange) -> None:
        """Propagate the reset "all the way up to all Frontend tasks with a
        real-time query that matches the name range"."""
        for subscription in list(self._by_range.get(name_range.range_id, {}).values()):
            subscription.notify_reset(subscription.subscription_id)

    def on_reassign(self, old: NameRange, new: list[NameRange]) -> None:
        """Ownership moved (Slicer re-sharding): reset affected queries."""
        affected = list(self._by_range.pop(old.range_id, {}).values())
        for subscription in affected:
            subscription.notify_reset(subscription.subscription_id)
