"""The In-memory Changelog.

Per document-name range, the Changelog:

- answers Prepare RPCs with a minimum allowed commit timestamp,
- buffers Accepted mutations "in memory sorted in timestamp-order",
- knows it has "a complete sequence of updates until time t once it has
  received Accept responses for all Prepare RPCs that it sent out with a
  minimum timestamp less than t" (paper section IV-D4),
- generates "a heartbeat every few milliseconds for every idle key range",
- and marks a range **out-of-sync** when an Accept times out or reports
  an unknown outcome, triggering the fail-safe reset all the way up to
  the Frontends.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.clock import SimClock
from repro.realtime.protocol import DocumentChange, PrepareHandle, WriteOutcome
from repro.realtime.ranges import NameRange, RangeOwnership

#: Extra time past a prepare's max commit timestamp before it is presumed
#: lost ("The maximum timestamp (plus a small margin) sets how long the
#: Changelog will wait for the corresponding Accept").
ACCEPT_TIMEOUT_MARGIN_US = 1_000_000


@dataclass(slots=True)
class _OutstandingPrepare:
    prepare_id: int
    min_commit_ts: int
    deadline_us: int


@dataclass(slots=True)
class _RangeLog:
    """Changelog state for one owned range."""

    name_range: NameRange
    watermark: int = 0
    outstanding: dict[int, _OutstandingPrepare] = field(default_factory=dict)
    #: accepted but not yet flushed mutations, as (commit_ts, change)
    buffer: list[tuple[int, DocumentChange]] = field(default_factory=list)
    out_of_sync: bool = False


class Changelog:
    """Changelog tasks for one database's ranges."""

    def __init__(
        self,
        ownership: RangeOwnership,
        clock: SimClock,
        tracer=None,
        metrics=None,
    ):
        from repro.obs.tracer import NULL_TRACER

        self.ownership = ownership
        self.clock = clock
        self._prepare_ids = itertools.count(1)
        self._logs: dict[int, _RangeLog] = {}
        # downstream (Query Matcher) callbacks
        self.on_change: Optional[Callable[[NameRange, DocumentChange], None]] = None
        self.on_heartbeat: Optional[Callable[[NameRange, int], None]] = None
        self.on_out_of_sync: Optional[Callable[[NameRange], None]] = None
        # observability
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.prepares = 0
        self.timeouts = 0
        # history recorder (repro.check): wired by FirestoreDatabase to
        # the shared Spanner database's recorder when checking is enabled
        self.recorder = None
        # sim-time profiler and SLO engine (repro.obs), duck-typed like
        # the recorder; the delivery path feeds notification staleness
        self.profiler = None
        self.slo = None

    def _log_for(self, name_range: NameRange) -> _RangeLog:
        log = self._logs.get(name_range.range_id)
        if log is None:
            log = _RangeLog(name_range, watermark=self.clock.now_us)
            self._logs[name_range.range_id] = log
        return log

    # -- the 2PC participant side --------------------------------------------------

    def prepare(self, ranges: list[NameRange], max_commit_ts: int) -> PrepareHandle:
        """Step 5: reserve a commit window across the affected ranges.

        The minimum returned is one past the highest watermark involved,
        guaranteeing no commit can land at or below a timestamp already
        reported complete.
        """
        prepare_id = next(self._prepare_ids)
        self.prepares += 1
        if self.metrics is not None:
            self.metrics.counter("rtc_prepares").inc()
        min_ts = 0
        deadline = max_commit_ts + ACCEPT_TIMEOUT_MARGIN_US
        with self.tracer.span(
            "rtc.changelog.prepare",
            component="realtime",
            attributes={"prepare_id": prepare_id, "ranges": len(ranges)},
        ) as span:
            for name_range in ranges:
                log = self._log_for(name_range)
                min_ts = max(min_ts, log.watermark + 1)
            for name_range in ranges:
                log = self._log_for(name_range)
                log.outstanding[prepare_id] = _OutstandingPrepare(
                    prepare_id, min_ts, deadline
                )
            span.set_attribute("min_commit_ts", min_ts)
            return PrepareHandle(prepare_id, min_ts, max_commit_ts)

    def accept(
        self,
        ranges: list[NameRange],
        handle: PrepareHandle,
        outcome: WriteOutcome,
        commit_ts: int,
        changes: list[DocumentChange],
    ) -> None:
        """Step 7: resolve an outstanding prepare."""
        with self.tracer.span(
            "rtc.changelog.accept",
            component="realtime",
            attributes={
                "prepare_id": handle.prepare_id,
                "outcome": outcome.name.lower(),
                "changes": len(changes),
            },
        ):
            if self.metrics is not None:
                self.metrics.counter(
                    "rtc_accepts", outcome=outcome.name.lower()
                ).inc()
            if self.profiler:
                self.profiler.account(
                    "realtime", f"changelog.accept.{outcome.name.lower()}", 0
                )
            recorder = self.recorder
            for name_range in ranges:
                log = self._log_for(name_range)
                log.outstanding.pop(handle.prepare_id, None)
                covered: list[DocumentChange] = []
                if outcome is WriteOutcome.UNKNOWN:
                    self._mark_out_of_sync(log)
                elif outcome is WriteOutcome.COMMITTED:
                    covered = [
                        change
                        for change in changes
                        if name_range.covers(RangeOwnership.key_for(change.path))
                    ]
                    if not log.out_of_sync:
                        for change in covered:
                            log.buffer.append((commit_ts, change))
                    # while out-of-sync, committed changes are dropped:
                    # every listener on the range re-queries at a timestamp
                    # at or after this commit, so nothing is lost
                # FAILED: nothing buffered, the prepare simply resolves
                if recorder is not None:
                    recorded_outcome = outcome.name.lower()
                    if outcome is WriteOutcome.COMMITTED and log.out_of_sync:
                        recorded_outcome = "dropped"
                    recorder.changelog_accept(
                        log.name_range.range_id,
                        handle.prepare_id,
                        recorded_outcome,
                        commit_ts,
                        [str(change.path) for change in covered],
                    )
                self._advance(log)

    # -- heartbeats and timeouts ------------------------------------------------------

    def pump(self) -> None:
        """Advance watermarks and emit heartbeats for every range.

        Called "every few milliseconds"; drives idle-range heartbeats,
        expired-prepare detection, and flushing of complete prefixes.
        """
        now = self.clock.now_us
        # heartbeat *every* owned range — an idle range with no log yet
        # must still advance, or frontends could never reach a consistent
        # timestamp across all the ranges a query subscribes to
        for name_range in self.ownership.ranges:
            self._log_for(name_range)
        for log in list(self._logs.values()):
            expired = [
                p for p in log.outstanding.values() if p.deadline_us < now
            ]
            for prepare in expired:
                del log.outstanding[prepare.prepare_id]
                self.timeouts += 1
                if self.metrics is not None:
                    self.metrics.counter("rtc_accept_timeouts").inc()
                self._mark_out_of_sync(log)
            self._advance(log, idle_floor=now)

    def _advance(self, log: _RangeLog, idle_floor: Optional[int] = None) -> None:
        """Flush the complete prefix of mutations and heartbeat."""
        if log.out_of_sync:
            return
        if log.outstanding:
            new_watermark = min(p.min_commit_ts for p in log.outstanding.values()) - 1
        else:
            # no in-flight commits: everything buffered is complete, and
            # idle ranges may advance to the current time
            new_watermark = max(
                (ts for ts, _ in log.buffer), default=log.watermark
            )
            if idle_floor is not None:
                new_watermark = max(new_watermark, idle_floor)
        if new_watermark < log.watermark:
            return
        recorder = self.recorder
        advanced = new_watermark != log.watermark
        log.watermark = new_watermark
        ready = sorted(
            (item for item in log.buffer if item[0] <= new_watermark),
            key=lambda item: item[0],
        )
        log.buffer = [item for item in log.buffer if item[0] > new_watermark]
        if recorder is not None:
            for ts, change in ready:
                recorder.changelog_deliver(
                    log.name_range.range_id, ts, str(change.path)
                )
            if advanced:
                recorder.changelog_watermark(
                    log.name_range.range_id, new_watermark
                )
        if ready and (self.profiler or self.slo):
            now = self.clock.now_us
            for ts, _ in ready:
                # staleness: how long the committed mutation waited in the
                # buffer before the watermark released it to listeners
                staleness_us = max(0, now - ts)
                if self.profiler:
                    self.profiler.account(
                        "realtime", "changelog.deliver", staleness_us
                    )
                if self.slo:
                    self.slo.record_latency(
                        "notify.staleness", now, staleness_us
                    )
        if self.on_change is not None:
            for _, change in ready:
                self.on_change(log.name_range, change)
        if self.on_heartbeat is not None:
            self.on_heartbeat(log.name_range, log.watermark)

    def _mark_out_of_sync(self, log: _RangeLog) -> None:
        """The fail-safe: discard buffered mutations and signal upward."""
        log.out_of_sync = True
        log.buffer.clear()
        if self.metrics is not None:
            self.metrics.counter("rtc_out_of_sync").inc()
        recorder = self.recorder
        if recorder is not None:
            recorder.changelog_out_of_sync(log.name_range.range_id)
        if self.on_out_of_sync is not None:
            self.on_out_of_sync(log.name_range)

    def resync(self, name_range: NameRange) -> None:
        """Bring a range back after its listeners have reset.

        Outstanding prepares (if any) keep their windows; the watermark
        restarts from the current time so only post-reset commits flow.
        """
        log = self._log_for(name_range)
        log.out_of_sync = False
        log.buffer.clear()
        log.watermark = max(log.watermark, self.clock.now_us)
        recorder = self.recorder
        if recorder is not None:
            recorder.changelog_resync(log.name_range.range_id)

    # -- introspection --------------------------------------------------------------------

    def watermark_of(self, name_range: NameRange) -> int:
        """The complete-prefix timestamp of one range."""
        return self._log_for(name_range).watermark

    def is_out_of_sync(self, name_range: NameRange) -> bool:
        """Whether the range is in the fail-safe state."""
        return self._log_for(name_range).out_of_sync
