"""The Real-time Cache: change notification for real-time queries.

Comprises the In-memory Changelog and the Query Matcher (paper Fig. 5),
plus the Frontend-side snapshot assembly. The Backend performs a
two-phase commit with the Changelog around every Spanner commit so the
cache observes a complete, timestamp-ordered sequence of mutations per
document-name range.
"""

from repro.realtime.protocol import (
    DocumentChange,
    NullRealtimeCache,
    PrepareHandle,
    RealtimeCacheInterface,
    WriteOutcome,
)
from repro.realtime.ranges import RangeOwnership
from repro.realtime.changelog import Changelog
from repro.realtime.matcher import QueryMatcher
from repro.realtime.frontend import Frontend, RealtimeConnection, SnapshotDelta
from repro.realtime.cache import RealtimeCache

__all__ = [
    "DocumentChange",
    "NullRealtimeCache",
    "PrepareHandle",
    "RealtimeCacheInterface",
    "WriteOutcome",
    "RangeOwnership",
    "Changelog",
    "QueryMatcher",
    "Frontend",
    "RealtimeConnection",
    "SnapshotDelta",
    "RealtimeCache",
]
