"""Admission control: in-flight limits, load shedding, traffic conformance.

Paper section IV-C: "some components do targeted load-shedding to drop
excess work before auto-scaling can take effect", and section VI: "a
low-tech manual tool that limits the number of per-task in-flight RPCs
for a given database has been one of our more effective mechanisms".

The conforming-traffic rule — "increase at most 50% every 5 minutes,
starting from a 500 QPS base" — is tracked per database; Firestore "will
still accept traffic that violates this rule as long as it can maintain
isolation", so non-conformance is reported, not enforced, unless a limit
is configured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.service.overload import AdaptiveLimit, ShedReason
from repro.sim.clock import SimClock

CONFORMING_BASE_QPS = 500.0
CONFORMING_GROWTH = 1.5
CONFORMING_WINDOW_US = 300_000_000  # 5 minutes


@dataclass
class AdmissionConfig:
    #: global queue depth beyond which excess work is shed
    """Knobs for load shedding, in-flight limits, memory pressure."""
    shed_queue_depth: int = 5_000
    #: optional per-database in-flight RPC cap (the manual emergency tool)
    per_database_inflight_limit: Optional[int] = None
    #: databases the limit applies to (empty = all, when limit set)
    limited_databases: set[str] = field(default_factory=set)
    #: total in-flight query memory before pressure-based rejection kicks
    #: in (paper section VIII: "selective slowdown or rejection of traffic
    #: of a given database when under memory pressure, based on the memory
    #: consumed by in-flight queries to that database"). None = disabled.
    memory_pressure_bytes: Optional[int] = None


class AdmissionController:
    """Decides whether each arriving RPC is admitted."""

    __slots__ = (
        "clock",
        "config",
        "metrics",
        "profiler",
        "_inflight",
        "_inflight_memory",
        "_windows",
        "admitted",
        "shed",
        "limited",
        "memory_rejected",
        "adaptive",
        "batch_admit_fraction",
    )

    def __init__(
        self,
        clock: SimClock,
        config: AdmissionConfig | None = None,
        metrics=None,
        profiler=None,
    ):
        self.clock = clock
        self.config = config if config is not None else AdmissionConfig()
        self.metrics = metrics
        #: optional repro.obs.perf.Profiler (duck-typed, may stay None)
        self.profiler = profiler
        self._inflight: dict[str, int] = {}
        self._inflight_memory: dict[str, int] = {}
        # conformance tracking, per database:
        # [window_start, count, allowance] — a mutable record so the
        # per-request count bump is an item store, not a tuple rebuild
        self._windows: dict[str, list] = {}
        self.admitted = 0
        self.shed = 0
        self.limited = 0
        self.memory_rejected = 0
        #: optional :class:`repro.service.overload.AdaptiveLimit`; when
        #: present its AIMD limit replaces the static ``shed_queue_depth``
        self.adaptive: Optional[AdaptiveLimit] = None
        #: fraction of the adaptive limit at which batch traffic already
        #: sheds (user-facing ops degrade last); only used with ``adaptive``
        self.batch_admit_fraction = 0.5

    # -- admission ---------------------------------------------------------------

    def try_admit(
        self,
        database_id: str,
        queue_depth: int,
        memory_bytes: int = 0,
        latency_sensitive: bool = True,
    ) -> tuple[bool, Optional[ShedReason]]:
        """(admitted, shed reason). Also counts toward conformance.

        ``memory_bytes`` is the request's estimated in-flight memory; when
        the component is under memory pressure, rejection targets the
        database holding the most in-flight memory — selective pressure,
        not collective punishment (section VIII). With an ``adaptive``
        limiter attached the depth gate uses its AIMD limit, and batch
        traffic (``latency_sensitive=False``) sheds already at
        ``batch_admit_fraction`` of it.
        """
        # conformance tracking, inlined from _track: this runs once per
        # request and the common case is a single item-store
        window = self._windows.get(database_id)
        if window is not None and self.clock._now_us - window[0] < CONFORMING_WINDOW_US:
            window[1] += 1
        else:
            self._track(database_id)
        config = self.config
        if config.per_database_inflight_limit is not None and (
            not config.limited_databases or database_id in config.limited_databases
        ):
            if self._inflight.get(database_id, 0) >= config.per_database_inflight_limit:
                self.limited += 1
                self._record(database_id, "inflight")
                return False, ShedReason.INFLIGHT
        adaptive = self.adaptive
        if adaptive is None:
            depth_limit = config.shed_queue_depth
        else:
            depth_limit = adaptive.limit
            if not latency_sensitive:
                depth_limit = int(depth_limit * self.batch_admit_fraction)
        if queue_depth >= depth_limit:
            self.shed += 1
            self._record(database_id, "queue_depth")
            return False, ShedReason.QUEUE_DEPTH
        if (
            config.memory_pressure_bytes is not None
            and self.total_inflight_memory() + memory_bytes
            > config.memory_pressure_bytes
            and database_id == self._top_memory_consumer(database_id, memory_bytes)
        ):
            self.memory_rejected += 1
            self._record(database_id, "memory")
            return False, ShedReason.MEMORY
        self._inflight[database_id] = self._inflight.get(database_id, 0) + 1
        if memory_bytes:
            self._inflight_memory[database_id] = (
                self._inflight_memory.get(database_id, 0) + memory_bytes
            )
        self.admitted += 1
        if self.metrics is not None or self.profiler is not None:
            self._record(database_id, "admitted")
        return True, None

    def recheck(self, database_id: str, queue_depth: int) -> Optional[ShedReason]:
        """Re-judge an *already admitted* request about to be re-queued.

        The crash-requeue path: the RPC holds its admission slot, so only
        the queue-depth gate applies — under pressure a crashed request is
        shed rather than silently re-inserted ahead of the gate.
        """
        adaptive = self.adaptive
        depth_limit = (
            self.config.shed_queue_depth if adaptive is None else adaptive.limit
        )
        if queue_depth >= depth_limit:
            self.shed += 1
            self._record(database_id, "queue_depth")
            return ShedReason.QUEUE_DEPTH
        return None

    def record_decision(self, database_id: str, reason: ShedReason) -> None:
        """Ledger a shed decided outside this controller (breaker, CoDel).

        Keeps every shed cause on the one ``admission_decisions`` metric so
        the dashboard splits them on a single label.
        """
        self.shed += 1
        self._record(database_id, reason.value)

    def _record(self, database_id: str, outcome: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "admission_decisions", database_id=database_id, outcome=outcome
            ).inc()
        if self.profiler:
            # decisions are free in sim time; the ledger keeps the count
            self.profiler.account(
                "service", f"admission.{outcome}", 0, database_id
            )

    def release(self, database_id: str, memory_bytes: int = 0) -> None:
        """Mark one admitted request finished."""
        count = self._inflight.get(database_id, 0)
        if count > 0:
            self._inflight[database_id] = count - 1
        if memory_bytes:
            current = self._inflight_memory.get(database_id, 0)
            self._inflight_memory[database_id] = max(0, current - memory_bytes)

    def inflight(self, database_id: str) -> int:
        """Admitted-but-unfinished requests for a database."""
        return self._inflight.get(database_id, 0)

    def inflight_memory(self, database_id: str) -> int:
        """In-flight query memory held by a database."""
        return self._inflight_memory.get(database_id, 0)

    def total_inflight_memory(self) -> int:
        """In-flight query memory across all databases."""
        return sum(self._inflight_memory.values())

    def _top_memory_consumer(self, candidate: str, candidate_extra: int) -> str:
        """Which database would hold the most memory if this request were
        admitted? Under pressure, only that one is rejected."""
        totals = dict(self._inflight_memory)
        totals[candidate] = totals.get(candidate, 0) + candidate_extra
        return max(totals, key=lambda db: (totals[db], db))

    # -- conforming-traffic tracking ------------------------------------------------

    def _track(self, database_id: str) -> None:
        now = self.clock.now_us
        window = self._windows.get(database_id)
        if window is None or now - window[0] >= CONFORMING_WINDOW_US:
            previous_rate = 0.0
            if window is not None:
                previous_rate = window[1] / (CONFORMING_WINDOW_US / 1_000_000)
            allowance = max(
                CONFORMING_BASE_QPS,
                previous_rate * CONFORMING_GROWTH,
            )
            self._windows[database_id] = [now, 1, allowance]
        else:
            window[1] += 1

    def is_conforming(self, database_id: str) -> bool:
        """Does the database's current window respect the ramp rule?"""
        window = self._windows.get(database_id)
        if window is None:
            return True
        start, count, allowance = window
        elapsed_s = max(1e-6, (self.clock.now_us - start) / 1_000_000)
        return count / elapsed_s <= allowance

    def conforming_allowance_qps(self, database_id: str) -> float:
        """The ramp rule's current QPS allowance for a database."""
        window = self._windows.get(database_id)
        if window is None:
            return CONFORMING_BASE_QPS
        return window[2]
