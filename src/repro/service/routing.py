"""Global routing: requests find their database's region.

"Firestore RPCs from the application get routed and distributed across
the Frontend tasks in the region where the database is located" (paper
section IV). The router knows each database's home region and adds the
client->region network latency to every request — a regional client
talking to its own region is fast; cross-continent access pays the WAN
round trip.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import NotFound

#: one-way network latency between region pairs, microseconds
DEFAULT_INTER_REGION_US = {
    ("us-central", "us-central"): 500,
    ("us-central", "us-east"): 15_000,
    ("us-central", "europe-west"): 50_000,
    ("us-central", "asia-east"): 80_000,
    ("us-east", "europe-west"): 40_000,
    ("us-east", "asia-east"): 90_000,
    ("europe-west", "asia-east"): 120_000,
}


@dataclass
class GlobalRouter:
    """Maps databases to regions and prices the network hop."""

    latencies: dict[tuple[str, str], int] = field(
        default_factory=lambda: dict(DEFAULT_INTER_REGION_US)
    )
    _homes: dict[str, str] = field(default_factory=dict)

    def register_database(self, database_id: str, region: str) -> None:
        """Record a database's home region."""
        self._homes[database_id] = region

    def home_region(self, database_id: str) -> str:
        """The region a database lives in."""
        region = self._homes.get(database_id)
        if region is None:
            raise NotFound(f"unrouted database {database_id!r}")
        return region

    def network_latency_us(self, client_region: str, database_id: str) -> int:
        """One-way client-to-home-region network latency."""
        home = self.home_region(database_id)
        if client_region == home:
            return self.latencies.get((home, home), 500)
        key = (client_region, home)
        if key in self.latencies:
            return self.latencies[key]
        reverse = (home, client_region)
        if reverse in self.latencies:
            return self.latencies[reverse]
        return 100_000  # unknown pair: assume intercontinental
