"""Global routing: requests find their database's region (and replica).

"Firestore RPCs from the application get routed and distributed across
the Frontend tasks in the region where the database is located" (paper
section IV). The router knows each database's home region and adds the
client->region network latency to every request — a regional client
talking to its own region is fast; cross-continent access pays the WAN
round trip.

The latency table is the shared region matrix of
:mod:`repro.sim.latency` — the same numbers that price replica-quorum
commits — so client hops and replication always agree on the network
topology. A database with an attached :class:`ReplicaGroup` can also
serve *bounded-staleness* reads from the nearest sufficiently
caught-up follower (:meth:`GlobalRouter.route_read`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import NotFound
from repro.sim.latency import (
    INTER_REGION_ONE_WAY_US,
    pair_one_way_us,
    region_matrix,
)

#: one-way network latency between region pairs, microseconds — an alias
#: of the shared matrix (kept for compatibility with older callers)
DEFAULT_INTER_REGION_US = INTER_REGION_ONE_WAY_US


@dataclass
class GlobalRouter:
    """Maps databases to regions/replicas and prices the network hop."""

    latencies: dict[tuple[str, str], int] = field(default_factory=region_matrix)
    metrics: Optional[object] = None
    #: optional :class:`repro.service.overload.BreakerBoard` — circuit
    #: breakers keyed (database, region); requests consult it at the door
    breakers: Optional[object] = None
    _homes: dict[str, str] = field(default_factory=dict)
    _replicas: dict[str, object] = field(default_factory=dict)

    def register_database(self, database_id: str, region: str) -> None:
        """Record a database's home region."""
        self._homes[database_id] = region

    def attach_replicas(self, database_id: str, group) -> None:
        """Attach a database's ReplicaGroup for staleness-aware routing.

        Also registers the group's current leader region as the
        database's home, so strong reads and commits route to the leader.
        """
        self._replicas[database_id] = group
        self._homes.setdefault(database_id, group.leader_region)

    def has_replicas(self, database_id: str) -> bool:
        """Whether a ReplicaGroup is attached (hedged reads need one)."""
        return database_id in self._replicas

    def home_region(self, database_id: str) -> str:
        """The region a database lives in.

        Raises :class:`repro.errors.NotFound` for a database that was
        never registered (and counts it: ``routing.unknown_database``) —
        routing a request for an unknown database is a caller bug, not a
        case to paper over with a default region.
        """
        region = self._homes.get(database_id)
        if region is None:
            if self.metrics is not None:
                self.metrics.counter("routing.unknown_database").inc()
            raise NotFound(f"unrouted database {database_id!r}")
        return region

    def breaker_allows(self, database_id: str, now_us: int) -> bool:
        """Circuit-breaker verdict for the database's serving region.

        True with no board attached (breakers are opt-in) or while the
        (database, region) breaker is closed / probing half-open.
        """
        board = self.breakers
        if board is None:
            return True
        region = self._homes.get(database_id, "local")
        return board.allow(database_id, region, now_us)

    def record_outcome(self, database_id: str, ok: bool, now_us: int) -> None:
        """Feed a downstream outcome to the (database, region) breaker."""
        board = self.breakers
        if board is not None:
            region = self._homes.get(database_id, "local")
            board.record(database_id, region, ok, now_us)

    def pair_latency_us(self, a: str, b: str) -> int:
        """One-way latency between two regions, from the shared matrix."""
        return pair_one_way_us(a, b, self.latencies)

    def network_latency_us(self, client_region: str, database_id: str) -> int:
        """One-way client-to-home-region network latency."""
        return self.pair_latency_us(client_region, self.home_region(database_id))

    def route_read(
        self,
        database_id: str,
        client_region: str,
        staleness_bound_us: int,
    ) -> tuple[str, Optional[int]]:
        """The replica region serving a bounded-staleness read.

        With a replica group attached, delegates to its staleness
        routing: the nearest reachable replica whose safe time covers
        ``now - bound`` (leader fallback), returning ``(region,
        read_ts)``. Without one, the home region serves and the read
        timestamp is the caller's to choose (returned as None).
        """
        home = self.home_region(database_id)
        group = self._replicas.get(database_id)
        if group is None:
            return home, None
        region, read_ts = group.route_read(client_region, staleness_bound_us)
        if self.metrics is not None:
            self.metrics.counter(
                "routing.bounded_reads",
                database_id=database_id,
                region=region,
            ).inc()
        return region, read_ts
