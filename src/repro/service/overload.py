"""Graceful degradation under overload (paper section IV-C).

"Some components do targeted load-shedding to drop excess work before
auto-scaling can take effect." This module is the targeted part — the
mechanisms that keep a spiked fleet serving *some* traffic well instead
of all traffic badly, and that let it recover once the spike passes
(the metastable-failure trap the ``metastable`` chaos scenario probes):

:class:`AdaptiveLimit`
    a gradient/AIMD concurrency limit driven by *observed* queue-wait
    latency. It replaces the fixed ``shed_queue_depth`` threshold: when
    queueing delay stays under the target the limit creeps up additively;
    when delay overshoots, the limit cuts multiplicatively. Queue depth
    then tracks what the fleet can actually serve within its latency
    budget rather than a hand-tuned constant.
:class:`CodelShedder`
    CoDel-style queue-deadline shedding at dispatch time. Sojourn time
    persistently above the target for a full interval enters a dropping
    state whose drop rate accelerates by the inverse-sqrt control law —
    standing queues are drained, short bursts ride through untouched.
    Two instances per pool give the two priority tiers: background /
    backfill traffic (``latency_sensitive=False``) sheds at half the
    target, so user-facing ops degrade last.
:class:`CircuitBreaker` / :class:`BreakerBoard`
    per-(database, region) breakers over a rolling outcome window.
    A database whose requests keep failing downstream is fast-failed at
    the door for a cooldown instead of queueing more doomed work.
:class:`HedgeThrottle` / :class:`ReadLatencyTracker`
    hedged reads: when a read exceeds its observed p99 budget, a backup
    request fires to an eligible follower replica (PR 6's safe-time
    routing picks it) and the first response wins. The throttle caps
    hedges to a small fraction of reads so hedging can never become its
    own overload.

Everything here is pure arithmetic over sim-clock timestamps — no
randomness, no wall clock — so overload behaviour replays byte-identical.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class ShedReason(enum.Enum):
    """Why a request was shed — the structured label metrics split on."""

    #: queue depth beyond the (static or adaptive) concurrency limit
    QUEUE_DEPTH = "queue_depth"
    #: memory-pressure rejection of the top in-flight memory consumer
    MEMORY = "memory"
    #: the per-database in-flight RPC cap (the manual emergency tool)
    INFLIGHT = "inflight"
    #: queue-deadline shedding: the RPC's sojourn blew the CoDel target
    #: (or its own deadline) while it waited
    DEADLINE = "deadline"
    #: the (database, region) circuit breaker is open
    BREAKER = "breaker"

    @property
    def message(self) -> str:
        """Human-readable reject reason (what ``on_reject`` receives)."""
        return _REASON_MESSAGES[self]


_REASON_MESSAGES = {
    ShedReason.QUEUE_DEPTH: "load shed: queue depth over limit",
    ShedReason.MEMORY: "load shed: memory pressure",
    ShedReason.INFLIGHT: "load shed: per-database in-flight limit",
    ShedReason.DEADLINE: "load shed: queue deadline exceeded",
    ShedReason.BREAKER: "load shed: circuit breaker open",
}


@dataclass
class OverloadConfig:
    """Knobs for the graceful-degradation layer.

    ``enabled=False`` (the default) keeps every hook inert and the
    serving path byte-identical to a cluster without this module —
    overload protection is opt-in per cluster, exactly like fault plans.
    """

    enabled: bool = False
    # -- adaptive concurrency (AIMD on observed queue-wait latency) --------
    #: starting queue-depth limit (replaces ``shed_queue_depth``)
    initial_limit: int = 64
    min_limit: int = 4
    max_limit: int = 10_000
    #: queue-wait the limiter steers toward; a window whose mean wait is
    #: below it grows the limit, above it cuts the limit
    target_queue_delay_us: int = 50_000
    additive_increase: int = 4
    multiplicative_decrease: float = 0.7
    #: how often the limit adjusts (one AIMD step per window)
    adjust_interval_us: int = 250_000
    #: fraction of the current limit at which batch traffic already sheds
    #: (the admission-side priority tier: user-facing ops degrade last)
    batch_admit_fraction: float = 0.5
    # -- CoDel queue-deadline shedding ------------------------------------
    codel_target_us: int = 100_000
    codel_interval_us: int = 500_000
    # -- circuit breakers -------------------------------------------------
    breakers_enabled: bool = True
    breaker_failure_threshold: float = 0.5
    breaker_min_volume: int = 10
    breaker_window_us: int = 2_000_000
    breaker_cooldown_us: int = 1_000_000
    # -- hedged reads -----------------------------------------------------
    hedge_enabled: bool = True
    #: hedges earned per completed read (5% = 1 hedge per 20 reads)
    hedge_ratio: float = 0.05
    hedge_burst: float = 4.0
    #: floor for the hedge trigger; the live p99 estimate can only raise it
    hedge_min_delay_us: int = 20_000
    #: trigger before any p99 estimate exists
    hedge_default_delay_us: int = 100_000
    #: staleness bound handed to safe-time routing when picking the
    #: follower that serves the backup request
    hedge_staleness_bound_us: int = 10_000_000
    # -- server-driven backoff hints --------------------------------------
    retry_after_min_us: int = 20_000
    retry_after_max_us: int = 2_000_000


class AdaptiveLimit:
    """Gradient/AIMD concurrency limit on observed queue-wait latency.

    Dispatch feeds every RPC's queue wait in via :meth:`observe`; once
    per ``adjust_interval_us`` the window's *mean* wait drives one AIMD
    step. The mean, not the CoDel-style min: behind a fair-share
    scheduler a single short-queue tenant keeps landing near-zero waits
    every round (its backlog drains within its service share), so the
    windowed min reads healthy while the other tenants sit on a
    standing queue. The current integer limit is what admission control
    compares queue depth against.
    """

    __slots__ = (
        "config",
        "metrics",
        "limit",
        "_window_start_us",
        "_window_wait_us",
        "_window_samples",
        "_window_congested",
        "last_observed_us",
        "increases",
        "decreases",
    )

    def __init__(self, config: OverloadConfig, metrics=None):
        self.config = config
        self.metrics = metrics
        self.limit = int(config.initial_limit)
        self._window_start_us = 0
        self._window_wait_us = 0
        self._window_samples = 0
        self._window_congested = False
        #: the last full window's mean queue wait (drives backoff hints)
        self.last_observed_us = 0
        self.increases = 0
        self.decreases = 0

    def observe(self, queue_wait_us: int, now_us: int) -> None:
        """One dispatched RPC's queue wait; steps the limit per window."""
        self._window_wait_us += queue_wait_us
        self._window_samples += 1
        if now_us - self._window_start_us >= self.config.adjust_interval_us:
            self._adjust(now_us)

    def note_congested(self) -> None:
        """An out-of-band congestion signal (a CoDel shed) this window.

        CoDel purges drain the standing queue, so the dispatches right
        after one wait ~0 and drag the window's mean down mid-overload.
        A shed *is* evidence of a standing queue: it forces the
        window's verdict to a decrease, keeping the two controllers
        from fighting each other.
        """
        self._window_congested = True

    def _adjust(self, now_us: int) -> None:
        config = self.config
        samples = self._window_samples
        observed = self._window_wait_us // samples if samples else 0
        self.last_observed_us = observed
        if (
            observed <= config.target_queue_delay_us
            and not self._window_congested
        ):
            new = min(config.max_limit, self.limit + config.additive_increase)
            if new != self.limit:
                self.increases += 1
        else:
            new = max(
                config.min_limit,
                int(self.limit * config.multiplicative_decrease),
            )
            if new != self.limit:
                self.decreases += 1
        self.limit = new
        self._window_start_us = now_us
        self._window_wait_us = 0
        self._window_samples = 0
        self._window_congested = False
        if self.metrics is not None:
            self.metrics.gauge("overload_limit").set(new)

    def retry_after_us(self) -> int:
        """The server-driven backoff hint for a shed request.

        Twice the last observed queue delay, clamped — long enough that a
        compliant client retries after the standing queue has had a
        chance to drain, short enough to stay responsive when the
        overload clears.
        """
        config = self.config
        hint = 2 * self.last_observed_us
        if hint < config.retry_after_min_us:
            return config.retry_after_min_us
        if hint > config.retry_after_max_us:
            return config.retry_after_max_us
        return hint


class CodelShedder:
    """The CoDel state machine over queue sojourn times.

    ``should_shed`` is asked at dispatch with each RPC's sojourn time.
    Sojourn below target resets the state; sojourn above target for a
    full interval enters the dropping state, where successive drops come
    ``interval / sqrt(drop_count)`` apart — the standing-queue control
    law from the CoDel paper, integer-ized for determinism.
    """

    __slots__ = (
        "target_us",
        "interval_us",
        "_first_above_us",
        "_dropping",
        "_drop_next_us",
        "_drop_count",
        "shed",
    )

    def __init__(self, target_us: int, interval_us: int):
        self.target_us = target_us
        self.interval_us = interval_us
        self._first_above_us = -1
        self._dropping = False
        self._drop_next_us = 0
        self._drop_count = 0
        self.shed = 0

    def should_shed(self, sojourn_us: int, now_us: int) -> bool:
        """Judge one RPC at dispatch; True = shed it, keep draining."""
        if sojourn_us < self.target_us:
            self._first_above_us = -1
            self._dropping = False
            self._drop_count = 0
            return False
        if self._dropping:
            if now_us >= self._drop_next_us:
                self._drop_count += 1
                self._drop_next_us = now_us + int(
                    self.interval_us / (self._drop_count**0.5)
                )
                self.shed += 1
                return True
            return False
        if self._first_above_us < 0:
            self._first_above_us = now_us
            return False
        if now_us - self._first_above_us >= self.interval_us:
            self._dropping = True
            self._drop_count = 1
            self._drop_next_us = now_us + self.interval_us
            self.shed += 1
            return True
        return False


class QueueDiscipline:
    """One pool's CoDel tiers + the limiter feed, asked at dispatch.

    Two :class:`CodelShedder` instances implement the priority tiers:
    background / backfill traffic (``latency_sensitive=False``) runs a
    half-target, half-interval shedder so it drains first under
    pressure, keeping user-facing sojourn inside its own budget.
    """

    __slots__ = ("limiter", "interactive", "batch")

    def __init__(
        self, config: OverloadConfig, limiter: Optional[AdaptiveLimit] = None
    ):
        self.limiter = limiter
        self.interactive = CodelShedder(
            config.codel_target_us, config.codel_interval_us
        )
        self.batch = CodelShedder(
            max(1, config.codel_target_us // 2),
            max(1, config.codel_interval_us // 2),
        )

    def should_shed(
        self, sojourn_us: int, now_us: int, latency_sensitive: bool
    ) -> bool:
        """CoDel verdict for one RPC about to be dispatched."""
        shedder = self.interactive if latency_sensitive else self.batch
        shed = shedder.should_shed(sojourn_us, now_us)
        if shed and self.limiter is not None:
            # a shed is a standing-queue signal the post-purge min wait
            # would hide from the limiter
            self.limiter.note_congested()
        return shed

    def observe(self, sojourn_us: int, now_us: int) -> None:
        """Feed one dispatched RPC's queue wait to the adaptive limit."""
        if self.limiter is not None:
            self.limiter.observe(sojourn_us, now_us)

    @property
    def total_shed(self) -> int:
        """RPCs shed by either tier's CoDel state machine."""
        return self.interactive.shed + self.batch.shed


# breaker states (module ints: the per-request path compares identities)
_CLOSED = 0
_OPEN = 1
_HALF_OPEN = 2

_STATE_NAMES = {_CLOSED: "closed", _OPEN: "open", _HALF_OPEN: "half_open"}


class CircuitBreaker:
    """CLOSED -> OPEN -> HALF_OPEN breaker over a rolling outcome window.

    Counts successes and failures in coarse rolling windows; once volume
    clears ``min_volume`` and the failure rate clears the threshold, the
    breaker opens for a cooldown. The first request after cooldown is
    the half-open probe: its outcome closes the breaker or re-opens it.
    """

    __slots__ = (
        "failure_threshold",
        "min_volume",
        "window_us",
        "cooldown_us",
        "_state",
        "_open_until_us",
        "_window_start_us",
        "_good",
        "_bad",
        "_prev_good",
        "_prev_bad",
        "opens",
    )

    def __init__(
        self,
        failure_threshold: float,
        min_volume: int,
        window_us: int,
        cooldown_us: int,
    ):
        self.failure_threshold = failure_threshold
        self.min_volume = min_volume
        self.window_us = window_us
        self.cooldown_us = cooldown_us
        self._state = _CLOSED
        self._open_until_us = 0
        self._window_start_us = 0
        self._good = 0
        self._bad = 0
        # previous window, so a verdict always sees >= one full window
        self._prev_good = 0
        self._prev_bad = 0
        self.opens = 0

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (for tests + metrics)."""
        return _STATE_NAMES[self._state]

    def allow(self, now_us: int) -> bool:
        """May a request for this (database, region) proceed right now?"""
        if self._state == _OPEN:
            if now_us >= self._open_until_us:
                self._state = _HALF_OPEN
                return True  # the probe
            return False
        return True

    def record(self, ok: bool, now_us: int) -> None:
        """One downstream outcome for this (database, region)."""
        if self._state == _HALF_OPEN:
            if ok:
                self._state = _CLOSED
                self._good = self._bad = 0
                self._prev_good = self._prev_bad = 0
                self._window_start_us = now_us
            else:
                self._trip(now_us)
            return
        if now_us - self._window_start_us >= self.window_us:
            self._prev_good = self._good
            self._prev_bad = self._bad
            self._good = 0
            self._bad = 0
            self._window_start_us = now_us
        if ok:
            self._good += 1
        else:
            self._bad += 1
        good = self._good + self._prev_good
        bad = self._bad + self._prev_bad
        total = good + bad
        if (
            self._state == _CLOSED
            and total >= self.min_volume
            and bad / total >= self.failure_threshold
        ):
            self._trip(now_us)

    def _trip(self, now_us: int) -> None:
        self._state = _OPEN
        self._open_until_us = now_us + self.cooldown_us
        self._good = self._bad = 0
        self._prev_good = self._prev_bad = 0
        self.opens += 1


class BreakerBoard:
    """Per-(database, region) circuit breakers, lazily created."""

    __slots__ = ("config", "metrics", "_breakers")

    def __init__(self, config: OverloadConfig, metrics=None):
        self.config = config
        self.metrics = metrics
        self._breakers: dict[tuple[str, str], CircuitBreaker] = {}

    def breaker(self, database_id: str, region: str) -> CircuitBreaker:
        """The breaker for one (database, region), created on first use."""
        key = (database_id, region)
        breaker = self._breakers.get(key)
        if breaker is None:
            config = self.config
            breaker = CircuitBreaker(
                config.breaker_failure_threshold,
                config.breaker_min_volume,
                config.breaker_window_us,
                config.breaker_cooldown_us,
            )
            self._breakers[key] = breaker
        return breaker

    def allow(self, database_id: str, region: str, now_us: int) -> bool:
        """Breaker verdict for a request headed to (database, region)."""
        return self.breaker(database_id, region).allow(now_us)

    def record(
        self, database_id: str, region: str, ok: bool, now_us: int
    ) -> None:
        """Feed one downstream outcome; may trip or close the breaker."""
        breaker = self.breaker(database_id, region)
        opens_before = breaker.opens
        breaker.record(ok, now_us)
        if breaker.opens != opens_before and self.metrics is not None:
            self.metrics.counter(
                "overload_breaker_opens",
                database_id=database_id,
                region=region,
            ).inc()

    def total_opens(self) -> int:
        """Breaker-open transitions across every (database, region)."""
        return sum(b.opens for b in self._breakers.values())


class ReadLatencyTracker:
    """Streaming p99 estimate of read latency — the hedge trigger.

    A fixed ring of recent samples with a lazily recomputed percentile:
    exact enough for a trigger, allocation-free per sample, and
    deterministic (no decay clocks, no reservoir randomness).
    """

    __slots__ = ("_ring", "_size", "_next", "_count", "_cached_p99", "_stale")

    RING = 256
    REFRESH = 32

    def __init__(self):
        self._ring: list[int] = [0] * self.RING
        self._size = self.RING
        self._next = 0
        self._count = 0
        self._cached_p99 = -1
        self._stale = 0

    def observe(self, latency_us: int) -> None:
        """One completed read's end-to-end latency."""
        self._ring[self._next] = latency_us
        self._next = (self._next + 1) % self._size
        if self._count < self._size:
            self._count += 1
        self._stale += 1

    def p99_us(self) -> int:
        """The current p99 estimate (-1 until any sample arrives)."""
        if self._count == 0:
            return -1
        if self._cached_p99 < 0 or self._stale >= self.REFRESH:
            window = sorted(self._ring[: self._count])
            index = min(self._count - 1, (self._count * 99) // 100)
            self._cached_p99 = window[index]
            self._stale = 0
        return self._cached_p99


class HedgeThrottle:
    """Token bucket capping hedged reads to a fraction of real reads."""

    __slots__ = ("ratio", "burst", "tokens", "denied")

    def __init__(self, ratio: float, burst: float):
        self.ratio = ratio
        self.burst = burst
        self.tokens = burst
        self.denied = 0

    def on_read(self) -> None:
        """One primary read completed: earn a fractional hedge token."""
        tokens = self.tokens + self.ratio
        self.tokens = tokens if tokens < self.burst else self.burst

    def try_spend(self) -> bool:
        """Spend one token to fire a hedge; False = over budget."""
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        self.denied += 1
        return False


class OverloadState:
    """Everything one serving cluster tracks for graceful degradation.

    Owns the adaptive limiter (shared with admission control), the
    hedged-read machinery, and the hedge accounting that lands in the
    profiler ledger so dashboards can split overload actions per tenant.
    """

    __slots__ = (
        "config",
        "metrics",
        "profiler",
        "limiter",
        "read_latency",
        "hedges",
        "hedges_fired",
        "hedge_wins",
        "hedge_waste",
    )

    def __init__(self, config: OverloadConfig, metrics=None, profiler=None):
        self.config = config
        self.metrics = metrics
        self.profiler = profiler
        self.limiter = AdaptiveLimit(config, metrics=metrics)
        self.read_latency = ReadLatencyTracker()
        self.hedges = HedgeThrottle(config.hedge_ratio, config.hedge_burst)
        self.hedges_fired = 0
        self.hedge_wins = 0
        self.hedge_waste = 0

    def hedge_after_us(self) -> int:
        """Fire the backup read this long after the primary."""
        config = self.config
        p99 = self.read_latency.p99_us()
        if p99 < 0:
            return config.hedge_default_delay_us
        if p99 < config.hedge_min_delay_us:
            return config.hedge_min_delay_us
        return p99

    def account_hedge(self, outcome: str, database_id: str) -> None:
        """Ledger one hedge event (``fired`` / ``win`` / ``waste``).

        Hedge decisions are free in sim time — the backup RPC's service
        cost is accounted by the pool like any other work — so this
        entry carries the count, exactly like admission decisions.
        """
        if outcome == "fired":
            self.hedges_fired += 1
        elif outcome == "win":
            self.hedge_wins += 1
        else:
            self.hedge_waste += 1
        if self.metrics is not None:
            self.metrics.counter(
                "overload_hedges", outcome=outcome, database_id=database_id
            ).inc()
        if self.profiler:
            self.profiler.account(
                "service", f"hedge.{outcome}", 0, database_id
            )

    def record_hedge_wait(
        self, tracer, trace_ctx, armed_us: int, fired_us: int
    ) -> None:
        """Annotate the time a request spent waiting on its primary
        before the backup read fired — the ``hedge_wait`` component of
        critical-path attribution (``repro.obs.critpath``). Called by the
        cluster at hedge-fire time; pure observation, no sim effects.
        """
        tracer.record_wait(
            trace_ctx, "hedge_wait", start_us=armed_us, end_us=fired_us
        )

    def retry_after_us(self) -> int:
        """The backoff hint attached to shed responses."""
        return self.limiter.retry_after_us()
