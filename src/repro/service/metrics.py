"""Latency percentile recorders.

Percentile arithmetic delegates to :mod:`repro.obs.stats` so the
regression gate compares numbers computed identically everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.stats import percentile as _percentile


class LatencyRecorder:
    """Accumulates latency samples and reports percentiles."""

    __slots__ = ("name", "_samples", "_sorted")

    def __init__(self, name: str = ""):
        self.name = name
        self._samples: list[int] = []
        self._sorted = True

    def record(self, latency_us: int) -> None:
        """Add one latency sample (microseconds)."""
        if latency_us < 0:
            raise ValueError("latency cannot be negative")
        self._samples.append(latency_us)
        self._sorted = False

    def __len__(self) -> int:
        return len(self._samples)

    def percentile(self, p: float) -> int:
        """The p-th percentile (0 < p <= 100), nearest-rank."""
        if not self._samples:
            raise ValueError(f"no samples recorded in {self.name!r}")
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return _percentile(self._samples, p, presorted=True)

    @property
    def p50(self) -> int:
        """The median sample."""
        return self.percentile(50)

    @property
    def p99(self) -> int:
        """The 99th-percentile sample."""
        return self.percentile(99)

    def mean(self) -> float:
        """The arithmetic mean of the samples."""
        if not self._samples:
            raise ValueError("no samples")
        return sum(self._samples) / len(self._samples)

    def reset(self) -> None:
        """Discard every sample."""
        self._samples.clear()
        self._sorted = True


@dataclass
class WindowedPercentiles:
    """Per-time-window percentile series (for ramp-style experiments)."""

    window_us: int
    _windows: dict[int, LatencyRecorder] = field(default_factory=dict)

    def record(self, time_us: int, latency_us: int) -> None:
        """Add a sample into its time window."""
        index = time_us // self.window_us
        recorder = self._windows.get(index)
        if recorder is None:
            recorder = LatencyRecorder(f"window-{index}")
            self._windows[index] = recorder
        recorder.record(latency_us)

    def series(self, p: float) -> list[tuple[int, int]]:
        """(window_start_us, percentile) pairs in time order."""
        return [
            (index * self.window_us, recorder.percentile(p))
            for index, recorder in sorted(self._windows.items())
            if len(recorder)
        ]

    def window(self, time_us: int) -> LatencyRecorder | None:
        """The recorder of the window containing a time, or None."""
        return self._windows.get(time_us // self.window_us)
