"""Fair-CPU-share scheduling keyed by database ID.

"We use a fair-CPU-share scheduler in our Backend tasks, keyed by
database ID" (paper section IV-C) — the mechanism evaluated in Figure 11.
Implemented as stride scheduling over per-database virtual time: the next
RPC comes from the runnable database with the smallest virtual CPU time,
so a database flooding the queue cannot starve others. Latency-sensitive
RPCs are served before tagged batch traffic within each database.

With ``fair=False`` the scheduler degrades to global FIFO — the ablation
arm of the Figure 11 experiment.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from repro.service.rpc import Rpc


@dataclass
class _DatabaseQueue:
    interactive: deque = field(default_factory=deque)
    batch: deque = field(default_factory=deque)
    virtual_time_us: float = 0.0

    def __len__(self) -> int:
        return len(self.interactive) + len(self.batch)

    def pop(self) -> Rpc:
        if self.interactive:
            return self.interactive.popleft()
        return self.batch.popleft()


class FairShareScheduler:
    """Per-database fair queueing of backend CPU."""

    def __init__(self, fair: bool = True, metrics=None, profiler=None, slo=None):
        self.fair = fair
        self.metrics = metrics
        #: optional repro.obs.perf.Profiler (duck-typed, may stay None)
        self.profiler = profiler
        #: optional repro.obs.slo.SloEngine fed per-tenant CPU shares;
        #: needs a clock to timestamp them
        self.slo = slo
        self.clock = None
        self._queues: dict[str, _DatabaseQueue] = {}
        self._fifo: deque[Rpc] = deque()
        #: floor for virtual time of newly-active databases, so an idle
        #: database cannot bank unbounded credit
        self._global_virtual_us = 0.0
        self.enqueued = 0
        self.dispatched = 0

    def enqueue(self, rpc: Rpc) -> None:
        """Queue one RPC under its database's share."""
        self.enqueued += 1
        if self.metrics is not None:
            self.metrics.counter(
                "scheduler_enqueued", database_id=rpc.database_id
            ).inc()
        if not self.fair:
            self._fifo.append(rpc)
            return
        queue = self._queues.get(rpc.database_id)
        if queue is None:
            queue = _DatabaseQueue()
            self._queues[rpc.database_id] = queue
        if len(queue) == 0:
            # (re)activating: start from the current global virtual time
            queue.virtual_time_us = max(
                queue.virtual_time_us, self._global_virtual_us
            )
        if rpc.latency_sensitive:
            queue.interactive.append(rpc)
        else:
            queue.batch.append(rpc)

    def pick(self) -> Optional[Rpc]:
        """Dispatch the next RPC, or None when idle."""
        if not self.fair:
            if not self._fifo:
                return None
            self.dispatched += 1
            rpc = self._fifo.popleft()
            self._record_dispatch(rpc)
            return rpc
        best_id: Optional[str] = None
        best_queue: Optional[_DatabaseQueue] = None
        for database_id, queue in self._queues.items():
            if len(queue) == 0:
                continue
            if best_queue is None or queue.virtual_time_us < best_queue.virtual_time_us:
                best_id = database_id
                best_queue = queue
        if best_queue is None:
            return None
        rpc = best_queue.pop()
        best_queue.virtual_time_us += rpc.cpu_cost_us
        self._global_virtual_us = max(
            self._global_virtual_us,
            min(
                (q.virtual_time_us for q in self._queues.values() if len(q)),
                default=best_queue.virtual_time_us,
            ),
        )
        self.dispatched += 1
        self._record_dispatch(rpc)
        return rpc

    def _record_dispatch(self, rpc: Rpc) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "scheduler_dispatched", database_id=rpc.database_id
            ).inc()
            # per-tenant CPU share: the profiler's ledger and Figure 11's
            # isolation verdict both read this counter
            self.metrics.counter(
                "scheduler_cpu_us", database_id=rpc.database_id
            ).inc(rpc.cpu_cost_us)
        if self.profiler:
            # zero sim-time: dispatch itself is free, the pool accounts the
            # service time — this entry carries the per-tenant call count
            self.profiler.account(
                "service", "scheduler.dispatch", 0, rpc.database_id
            )
        if self.slo and self.clock is not None:
            self.slo.record_share(
                "tenant.cpu",
                self.clock.now_us,
                rpc.database_id,
                rpc.cpu_cost_us,
            )

    def queued(self, database_id: Optional[str] = None) -> int:
        """Queued RPCs, optionally for one database."""
        if not self.fair:
            if database_id is None:
                return len(self._fifo)
            return sum(1 for r in self._fifo if r.database_id == database_id)
        if database_id is None:
            return sum(len(q) for q in self._queues.values())
        queue = self._queues.get(database_id)
        return len(queue) if queue is not None else 0
