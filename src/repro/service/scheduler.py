"""Fair-CPU-share scheduling keyed by database ID.

"We use a fair-CPU-share scheduler in our Backend tasks, keyed by
database ID" (paper section IV-C) — the mechanism evaluated in Figure 11.
Implemented as stride scheduling over per-database virtual time: the next
RPC comes from the runnable database with the smallest virtual CPU time,
so a database flooding the queue cannot starve others. Latency-sensitive
RPCs are served before tagged batch traffic within each database.

With ``fair=False`` the scheduler degrades to global FIFO — the ablation
arm of the Figure 11 experiment.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.service.rpc import Rpc

_INF = float("inf")


class _DatabaseQueue:
    __slots__ = ("interactive", "batch", "virtual_time_us")

    def __init__(self) -> None:
        self.interactive: deque = deque()
        self.batch: deque = deque()
        self.virtual_time_us = 0.0

    def __len__(self) -> int:
        return len(self.interactive) + len(self.batch)

    def pop(self) -> Rpc:
        if self.interactive:
            return self.interactive.popleft()
        return self.batch.popleft()


class FairShareScheduler:
    """Per-database fair queueing of backend CPU."""

    __slots__ = (
        "fair",
        "metrics",
        "profiler",
        "slo",
        "tracer",
        "clock",
        "_queues",
        "_queue_view",
        "_fifo",
        "_global_virtual_us",
        "enqueued",
        "dispatched",
        "pending",
    )

    def __init__(self, fair: bool = True, metrics=None, profiler=None, slo=None):
        self.fair = fair
        self.metrics = metrics
        #: optional repro.obs.perf.Profiler (duck-typed, may stay None)
        self.profiler = profiler
        #: optional repro.obs.slo.SloEngine fed per-tenant CPU shares;
        #: needs a clock to timestamp them
        self.slo = slo
        #: optional repro.obs.tracer.Tracer — queue waits are recorded at
        #: dispatch as structured wait causes for critical-path attribution
        self.tracer = None
        self.clock = None
        self._queues: dict[str, _DatabaseQueue] = {}
        # a dict view is live, so build it once: pick() iterates it per
        # dispatch and a fresh .values() call per pick adds up
        self._queue_view = self._queues.values()
        self._fifo: deque[Rpc] = deque()
        #: floor for virtual time of newly-active databases, so an idle
        #: database cannot bank unbounded credit
        self._global_virtual_us = 0.0
        self.enqueued = 0
        self.dispatched = 0
        #: RPCs currently queued (either mode); the pools read this to
        #: skip a dispatch pass entirely when there is nothing to pick
        self.pending = 0

    def enqueue(self, rpc: Rpc) -> None:
        """Queue one RPC under its database's share."""
        self.enqueued += 1
        self.pending += 1
        if self.metrics is not None:
            self.metrics.counter(
                "scheduler_enqueued", database_id=rpc.database_id
            ).inc()
        if not self.fair:
            self._fifo.append(rpc)
            return
        queue = self._queues.get(rpc.database_id)
        if queue is None:
            queue = _DatabaseQueue()
            self._queues[rpc.database_id] = queue
        if not queue.interactive and not queue.batch:
            # (re)activating: start from the current global virtual time
            if queue.virtual_time_us < self._global_virtual_us:
                queue.virtual_time_us = self._global_virtual_us
        if rpc.latency_sensitive:
            queue.interactive.append(rpc)
        else:
            queue.batch.append(rpc)

    def pick(self) -> Optional[Rpc]:
        """Dispatch the next RPC, or None when idle."""
        if not self.fair:
            if not self._fifo:
                return None
            self.dispatched += 1
            self.pending -= 1
            rpc = self._fifo.popleft()
            self._record_dispatch(rpc)
            return rpc
        # one pass tracking best and runner-up virtual times: the
        # post-pop global floor is derived from these two, avoiding a
        # second sweep (and a per-pick generator) over the queues
        best_queue: Optional[_DatabaseQueue] = None
        best_vt = 0.0
        second_vt = _INF
        for queue in self._queue_view:
            if not queue.interactive and not queue.batch:
                continue
            vt = queue.virtual_time_us
            if best_queue is None:
                best_queue = queue
                best_vt = vt
            elif vt < best_vt:
                second_vt = best_vt
                best_queue = queue
                best_vt = vt
            elif vt < second_vt:
                second_vt = vt
        if best_queue is None:
            return None
        rpc = best_queue.pop()
        new_vt = best_vt + rpc.cpu_cost_us
        best_queue.virtual_time_us = new_vt
        # min virtual time over queues still runnable after this pop
        # (the picked queue re-enters at its advanced time if non-empty)
        if best_queue.interactive or best_queue.batch:
            floor = new_vt if new_vt < second_vt else second_vt
        else:
            floor = second_vt if second_vt is not _INF else new_vt
        if floor > self._global_virtual_us:
            self._global_virtual_us = floor
        self.dispatched += 1
        self.pending -= 1
        if (
            self.metrics is not None
            or self.profiler is not None
            or self.slo is not None
            or self.tracer is not None
        ):
            self._record_dispatch(rpc)
        return rpc

    def _record_dispatch(self, rpc: Rpc) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                "scheduler_dispatched", database_id=rpc.database_id
            ).inc()
            # per-tenant CPU share: the profiler's ledger and Figure 11's
            # isolation verdict both read this counter
            self.metrics.counter(
                "scheduler_cpu_us", database_id=rpc.database_id
            ).inc(rpc.cpu_cost_us)
        if self.profiler:
            # zero sim-time: dispatch itself is free, the pool accounts the
            # service time — this entry carries the per-tenant call count
            self.profiler.account(
                "service", "scheduler.dispatch", 0, rpc.database_id
            )
        if self.slo and self.clock is not None:
            self.slo.record_share(
                "tenant.cpu",
                self.clock.now_us,
                rpc.database_id,
                rpc.cpu_cost_us,
            )
        if self.tracer is not None and self.clock is not None:
            # the time from RPC arrival to this dispatch was queue wait —
            # annotate it on the request's trace so the critical-path
            # engine can blame the scheduler rather than leave a gap
            self.tracer.record_wait(
                rpc.trace_ctx,
                "queue",
                start_us=rpc.arrival_us,
                end_us=self.clock.now_us,
            )

    def queued(self, database_id: Optional[str] = None) -> int:
        """Queued RPCs, optionally for one database."""
        if database_id is None:
            # the running counter equals the sum over queues in either
            # mode; admission reads this per request, so no sweep here
            return self.pending
        if not self.fair:
            return sum(1 for r in self._fifo if r.database_id == database_id)
        queue = self._queues.get(database_id)
        return len(queue) if queue is not None else 0
