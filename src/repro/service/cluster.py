"""The serving cluster: Frontend + Backend pools over the event kernel.

Wires together routing, admission control, fair scheduling, auto-scaling,
the Spanner latency model, and billing — the environment the paper's
latency experiments (sections V-B and V-C) run in. Requests flow::

    client --hop--> Frontend task --hop--> Backend task --> Spanner
                                                        (storage latency)

Queueing delay emerges at each pool from offered load vs capacity;
notification fan-out (Figure 9) runs as NOTIFY work on the Frontend pool,
which auto-scales "independently of the rest of the system".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.events import EventKernel
from repro.sim.latency import LatencyModel, MultiRegionalLatency, RegionalLatency
from repro.sim.rand import SimRandom
from repro.service.admission import AdmissionConfig, AdmissionController
from repro.service.autoscaler import Autoscaler, AutoscalerConfig
from repro.service.billing import BillingLedger
from repro.service.overload import (
    BreakerBoard,
    OverloadConfig,
    OverloadState,
    QueueDiscipline,
    ShedReason,
)
from repro.service.pool import TaskPool
from repro.service.rpc import DEFAULT_CPU_COST_US, Rpc, RpcKind

#: RpcKind -> lowercase operation label; a dict hit per request beats an
#: enum descriptor access plus a str.lower() allocation
_OPERATION = {kind: kind.value for kind in RpcKind}

#: kinds billed as document reads (section IV-B)
_READ_KINDS = frozenset({RpcKind.GET, RpcKind.QUERY, RpcKind.LISTEN})
from repro.service.scheduler import FairShareScheduler


@dataclass
class ClusterConfig:
    """Sizing, scheduling, and policy knobs for a serving cluster."""
    multi_region: bool = True
    frontend_tasks: int = 4
    backend_tasks: int = 4
    fair_scheduling: bool = True
    autoscale_frontend: bool = True
    autoscale_backend: bool = True
    autoscaler: AutoscalerConfig = field(default_factory=AutoscalerConfig)
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    #: graceful-degradation layer (adaptive admission, CoDel shedding,
    #: breakers, hedged reads); ``enabled=False`` keeps the serving path
    #: byte-identical to a cluster without it
    overload: OverloadConfig = field(default_factory=OverloadConfig)
    seed: int = 0


class ServingCluster:
    """One region's serving plane for the benchmarks."""

    def __init__(
        self,
        kernel: Optional[EventKernel] = None,
        config: Optional[ClusterConfig] = None,
        tracer=None,
        metrics=None,
        profiler=None,
        slo=None,
    ):
        from repro.obs.perf import NULL_PROFILER
        from repro.obs.tracer import NULL_TRACER

        self.kernel = kernel if kernel is not None else EventKernel()
        self.config = config if config is not None else ClusterConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        # fast flags resolved once: the submit/complete path runs per
        # request, and truthiness of the null singletons is a Python
        # __bool__ call each time
        self._tracer_on = bool(self.tracer)
        self._profiler_on = bool(self.profiler)
        #: optional repro.obs.slo.SloEngine; every completion/failure and
        #: fanout delivery feeds its request/staleness streams
        self.slo = slo
        if profiler is not None and self.kernel.profiler is None:
            # wall-clock self-time per event label rides on the kernel
            self.kernel.profiler = profiler
        self.rand = SimRandom(self.config.seed).fork("cluster-latency")
        self.latency: LatencyModel = (
            MultiRegionalLatency() if self.config.multi_region else RegionalLatency()
        )
        self.frontend_pool = TaskPool(
            "frontend",
            self.kernel,
            self._make_scheduler(fair=True),
            initial_tasks=self.config.frontend_tasks,
            tracer=self.tracer,
            metrics=metrics,
            profiler=profiler,
        )
        self.backend_pool = TaskPool(
            "backend",
            self.kernel,
            self._make_scheduler(fair=self.config.fair_scheduling),
            initial_tasks=self.config.backend_tasks,
            tracer=self.tracer,
            metrics=metrics,
            profiler=profiler,
        )
        self.active_connections = 0
        self.frontend_autoscaler = Autoscaler(
            self.frontend_pool,
            self.kernel,
            self.config.autoscaler,
            enabled=self.config.autoscale_frontend,
            size_floor_fn=self._frontend_floor,
            metrics=metrics,
        )
        self.backend_autoscaler = Autoscaler(
            self.backend_pool,
            self.kernel,
            self.config.autoscaler,
            enabled=self.config.autoscale_backend,
            metrics=metrics,
        )
        self.admission = AdmissionController(
            self.kernel.clock,
            self.config.admission,
            metrics=metrics,
            profiler=profiler,
        )
        self.billing = BillingLedger(self.kernel.clock)
        # deterministic fault plane (repro.faults.FaultPlan), duck-typed:
        # None keeps every injection hook on the request path inert
        self.fault_plan = None
        from repro.service.routing import GlobalRouter

        #: global routing: register databases' home regions to price the
        #: client -> region network hop per request (section IV-A)
        self.router = GlobalRouter(metrics=metrics)
        #: graceful-degradation state (repro.service.overload); None when
        #: the layer is disabled so the hot path pays nothing for it
        self.overload: Optional[OverloadState] = None
        overload_config = self.config.overload
        if overload_config.enabled:
            self.overload = OverloadState(
                overload_config,
                metrics=metrics,
                profiler=self.profiler if self.profiler else None,
            )
            # the limiter's AIMD limit replaces the static shed_queue_depth
            self.admission.adaptive = self.overload.limiter
            self.admission.batch_admit_fraction = (
                overload_config.batch_admit_fraction
            )
            self.backend_pool.overload = QueueDiscipline(
                overload_config, self.overload.limiter
            )
            self.backend_pool.shed_hook = self._codel_shed
            self.backend_pool.readmit = self._readmit
            if overload_config.breakers_enabled:
                self.router.breakers = BreakerBoard(
                    overload_config, metrics=metrics
                )
        # the section-VI emergency tool: databases routed to their own pool
        self._isolated_pools: dict[str, TaskPool] = {}
        self._isolated_autoscalers: dict[str, Autoscaler] = {}
        self.completed = 0
        self.rejected = 0

    def _codel_shed(self, rpc: Rpc) -> None:
        """Backend-pool hook: queue-deadline (CoDel) shed of one RPC."""
        self.admission.record_decision(rpc.database_id, ShedReason.DEADLINE)
        rpc.retry_after_us = self.overload.retry_after_us()
        rpc.reject(ShedReason.DEADLINE.message)

    def _readmit(self, rpc: Rpc) -> bool:
        """Backend-pool hook: re-judge a crashed RPC before re-queueing."""
        reason = self.admission.recheck(
            rpc.database_id, self.backend_pool.scheduler.pending
        )
        if reason is None:
            return True
        rpc.retry_after_us = self.overload.retry_after_us()
        rpc.reject(reason.message)
        return False

    def retry_after_hint_us(self) -> int:
        """The server-driven backoff hint for shed traffic (0 = none).

        Clients that honor it retry after the standing queue has had a
        chance to drain instead of on their own fixed schedule.
        """
        overload = self.overload
        return 0 if overload is None else overload.retry_after_us()

    def _make_scheduler(self, fair: bool) -> FairShareScheduler:
        scheduler = FairShareScheduler(
            fair=fair,
            metrics=self.metrics,
            profiler=self.profiler if self.profiler else None,
            slo=self.slo,
        )
        scheduler.clock = self.kernel.clock
        if self._tracer_on:
            # queue waits become structured wait causes on each trace
            scheduler.tracer = self.tracer
        return scheduler

    # -- long-lived connections --------------------------------------------------

    #: how many Listen connections one Frontend task sustains
    CONNECTIONS_PER_TASK = 100

    def set_active_connections(self, count: int) -> None:
        """Tell the Frontend autoscaler how many Listen connections exist.

        Frontend capacity scales with connection count — "the increase in
        active real-time queries increases the load on Frontend tasks,
        which leads autoscaling to quickly scale up the number of
        Frontend tasks, independently of the rest of the system".
        """
        if count < 0:
            raise ValueError("connection count cannot be negative")
        self.active_connections = count

    def _frontend_floor(self) -> int:
        needed = -(-self.active_connections // self.CONNECTIONS_PER_TASK)
        return max(self.config.frontend_tasks, needed)

    # -- request entry point --------------------------------------------------------

    def submit(
        self,
        database_id: str,
        kind: RpcKind,
        on_complete: Callable[[int], None],
        cpu_cost_us: Optional[int] = None,
        commit_participants: int = 1,
        latency_sensitive: bool = True,
        on_reject: Optional[Callable[[str], None]] = None,
        memory_bytes: int = 0,
        client_region: Optional[str] = None,
        deadline_us: Optional[int] = None,
        staleness_bound_us: Optional[int] = None,
        trace_parent=None,
    ) -> bool:
        """Inject one request; ``on_complete`` receives end-to-end latency.

        Returns False if admission control rejected it immediately.
        ``memory_bytes`` estimates the query's in-flight RAM, feeding the
        memory-pressure rejection of section VIII. ``client_region``
        (with the database registered on :attr:`router`) prices the
        client's network hop to the database's home region.
        ``deadline_us`` is an absolute sim-clock deadline carried on the
        RPC envelope through both hops: once it passes, whichever hop
        holds the request expires it (``on_reject``) instead of finishing
        work the caller has abandoned. ``staleness_bound_us`` marks a
        GET/QUERY as a bounded-staleness read: the router picks the
        nearest sufficiently caught-up replica (leader fallback) and the
        request pays that replica's hop plus a local read, instead of the
        home region's leader round trip. ``trace_parent`` (a Span or
        SpanContext) nests this request's ``cluster.rpc`` span under a
        caller-owned trace — e.g. one logical client operation that
        retries across several submits — instead of starting a new one.
        """
        clock = self.kernel.clock
        arrival = clock._now_us
        operation = _OPERATION[kind]
        plan = self.fault_plan
        if plan is not None and plan.decide("service.task_crash") is not None:
            # a backend task dies under load; its in-flight RPC requeues
            self.backend_pool.crash_tasks(1)
        root = None
        if self._tracer_on:
            root = self.tracer.start_span(
                "cluster.rpc",
                parent=trace_parent,
                component="cluster",
                attributes={"database_id": database_id, "operation": operation},
            )
        overload = self.overload
        if (
            overload is not None
            and self.router.breakers is not None
            and not self.router.breaker_allows(database_id, arrival)
        ):
            # fast-fail at the door: the (database, region) breaker is
            # open, so queueing more doomed work only deepens the hole
            self.admission.record_decision(database_id, ShedReason.BREAKER)
            reason = ShedReason.BREAKER
        else:
            admitted, reason = self.admission.try_admit(
                database_id,
                self.backend_pool.scheduler.pending,
                memory_bytes,
                latency_sensitive,
            )
        if reason is not None:
            self.rejected += 1
            if self.metrics is not None:
                self.metrics.counter(
                    "requests_rejected",
                    database_id=database_id,
                    operation=operation,
                ).inc()
            if self.slo:
                self.slo.record("request", self.kernel.now_us, False)
            if root is not None:
                root.set_attribute("rejected", reason.value)
                root.end()
            if on_reject is not None:
                on_reject(reason.message)
            return False

        cost = cpu_cost_us if cpu_cost_us is not None else DEFAULT_CPU_COST_US[kind]
        hedge_primary = None
        if staleness_bound_us is not None and kind in (RpcKind.GET, RpcKind.QUERY):
            # bounded-staleness read: the chosen replica serves it from
            # local state — no leader quorum round trip on the read path
            reader = (
                client_region
                if client_region is not None
                else self.router.home_region(database_id)
            )
            serving_region, _read_ts = self.router.route_read(
                database_id, reader, staleness_bound_us
            )
            hedge_primary = serving_region
            storage_us = self.latency.local_read_us(self.rand)
            network_us = 2 * self.router.pair_latency_us(reader, serving_region)
        elif client_region is not None:
            storage_us = self._storage_latency(kind, commit_participants)
            network_us = 2 * self.router.network_latency_us(client_region, database_id)
        else:
            storage_us = self._storage_latency(kind, commit_participants)
            network_us = 2 * self.latency.rpc_us(self.rand)  # same-region client
        trace_ctx = root.context if root is not None else None
        # first-terminal-outcome-wins guard, shared by the primary path,
        # its failure paths, and a hedged backup read (None = layer off)
        settled = [False] if overload is not None else None

        def fail(reason: str) -> None:
            # shared failure path for drops and expired deadlines: the
            # admission slot is returned, the caller hears why
            if settled is not None:
                if settled[0]:
                    return
                settled[0] = True
                self.router.record_outcome(
                    database_id, False, clock._now_us
                )
            self.admission.release(database_id, memory_bytes)
            if self.metrics is not None:
                self.metrics.counter(
                    "requests_failed",
                    database_id=database_id,
                    operation=operation,
                ).inc()
            if self.slo:
                self.slo.record("request", self.kernel.now_us, False)
            if root is not None:
                root.set_attribute("failed", reason)
                root.end()
            if on_reject is not None:
                on_reject(reason)

        def fail_rpc(rpc: Rpc, reason: str) -> None:
            fail(reason)

        if plan is not None and plan.decide("rpc.drop") is not None:
            # the request vanishes on the wire after admission
            fail("rpc dropped (injected)")
            return False

        # resolve the billing operation once per request instead of
        # re-branching on kind in every completion
        if kind in _READ_KINDS:
            bill_op = self.billing.record_reads
        elif kind is RpcKind.COMMIT:
            bill_op = self.billing.record_writes
        else:
            bill_op = None

        def settle_success(total_us: int, net_us: int, store_us: int) -> None:
            self.admission.release(database_id, memory_bytes)
            self.completed += 1
            if bill_op is not None:
                bill_op(database_id)
            now = clock._now_us
            if self._profiler_on:
                # wire and storage time are busy time spent elsewhere on
                # this request's behalf — attributed so the flame adds up
                self.profiler.account(
                    "network", f"wire.{operation}", net_us, database_id
                )
                if store_us:
                    self.profiler.account(
                        "spanner", f"storage.{operation}", store_us, database_id
                    )
            if self.slo:
                self.slo.record("request", now, True)
                self.slo.record_latency("request.latency", now, total_us)
            if self.metrics is not None:
                self.metrics.counter(
                    "requests_completed",
                    database_id=database_id,
                    operation=operation,
                ).inc()
                self.metrics.histogram(
                    "request_latency_us",
                    database_id=database_id,
                    operation=operation,
                ).observe(total_us)
            if root is not None:
                root.set_attributes(
                    {
                        "latency_us": total_us,
                        "network_us": net_us,
                        "storage_us": store_us,
                    }
                )
                if net_us:
                    # network hops are priced arithmetically, never elapsed
                    # on the kernel — a *modeled* wait, added on top of the
                    # elapsed critical path by repro.obs.critpath
                    root.wait("rpc_network", duration_us=net_us)
                root.end()
            on_complete(total_us)

        def backend_done(rpc: Rpc, latency_us: int) -> None:
            total_us = network_us + frontend_cost + latency_us
            if settled is not None:
                if settled[0]:
                    # a hedge already answered: this is the losing arm
                    overload.account_hedge("waste", database_id)
                    return
                settled[0] = True
                self.router.record_outcome(database_id, True, clock._now_us)
                if kind in _READ_KINDS:
                    overload.read_latency.observe(total_us)
                    overload.hedges.on_read()
            settle_success(total_us, network_us, storage_us)

        hedging = (
            settled is not None
            and overload.config.hedge_enabled
            and kind in (RpcKind.GET, RpcKind.QUERY)
        )
        if hedging:
            hedge_net = [0]
            hedge_sched = [0]

            def hedge_done(rpc: Rpc, latency_us: int) -> None:
                if settled[0]:
                    overload.account_hedge("waste", database_id)
                    return
                settled[0] = True
                overload.account_hedge("win", database_id)
                self.router.record_outcome(database_id, True, clock._now_us)
                total_us = (rpc.arrival_us - arrival) + latency_us + hedge_net[0]
                overload.read_latency.observe(total_us)
                overload.hedges.on_read()
                settle_success(total_us, hedge_net[0], rpc.storage_latency_us)

            def hedge_rejected(rpc: Rpc, reason: str) -> None:
                # a failed hedge never fails the request — the primary is
                # still in flight (or already settled it)
                overload.account_hedge("waste", database_id)

            def fire_hedge() -> None:
                if settled[0]:
                    return
                now = clock._now_us
                if deadline_us is not None and now >= deadline_us:
                    return
                reader = (
                    client_region
                    if client_region is not None
                    else self.router.home_region(database_id)
                )
                region, _ts = self.router.route_read(
                    database_id,
                    reader,
                    overload.config.hedge_staleness_bound_us,
                )
                primary = (
                    hedge_primary
                    if hedge_primary is not None
                    else self.router.home_region(database_id)
                )
                if region == primary:
                    # no distinct eligible follower: nothing to hedge to
                    return
                if not overload.hedges.try_spend():
                    return
                overload.account_hedge("fired", database_id)
                if self._tracer_on:
                    # from hedge arming to firing, the request was waiting
                    # on the primary — blame the hedge delay explicitly
                    overload.record_hedge_wait(
                        self.tracer, trace_ctx, hedge_sched[0], now
                    )
                hedge_net[0] = 2 * self.router.pair_latency_us(reader, region)
                hedge_rpc = Rpc(
                    database_id=database_id,
                    kind=kind,
                    cpu_cost_us=cost,
                    arrival_us=now,
                    storage_latency_us=self.latency.local_read_us(self.rand),
                    latency_sensitive=latency_sensitive,
                    deadline_us=deadline_us,
                    on_complete=hedge_done,
                    on_reject=hedge_rejected,
                    trace_ctx=trace_ctx,
                )
                pool = self._isolated_pools.get(
                    database_id, self.backend_pool
                )
                pool.scheduler.enqueue(hedge_rpc)
                pool._dispatch()

        def frontend_done(rpc: Rpc, frontend_latency_us: int) -> None:
            if deadline_us is not None and clock._now_us >= deadline_us:
                fail("deadline exceeded after frontend hop")
                return
            backend_rpc = Rpc(
                database_id=database_id,
                kind=kind,
                cpu_cost_us=cost,
                arrival_us=clock._now_us,
                storage_latency_us=storage_us,
                latency_sensitive=latency_sensitive,
                deadline_us=deadline_us,
                on_complete=backend_done,
                on_reject=fail_rpc,
                trace_ctx=trace_ctx,
            )
            pool = self._isolated_pools.get(database_id, self.backend_pool)
            # inlined pool.submit: one fewer frame on the per-request path
            pool.scheduler.enqueue(backend_rpc)
            pool._dispatch()
            if hedging and self.router.has_replicas(database_id):
                # the backup read fires if the primary has not answered
                # within its p99 budget; first terminal outcome wins
                hedge_sched[0] = clock._now_us
                self.kernel.after(
                    overload.hedge_after_us(), fire_hedge, label="hedge-read"
                )

        frontend_cost = 50  # routing + session bookkeeping
        frontend_rpc = Rpc(
            database_id=database_id,
            kind=kind,
            cpu_cost_us=frontend_cost,
            arrival_us=arrival,
            latency_sensitive=latency_sensitive,
            deadline_us=deadline_us,
            on_complete=frontend_done,
            on_reject=fail_rpc,
            trace_ctx=trace_ctx,
        )
        if plan is not None:
            if plan.decide("rpc.duplicate") is not None:
                # a retransmitted request arrives twice; the duplicate
                # consumes serving capacity but its completion is swallowed
                self.frontend_pool.submit(
                    Rpc(
                        database_id=database_id,
                        kind=kind,
                        cpu_cost_us=frontend_cost,
                        arrival_us=arrival,
                        latency_sensitive=latency_sensitive,
                        deadline_us=deadline_us,
                        trace_ctx=trace_ctx,
                    )
                )
            delay_us = 0
            if plan.decide("rpc.delay") is not None:
                delay_us = plan.rand("rpc.delay").randint(1_000, 30_000)
            elif plan.decide("rpc.reorder") is not None:
                # a long enough delay that later arrivals overtake this one
                delay_us = plan.rand("rpc.reorder").randint(30_000, 120_000)
            if delay_us:
                # the extra wire time is part of the latency the caller
                # observes (backend_done reads network_us at call time)
                network_us += delay_us
                self.kernel.after(
                    delay_us,
                    lambda: self.frontend_pool.submit(frontend_rpc),
                    label="rpc-delay",
                )
                return True
        # inlined pool.submit: one fewer frame on the per-request path
        frontend_pool = self.frontend_pool
        frontend_pool.scheduler.enqueue(frontend_rpc)
        frontend_pool._dispatch()
        return True

    def submit_notification_fanout(
        self,
        database_id: str,
        listeners: int,
        on_all_delivered: Callable[[int], None],
        per_listener_cost_us: int = DEFAULT_CPU_COST_US[RpcKind.NOTIFY],
        deadline_us: Optional[int] = None,
    ) -> None:
        """Fan one document update out to ``listeners`` connections.

        The work lands on the Frontend pool (one NOTIFY job per listener);
        the callback receives the latency until the *last* client was
        notified — the paper's notification-latency metric (Figure 9).
        With a ``deadline_us``, per-listener NOTIFY jobs still queued when
        it passes are expired rather than delivered late; they count as
        resolved for the completion callback.
        """
        if listeners <= 0:
            raise ValueError("fan-out needs at least one listener")
        start = self.kernel.now_us
        remaining = [listeners]
        root = None
        if self.tracer:
            root = self.tracer.start_span(
                "cluster.notify_fanout",
                component="cluster",
                attributes={"database_id": database_id, "listeners": listeners},
            )
        trace_ctx = root.context if root is not None else None

        def resolve_one() -> None:
            remaining[0] -= 1
            if remaining[0] == 0:
                elapsed = self.kernel.now_us - start
                if self.metrics is not None:
                    self.metrics.histogram(
                        "notify_fanout_latency_us", database_id=database_id
                    ).observe(elapsed)
                if self.slo:
                    # time-to-last-listener is the staleness the slowest
                    # subscriber observed for this update
                    self.slo.record_latency(
                        "notify.staleness", self.kernel.now_us, elapsed
                    )
                if root is not None:
                    root.end()
                on_all_delivered(elapsed)

        def one_done(rpc: Rpc, latency_us: int) -> None:
            resolve_one()

        def one_expired(rpc: Rpc, reason: str) -> None:
            resolve_one()

        for _ in range(listeners):
            self.frontend_pool.submit(
                Rpc(
                    database_id=database_id,
                    kind=RpcKind.NOTIFY,
                    cpu_cost_us=per_listener_cost_us,
                    arrival_us=start,
                    deadline_us=deadline_us,
                    on_complete=one_done,
                    on_reject=one_expired,
                    trace_ctx=trace_ctx,
                )
            )

    # -- emergency isolation (paper section VI) ----------------------------------------

    def isolate_database(
        self, database_id: str, tasks: int = 2, autoscale: bool = True
    ) -> TaskPool:
        """Route ALL of one database's backend traffic to a dedicated pool.

        The paper's last-resort mitigation: "all traffic for that database
        can be routed to a separate pool (of tasks) for the impacted
        component, thereby isolating it completely. This pool can also be
        configured to auto-scale to the database's traffic."
        """
        if database_id in self._isolated_pools:
            return self._isolated_pools[database_id]
        pool = TaskPool(
            f"isolated-{database_id}",
            self.kernel,
            self._make_scheduler(fair=True),
            initial_tasks=tasks,
            tracer=self.tracer,
            metrics=self.metrics,
            profiler=self.profiler if self.profiler else None,
        )
        self._isolated_pools[database_id] = pool
        if autoscale:
            self._isolated_autoscalers[database_id] = Autoscaler(
                pool,
                self.kernel,
                self.config.autoscaler,
                enabled=True,
                metrics=self.metrics,
            )
        return pool

    def unisolate_database(self, database_id: str) -> None:
        """Return an isolated database to the shared pool."""
        self._isolated_pools.pop(database_id, None)
        scaler = self._isolated_autoscalers.pop(database_id, None)
        if scaler is not None:
            scaler.enabled = False

    def is_isolated(self, database_id: str) -> bool:
        """Whether a database runs on its own dedicated pool."""
        return database_id in self._isolated_pools

    # -- internals ---------------------------------------------------------------------

    def _storage_latency(self, kind: RpcKind, participants: int) -> int:
        if kind is RpcKind.COMMIT:
            return self.latency.commit_us(self.rand, participants)
        if kind in (RpcKind.GET, RpcKind.QUERY, RpcKind.LISTEN):
            return self.latency.read_us(self.rand)
        return 0

    def _bill(self, database_id: str, kind: RpcKind) -> None:
        if kind in (RpcKind.GET, RpcKind.QUERY, RpcKind.LISTEN):
            self.billing.record_reads(database_id)
        elif kind is RpcKind.COMMIT:
            self.billing.record_writes(database_id)

    # -- driving -----------------------------------------------------------------------

    def run_for(self, duration_us: int) -> None:
        """Advance the simulation by the given microseconds."""
        self.kernel.run_for(duration_us)

    def busy_us(self) -> int:
        """Cumulative task-busy sim-time across every pool.

        The denominator of the profiler's >= 99% coverage acceptance
        check: every microsecond counted here must show up in the
        profiler ledger under some (subsystem, operation, tenant).
        """
        total = self.frontend_pool.busy_us_total + self.backend_pool.busy_us_total
        for pool in self._isolated_pools.values():
            total += pool.busy_us_total
        return total

    # -- observability exports -----------------------------------------------------------

    def export_trace(self, path: str) -> str:
        """Write this run's spans as Chrome trace-event JSON (Perfetto)."""
        from repro.obs.export import write_chrome_trace

        return write_chrome_trace(self.tracer, path)

    def report(self, title: str = "cluster run") -> str:
        """The plain-text per-run report of spans, metrics, and profile."""
        from repro.obs.export import render_text_report

        return render_text_report(
            self.tracer, self.metrics, title, profiler=self.profiler or None
        )

    def export_report(self, path: str, title: str = "cluster run") -> str:
        """Write the plain-text report to ``path``; returns the path."""
        from repro.obs.export import write_text_report

        return write_text_report(
            path, self.tracer, self.metrics, title, profiler=self.profiler or None
        )
