"""RPC envelopes for the serving simulation.

"An individual RPC is not a uniform work unit, as its cost can vary
significantly — one RPC can cost a million times another" (paper section
IV-C); the envelope therefore carries an explicit CPU cost. Batch and
internal workloads "set custom tags on their RPCs, which allow schedulers
to prioritize latency-sensitive workloads".
"""

from __future__ import annotations

import enum
import itertools
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # import cycle: repro.obs has no runtime dependency here
    from repro.obs.tracer import SpanContext


class RpcKind(enum.Enum):
    """Request categories with distinct cost/latency profiles."""
    GET = "get"
    QUERY = "query"
    COMMIT = "commit"
    LISTEN = "listen"
    NOTIFY = "notify"  # realtime fan-out work on Frontend tasks
    BATCH = "batch"    # tagged background work, deprioritized


#: Baseline CPU service costs per kind (microseconds of backend CPU).
DEFAULT_CPU_COST_US = {
    RpcKind.GET: 150,
    RpcKind.QUERY: 400,
    RpcKind.COMMIT: 500,
    RpcKind.LISTEN: 250,
    RpcKind.NOTIFY: 60,
    RpcKind.BATCH: 2_000,
}

_rpc_ids = itertools.count(1)


class Rpc:
    """One request moving through the serving path.

    A hand-rolled ``__slots__`` record rather than a dataclass: two of
    these are built per simulated request, and the generated dataclass
    ``__init__`` plus a separate ``__post_init__`` frame are measurable
    at that rate (see gate_speed).

    Fields:

    - ``storage_latency_us``: commit-path extra (replication quorum
      etc.), added after CPU service
    - ``latency_sensitive``: user-facing vs tagged batch/internal traffic
    - ``deadline_us``: absolute sim-clock deadline; every hop (queue,
      dispatch, messaging) may expire the RPC once it passes instead of
      completing dead work
    - ``trace_ctx``: trace context propagated across the serving hops
      (repro.obs); None on untraced requests, so tracing stays
      zero-cost when off
    - ``retry_after_us``: server-driven backoff hint stamped onto the
      envelope when the request is shed; carried back to the client so
      ``call_with_retry`` paces its next attempt to the server's queue
      instead of its own guess
    """

    __slots__ = (
        "database_id",
        "kind",
        "cpu_cost_us",
        "arrival_us",
        "storage_latency_us",
        "latency_sensitive",
        "deadline_us",
        "on_complete",
        "on_reject",
        "trace_ctx",
        "rpc_id",
        "retry_after_us",
    )

    def __init__(
        self,
        database_id: str,
        kind: RpcKind,
        cpu_cost_us: int,
        arrival_us: int,
        storage_latency_us: int = 0,
        latency_sensitive: bool = True,
        deadline_us: Optional[int] = None,
        on_complete: Optional[Callable[["Rpc", int], None]] = None,
        on_reject: Optional[Callable[["Rpc", str], None]] = None,
        trace_ctx: Optional["SpanContext"] = None,
    ):
        if cpu_cost_us <= 0:
            raise ValueError("rpc must have positive CPU cost")
        self.database_id = database_id
        self.kind = kind
        self.cpu_cost_us = cpu_cost_us
        self.arrival_us = arrival_us
        self.storage_latency_us = storage_latency_us
        self.latency_sensitive = latency_sensitive
        self.deadline_us = deadline_us
        self.on_complete = on_complete
        self.on_reject = on_reject
        self.trace_ctx = trace_ctx
        self.rpc_id = next(_rpc_ids)
        self.retry_after_us: Optional[int] = None

    def __repr__(self) -> str:
        return (
            f"Rpc(database_id={self.database_id!r}, kind={self.kind!r}, "
            f"cpu_cost_us={self.cpu_cost_us}, rpc_id={self.rpc_id})"
        )

    def complete(self, finish_us: int) -> None:
        """Invoke the completion callback with the measured latency."""
        if self.on_complete is not None:
            self.on_complete(self, finish_us - self.arrival_us)

    def reject(self, reason: str) -> None:
        """Invoke the rejection callback with a reason."""
        if self.on_reject is not None:
            self.on_reject(self, reason)
