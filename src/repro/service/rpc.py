"""RPC envelopes for the serving simulation.

"An individual RPC is not a uniform work unit, as its cost can vary
significantly — one RPC can cost a million times another" (paper section
IV-C); the envelope therefore carries an explicit CPU cost. Batch and
internal workloads "set custom tags on their RPCs, which allow schedulers
to prioritize latency-sensitive workloads".
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # import cycle: repro.obs has no runtime dependency here
    from repro.obs.tracer import SpanContext


class RpcKind(enum.Enum):
    """Request categories with distinct cost/latency profiles."""
    GET = "get"
    QUERY = "query"
    COMMIT = "commit"
    LISTEN = "listen"
    NOTIFY = "notify"  # realtime fan-out work on Frontend tasks
    BATCH = "batch"    # tagged background work, deprioritized


#: Baseline CPU service costs per kind (microseconds of backend CPU).
DEFAULT_CPU_COST_US = {
    RpcKind.GET: 150,
    RpcKind.QUERY: 400,
    RpcKind.COMMIT: 500,
    RpcKind.LISTEN: 250,
    RpcKind.NOTIFY: 60,
    RpcKind.BATCH: 2_000,
}

_rpc_ids = itertools.count(1)


@dataclass
class Rpc:
    """One request moving through the serving path."""

    database_id: str
    kind: RpcKind
    cpu_cost_us: int
    arrival_us: int
    #: commit-path extra (replication quorum etc.), added after CPU service
    storage_latency_us: int = 0
    #: latency-sensitive (user-facing) vs tagged batch/internal traffic
    latency_sensitive: bool = True
    #: absolute sim-clock deadline; every hop (queue, dispatch, messaging)
    #: may expire the RPC once it passes instead of completing dead work
    deadline_us: Optional[int] = None
    on_complete: Optional[Callable[["Rpc", int], None]] = None
    on_reject: Optional[Callable[["Rpc", str], None]] = None
    #: trace context propagated across the serving hops (repro.obs); None
    #: on untraced requests, so tracing stays zero-cost when off
    trace_ctx: Optional["SpanContext"] = None
    rpc_id: int = field(default_factory=lambda: next(_rpc_ids))

    def __post_init__(self) -> None:
        if self.cpu_cost_us <= 0:
            raise ValueError("rpc must have positive CPU cost")

    def complete(self, finish_us: int) -> None:
        """Invoke the completion callback with the measured latency."""
        if self.on_complete is not None:
            self.on_complete(self, finish_us - self.arrival_us)

    def reject(self, reason: str) -> None:
        """Invoke the rejection callback with a reason."""
        if self.on_reject is not None:
            self.on_reject(self, reason)
