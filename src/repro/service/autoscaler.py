"""Delayed load-based auto-scaling of task pools.

"All components build on Google's auto-scaling infrastructure, so the
number of tasks in a given component adjusts in response to load" and
"auto-scaling incorporates delays because short-lived traffic spikes do
not merit auto-scaling" (paper section IV-C). That delay is what produces
the transient p99 inflation during YCSB's rapid ramp-up (section V-B1)
that later recovers — the shape Figures 7/8 show.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.events import EventKernel
from repro.service.pool import TaskPool


@dataclass
class AutoscalerConfig:
    #: how often utilization is evaluated
    """Thresholds, delays, and growth factors for auto-scaling."""
    evaluation_interval_us: int = 5_000_000
    #: consecutive hot evaluations required before scaling up (the delay)
    scale_up_after_evals: int = 2
    #: utilization above which an evaluation counts as hot
    high_watermark: float = 0.75
    #: utilization below which an evaluation counts as cold
    low_watermark: float = 0.20
    #: consecutive cold evaluations before scaling down
    scale_down_after_evals: int = 6
    #: multiplicative growth per scale-up
    growth_factor: float = 1.5
    max_tasks: int = 10_000


class Autoscaler:
    """Periodically resizes one pool based on its utilization."""

    def __init__(
        self,
        pool: TaskPool,
        kernel: EventKernel,
        config: AutoscalerConfig | None = None,
        enabled: bool = True,
        size_floor_fn=None,
        metrics=None,
    ):
        self.pool = pool
        self.kernel = kernel
        self.config = config if config is not None else AutoscalerConfig()
        self.enabled = enabled
        self.metrics = metrics
        #: optional callable giving a minimum pool size — used by the
        #: Frontend pool, which scales with the number of long-lived
        #: Listen connections rather than instantaneous CPU (section
        #: V-B1: autoscaling reacts to "the load on Frontend tasks"
        #: from active real-time queries, independently of the rest)
        self.size_floor_fn = size_floor_fn
        self._hot_evals = 0
        self._cold_evals = 0
        self.scale_ups = 0
        self.scale_downs = 0
        self._schedule()

    def _schedule(self) -> None:
        self.kernel.after(
            self.config.evaluation_interval_us,
            self._evaluate,
            label=f"autoscaler:{self.pool.name}",
        )

    def _record(self, event: str) -> None:
        if self.metrics is not None:
            self.metrics.counter(
                f"autoscaler_{event}", pool=self.pool.name
            ).inc()
            self.metrics.gauge("pool_tasks", pool=self.pool.name).set(
                self.pool.size
            )

    def _evaluate(self) -> None:
        utilization = self.pool.utilization()
        if self.pool.profiler:
            # control-plane work: zero sim-cost, counted for attribution
            self.pool.profiler.account(
                "service", f"autoscaler.evaluate.{self.pool.name}", 0
            )
        if self.metrics is not None:
            self.metrics.histogram(
                "pool_utilization_permille", pool=self.pool.name
            ).observe(int(utilization * 1000))
        if self.enabled:
            if self.size_floor_fn is not None:
                floor = min(self.config.max_tasks, self.size_floor_fn())
                if self.pool.size < floor:
                    self.pool.add_tasks(floor - self.pool.size)
                    self.scale_ups += 1
                    self._record("scale_ups")
            self._react(utilization)
        self._schedule()

    def _react(self, utilization: float) -> None:
        config = self.config
        if utilization >= config.high_watermark:
            self._hot_evals += 1
            self._cold_evals = 0
            if self._hot_evals >= config.scale_up_after_evals:
                current = self.pool.size
                target = min(
                    config.max_tasks, max(current + 1, int(current * config.growth_factor))
                )
                if target > current:
                    self.pool.add_tasks(target - current)
                    self.scale_ups += 1
                    self._record("scale_ups")
                self._hot_evals = 0
        elif utilization <= config.low_watermark:
            self._cold_evals += 1
            self._hot_evals = 0
            if self._cold_evals >= config.scale_down_after_evals:
                shrink = max(1, self.pool.size // 4)
                floor = 1
                if self.size_floor_fn is not None:
                    floor = max(floor, self.size_floor_fn())
                if self.pool.size - shrink >= floor:
                    self.pool.remove_tasks(shrink)
                    self.scale_downs += 1
                    self._record("scale_downs")
                self._cold_evals = 0
        else:
            self._hot_evals = 0
            self._cold_evals = 0
