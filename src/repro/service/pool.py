"""Task pools: the simulated serving capacity.

Each component "comprises up to thousands of tasks" (paper section IV); a
:class:`TaskPool` models N identical tasks, each executing one RPC at a
time, drawing work from a shared :class:`FairShareScheduler`. Completion
events run on the discrete-event kernel, so queueing delay emerges from
offered load vs capacity exactly as in a real cluster.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.events import EventKernel
from repro.service.rpc import Rpc
from repro.service.scheduler import FairShareScheduler


class _Task:
    __slots__ = ("task_id", "busy_until_us", "current")

    def __init__(self, task_id: int):
        self.task_id = task_id
        self.busy_until_us = 0
        # (rpc, completion event) while serving, None when idle — what a
        # crash loses
        self.current = None


class TaskPool:
    """A pool of identical serving tasks over one scheduler."""

    def __init__(
        self,
        name: str,
        kernel: EventKernel,
        scheduler: Optional[FairShareScheduler] = None,
        initial_tasks: int = 4,
        speedup: float = 1.0,
        tracer=None,
        metrics=None,
        profiler=None,
    ):
        if initial_tasks < 1:
            raise ValueError("a pool needs at least one task")
        from repro.obs.perf import NULL_PROFILER
        from repro.obs.tracer import NULL_TRACER

        self.name = name
        self.kernel = kernel
        self.scheduler = scheduler if scheduler is not None else FairShareScheduler()
        self.speedup = speedup
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        self._tasks = [_Task(i) for i in range(initial_tasks)]
        self._next_task_id = initial_tasks
        # utilization accounting
        self._busy_us_accum = 0.0
        self._accounted_until = kernel.now_us
        #: cumulative task-busy microseconds, never reset (unlike the
        #: windowed ``utilization`` accumulator) — the denominator of the
        #: profiler's coverage check
        self.busy_us_total = 0
        self.completed = 0

    # -- sizing ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current number of tasks."""
        return len(self._tasks)

    def add_tasks(self, count: int) -> None:
        """Grow the pool and drain queued work onto the new tasks."""
        for _ in range(count):
            self._tasks.append(_Task(self._next_task_id))
            self._next_task_id += 1
        self._record_size()
        self._dispatch()

    def remove_tasks(self, count: int) -> int:
        """Shrink (never below one task). In-flight work finishes first
        because busy tasks are removed lazily at their completion."""
        removable = min(count, len(self._tasks) - 1)
        now = self.kernel.now_us
        idle = [t for t in self._tasks if t.busy_until_us <= now]
        victims = idle[:removable]
        for task in victims:
            self._tasks.remove(task)
        self._record_size()
        return len(victims)

    def crash_tasks(self, count: int = 1, requeue: bool = True) -> int:
        """Crash ``count`` tasks mid-flight (fault injection).

        A crash loses the task's in-flight RPC — its completion event is
        cancelled and the RPC is re-queued (``requeue``, the default: the
        load balancer retries on a sibling) or rejected. The crashed task
        is replaced immediately, modeling the cluster scheduler's fast
        restart; the autoscaler sees only the queueing backlog the crash
        caused. Returns the number of tasks crashed.
        """
        crashed = 0
        for _ in range(count):
            victim = None
            for task in self._tasks:
                if task.current is not None:
                    victim = task
                    break
            if victim is None and self._tasks:
                victim = self._tasks[0]
            if victim is None:
                break
            self._tasks.remove(victim)
            if victim.current is not None:
                rpc, event = victim.current
                event.cancel()
                if requeue:
                    self.scheduler.enqueue(rpc)
                else:
                    rpc.reject("task crashed")
            self._tasks.append(_Task(self._next_task_id))
            self._next_task_id += 1
            crashed += 1
        if crashed:
            if self.metrics is not None:
                self.metrics.counter("pool_task_crashes", pool=self.name).inc(
                    crashed
                )
            self._record_size()
            self._dispatch()
        return crashed

    def _record_size(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("pool_tasks", pool=self.name).set(len(self._tasks))

    # -- work flow -----------------------------------------------------------------

    def submit(self, rpc: Rpc) -> None:
        """Enqueue one RPC and dispatch if a task is free."""
        self.scheduler.enqueue(rpc)
        self._dispatch()

    def _dispatch(self) -> None:
        now = self.kernel.now_us
        while True:
            task = self._free_task(now)
            if task is None:
                return
            rpc = self.scheduler.pick()
            if rpc is None:
                return
            if rpc.deadline_us is not None and now >= rpc.deadline_us:
                # the caller gave up while this RPC sat in the queue:
                # expire it here instead of burning a task on dead work
                if self.metrics is not None:
                    self.metrics.counter(
                        "faults_deadline_expired", at=self.name
                    ).inc()
                rpc.reject("deadline exceeded in queue")
                continue
            service_us = max(1, round(rpc.cpu_cost_us / self.speedup))
            finish = now + service_us
            task.busy_until_us = finish
            self._busy_us_accum += service_us
            self.busy_us_total += service_us
            if self.profiler:
                self.profiler.account(
                    "service",
                    f"{self.name}.{rpc.kind.name.lower()}",
                    service_us,
                    rpc.database_id,
                )
            if self.tracer and rpc.trace_ctx is not None:
                self.tracer.start_span(
                    f"{self.name}.exec",
                    parent=rpc.trace_ctx,
                    component=self.name,
                    attributes={
                        "database_id": rpc.database_id,
                        "kind": rpc.kind.name.lower(),
                        "queue_wait_us": now - rpc.arrival_us,
                        "task": task.task_id,
                    },
                ).end(finish)
            event = self.kernel.at(
                finish, self._make_completion(task, rpc, finish)
            )
            task.current = (rpc, event)

    def _free_task(self, now_us: int) -> Optional[_Task]:
        for task in self._tasks:
            if task.busy_until_us <= now_us:
                return task
        return None

    def _make_completion(self, task: _Task, rpc: Rpc, finish_us: int):
        def complete() -> None:
            task.current = None
            self.completed += 1
            if self.metrics is not None:
                self.metrics.counter("pool_completed", pool=self.name).inc()
            if rpc.storage_latency_us > 0:
                self.kernel.after(
                    rpc.storage_latency_us,
                    lambda: rpc.complete(self.kernel.now_us),
                )
            else:
                rpc.complete(finish_us)
            self._dispatch()

        return complete

    # -- utilization -----------------------------------------------------------------

    def utilization(self) -> float:
        """Mean utilization since the last call (0..1); resets the window."""
        now = self.kernel.now_us
        elapsed = now - self._accounted_until
        if elapsed <= 0:
            return 0.0
        capacity = elapsed * len(self._tasks)
        # clamp: work scheduled into the future counts only up to now
        busy = min(self._busy_us_accum, capacity)
        self._busy_us_accum = 0.0
        self._accounted_until = now
        return busy / capacity

    def queue_depth(self) -> int:
        """RPCs waiting for a task."""
        return self.scheduler.queued()
