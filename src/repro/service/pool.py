"""Task pools: the simulated serving capacity.

Each component "comprises up to thousands of tasks" (paper section IV); a
:class:`TaskPool` models N identical tasks, each executing one RPC at a
time, drawing work from a shared :class:`FairShareScheduler`. Completion
events run on the discrete-event kernel, so queueing delay emerges from
offered load vs capacity exactly as in a real cluster.
"""

from __future__ import annotations

from typing import Optional

from repro.sim.events import EventKernel
from repro.service.rpc import Rpc, RpcKind
from repro.service.scheduler import FairShareScheduler


class _Task:
    __slots__ = ("task_id", "busy_until_us", "current_rpc", "current_event")

    def __init__(self, task_id: int):
        self.task_id = task_id
        self.busy_until_us = 0
        # the in-flight (rpc, completion event) pair while serving, None
        # when idle — what a crash loses; two slots rather than a tuple
        # so dispatch does not allocate per RPC
        self.current_rpc = None
        self.current_event = None


class TaskPool:
    """A pool of identical serving tasks over one scheduler."""

    def __init__(
        self,
        name: str,
        kernel: EventKernel,
        scheduler: Optional[FairShareScheduler] = None,
        initial_tasks: int = 4,
        speedup: float = 1.0,
        tracer=None,
        metrics=None,
        profiler=None,
    ):
        if initial_tasks < 1:
            raise ValueError("a pool needs at least one task")
        from repro.obs.perf import NULL_PROFILER
        from repro.obs.tracer import NULL_TRACER

        self.name = name
        self.kernel = kernel
        self.scheduler = scheduler if scheduler is not None else FairShareScheduler()
        self.speedup = speedup
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        # fast flags resolved once: the dispatch loop runs per event, and
        # truthiness of the null singletons is a Python __bool__ call
        # (callers may hand us the null singletons directly, so test
        # truthiness here rather than identity against None)
        self._profiler_on = bool(self.profiler)
        self._tracer_on = bool(self.tracer)
        # per-kind strings synthesized once: the dispatch loop must not
        # run .name.lower() or build f-strings per RPC
        self._profile_labels = {
            kind: f"{name}.{kind.name.lower()}" for kind in RpcKind
        }
        self._kind_labels = {kind: kind.name.lower() for kind in RpcKind}
        self._exec_span_name = f"{name}.exec"
        self._tasks = [_Task(i) for i in range(initial_tasks)]
        self._next_task_id = initial_tasks
        #: optional :class:`repro.service.overload.QueueDiscipline` — when
        #: set, dispatch feeds queue waits to its adaptive limiter and
        #: sheds RPCs whose sojourn blew the CoDel target
        self.overload = None
        #: cluster callback invoked for each CoDel-shed RPC (ledger the
        #: decision, stamp the backoff hint, reject); set with ``overload``
        self.shed_hook = None
        #: optional re-admission gate for the crash-requeue path; returns
        #: True to re-enqueue, False when it shed (and rejected) the RPC
        self.readmit = None
        # utilization accounting
        self._busy_us_accum = 0.0
        self._accounted_until = kernel.now_us
        #: cumulative task-busy microseconds, never reset (unlike the
        #: windowed ``utilization`` accumulator) — the denominator of the
        #: profiler's coverage check
        self.busy_us_total = 0
        self.completed = 0

    # -- sizing ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Current number of tasks."""
        return len(self._tasks)

    def add_tasks(self, count: int) -> None:
        """Grow the pool and drain queued work onto the new tasks."""
        for _ in range(count):
            self._tasks.append(_Task(self._next_task_id))
            self._next_task_id += 1
        self._record_size()
        self._dispatch()

    def remove_tasks(self, count: int) -> int:
        """Shrink (never below one task). In-flight work finishes first
        because busy tasks are removed lazily at their completion."""
        removable = min(count, len(self._tasks) - 1)
        now = self.kernel.now_us
        idle = [t for t in self._tasks if t.busy_until_us <= now]
        victims = idle[:removable]
        for task in victims:
            self._tasks.remove(task)
        self._record_size()
        return len(victims)

    def crash_tasks(self, count: int = 1, requeue: bool = True) -> int:
        """Crash ``count`` tasks mid-flight (fault injection).

        A crash loses the task's in-flight RPC — its completion event is
        cancelled and the RPC is re-queued (``requeue``, the default: the
        load balancer retries on a sibling) or rejected. The crashed task
        is replaced immediately, modeling the cluster scheduler's fast
        restart; the autoscaler sees only the queueing backlog the crash
        caused. Returns the number of tasks crashed.
        """
        crashed = 0
        tasks = self._tasks
        for _ in range(count):
            victim = None
            for task in tasks:
                if task.current_rpc is not None:
                    victim = task
                    break
            if victim is None and tasks:
                victim = tasks[0]
            if victim is None:
                break
            tasks.remove(victim)
            rpc = victim.current_rpc
            if rpc is not None:
                victim.current_event.cancel()
                if requeue:
                    # the RPC still holds its admission slot, but the
                    # queue may have filled since: re-check before
                    # re-inserting (the readmit hook rejects on shed)
                    readmit = self.readmit
                    if readmit is None or readmit(rpc):
                        self.scheduler.enqueue(rpc)
                else:
                    rpc.reject("task crashed")
            tasks.append(_Task(self._next_task_id))
            self._next_task_id += 1
            crashed += 1
        if crashed:
            if self.metrics is not None:
                self.metrics.counter("pool_task_crashes", pool=self.name).inc(
                    crashed
                )
            self._record_size()
            self._dispatch()
        return crashed

    def _record_size(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge("pool_tasks", pool=self.name).set(len(self._tasks))

    # -- work flow -----------------------------------------------------------------

    def submit(self, rpc: Rpc) -> None:
        """Enqueue one RPC and dispatch if a task is free."""
        self.scheduler.enqueue(rpc)
        self._dispatch()

    def _dispatch(self) -> None:
        scheduler = self.scheduler
        if scheduler.pending == 0:
            return
        tasks = self._tasks
        now = self.kernel.clock._now_us
        # cheap exits first (nothing queued / every task busy) before
        # binding the rest of the dispatch state
        task = None
        for candidate in tasks:
            if candidate.busy_until_us <= now:
                task = candidate
                break
        if task is None:
            return
        kernel = self.kernel
        metrics = self.metrics
        speedup = self.speedup
        pick = scheduler.pick
        overload = self.overload
        while True:
            rpc = pick()
            if rpc is None:
                return
            if rpc.deadline_us is not None and now >= rpc.deadline_us:
                # the caller gave up while this RPC sat in the queue:
                # expire it here instead of burning a task on dead work
                if metrics is not None:
                    metrics.counter(
                        "faults_deadline_expired", at=self.name
                    ).inc()
                rpc.reject("deadline exceeded in queue")
                continue
            if overload is not None:
                sojourn = now - rpc.arrival_us
                overload.observe(sojourn, now)
                if overload.should_shed(sojourn, now, rpc.latency_sensitive):
                    # queue-deadline shedding: sojourn blew the CoDel
                    # target, drain the standing queue instead of serving
                    # stale work (the hook ledgers and rejects)
                    self.shed_hook(rpc)
                    continue
            cost = rpc.cpu_cost_us
            service_us = max(1, round(cost / speedup)) if speedup != 1.0 else cost
            finish = now + service_us
            task.busy_until_us = finish
            self._busy_us_accum += service_us
            self.busy_us_total += service_us
            if self._profiler_on:
                self.profiler.account(
                    "service",
                    self._profile_labels[rpc.kind],
                    service_us,
                    rpc.database_id,
                )
            if self._tracer_on and rpc.trace_ctx is not None:
                self.tracer.start_span(
                    self._exec_span_name,
                    parent=rpc.trace_ctx,
                    component=self.name,
                    # reprolint: disable=hot-loop-alloc -- span attributes are per-span values by nature; the tracer is off in perf runs
                    attributes={
                        "database_id": rpc.database_id,
                        "kind": self._kind_labels[rpc.kind],
                        "queue_wait_us": now - rpc.arrival_us,
                        "task": task.task_id,
                        # critical-path self-classification: uncovered time
                        # inside an exec span is CPU service, not a gap
                        "self_cause": "service",
                    },
                ).end(finish)
            event = kernel.at(
                finish, self._make_completion(task, rpc, finish)
            )
            task.current_rpc = rpc
            task.current_event = event
            if scheduler.pending == 0:
                return
            task = None
            for candidate in tasks:
                if candidate.busy_until_us <= now:
                    task = candidate
                    break
            if task is None:
                return

    def _free_task(self, now_us: int) -> Optional[_Task]:
        for task in self._tasks:
            if task.busy_until_us <= now_us:
                return task
        return None

    def _make_completion(self, task: _Task, rpc: Rpc, finish_us: int):
        def complete() -> None:
            task.current_rpc = None
            task.current_event = None
            self.completed += 1
            if self.metrics is not None:
                self.metrics.counter("pool_completed", pool=self.name).inc()
            storage_us = rpc.storage_latency_us
            if storage_us > 0:
                # events never fire late, so the completion latency is
                # known at schedule time: precompute it instead of
                # re-reading the clock inside the deferred callback
                fire_us = self.kernel.clock._now_us + storage_us
                if self._tracer_on and rpc.trace_ctx is not None:
                    # the gap until the deferred completion fires is the
                    # storage layer's latency — for commits that is the
                    # modeled Spanner quorum round trip
                    self.tracer.record_wait(
                        rpc.trace_ctx,
                        "quorum_rtt"
                        if rpc.kind is RpcKind.COMMIT
                        else "storage_read",
                        start_us=fire_us - storage_us,
                        end_us=fire_us,
                    )
                on_done = rpc.on_complete
                if on_done is not None:
                    latency_us = fire_us - rpc.arrival_us
                    self.kernel.post(fire_us, lambda: on_done(rpc, latency_us))
            else:
                rpc.complete(finish_us)
            if self.scheduler.pending != 0:
                self._dispatch()

        return complete

    # -- utilization -----------------------------------------------------------------

    def utilization(self) -> float:
        """Mean utilization since the last call (0..1); resets the window."""
        now = self.kernel.now_us
        elapsed = now - self._accounted_until
        if elapsed <= 0:
            return 0.0
        capacity = elapsed * len(self._tasks)
        # clamp: work scheduled into the future counts only up to now
        busy = min(self._busy_us_accum, capacity)
        self._busy_us_accum = 0.0
        self._accounted_until = now
        return busy / capacity

    def queue_depth(self) -> int:
        """RPCs waiting for a task."""
        return self.scheduler.queued()
