"""Operation-based billing with the daily free quota.

"Firestore's serverless pay-as-you-go pricing together with a daily free
quota ensures that billing increases reflect application success" (paper
section I); billing counts document reads, writes, deletes, and stored
bytes (section IV-B), and "the customer is not billed for any work that
can be satisfied by the local cache" (section IV-E) — cache hits never
reach this ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import SimClock

MICROS_PER_DAY = 86_400_000_000


@dataclass(frozen=True)
class FreeQuota:
    """Daily free allowances (production's launch-era quota)."""

    reads_per_day: int = 50_000
    writes_per_day: int = 20_000
    deletes_per_day: int = 20_000
    storage_bytes: int = 1 << 30  # 1 GiB


@dataclass(frozen=True)
class PriceSheet:
    """USD per 100k operations / per GiB-month (nam5 list prices)."""

    per_100k_reads: float = 0.06
    per_100k_writes: float = 0.18
    per_100k_deletes: float = 0.02
    per_gib_month_storage: float = 0.18


@dataclass
class _DayCounters:
    reads: int = 0
    writes: int = 0
    deletes: int = 0


@dataclass
class _DatabaseAccount:
    days: dict[int, _DayCounters] = field(default_factory=dict)
    storage_bytes: int = 0


class BillingLedger:
    """Per-database operation counters and charge computation."""

    def __init__(
        self,
        clock: SimClock,
        quota: FreeQuota | None = None,
        prices: PriceSheet | None = None,
    ):
        self.clock = clock
        self.quota = quota if quota is not None else FreeQuota()
        self.prices = prices if prices is not None else PriceSheet()
        self._accounts: dict[str, _DatabaseAccount] = {}

    def _day(self) -> int:
        return self.clock.now_us // MICROS_PER_DAY

    def _counters(self, database_id: str) -> _DayCounters:
        account = self._accounts.setdefault(database_id, _DatabaseAccount())
        return account.days.setdefault(self._day(), _DayCounters())

    # -- recording --------------------------------------------------------------

    def record_reads(self, database_id: str, count: int = 1) -> None:
        """Count billable document reads."""
        self._counters(database_id).reads += count

    def record_writes(self, database_id: str, count: int = 1) -> None:
        """Count billable document writes."""
        self._counters(database_id).writes += count

    def record_deletes(self, database_id: str, count: int = 1) -> None:
        """Count billable document deletes."""
        self._counters(database_id).deletes += count

    def set_storage_bytes(self, database_id: str, size: int) -> None:
        """Record the database's stored size for storage billing."""
        self._accounts.setdefault(database_id, _DatabaseAccount()).storage_bytes = size

    # -- reporting ----------------------------------------------------------------

    def day_usage(self, database_id: str, day: int | None = None) -> _DayCounters:
        """The operation counters for one day (default: today)."""
        account = self._accounts.setdefault(database_id, _DatabaseAccount())
        return account.days.get(
            day if day is not None else self._day(), _DayCounters()
        )

    def billable_today(self, database_id: str) -> dict[str, int]:
        """Today's operations beyond the free quota."""
        usage = self.day_usage(database_id)
        quota = self.quota
        return {
            "reads": max(0, usage.reads - quota.reads_per_day),
            "writes": max(0, usage.writes - quota.writes_per_day),
            "deletes": max(0, usage.deletes - quota.deletes_per_day),
        }

    def charge_today_usd(self, database_id: str) -> float:
        """Today's bill: a database within the free quota pays nothing."""
        billable = self.billable_today(database_id)
        prices = self.prices
        charge = (
            billable["reads"] / 100_000 * prices.per_100k_reads
            + billable["writes"] / 100_000 * prices.per_100k_writes
            + billable["deletes"] / 100_000 * prices.per_100k_deletes
        )
        account = self._accounts.setdefault(database_id, _DatabaseAccount())
        extra_storage = max(0, account.storage_bytes - self.quota.storage_bytes)
        charge += (extra_storage / (1 << 30)) * self.prices.per_gib_month_storage / 30
        return charge
