"""Operation-based billing with the daily free quota.

"Firestore's serverless pay-as-you-go pricing together with a daily free
quota ensures that billing increases reflect application success" (paper
section I); billing counts document reads, writes, deletes, and stored
bytes (section IV-B), and "the customer is not billed for any work that
can be satisfied by the local cache" (section IV-E) — cache hits never
reach this ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.clock import SimClock

MICROS_PER_DAY = 86_400_000_000


@dataclass(frozen=True)
class FreeQuota:
    """Daily free allowances (production's launch-era quota)."""

    reads_per_day: int = 50_000
    writes_per_day: int = 20_000
    deletes_per_day: int = 20_000
    storage_bytes: int = 1 << 30  # 1 GiB


@dataclass(frozen=True)
class PriceSheet:
    """USD per 100k operations / per GiB-month (nam5 list prices)."""

    per_100k_reads: float = 0.06
    per_100k_writes: float = 0.18
    per_100k_deletes: float = 0.02
    per_gib_month_storage: float = 0.18


@dataclass
class _DayCounters:
    reads: int = 0
    writes: int = 0
    deletes: int = 0


@dataclass
class _DatabaseAccount:
    days: dict[int, _DayCounters] = field(default_factory=dict)
    storage_bytes: int = 0


class BillingLedger:
    """Per-database operation counters and charge computation."""

    __slots__ = ("clock", "quota", "prices", "_accounts", "_last")

    def __init__(
        self,
        clock: SimClock,
        quota: FreeQuota | None = None,
        prices: PriceSheet | None = None,
    ):
        self.clock = clock
        self.quota = quota if quota is not None else FreeQuota()
        self.prices = prices if prices is not None else PriceSheet()
        self._accounts: dict[str, _DatabaseAccount] = {}
        # (database_id, day, counters) of the last lookup: billable
        # operations arrive in time order and mostly for the same
        # database, so this hits nearly always
        self._last: tuple[str | None, int, _DayCounters | None] = (None, -1, None)

    def _day(self) -> int:
        return self.clock.now_us // MICROS_PER_DAY

    def _counters(self, database_id: str) -> _DayCounters:
        day = self.clock._now_us // MICROS_PER_DAY
        last = self._last
        if last[1] == day and last[0] == database_id:
            return last[2]
        # .get over .setdefault: this runs per billable operation, and
        # setdefault would construct a fresh default on every call
        account = self._accounts.get(database_id)
        if account is None:
            account = _DatabaseAccount()
            self._accounts[database_id] = account
        counters = account.days.get(day)
        if counters is None:
            counters = _DayCounters()
            account.days[day] = counters
        self._last = (database_id, day, counters)
        return counters

    # -- recording --------------------------------------------------------------

    def record_reads(self, database_id: str, count: int = 1) -> None:
        """Count billable document reads."""
        self._counters(database_id).reads += count

    def record_writes(self, database_id: str, count: int = 1) -> None:
        """Count billable document writes."""
        self._counters(database_id).writes += count

    def record_deletes(self, database_id: str, count: int = 1) -> None:
        """Count billable document deletes."""
        self._counters(database_id).deletes += count

    def set_storage_bytes(self, database_id: str, size: int) -> None:
        """Record the database's stored size for storage billing."""
        self._accounts.setdefault(database_id, _DatabaseAccount()).storage_bytes = size

    # -- reporting ----------------------------------------------------------------

    def day_usage(self, database_id: str, day: int | None = None) -> _DayCounters:
        """The operation counters for one day (default: today)."""
        account = self._accounts.setdefault(database_id, _DatabaseAccount())
        return account.days.get(
            day if day is not None else self._day(), _DayCounters()
        )

    def billable_today(self, database_id: str) -> dict[str, int]:
        """Today's operations beyond the free quota."""
        usage = self.day_usage(database_id)
        quota = self.quota
        return {
            "reads": max(0, usage.reads - quota.reads_per_day),
            "writes": max(0, usage.writes - quota.writes_per_day),
            "deletes": max(0, usage.deletes - quota.deletes_per_day),
        }

    def charge_today_usd(self, database_id: str) -> float:
        """Today's bill: a database within the free quota pays nothing."""
        billable = self.billable_today(database_id)
        prices = self.prices
        charge = (
            billable["reads"] / 100_000 * prices.per_100k_reads
            + billable["writes"] / 100_000 * prices.per_100k_writes
            + billable["deletes"] / 100_000 * prices.per_100k_deletes
        )
        account = self._accounts.setdefault(database_id, _DatabaseAccount())
        extra_storage = max(0, account.storage_bytes - self.quota.storage_bytes)
        charge += (extra_storage / (1 << 30)) * self.prices.per_gib_month_storage / 30
        return charge
