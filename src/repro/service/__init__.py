"""Multi-tenant serving infrastructure (discrete-event simulation).

Models the parts of Firestore's serving path that shape the paper's
latency and isolation results (sections IV-B, IV-C, V-B, V-C): task
pools with CPU capacity, fair-CPU-share scheduling keyed by database ID,
delayed auto-scaling, admission control (in-flight limits, load shedding,
the conforming-traffic ramp rule), global routing, operation-based
billing with the free quota, and latency percentile recorders.
"""

from repro.service.metrics import LatencyRecorder, WindowedPercentiles
from repro.service.rpc import Rpc, RpcKind
from repro.service.scheduler import FairShareScheduler
from repro.service.pool import TaskPool
from repro.service.autoscaler import Autoscaler, AutoscalerConfig
from repro.service.overload import (
    AdaptiveLimit,
    BreakerBoard,
    CircuitBreaker,
    CodelShedder,
    HedgeThrottle,
    OverloadConfig,
    OverloadState,
    QueueDiscipline,
    ReadLatencyTracker,
    ShedReason,
)
from repro.service.admission import AdmissionController, AdmissionConfig
from repro.service.billing import BillingLedger, FreeQuota, PriceSheet
from repro.service.routing import GlobalRouter
from repro.service.cluster import ServingCluster, ClusterConfig

__all__ = [
    "LatencyRecorder",
    "WindowedPercentiles",
    "Rpc",
    "RpcKind",
    "FairShareScheduler",
    "TaskPool",
    "Autoscaler",
    "AutoscalerConfig",
    "AdaptiveLimit",
    "BreakerBoard",
    "CircuitBreaker",
    "CodelShedder",
    "HedgeThrottle",
    "OverloadConfig",
    "OverloadState",
    "QueueDiscipline",
    "ReadLatencyTracker",
    "ShedReason",
    "AdmissionController",
    "AdmissionConfig",
    "BillingLedger",
    "FreeQuota",
    "PriceSheet",
    "GlobalRouter",
    "ServingCluster",
    "ClusterConfig",
]
