"""Wall-clock measurement, sanctioned only here inside the sim core.

``import time`` is banned outside ``repro/sim`` (the deterministic-
simulation boundary enforced by ``repro.analysis``): nothing a component
*does* may depend on real time. Measuring how fast the simulator itself
runs is the one legitimate wall-clock use, and the speed gate needs it
from harness code that lives outside this boundary. This module is that
doorway: it hands out elapsed-time measurements without letting ``time``
leak into the importing module's namespace.

Wall readings must never feed back into simulated behavior — they are
for reporting (events/sec, wall-us per sim-us) only.
"""

from __future__ import annotations

import gc
import time
from typing import Callable

__all__ = ["WallTimer", "best_of"]


class WallTimer:
    """Context manager capturing real elapsed nanoseconds.

    ::

        with WallTimer() as timer:
            kernel.run_until(horizon)
        print(timer.elapsed_ns)
    """

    __slots__ = ("_start_ns", "elapsed_ns")

    def __init__(self) -> None:
        self._start_ns = 0
        self.elapsed_ns = 0

    def __enter__(self) -> "WallTimer":
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed_ns = time.perf_counter_ns() - self._start_ns

    @property
    def elapsed_s(self) -> float:
        return self.elapsed_ns / 1e9


def best_of(trials: int, run: Callable[[], object]) -> tuple[object, int]:
    """Run ``run`` ``trials`` times; return (last result, best ns).

    Each trial runs with the garbage collector disabled (collected once
    beforehand) so GC pauses land between trials, not inside the timed
    region — the same protocol the speed gate's committed baseline was
    recorded with. Best-of is the right statistic for a throughput floor:
    minimum wall time is the run least disturbed by the machine.
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    best_ns = None
    result = None
    gc_was_enabled = gc.isenabled()
    try:
        for _ in range(trials):
            gc.collect()
            gc.disable()
            start_ns = time.perf_counter_ns()
            result = run()
            elapsed_ns = time.perf_counter_ns() - start_ns
            if gc_was_enabled:
                gc.enable()
            if best_ns is None or elapsed_ns < best_ns:
                best_ns = elapsed_ns
    finally:
        if gc_was_enabled and not gc.isenabled():
            gc.enable()
    return result, best_ns
